// adam.h — Adam optimizer (Kingma & Ba, 2015), used to train the C&W nets.
#pragma once

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace fsa::optim {

class Adam final : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void step() override;

 private:
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace fsa::optim
