#include "optim/adam.h"

#include <cmath>

namespace fsa::optim {

Adam::Adam(std::vector<nn::Parameter*> params, double lr, double beta1, double beta2, double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value().shape());
    v_.emplace_back(p->value().shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const float b1 = static_cast<float>(beta1_), b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value();
    const auto& grad = params_[i]->grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      value[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

}  // namespace fsa::optim
