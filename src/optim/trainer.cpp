#include "optim/trainer.h"

#include "tensor/ops.h"

namespace fsa::optim {

EpochStats Trainer::fit(const data::Dataset& train, const TrainConfig& cfg) {
  data::DataLoader loader(train, cfg.batch_size, /*shuffle=*/true, Rng(cfg.shuffle_seed));
  EpochStats stats;
  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.lr_schedule) opt_->set_lr(cfg.lr_schedule(epoch));
    loader.start_epoch();
    double loss_sum = 0.0;
    std::int64_t correct = 0, seen = 0, batches = 0;
    data::Batch batch;
    while (loader.next(batch)) {
      opt_->zero_grad();
      const Tensor logits = model_->forward(batch.images, /*train=*/true);
      loss_sum += ops::cross_entropy(logits, batch.labels);
      const auto pred = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < pred.size(); ++i)
        if (pred[i] == batch.labels[i]) ++correct;
      seen += batch.size();
      ++batches;
      model_->backward(ops::cross_entropy_grad(logits, batch.labels));
      opt_->step();
    }
    stats = EpochStats{epoch, loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1)),
                       static_cast<double>(correct) / static_cast<double>(std::max<std::int64_t>(seen, 1))};
    if (cfg.on_epoch) cfg.on_epoch(stats);
  }
  return stats;
}

std::pair<double, double> Trainer::evaluate(nn::Sequential& model, const data::Dataset& ds,
                                            std::int64_t batch_size) {
  double loss_sum = 0.0;
  std::int64_t correct = 0, batches = 0;
  for (std::int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const std::int64_t end = std::min(ds.size(), begin + batch_size);
    const Tensor images = ds.images().slice0(begin, end);
    const std::vector<std::int64_t> labels(ds.labels().begin() + begin, ds.labels().begin() + end);
    const Tensor logits = model.forward(images, /*train=*/false);
    loss_sum += ops::cross_entropy(logits, labels);
    const auto pred = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i)
      if (pred[i] == labels[i]) ++correct;
    ++batches;
  }
  return {loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1)),
          static_cast<double>(correct) / static_cast<double>(std::max<std::int64_t>(ds.size(), 1))};
}

}  // namespace fsa::optim
