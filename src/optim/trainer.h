// trainer.h — mini-batch training loop for Sequential models.
//
// Trains with softmax cross-entropy (the networks output logits; the
// softmax lives in the loss, matching the paper's use of logits in its
// attack objective). Reports per-epoch loss/accuracy so the model zoo can
// verify the substitute datasets land in the paper's accuracy regimes.
#pragma once

#include <functional>

#include "data/dataloader.h"
#include "nn/sequential.h"
#include "optim/optimizer.h"

namespace fsa::optim {

struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
};

struct TrainConfig {
  std::int64_t epochs = 4;
  std::int64_t batch_size = 32;
  std::uint64_t shuffle_seed = 7;
  /// Optional per-epoch learning rate (epoch index → lr); nullptr keeps the
  /// optimizer's current lr.
  std::function<double(std::int64_t)> lr_schedule;
  /// Optional progress callback (e.g. logging from examples).
  std::function<void(const EpochStats&)> on_epoch;
};

class Trainer {
 public:
  Trainer(nn::Sequential& model, Optimizer& opt) : model_(&model), opt_(&opt) {}

  /// Run the full loop; returns stats of the final epoch.
  EpochStats fit(const data::Dataset& train, const TrainConfig& cfg);

  /// Mean loss + accuracy of `model` on a dataset (no parameter updates).
  static std::pair<double, double> evaluate(nn::Sequential& model, const data::Dataset& ds,
                                            std::int64_t batch_size = 64);

  /// Accuracy only.
  static double accuracy(nn::Sequential& model, const data::Dataset& ds,
                         std::int64_t batch_size = 64) {
    return evaluate(model, ds, batch_size).second;
  }

 private:
  nn::Sequential* model_;
  Optimizer* opt_;
};

}  // namespace fsa::optim
