// optimizer.h — first-order optimizers over a fixed parameter set.
//
// An Optimizer binds to the Parameter pointers of a model at construction
// (per-parameter state like Adam moments is indexed positionally) and
// applies one update per step() from the accumulated gradients.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace fsa::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the currently accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

  [[nodiscard]] double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 protected:
  std::vector<nn::Parameter*> params_;
  double lr_ = 1e-3;
};

}  // namespace fsa::optim
