// lr_schedule.h — learning-rate schedules for the trainer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace fsa::optim {

/// Piecewise-exponential decay: lr = base · decay^(epoch / step).
class StepDecay {
 public:
  StepDecay(double base_lr, double decay, std::int64_t step_epochs)
      : base_(base_lr), decay_(decay), step_(std::max<std::int64_t>(step_epochs, 1)) {}

  [[nodiscard]] double at_epoch(std::int64_t epoch) const {
    return base_ * std::pow(decay_, static_cast<double>(epoch / step_));
  }

 private:
  double base_, decay_;
  std::int64_t step_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineDecay {
 public:
  CosineDecay(double base_lr, double min_lr, std::int64_t total_epochs)
      : base_(base_lr), min_(min_lr), total_(std::max<std::int64_t>(total_epochs, 1)) {}

  [[nodiscard]] double at_epoch(std::int64_t epoch) const {
    const double t = std::min<double>(static_cast<double>(epoch) / static_cast<double>(total_), 1.0);
    return min_ + 0.5 * (base_ - min_) * (1.0 + std::cos(3.14159265358979323846 * t));
  }

 private:
  double base_, min_;
  std::int64_t total_;
};

}  // namespace fsa::optim
