// sgd.h — stochastic gradient descent with optional momentum and weight decay.
#pragma once

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace fsa::optim {

class SGD final : public Optimizer {
 public:
  SGD(std::vector<nn::Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;  // one buffer per parameter, lazily shaped
};

}  // namespace fsa::optim
