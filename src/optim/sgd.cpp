#include "optim/sgd.h"

namespace fsa::optim {

SGD::SGD(std::vector<nn::Parameter*> params, double lr, double momentum, double weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->value().shape());
}

void SGD::step() {
  const float lr = static_cast<float>(lr_);
  const float mom = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value();
    const auto& grad = params_[i]->grad();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + wd * value[j];
      if (mom != 0.0f) {
        vel[j] = mom * vel[j] + g;
        value[j] -= lr * vel[j];
      } else {
        value[j] -= lr * g;
      }
    }
  }
}

}  // namespace fsa::optim
