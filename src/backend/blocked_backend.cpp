// blocked_backend.cpp — cache-blocked, register-tiled GEMM on the pool.
//
// The output is tiled into mr×nr register blocks: the C block stays in
// vector registers for the whole k loop, so each output element costs one
// load and one store total while every streamed B stripe feeds mr rows at
// once. Work is sharded across the parallel.h thread pool by output-row
// tile; tile boundaries depend only on the shapes, and every output
// element is accumulated in ascending-k order by exactly one thread, so
// results are bit-identical for any thread count.
//
// The NN kernel keeps the seed's sparse-row fast path: rows that are
// mostly zeros (δ rows in the attack) skip their zero entries instead of
// multiplying through. B is NOT packed — large surfaces re-stream it from
// L3 once per row tile; the packed backend exists for exactly that case.
#include <algorithm>

#include "backend/compute_backend.h"
#include "backend/tiling.h"
#include "tensor/parallel.h"

namespace fsa::backend {

namespace {

constexpr std::int64_t kMR = Blocking::mr;

// Below this many flops a GEMM is not worth waking the pool for; the grain
// passed to parallel_for keeps at least this much work per chunk.
constexpr double kSerialFlops = 1 << 19;

std::int64_t tile_grain(std::int64_t k, std::int64_t n) {
  const double flops_per_tile = 2.0 * kMR * static_cast<double>(k) * static_cast<double>(n);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(kSerialFlops / std::max(flops_per_tile, 1.0)));
}

std::int64_t row_nnz(const float* a, std::int64_t k) {
  std::int64_t nz = 0;
  for (std::int64_t p = 0; p < k; ++p) nz += a[p] != 0.0f;
  return nz;
}

// The seed kernel, one row at a time: skips zero A entries, which is the
// fast path for the attack's sparse δ rows and the tail/mixed-tile path.
void row_nn(const float* ai, const float* b, float* ci, std::int64_t k, std::int64_t n) {
  for (std::int64_t p = 0; p < k; ++p) {
    const float aip = ai[p];
    if (aip == 0.0f) continue;
    const float* bp = b + p * n;
    for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
  }
}

// Dense 4×nr register block: the C sub-block lives in vector registers for
// the whole k loop (one load and one store per element total), each
// streamed B stripe feeds four C rows, and the four accumulator rows give
// the FMA units independent chains. FetchA abstracts the A layout — row
// pointers for NN, a contiguous 4-column group for TN — and inlines away.
template <typename FetchA>
inline void block_rows_4(FetchA&& fetch_a, const float* b, float* c, std::int64_t i0,
                         std::int64_t k, std::int64_t n) {
  constexpr std::int64_t nr = Blocking::nr;
  float* c0 = c + (i0 + 0) * n;
  float* c1 = c + (i0 + 1) * n;
  float* c2 = c + (i0 + 2) * n;
  float* c3 = c + (i0 + 3) * n;
  std::int64_t j0 = 0;
  for (; j0 + nr <= n; j0 += nr) {
    float acc0[nr], acc1[nr], acc2[nr], acc3[nr];
    for (std::int64_t j = 0; j < nr; ++j) {
      acc0[j] = c0[j0 + j];
      acc1[j] = c1[j0 + j];
      acc2[j] = c2[j0 + j];
      acc3[j] = c3[j0 + j];
    }
    for (std::int64_t p = 0; p < k; ++p) {
      float x0, x1, x2, x3;
      fetch_a(p, x0, x1, x2, x3);
      if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f) continue;
      const float* bp = b + p * n + j0;
      for (std::int64_t j = 0; j < nr; ++j) {
        const float bj = bp[j];
        acc0[j] += x0 * bj;
        acc1[j] += x1 * bj;
        acc2[j] += x2 * bj;
        acc3[j] += x3 * bj;
      }
    }
    for (std::int64_t j = 0; j < nr; ++j) {
      c0[j0 + j] = acc0[j];
      c1[j0 + j] = acc1[j];
      c2[j0 + j] = acc2[j];
      c3[j0 + j] = acc3[j];
    }
  }
  if (j0 < n) {  // ≤ nr-1 tail columns: stream C instead of blocking it
    for (std::int64_t p = 0; p < k; ++p) {
      float x0, x1, x2, x3;
      fetch_a(p, x0, x1, x2, x3);
      if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::int64_t j = j0; j < n; ++j) {
        const float bj = bp[j];
        c0[j] += x0 * bj;
        c1[j] += x1 * bj;
        c2[j] += x2 * bj;
        c3[j] += x3 * bj;
      }
    }
  }
}

void tile_nn_4(const float* a, const float* b, float* c, std::int64_t i0, std::int64_t k,
               std::int64_t n) {
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  block_rows_4(
      [&](std::int64_t p, float& x0, float& x1, float& x2, float& x3) {
        x0 = a0[p];
        x1 = a1[p];
        x2 = a2[p];
        x3 = a3[p];
      },
      b, c, i0, k, n);
}

// TN: A is (k×m); the four needed A entries per k-step are contiguous.
void tile_tn_4(const float* a, const float* b, float* c, std::int64_t i0, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  block_rows_4(
      [&](std::int64_t p, float& x0, float& x1, float& x2, float& x3) {
        const float* ap = a + p * m + i0;
        x0 = ap[0];
        x1 = ap[1];
        x2 = ap[2];
        x3 = ap[3];
      },
      b, c, i0, k, n);
}

void row_tn(const float* a, const float* b, float* ci, std::int64_t i, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  for (std::int64_t p = 0; p < k; ++p) {
    const float aip = a[p * m + i];
    if (aip == 0.0f) continue;
    const float* bp = b + p * n;
    for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
  }
}

// NT 4×4 tile: sixteen independent dot-product chains over contiguous A
// and B rows; the ILP hides the serial (reassociation-free) k recurrence.
void tile_nt_4x4(const float* a, const float* b, float* c, std::int64_t i0, std::int64_t j0,
                 std::int64_t k, std::int64_t n) {
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  const float* b0 = b + (j0 + 0) * k;
  const float* b1 = b + (j0 + 1) * k;
  const float* b2 = b + (j0 + 2) * k;
  const float* b3 = b + (j0 + 3) * k;
  float s00 = 0, s01 = 0, s02 = 0, s03 = 0;
  float s10 = 0, s11 = 0, s12 = 0, s13 = 0;
  float s20 = 0, s21 = 0, s22 = 0, s23 = 0;
  float s30 = 0, s31 = 0, s32 = 0, s33 = 0;
  for (std::int64_t p = 0; p < k; ++p) {
    const float x0 = a0[p], x1 = a1[p], x2 = a2[p], x3 = a3[p];
    const float y0 = b0[p], y1 = b1[p], y2 = b2[p], y3 = b3[p];
    s00 += x0 * y0; s01 += x0 * y1; s02 += x0 * y2; s03 += x0 * y3;
    s10 += x1 * y0; s11 += x1 * y1; s12 += x1 * y2; s13 += x1 * y3;
    s20 += x2 * y0; s21 += x2 * y1; s22 += x2 * y2; s23 += x2 * y3;
    s30 += x3 * y0; s31 += x3 * y1; s32 += x3 * y2; s33 += x3 * y3;
  }
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  c0[0] += s00; c0[1] += s01; c0[2] += s02; c0[3] += s03;
  c1[0] += s10; c1[1] += s11; c1[2] += s12; c1[3] += s13;
  c2[0] += s20; c2[1] += s21; c2[2] += s22; c2[3] += s23;
  c3[0] += s30; c3[1] += s31; c3[2] += s32; c3[3] += s33;
}

class BlockedBackend final : public ComputeBackend {
 public:
  [[nodiscard]] std::string name() const override { return "blocked"; }

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    if (m <= 0 || k <= 0 || n <= 0) return;
    const std::int64_t tiles = (m + kMR - 1) / kMR;
    parallel_for(0, tiles, tile_grain(k, n), [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t i0 = t * kMR;
        const std::int64_t ib = std::min(kMR, m - i0);
        // A tile goes through the dense micro-kernel only if every row is
        // dense; sparse δ-like rows (and tails) keep the zero-skip path.
        bool all_dense = ib == kMR;
        for (std::int64_t r = 0; all_dense && r < ib; ++r)
          all_dense = row_nnz(a + (i0 + r) * k, k) * 8 >= k;
        if (all_dense) {
          tile_nn_4(a, b, c, i0, k, n);
        } else {
          for (std::int64_t r = 0; r < ib; ++r)
            row_nn(a + (i0 + r) * k, b, c + (i0 + r) * n, k, n);
        }
      }
    });
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    if (m <= 0 || k <= 0 || n <= 0) return;
    const std::int64_t tiles = (m + kMR - 1) / kMR;
    parallel_for(0, tiles, tile_grain(k, n), [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t i0 = t * kMR;
        const std::int64_t ib = std::min(kMR, m - i0);
        if (ib == kMR) {
          tile_tn_4(a, b, c, i0, m, k, n);
        } else {
          for (std::int64_t r = 0; r < ib; ++r) row_tn(a, b, c + (i0 + r) * n, i0 + r, m, k, n);
        }
      }
    });
  }

  void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    if (m <= 0 || n <= 0) return;  // k == 0 is a valid empty contraction
    const std::int64_t tiles = (m + kMR - 1) / kMR;
    parallel_for(0, tiles, tile_grain(k, n), [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t i0 = t * kMR;
        const std::int64_t ib = std::min(kMR, m - i0);
        std::int64_t j0 = 0;
        for (; ib == kMR && j0 + kMR <= n; j0 += kMR) tile_nt_4x4(a, b, c, i0, j0, k, n);
        for (std::int64_t r = 0; r < ib; ++r) {
          const float* ai = a + (i0 + r) * k;
          float* ci = c + (i0 + r) * n;
          for (std::int64_t j = j0; j < n; ++j) {
            const float* bj = b + j * k;
            float acc = 0.0f;
            for (std::int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
            ci[j] += acc;
          }
        }
      }
    });
  }

  void parallel_rows(std::int64_t count, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) const override {
    parallel_for(0, count, grain, body);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_blocked_backend() {
  return std::make_unique<BlockedBackend>();
}

}  // namespace fsa::backend
