#include "backend/compute_backend.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace fsa::backend {

std::unique_ptr<ComputeBackend> make_reference_backend();  // reference_backend.cpp
std::unique_ptr<ComputeBackend> make_blocked_backend();    // blocked_backend.cpp
std::unique_ptr<ComputeBackend> make_packed_backend();     // packed_backend.cpp
std::unique_ptr<ComputeBackend> make_auto_backend();       // auto_backend.cpp

namespace {

constexpr const char* kDefaultBackend = "blocked";

struct Registry {
  std::mutex mu;
  std::map<std::string, BackendFactory> factories;
  std::map<std::string, std::unique_ptr<ComputeBackend>> instances;
  bool seeded = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Built-ins are seeded on first lookup (under the registry lock) rather
/// than via static initializers, which the linker would dead-strip out of
/// a static library.
void seed_builtins_locked(Registry& r) {
  if (r.seeded) return;
  r.seeded = true;
  r.factories.emplace("reference", make_reference_backend);
  r.factories.emplace("blocked", make_blocked_backend);
  r.factories.emplace("packed", make_packed_backend);
  r.factories.emplace("auto", make_auto_backend);
}

std::string known_names_locked(const Registry& r) {
  std::string names;
  for (const auto& [name, factory] : r.factories) names += (names.empty() ? "" : ", ") + name;
  return names;
}

/// Instantiate-or-fetch under the lock; throws listing known names.
const ComputeBackend* instance_locked(Registry& r, const std::string& name) {
  auto it = r.instances.find(name);
  if (it != r.instances.end()) return it->second.get();
  const auto fit = r.factories.find(name);
  if (fit == r.factories.end())
    throw std::invalid_argument("unknown compute backend \"" + name + "\" (registered: " +
                                known_names_locked(r) + ")");
  auto backend = fit->second();
  if (!backend) throw std::runtime_error("backend factory for \"" + name + "\" returned null");
  return r.instances.emplace(name, std::move(backend)).first->second.get();
}

/// The selection seam: one atomic pointer, so hot kernels read it without
/// a lock while set_backend() swaps it safely.
std::atomic<const ComputeBackend*>& active_slot() {
  static std::atomic<const ComputeBackend*> slot{nullptr};
  return slot;
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory) {
  if (name.empty()) throw std::invalid_argument("register_backend: empty name");
  if (!factory) throw std::invalid_argument("register_backend: null factory for \"" + name + "\"");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  seed_builtins_locked(r);
  // A replaced factory must not serve a stale instance — and if the stale
  // instance is the ACTIVE backend, active() must never dangle: build the
  // replacement FIRST (a throwing or null factory leaves the old backend
  // fully installed), retarget the slot, and only then destroy the old
  // instance, so lock-free readers always see a live object.
  const ComputeBackend* stale = nullptr;
  if (const auto it = r.instances.find(name); it != r.instances.end()) stale = it->second.get();
  r.factories[name] = std::move(factory);
  if (stale) {
    if (active_slot().load(std::memory_order_acquire) == stale) {
      auto fresh = r.factories[name]();
      if (!fresh) throw std::runtime_error("backend factory for \"" + name + "\" returned null");
      active_slot().store(fresh.get(), std::memory_order_release);
      r.instances[name] = std::move(fresh);  // destroys the stale instance last
    } else {
      r.instances.erase(name);
    }
  }
}

bool has_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  seed_builtins_locked(r);
  return r.factories.count(name) > 0;
}

std::vector<std::string> backend_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  seed_builtins_locked(r);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

void set_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  seed_builtins_locked(r);
  active_slot().store(instance_locked(r, name), std::memory_order_release);
}

const ComputeBackend& active() {
  const ComputeBackend* backend = active_slot().load(std::memory_order_acquire);
  if (backend) return *backend;
  // First use: initialize from the environment (or the default). Racing
  // first calls resolve to the same instance, so the double store is benign.
  const char* env = std::getenv("FSA_BACKEND");
  set_backend(env && *env ? env : kDefaultBackend);
  return *active_slot().load(std::memory_order_acquire);
}

std::string active_name() { return active().name(); }

}  // namespace fsa::backend
