// tiling.h — the GEMM tiling constants shared by the blocked and packed
// backends (and by tests, which pick shapes that straddle every boundary).
//
// Register tile (both backends): the output is computed in mr×nr blocks
// that live in vector registers for a whole k sweep.
//
// Cache panels (packed backend only): the BLIS-style three-loop blocking.
// B is packed kc×nc (streamed through L2 once per (jc, pc) panel), A is
// packed mc×kc per worker (L2-resident micro-panels), and the micro-kernel
// consumes one kc×nr B sliver from L1 per jr step. kc·nc floats = 1 MiB,
// sized for the common 2 MiB L2.
#pragma once

#include <cstdint>

namespace fsa::backend {

/// Register-tile shape of the micro-kernel.
struct Blocking {
  static constexpr std::int64_t mr = 4;   ///< C rows per register block
  static constexpr std::int64_t nr = 32;  ///< C columns per register block
};

/// Cache-panel shape of the packed backend.
struct Packing {
  static constexpr std::int64_t kc = 256;   ///< k extent of one packed panel pair
  static constexpr std::int64_t mc = 64;    ///< A rows packed per worker block
  static constexpr std::int64_t nc = 1024;  ///< B columns packed per panel
  /// The L2 size the panels are budgeted against — also the threshold the
  /// "auto" backend compares the k×n B footprint to when deciding whether
  /// packing will pay for itself on a given call.
  static constexpr std::int64_t l2_bytes = 2 * 1024 * 1024;
};

}  // namespace fsa::backend
