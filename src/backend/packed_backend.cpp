// packed_backend.cpp — panel-packed GEMM for matrices that spill L2.
//
// The blocked backend re-streams all of B from L2/L3 once per 4-row output
// tile, with each nr-wide stripe touching cache lines n floats apart —
// fine while B fits L2, ruinous past it (R ≫ 1000 heads, 2048³ benches).
// This backend adds the classic BLIS/GotoBLAS three-loop packing on top of
// the same mr×nr micro-kernel:
//
//   for jc over n by nc:                 ── B panel columns
//     for pc over k by kc:               ── shared k panel
//       pack B[pc:pc+kc, jc:jc+nc] → kc×nr micro-panels   (L2-resident, 1 MiB)
//       parallel over ic blocks of mc rows:
//         pack A[ic:ic+mc, pc:pc+kc] → mr×kc micro-panels (per-worker, 64 KiB)
//         for jr, ir: micro-kernel on contiguous packed panels
//
// Pack once, reuse across every jr/ir step: the micro-kernel then reads
// both operands as pure sequential streams (B sliver from L1, A panel from
// L2), so the kernel stays compute-bound at any problem size. The three
// variants differ only in the pack-time gather (NN reads A row-major, TN
// reads A down columns, NT reads B down rows); the inner kernel is shared.
//
// Determinism: the pc loop is sequential and each C element belongs to
// exactly one ic block, so every output is accumulated in ascending-k
// order regardless of the worker count — bit-identical results for any
// FSA_NUM_THREADS, and bitwise-or-within-1ulp of the reference oracle
// (tests/backend_property_test.cpp). Edge tiles are zero-padded into the
// packed panels; padded lanes compute into discarded accumulator slots, so
// in-bounds outputs see exactly the same operation sequence.
#include <algorithm>
#include <vector>

#include "backend/compute_backend.h"
#include "backend/tiling.h"
#include "tensor/parallel.h"

namespace fsa::backend {

namespace {

constexpr std::int64_t kMR = Blocking::mr;
constexpr std::int64_t kNR = Blocking::nr;
constexpr std::int64_t kKC = Packing::kc;
constexpr std::int64_t kMC = Packing::mc;
constexpr std::int64_t kNC = Packing::nc;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// mr×nr register block over packed panels: ap is mr×kb (k-major, lane r at
/// ap[p·mr + r]), bp is kb×nr (row p contiguous). Identical accumulation
/// structure to the blocked backend's block_rows_4, but both operand
/// streams are now contiguous. mv×nv is the in-bounds part of the tile;
/// full tiles load/store C directly, edge tiles go through zeroed slots
/// that are simply not written back.
void micro_kernel(const float* ap, const float* bp, float* c, std::int64_t ldc, std::int64_t kb,
                  std::int64_t mv, std::int64_t nv) {
  float acc0[kNR], acc1[kNR], acc2[kNR], acc3[kNR];
  const bool full = mv == kMR && nv == kNR;
  if (full) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      acc0[j] = c[0 * ldc + j];
      acc1[j] = c[1 * ldc + j];
      acc2[j] = c[2 * ldc + j];
      acc3[j] = c[3 * ldc + j];
    }
  } else {
    for (std::int64_t j = 0; j < kNR; ++j) acc0[j] = acc1[j] = acc2[j] = acc3[j] = 0.0f;
    for (std::int64_t r = 0; r < mv; ++r) {
      float* acc = r == 0 ? acc0 : r == 1 ? acc1 : r == 2 ? acc2 : acc3;
      for (std::int64_t j = 0; j < nv; ++j) acc[j] = c[r * ldc + j];
    }
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* a = ap + p * kMR;
    const float x0 = a[0], x1 = a[1], x2 = a[2], x3 = a[3];
    if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f) continue;
    const float* b = bp + p * kNR;
    for (std::int64_t j = 0; j < kNR; ++j) {
      const float bj = b[j];
      acc0[j] += x0 * bj;
      acc1[j] += x1 * bj;
      acc2[j] += x2 * bj;
      acc3[j] += x3 * bj;
    }
  }
  if (full) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      c[0 * ldc + j] = acc0[j];
      c[1 * ldc + j] = acc1[j];
      c[2 * ldc + j] = acc2[j];
      c[3 * ldc + j] = acc3[j];
    }
  } else {
    for (std::int64_t r = 0; r < mv; ++r) {
      const float* acc = r == 0 ? acc0 : r == 1 ? acc1 : r == 2 ? acc2 : acc3;
      for (std::int64_t j = 0; j < nv; ++j) c[r * ldc + j] = acc[j];
    }
  }
}

/// The shared three-loop driver. load_a(i, p) / load_b(p, j) gather from
/// the operands' storage layouts at pack time; everything after packing is
/// layout-agnostic.
template <typename LoadA, typename LoadB>
void gemm_packed(LoadA&& load_a, LoadB&& load_b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  std::vector<float> bbuf(static_cast<std::size_t>(kKC * ceil_div(std::min(n, kNC), kNR) * kNR));
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nb = std::min(kNC, n - jc);
    const std::int64_t jpanels = ceil_div(nb, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kb = std::min(kKC, k - pc);
      // Pack B[pc:pc+kb, jc:jc+nb] into kb×nr micro-panels (zero-padded
      // past nb). Panels are disjoint, so the shard is exact.
      float* bbase = bbuf.data();
      parallel_for(0, jpanels, 4, [&](std::int64_t g0, std::int64_t g1) {
        for (std::int64_t jp = g0; jp < g1; ++jp) {
          float* dst = bbase + jp * kb * kNR;
          const std::int64_t j0 = jc + jp * kNR;
          const std::int64_t nv = std::min(kNR, jc + nb - j0);
          for (std::int64_t p = 0; p < kb; ++p) {
            float* row = dst + p * kNR;
            for (std::int64_t j = 0; j < nv; ++j) row[j] = load_b(pc + p, j0 + j);
            for (std::int64_t j = nv; j < kNR; ++j) row[j] = 0.0f;
          }
        }
      });
      // One worker per mc-row block: pack its A panel once (counting
      // nonzeros on the way), then sweep the whole packed B panel
      // (pack-once, reuse-across-jr).
      parallel_for(0, ceil_div(m, kMC), 1, [&](std::int64_t b0, std::int64_t b1) {
        thread_local std::vector<float> abuf;
        abuf.resize(static_cast<std::size_t>(kMC * kKC));
        for (std::int64_t blk = b0; blk < b1; ++blk) {
          const std::int64_t ic = blk * kMC;
          const std::int64_t mb = std::min(kMC, m - ic);
          const std::int64_t ipanels = ceil_div(mb, kMR);
          std::int64_t nnz = 0;
          for (std::int64_t ip = 0; ip < ipanels; ++ip) {
            float* dst = abuf.data() + ip * kb * kMR;
            const std::int64_t i0 = ic + ip * kMR;
            const std::int64_t mv = std::min(kMR, ic + mb - i0);
            for (std::int64_t p = 0; p < kb; ++p) {
              float* lane = dst + p * kMR;
              for (std::int64_t r = 0; r < mv; ++r) {
                lane[r] = load_a(i0 + r, pc + p);
                nnz += lane[r] != 0.0f;
              }
              for (std::int64_t r = mv; r < kMR; ++r) lane[r] = 0.0f;
            }
          }
          // Mostly-zero A panel (a δ-sized operand): skip the dense jr
          // sweep and stream only the nonzero entries through the packed B
          // panels, row by row. Each C element still accumulates in
          // ascending-k order, so the result matches the dense path; the
          // decision depends only on the data, never on the worker count.
          if (nnz * 8 < mb * kb) {
            for (std::int64_t r = 0; r < mb; ++r) {
              const float* arow = abuf.data() + (r / kMR) * kb * kMR + (r % kMR);
              float* crow = c + (ic + r) * n;
              for (std::int64_t p = 0; p < kb; ++p) {
                const float av = arow[p * kMR];
                if (av == 0.0f) continue;
                for (std::int64_t jp = 0; jp < jpanels; ++jp) {
                  const float* brow = bbase + jp * kb * kNR + p * kNR;
                  const std::int64_t j0 = jc + jp * kNR;
                  const std::int64_t nv = std::min(kNR, jc + nb - j0);
                  float* cj = crow + j0;
                  for (std::int64_t j = 0; j < nv; ++j) cj[j] += av * brow[j];
                }
              }
            }
            continue;
          }
          for (std::int64_t jp = 0; jp < jpanels; ++jp) {
            const float* bp = bbase + jp * kb * kNR;
            const std::int64_t j0 = jc + jp * kNR;
            const std::int64_t nv = std::min(kNR, jc + nb - j0);
            for (std::int64_t ip = 0; ip < ipanels; ++ip) {
              const std::int64_t i0 = ic + ip * kMR;
              const std::int64_t mv = std::min(kMR, ic + mb - i0);
              micro_kernel(abuf.data() + ip * kb * kMR, bp, c + i0 * n + j0, n, kb, mv, nv);
            }
          }
        }
      });
    }
  }
}

class PackedBackend final : public ComputeBackend {
 public:
  [[nodiscard]] std::string name() const override { return "packed"; }

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[i * k + p]; },
                [=](std::int64_t p, std::int64_t j) { return b[p * n + j]; }, c, m, k, n);
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    // A stored (k×m): the pack-time gather walks down A's column i.
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[p * m + i]; },
                [=](std::int64_t p, std::int64_t j) { return b[p * n + j]; }, c, m, k, n);
  }

  void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    // B stored (n×k): the pack-time gather walks down B's row j.
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[i * k + p]; },
                [=](std::int64_t p, std::int64_t j) { return b[j * k + p]; }, c, m, k, n);
  }

  void parallel_rows(std::int64_t count, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) const override {
    parallel_for(0, count, grain, body);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_packed_backend() {
  return std::make_unique<PackedBackend>();
}

}  // namespace fsa::backend
