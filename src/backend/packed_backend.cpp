// packed_backend.cpp — panel-packed GEMM for matrices that spill L2.
//
// The blocked backend re-streams all of B from L2/L3 once per 4-row output
// tile, with each nr-wide stripe touching cache lines n floats apart —
// fine while B fits L2, ruinous past it (R ≫ 1000 heads, 2048³ benches).
// This backend adds the classic BLIS/GotoBLAS three-loop packing on top of
// the same mr×nr micro-kernel:
//
//   for jc over n by nc:                 ── B panel columns
//     for pc over k by kc:               ── shared k panel
//       pack B[pc:pc+kc, jc:jc+nc] → kc×nr micro-panels   (L2-resident, 1 MiB)
//       parallel over ic blocks of mc rows:
//         pack A[ic:ic+mc, pc:pc+kc] → mr×kc micro-panels (per-worker, 64 KiB)
//         for jr, ir: micro-kernel on contiguous packed panels
//
// Pack once, reuse across every jr/ir step: the micro-kernel then reads
// both operands as pure sequential streams (B sliver from L1, A panel from
// L2), so the kernel stays compute-bound at any problem size. The three
// variants differ only in the pack-time gather (NN reads A row-major, TN
// reads A down columns, NT reads B down rows); the inner kernel is shared.
//
// Determinism: the pc loop is sequential and each C element belongs to
// exactly one ic block, so every output is accumulated in ascending-k
// order regardless of the worker count — bit-identical results for any
// FSA_NUM_THREADS, and bitwise-or-within-1ulp of the reference oracle
// (tests/backend_property_test.cpp). Edge tiles are zero-padded into the
// packed panels; padded lanes compute into discarded accumulator slots, so
// in-bounds outputs see exactly the same operation sequence.
//
// The micro-kernel, B-pack loop, and three-loop driver live in
// packed_kernels.h, shared with the forward-pass compiler's pack-once
// weight panels (pack_b / gemm_nn_acc_prepacked): here B is packed into
// scratch per call; there it is packed once and reused read-only. Both
// routes run the same code, so their outputs are bitwise identical.
#include <algorithm>
#include <vector>

#include "backend/compute_backend.h"
#include "backend/packed_kernels.h"

namespace fsa::backend {

namespace {

using namespace packdetail;

/// Per-call route: pack each (jc, pc) block of B into a scratch buffer as
/// the driver reaches it. The buffer is sized for the largest block and
/// reused across the whole sweep (blocks are consumed before the next one
/// is packed — the pc loop is sequential).
template <typename LoadA, typename LoadB>
void gemm_packed(LoadA&& load_a, LoadB&& load_b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  std::vector<float> bbuf(static_cast<std::size_t>(kKC * ceil_div(std::min(n, kNC), kNR) * kNR));
  gemm_driver(load_a,
              [&](std::int64_t, std::int64_t, std::int64_t jc, std::int64_t nb, std::int64_t pc,
                  std::int64_t kb, std::int64_t jpanels) {
                pack_b_block(load_b, bbuf.data(), jc, nb, pc, kb, jpanels);
                return static_cast<const float*>(bbuf.data());
              },
              c, m, k, n);
}

class PackedBackend final : public ComputeBackend {
 public:
  [[nodiscard]] std::string name() const override { return "packed"; }

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[i * k + p]; },
                [=](std::int64_t p, std::int64_t j) { return b[p * n + j]; }, c, m, k, n);
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    // A stored (k×m): the pack-time gather walks down A's column i.
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[p * m + i]; },
                [=](std::int64_t p, std::int64_t j) { return b[p * n + j]; }, c, m, k, n);
  }

  void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    // B stored (n×k): the pack-time gather walks down B's row j.
    gemm_packed([=](std::int64_t i, std::int64_t p) { return a[i * k + p]; },
                [=](std::int64_t p, std::int64_t j) { return b[j * k + p]; }, c, m, k, n);
  }

  void parallel_rows(std::int64_t count, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) const override {
    parallel_for(0, count, grain, body);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_packed_backend() {
  return std::make_unique<PackedBackend>();
}

}  // namespace fsa::backend
