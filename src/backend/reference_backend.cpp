// reference_backend.cpp — the deterministic serial seed kernels.
//
// This backend is the parity oracle: every other backend must match it
// bitwise-or-within-1ulp (tests/backend_property_test.cpp). The kernels
// are the seed repo's originals — one row at a time, ascending k, with the
// NN zero-skip fast path for sparse δ rows — and parallel_rows runs its
// whole range serially on the calling thread, so everything routed
// through the seam (GEMM, batched rows, ADMM updates, prox) executes on
// the calling thread under "reference". (Utilities outside the seam —
// faultsim campaigns, the detect sweep — still use parallel_for
// directly.)
#include "backend/compute_backend.h"

namespace fsa::backend {

namespace {

class ReferenceBackend final : public ComputeBackend {
 public:
  [[nodiscard]] std::string name() const override { return "reference"; }

  // The seed's serial i-k-j kernel: accumulates into C in ascending-k
  // order, skipping zero A entries (the attack's sparse δ rows).
  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }

  // Aᵀ·B with A stored (k×m): same ascending-k accumulation, the A entry
  // for output row i read down A's column i.
  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      float* ci = c + i * n;
      for (std::int64_t p = 0; p < k; ++p) {
        const float aip = a[p * m + i];
        if (aip == 0.0f) continue;
        const float* bp = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }

  // A·Bᵀ with B stored (n×k): independent dot products, each accumulated
  // from zero in ascending k and added to C once.
  void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] += acc;
      }
    }
  }

  void parallel_rows(std::int64_t count, std::int64_t /*grain*/,
                     const std::function<void(std::int64_t, std::int64_t)>& body) const override {
    if (count > 0) body(0, count);
  }
};

}  // namespace

std::unique_ptr<ComputeBackend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

}  // namespace fsa::backend
