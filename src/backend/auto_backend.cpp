// auto_backend.cpp — per-call dispatch between the blocked and packed
// backends.
//
// Packing pays off exactly when the B operand no longer fits the L2 the
// panels are budgeted against: below that the pack/unpack traffic is pure
// overhead (blocked wins or ties), above it the re-streaming of B from L3
// dominates (packed wins, ~2.7× at 2048³). The crossover is a property of
// the SHAPE, so the choice can be made deterministically per call: the B
// footprint k·n·4 bytes against Packing::l2_bytes. No timing, no state —
// the same call always dispatches to the same kernels, which keeps the
// sweep engine's bitwise-determinism contract intact (and makes the choice
// reportable).
//
// Attribution: reports want to know which kernels actually ran, not just
// "auto". Choices are recorded in a thread-local bitmask — every sweep
// instance runs its whole solve on one thread (nested parallelism falls
// back to serial), so begin_attribution()/attribution() bracket exactly
// one instance's kernel dispatches even when many instances solve
// concurrently.
#include "backend/compute_backend.h"
#include "backend/tiling.h"

namespace fsa::backend {

std::unique_ptr<ComputeBackend> make_blocked_backend();  // blocked_backend.cpp
std::unique_ptr<ComputeBackend> make_packed_backend();   // packed_backend.cpp

namespace {

thread_local unsigned tl_choices = 0;  // bit 0: blocked dispatched, bit 1: packed

class AutoBackend final : public ComputeBackend {
 public:
  AutoBackend() : blocked_(make_blocked_backend()), packed_(make_packed_backend()) {}

  [[nodiscard]] std::string name() const override { return "auto"; }

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    pick(k, n).gemm_nn_acc(a, b, c, m, k, n);
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    pick(k, n).gemm_tn_acc(a, b, c, m, k, n);
  }

  void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    pick(k, n).gemm_nt_acc(a, b, c, m, k, n);
  }

  void parallel_rows(std::int64_t count, std::int64_t grain,
                     const std::function<void(std::int64_t, std::int64_t)>& body) const override {
    // Both delegates shard rows identically over the shared pool; packing
    // has no meaning here.
    blocked_->parallel_rows(count, grain, body);
  }

  void begin_attribution() const override { tl_choices = 0; }

  [[nodiscard]] std::string attribution() const override {
    switch (tl_choices) {
      case 1: return "auto(blocked)";
      case 2: return "auto(packed)";
      case 3: return "auto(blocked+packed)";
      default: return "auto";  // no GEMM dispatched since begin_attribution()
    }
  }

 private:
  /// The whole heuristic: does the k×n B operand spill the L2 the packed
  /// panels are sized for? All three GEMM variants stream a k·n-element B
  /// (NT stores it transposed but touches the same bytes), so one rule
  /// covers them. Pure function of the shape — deterministic by
  /// construction.
  const ComputeBackend& pick(std::int64_t k, std::int64_t n) const {
    const bool spills_l2 = k * n * static_cast<std::int64_t>(sizeof(float)) > Packing::l2_bytes;
    tl_choices |= spills_l2 ? 2u : 1u;
    return spills_l2 ? *packed_ : *blocked_;
  }

  std::unique_ptr<ComputeBackend> blocked_;
  std::unique_ptr<ComputeBackend> packed_;
};

}  // namespace

std::unique_ptr<ComputeBackend> make_auto_backend() { return std::make_unique<AutoBackend>(); }

}  // namespace fsa::backend
