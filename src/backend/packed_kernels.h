// packed_kernels.h — the packed backend's micro-kernel and three-loop
// driver, factored so the B operand can be packed per call (the
// ComputeBackend route) or exactly once ahead of time (the forward-pass
// compiler's pack-once weight panels) while sharing every line of packing
// and accumulation arithmetic. Bitwise identity between the two routes is
// by construction: the prepacked path stores the same kc×nr micro-panels
// the per-call path builds into its scratch buffer, and both feed the same
// A-pack / sparse-row-skip / micro-kernel sweep.
//
// See packed_backend.cpp for the cache-blocking rationale and the
// determinism argument (sequential pc loop, one owner per C element).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "backend/tiling.h"
#include "tensor/parallel.h"

namespace fsa::backend {

namespace packdetail {

constexpr std::int64_t kMR = Blocking::mr;
constexpr std::int64_t kNR = Blocking::nr;
constexpr std::int64_t kKC = Packing::kc;
constexpr std::int64_t kMC = Packing::mc;
constexpr std::int64_t kNC = Packing::nc;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// mr×nr register block over packed panels: ap is mr×kb (k-major, lane r at
/// ap[p·mr + r]), bp is kb×nr (row p contiguous). Identical accumulation
/// structure to the blocked backend's block_rows_4, but both operand
/// streams are now contiguous. mv×nv is the in-bounds part of the tile;
/// full tiles load/store C directly, edge tiles go through zeroed slots
/// that are simply not written back.
inline void micro_kernel(const float* ap, const float* bp, float* c, std::int64_t ldc,
                         std::int64_t kb, std::int64_t mv, std::int64_t nv) {
  float acc0[kNR], acc1[kNR], acc2[kNR], acc3[kNR];
  const bool full = mv == kMR && nv == kNR;
  if (full) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      acc0[j] = c[0 * ldc + j];
      acc1[j] = c[1 * ldc + j];
      acc2[j] = c[2 * ldc + j];
      acc3[j] = c[3 * ldc + j];
    }
  } else {
    for (std::int64_t j = 0; j < kNR; ++j) acc0[j] = acc1[j] = acc2[j] = acc3[j] = 0.0f;
    for (std::int64_t r = 0; r < mv; ++r) {
      float* acc = r == 0 ? acc0 : r == 1 ? acc1 : r == 2 ? acc2 : acc3;
      for (std::int64_t j = 0; j < nv; ++j) acc[j] = c[r * ldc + j];
    }
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* a = ap + p * kMR;
    const float x0 = a[0], x1 = a[1], x2 = a[2], x3 = a[3];
    if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f) continue;
    const float* b = bp + p * kNR;
    for (std::int64_t j = 0; j < kNR; ++j) {
      const float bj = b[j];
      acc0[j] += x0 * bj;
      acc1[j] += x1 * bj;
      acc2[j] += x2 * bj;
      acc3[j] += x3 * bj;
    }
  }
  if (full) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      c[0 * ldc + j] = acc0[j];
      c[1 * ldc + j] = acc1[j];
      c[2 * ldc + j] = acc2[j];
      c[3 * ldc + j] = acc3[j];
    }
  } else {
    for (std::int64_t r = 0; r < mv; ++r) {
      const float* acc = r == 0 ? acc0 : r == 1 ? acc1 : r == 2 ? acc2 : acc3;
      for (std::int64_t j = 0; j < nv; ++j) c[r * ldc + j] = acc[j];
    }
  }
}

/// Pack B[pc:pc+kb, jc:jc+nb] into kb×nr micro-panels at `bbase`
/// (zero-padded past nb). Panels are disjoint, so the shard is exact.
/// Both the per-call scratch pack and the ahead-of-time PackedB pack run
/// this exact loop, which is what makes their panel bytes identical.
template <typename LoadB>
void pack_b_block(LoadB&& load_b, float* bbase, std::int64_t jc, std::int64_t nb, std::int64_t pc,
                  std::int64_t kb, std::int64_t jpanels) {
  parallel_for(0, jpanels, 4, [&](std::int64_t g0, std::int64_t g1) {
    for (std::int64_t jp = g0; jp < g1; ++jp) {
      float* dst = bbase + jp * kb * kNR;
      const std::int64_t j0 = jc + jp * kNR;
      const std::int64_t nv = std::min(kNR, jc + nb - j0);
      for (std::int64_t p = 0; p < kb; ++p) {
        float* row = dst + p * kNR;
        for (std::int64_t j = 0; j < nv; ++j) row[j] = load_b(pc + p, j0 + j);
        for (std::int64_t j = nv; j < kNR; ++j) row[j] = 0.0f;
      }
    }
  });
}

/// The shared three-loop driver. load_a(i, p) gathers from A's storage
/// layout at pack time; acquire_b(jc_idx, pc_idx, jc, nb, pc, kb, jpanels)
/// returns the base of that (jc, pc) block's packed micro-panels —
/// whether it packs into scratch on the spot or points into an immutable
/// PackedB is invisible to everything downstream.
template <typename LoadA, typename AcquireB>
void gemm_driver(LoadA&& load_a, AcquireB&& acquire_b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  std::int64_t jc_idx = 0;
  for (std::int64_t jc = 0; jc < n; jc += kNC, ++jc_idx) {
    const std::int64_t nb = std::min(kNC, n - jc);
    const std::int64_t jpanels = ceil_div(nb, kNR);
    std::int64_t pc_idx = 0;
    for (std::int64_t pc = 0; pc < k; pc += kKC, ++pc_idx) {
      const std::int64_t kb = std::min(kKC, k - pc);
      const float* bbase = acquire_b(jc_idx, pc_idx, jc, nb, pc, kb, jpanels);
      // One worker per mc-row block: pack its A panel once (counting
      // nonzeros on the way), then sweep the whole packed B panel
      // (pack-once, reuse-across-jr).
      parallel_for(0, ceil_div(m, kMC), 1, [&](std::int64_t b0, std::int64_t b1) {
        thread_local std::vector<float> abuf;
        abuf.resize(static_cast<std::size_t>(kMC * kKC));
        for (std::int64_t blk = b0; blk < b1; ++blk) {
          const std::int64_t ic = blk * kMC;
          const std::int64_t mb = std::min(kMC, m - ic);
          const std::int64_t ipanels = ceil_div(mb, kMR);
          std::int64_t nnz = 0;
          for (std::int64_t ip = 0; ip < ipanels; ++ip) {
            float* dst = abuf.data() + ip * kb * kMR;
            const std::int64_t i0 = ic + ip * kMR;
            const std::int64_t mv = std::min(kMR, ic + mb - i0);
            for (std::int64_t p = 0; p < kb; ++p) {
              float* lane = dst + p * kMR;
              for (std::int64_t r = 0; r < mv; ++r) {
                lane[r] = load_a(i0 + r, pc + p);
                nnz += lane[r] != 0.0f;
              }
              for (std::int64_t r = mv; r < kMR; ++r) lane[r] = 0.0f;
            }
          }
          // Mostly-zero A panel (a δ-sized operand): skip the dense jr
          // sweep and stream only the nonzero entries through the packed B
          // panels, row by row. Each C element still accumulates in
          // ascending-k order, so the result matches the dense path; the
          // decision depends only on the data, never on the worker count.
          if (nnz * 8 < mb * kb) {
            for (std::int64_t r = 0; r < mb; ++r) {
              const float* arow = abuf.data() + (r / kMR) * kb * kMR + (r % kMR);
              float* crow = c + (ic + r) * n;
              for (std::int64_t p = 0; p < kb; ++p) {
                const float av = arow[p * kMR];
                if (av == 0.0f) continue;
                for (std::int64_t jp = 0; jp < jpanels; ++jp) {
                  const float* brow = bbase + jp * kb * kNR + p * kNR;
                  const std::int64_t j0 = jc + jp * kNR;
                  const std::int64_t nv = std::min(kNR, jc + nb - j0);
                  float* cj = crow + j0;
                  for (std::int64_t j = 0; j < nv; ++j) cj[j] += av * brow[j];
                }
              }
            }
            continue;
          }
          for (std::int64_t jp = 0; jp < jpanels; ++jp) {
            const float* bp = bbase + jp * kb * kNR;
            const std::int64_t j0 = jc + jp * kNR;
            const std::int64_t nv = std::min(kNR, jc + nb - j0);
            for (std::int64_t ip = 0; ip < ipanels; ++ip) {
              const std::int64_t i0 = ic + ip * kMR;
              const std::int64_t mv = std::min(kMR, ic + mb - i0);
              micro_kernel(abuf.data() + ip * kb * kMR, bp, c + i0 * n + j0, n, kb, mv, nv);
            }
          }
        }
      });
    }
  }
}

}  // namespace packdetail

/// An immutable, ahead-of-time packed B operand: the full (jc, pc) grid of
/// kc×nr micro-panel blocks the packed backend would otherwise rebuild in
/// scratch on every gemm call. Built once per weight matrix at model
/// compile time and shared read-only (shared_ptr) across every sweep
/// instance; never mutated after pack_b returns.
struct PackedB {
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::int64_t pc_blocks = 0;          // blocks along k (ceil(k / kc))
  std::vector<float> data;             // all blocks, (jc outer, pc inner) order
  std::vector<std::size_t> offsets;    // block base: offsets[jc_idx · pc_blocks + pc_idx]

  [[nodiscard]] bool empty() const { return data.empty(); }
  [[nodiscard]] std::size_t bytes() const { return data.size() * sizeof(float); }
  [[nodiscard]] const float* block(std::int64_t jc_idx, std::int64_t pc_idx) const {
    return data.data() + offsets[static_cast<std::size_t>(jc_idx * pc_blocks + pc_idx)];
  }
};

/// Pack a row-major B (k×n) into the packed backend's exact micro-panel
/// layout, for reuse across any number of gemm_nn_acc_prepacked calls.
PackedB pack_b(const float* b, std::int64_t k, std::int64_t n);

/// C (m×n) += A (m×k, row-major) · B, with B supplied pre-packed. Runs the
/// same driver, A-pack, sparse route, and micro-kernel as the packed
/// backend's gemm_nn_acc — results are bitwise identical to packing B per
/// call, for any thread count.
void gemm_nn_acc_prepacked(const float* a, const PackedB& pb, float* c, std::int64_t m);

}  // namespace fsa::backend
