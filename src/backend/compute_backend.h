// compute_backend.h — the runtime-selected compute backend seam.
//
// Every hot layer in the attack (ops matmuls, Conv2D/Dense, the ADMM
// updates, the batched-rows elementwise kernels) bottoms out either in one
// of three GEMM variants — NN (forward), TN (weight gradients), NT (input
// gradients) — or in an embarrassingly-parallel sweep over independent
// rows/elements. ComputeBackend is the interface both funnel through, and
// the active implementation is chosen at runtime by name:
//
//   reference  the deterministic serial seed kernels — the parity oracle
//              every other backend is tested against
//   blocked    register-tiled (mr×nr) kernels sharded over the thread pool
//   packed     blocked + BLIS-style A/B panel packing (kc×mc / kc×nc), for
//              matrices that spill L2
//   auto       per-call dispatch between blocked and packed from a
//              deterministic heuristic (B panel footprint k·n·4 bytes vs
//              the L2 budget in tiling.h) — records which kernels actually
//              ran via the attribution hooks below
//
// Selection flows through exactly one seam: active() returns the current
// backend, initialized from the FSA_BACKEND environment variable (default
// "blocked") and settable with set_backend(). Registration is explicit and
// lazy like the attacker registry — no static initializers for a static
// library to dead-strip — so a BLAS or GPU backend later is one
// register_backend() call, with no further cross-cutting change.
//
// Determinism contract (all built-ins): results are bit-identical for any
// thread count. GEMM partitions depend only on the shapes and every output
// element is accumulated in ascending-k order by exactly one thread at a
// time; parallel_rows bodies must compute each index independently of
// chunk boundaries (true for every caller in this library).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fsa::backend {

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  /// Registry key of this backend ("reference", "blocked", "packed", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// C(m×n) += A(m×k) · B(k×n), row-major contiguous.
  virtual void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m,
                           std::int64_t k, std::int64_t n) const = 0;

  /// C(m×n) += Aᵀ · B where A is stored (k×m) — no materialized transpose.
  virtual void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m,
                           std::int64_t k, std::int64_t n) const = 0;

  /// C(m×n) += A · Bᵀ where B is stored (n×k) — no materialized transpose.
  virtual void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m,
                           std::int64_t k, std::int64_t n) const = 0;

  /// Run body(b, e) over disjoint subranges of [0, count): the batched-rows
  /// / elementwise hook behind softmax_rows, the CE gradient, the ADMM δ/s
  /// updates, Conv2D's fold/unfold and Dense's bias-gradient columns.
  /// `grain` is the minimum indices per chunk. The reference backend runs
  /// the whole range serially on the calling thread; pooled backends shard
  /// it over the shared thread pool.
  virtual void parallel_rows(std::int64_t count, std::int64_t grain,
                             const std::function<void(std::int64_t, std::int64_t)>& body) const = 0;

  /// Attribution hooks, for reports that name the backend that produced a
  /// row. Plain backends ARE their attribution, so the defaults do nothing
  /// and return name(). A dispatching backend ("auto") overrides both:
  /// begin_attribution() clears the calling thread's choice record and
  /// attribution() summarizes the kernels dispatched since, e.g.
  /// "auto(blocked+packed)". The record is thread-local — each sweep
  /// instance runs (and nests its kernels) on one thread, so per-row
  /// attribution stays exact under a parallel sweep.
  virtual void begin_attribution() const {}
  [[nodiscard]] virtual std::string attribution() const { return name(); }
};

using BackendFactory = std::function<std::unique_ptr<ComputeBackend>()>;

/// Register (or replace) a backend under `name`. The instance is created
/// lazily on first selection and cached for the process lifetime.
void register_backend(const std::string& name, BackendFactory factory);

/// True if `name` is registered.
bool has_backend(const std::string& name);

/// All registered backend names, sorted.
std::vector<std::string> backend_names();

/// The active backend. First call initializes from FSA_BACKEND (default
/// "blocked"); an unknown value throws std::invalid_argument listing the
/// registered names. Reading is lock-free, so hot kernels may call this
/// per operation.
const ComputeBackend& active();

/// Select the active backend by name. Throws std::invalid_argument listing
/// the registered names when `name` is unknown. Not meant to be raced
/// against in-flight kernels — select once, then compute.
void set_backend(const std::string& name);

/// active().name(), for reports and logs.
std::string active_name();

}  // namespace fsa::backend
