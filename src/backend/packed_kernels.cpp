// packed_kernels.cpp — ahead-of-time B packing for the packed backend.
//
// pack_b materializes the full (jc, pc) grid of micro-panel blocks using
// the SAME pack_b_block loop the per-call route runs into scratch, and
// gemm_nn_acc_prepacked replays the shared driver with those blocks
// supplied read-only — so a weight matrix packed once at model compile
// time produces bit-for-bit the outputs of the pack-every-call backend.
#include "backend/packed_kernels.h"

#include <stdexcept>

namespace fsa::backend {

using namespace packdetail;

PackedB pack_b(const float* b, std::int64_t k, std::int64_t n) {
  if (k <= 0 || n <= 0) throw std::invalid_argument("pack_b: operand dimensions must be positive");
  PackedB pb;
  pb.k = k;
  pb.n = n;
  pb.pc_blocks = ceil_div(k, kKC);
  const std::int64_t jc_blocks = ceil_div(n, kNC);
  pb.offsets.reserve(static_cast<std::size_t>(jc_blocks * pb.pc_blocks));
  std::size_t total = 0;
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nb = std::min(kNC, n - jc);
    const std::int64_t jpanels = ceil_div(nb, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kb = std::min(kKC, k - pc);
      pb.offsets.push_back(total);
      total += static_cast<std::size_t>(jpanels * kb * kNR);
    }
  }
  pb.data.resize(total);
  std::size_t idx = 0;
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nb = std::min(kNC, n - jc);
    const std::int64_t jpanels = ceil_div(nb, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kb = std::min(kKC, k - pc);
      pack_b_block([=](std::int64_t p, std::int64_t j) { return b[p * n + j]; },
                   pb.data.data() + pb.offsets[idx++], jc, nb, pc, kb, jpanels);
    }
  }
  return pb;
}

void gemm_nn_acc_prepacked(const float* a, const PackedB& pb, float* c, std::int64_t m) {
  const std::int64_t k = pb.k, n = pb.n;
  gemm_driver([=](std::int64_t i, std::int64_t p) { return a[i * k + p]; },
              [&](std::int64_t jc_idx, std::int64_t pc_idx, std::int64_t, std::int64_t,
                  std::int64_t, std::int64_t, std::int64_t) { return pb.block(jc_idx, pc_idx); },
              c, m, k, n);
}

}  // namespace fsa::backend
