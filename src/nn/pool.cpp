#include "nn/pool.h"

#include <limits>
#include <stdexcept>

#include "tensor/ops.h"

namespace fsa::nn {

Shape MaxPool2D::output_shape(const Shape& input) const {
  if (input.rank() != 4) throw std::invalid_argument(name_ + ": expected NCHW, got " + input.str());
  const std::int64_t oh = (input.dim(2) - win_) / stride_ + 1;
  const std::int64_t ow = (input.dim(3) - win_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument(name_ + ": input too small for window");
  return Shape({input.dim(0), input.dim(1), oh, ow});
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*train*/) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  Tensor out(out_shape);
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  const float* src = input.data();
  float* dst = out.data();
  std::size_t oi = 0;
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = src + (img * c + ch) * h * w;
      const std::int64_t plane_off = (img * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < win_; ++ky)
            for (std::int64_t kx = 0; kx < win_; ++kx) {
              const std::int64_t iy = oy * stride_ + ky, ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          dst[oi] = best;
          argmax_[oi] = best_idx;
        }
    }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (static_cast<std::size_t>(grad_output.numel()) != argmax_.size())
    throw std::invalid_argument(name_ + ": backward before forward, or shape mismatch");
  Tensor gin(cached_input_shape_);
  float* dst = gin.data();
  const float* src = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    dst[static_cast<std::size_t>(argmax_[i])] += src[i];
  return gin;
}

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  mask_ = ops::relu_mask(input);
  return ops::relu(input);
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (grad_output.shape() != mask_.shape())
    throw std::invalid_argument(name_ + ": backward shape mismatch");
  return ops::mul(grad_output, mask_);
}

}  // namespace fsa::nn
