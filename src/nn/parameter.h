// parameter.h — a trainable tensor with its gradient buffer.
//
// Parameters are owned by layers; optimizers and the attack engine access
// them through non-owning pointers returned by Layer::params(). The attack
// additionally distinguishes weight-like from bias-like parameters (the
// paper's Table 2 compares attacking each kind), so every Parameter carries
// a Kind tag.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace fsa::nn {

class Parameter {
 public:
  enum class Kind { kWeight, kBias };

  Parameter(std::string name, Tensor value, Kind kind)
      : name_(std::move(name)), value_(std::move(value)), grad_(value_.shape()), kind_(kind) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kind kind() const { return kind_; }

  Tensor& value() { return value_; }
  [[nodiscard]] const Tensor& value() const { return value_; }
  Tensor& grad() { return grad_; }
  [[nodiscard]] const Tensor& grad() const { return grad_; }

  void zero_grad() { grad_.fill(0.0f); }
  [[nodiscard]] std::int64_t numel() const { return value_.numel(); }

  /// Monotonic mutation counter, bumped by the bulk write paths
  /// (ParamMask::scatter_values, Sequential::load_params). The compiled
  /// forward path compares it against the version its packed weight panels
  /// were built from and repacks copy-on-write when they diverge; anything
  /// that mutates value() outside those paths must call bump_version()
  /// itself before a compiled forward may observe the change.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  void bump_version() { ++version_; }

 private:
  std::string name_;
  Tensor value_;
  Tensor grad_;
  Kind kind_;
  std::uint64_t version_ = 0;
};

}  // namespace fsa::nn
