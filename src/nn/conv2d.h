// conv2d.h — 2-D convolution over NCHW batches via im2col + GEMM.
//
// The C&W network's four convolutional layers are never themselves
// attacked (the paper modifies FC parameters only) but they must be
// trained and evaluated faithfully: the attack's feasible region is shaped
// by the feature representation the conv stack produces. im2col turns each
// convolution into one large GEMM, which is the only way CPU training of
// the 32/32/64/64-channel stack finishes in minutes on a single core.
#pragma once

#include "nn/init.h"
#include "nn/layer.h"

namespace fsa::nn {

class Conv2D final : public Layer {
 public:
  /// Valid (no padding) convolution by default, matching the C&W net.
  Conv2D(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, Rng& rng, std::int64_t stride = 1, std::int64_t padding = 0);

  /// Copies parameters and geometry but NOT the im2col/GEMM workspaces or
  /// forward caches — a clone is forward-fresh, so cloning a trained layer
  /// costs O(params) instead of O(params + batch workspaces). backward()
  /// on a clone therefore requires a preceding forward() on that clone.
  Conv2D(const Conv2D& other)
      : name_(other.name_),
        in_c_(other.in_c_),
        out_c_(other.out_c_),
        k_(other.k_),
        stride_(other.stride_),
        pad_(other.pad_),
        weight_(other.weight_),
        bias_(other.bias_) {}
  Conv2D& operator=(const Conv2D&) = delete;

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Parameter*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2D>(*this);
  }

  [[nodiscard]] std::int64_t in_channels() const { return in_c_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_c_; }
  [[nodiscard]] std::int64_t kernel() const { return k_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t padding() const { return pad_; }
  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }

  /// Unfold input [N,C,H,W] into `cols` [N·OH·OW, C·k·k]. `cols` is a
  /// reusable workspace: it is only reallocated when the shape changes, so
  /// steady-state forward passes do no im2col allocation. Public so the
  /// forward-pass compiler can drive the same unfold into its own plan
  /// workspace; `out_shape` must be output_shape(input.shape()).
  void im2col_into(const Tensor& input, const Shape& out_shape, Tensor& cols) const;

 private:
  /// Fold a column-matrix gradient back to input layout (adjoint of im2col).
  Tensor col2im(const Tensor& cols, const Shape& input_shape) const;

  std::string name_;
  std::int64_t in_c_, out_c_, k_, stride_, pad_;
  Parameter weight_;  // [C·k·k, out_c] — GEMM-ready layout
  Parameter bias_;    // [out_c]
  Tensor cached_cols_;  // im2col workspace, also read by backward
  Tensor flat_ws_;      // [N·OH·OW, out_c] GEMM output workspace
  Shape cached_input_shape_;
  Shape cached_out_shape_;  // geometry plan for cached_input_shape_, derived once
};

}  // namespace fsa::nn
