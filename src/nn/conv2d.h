// conv2d.h — 2-D convolution over NCHW batches via im2col + GEMM.
//
// The C&W network's four convolutional layers are never themselves
// attacked (the paper modifies FC parameters only) but they must be
// trained and evaluated faithfully: the attack's feasible region is shaped
// by the feature representation the conv stack produces. im2col turns each
// convolution into one large GEMM, which is the only way CPU training of
// the 32/32/64/64-channel stack finishes in minutes on a single core.
#pragma once

#include "nn/init.h"
#include "nn/layer.h"

namespace fsa::nn {

class Conv2D final : public Layer {
 public:
  /// Valid (no padding) convolution by default, matching the C&W net.
  Conv2D(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, Rng& rng, std::int64_t stride = 1, std::int64_t padding = 0);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Parameter*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2D>(*this);
  }

  [[nodiscard]] std::int64_t in_channels() const { return in_c_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_c_; }
  [[nodiscard]] std::int64_t kernel() const { return k_; }

 private:
  /// Unfold input [N,C,H,W] into `cols` [N·OH·OW, C·k·k]. `cols` is a
  /// reusable workspace: it is only reallocated when the shape changes, so
  /// steady-state forward passes do no im2col allocation.
  void im2col_into(const Tensor& input, Tensor& cols) const;
  /// Fold a column-matrix gradient back to input layout (adjoint of im2col).
  Tensor col2im(const Tensor& cols, const Shape& input_shape) const;

  std::string name_;
  std::int64_t in_c_, out_c_, k_, stride_, pad_;
  Parameter weight_;  // [C·k·k, out_c] — GEMM-ready layout
  Parameter bias_;    // [out_c]
  Tensor cached_cols_;  // im2col workspace, also read by backward
  Tensor flat_ws_;      // [N·OH·OW, out_c] GEMM output workspace
  Shape cached_input_shape_;
};

}  // namespace fsa::nn
