#include "nn/sequential.h"

#include <stdexcept>

#include "tensor/serialize.h"

namespace fsa::nn {

std::size_t Sequential::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    if (layers_[i]->name() == name) return i;
  throw std::out_of_range("Sequential: no layer named '" + name + "'");
}

Tensor Sequential::forward_from(std::size_t from, const Tensor& input, bool train) {
  if (from > layers_.size()) throw std::out_of_range("Sequential::forward_from");
  Tensor x = input;
  for (std::size_t i = from; i < layers_.size(); ++i) x = layers_[i]->forward(x, train);
  return x;
}

Tensor Sequential::backward_to(std::size_t to, const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (std::size_t i = layers_.size(); i-- > to;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::params() { return params_from(0); }

std::vector<Parameter*> Sequential::params_from(std::size_t from) {
  std::vector<Parameter*> out;
  for (std::size_t i = from; i < layers_.size(); ++i)
    for (auto* p : layers_[i]->params()) out.push_back(p);
  return out;
}

std::int64_t Sequential::param_count() {
  std::int64_t n = 0;
  for (auto* p : params()) n += p->numel();
  return n;
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

void Sequential::save_params(const std::string& path) {
  std::vector<Tensor> values;
  for (auto* p : params()) values.push_back(p->value());
  io::save_tensors(path, values);
}

void Sequential::load_params(const std::string& path) {
  const std::vector<Tensor> values = io::load_tensors(path);
  auto ps = params();
  if (values.size() != ps.size())
    throw std::runtime_error("Sequential::load_params: expected " + std::to_string(ps.size()) +
                             " tensors, file has " + std::to_string(values.size()));
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (values[i].shape() != ps[i]->value().shape())
      throw std::runtime_error("Sequential::load_params: shape mismatch for " + ps[i]->name());
    ps[i]->value() = values[i];
    ps[i]->bump_version();
  }
}

}  // namespace fsa::nn
