// pool.h — 2×2 (configurable) max pooling over NCHW batches.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace fsa::nn {

class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::string name, std::int64_t window = 2, std::int64_t stride = -1)
      : name_(std::move(name)), win_(window), stride_(stride < 0 ? window : stride) {
    if (win_ <= 0 || stride_ <= 0) throw std::invalid_argument(name_ + ": bad pool geometry");
  }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2D>(*this);
  }

 private:
  std::string name_;
  std::int64_t win_, stride_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index of each pooled max
};

/// Flatten [N, ...] → [N, prod(...)]; no parameters.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, bool train) override {
    (void)train;
    cached_shape_ = input.shape();
    return input.reshape(output_shape(input.shape()));
  }

  Tensor backward(const Tensor& grad_output) override { return grad_output.reshape(cached_shape_); }

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    if (input.rank() < 1) throw std::invalid_argument(name_ + ": rank-0 input");
    return Shape({input.dim(0), input.numel() / std::max<std::int64_t>(input.dim(0), 1)});
  }

  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  std::string name_;
  Shape cached_shape_;
};

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override { return input; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

 private:
  std::string name_;
  Tensor mask_;
};

}  // namespace fsa::nn
