// dense.h — fully connected layer, y = x·W + b.
//
// The three FC layers at the end of the C&W network are the attack surface
// in every experiment of the paper (its Table 1 shows the last FC layer is
// the cheapest to attack), so this layer is the most important one for the
// reproduction: the attack engine reads and perturbs its W and b directly.
#pragma once

#include "nn/init.h"
#include "nn/layer.h"

namespace fsa::nn {

class Dense final : public Layer {
 public:
  /// W is stored [in, out] so forward is a plain GEMM on row-major batches.
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features, Rng& rng)
      : name_(std::move(name)),
        in_(in_features),
        out_(out_features),
        weight_(name_ + ".weight", kaiming_normal(Shape({in_features, out_features}), in_features, rng),
                Parameter::Kind::kWeight),
        bias_(name_ + ".bias", Tensor::zeros(Shape({out_features})), Parameter::Kind::kBias) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Parameter*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }

  [[nodiscard]] std::int64_t in_features() const { return in_; }
  [[nodiscard]] std::int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  std::int64_t in_, out_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  // [N, in], kept for the backward pass
};

}  // namespace fsa::nn
