// init.h — weight initialization schemes.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fsa::nn {

/// Kaiming/He normal initialization for ReLU networks:
/// N(0, sqrt(2 / fan_in)). `fan_in` is the number of inputs feeding one unit.
Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform initialization: U(±sqrt(6/(fan_in+fan_out))).
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

}  // namespace fsa::nn
