#include "nn/dense.h"

#include <stdexcept>

#include "backend/compute_backend.h"
#include "tensor/ops.h"

namespace fsa::nn {

Shape Dense::output_shape(const Shape& input) const {
  if (input.rank() != 2 || input.dim(1) != in_)
    throw std::invalid_argument(name_ + ": expected [N, " + std::to_string(in_) + "], got " +
                                input.str());
  return Shape({input.dim(0), out_});
}

Tensor Dense::forward(const Tensor& input, bool /*train*/) {
  (void)output_shape(input.shape());  // validates
  cached_input_ = input;
  Tensor out = ops::matmul(input, weight_.value());
  ops::add_row_bias(out, bias_.value());
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.dim(0) != cached_input_.dim(0) || grad_output.dim(1) != out_)
    throw std::invalid_argument(name_ + ": backward shape mismatch " + grad_output.shape().str());
  // dW[in, out] += xᵀ · dy ; db[out] += column sums of dy ; dx = dy · Wᵀ.
  weight_.grad() += ops::matmul_tn(cached_input_, grad_output);
  const std::int64_t n = grad_output.dim(0);
  // Each bias column sums only its own slice of dy, so the column split is
  // exact for any thread count; rows stay outermost so dy streams.
  float* bg = bias_.grad().data();
  const float* dy = grad_output.data();
  backend::active().parallel_rows(
      out_, std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(n, 1)),
      [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t r = 0; r < n; ++r) {
      const float* row = dy + r * out_;
      for (std::int64_t c = c0; c < c1; ++c) bg[c] += row[c];
    }
  });
  return ops::matmul_nt(grad_output, weight_.value());
}

}  // namespace fsa::nn
