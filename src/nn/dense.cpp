#include "nn/dense.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace fsa::nn {

Shape Dense::output_shape(const Shape& input) const {
  if (input.rank() != 2 || input.dim(1) != in_)
    throw std::invalid_argument(name_ + ": expected [N, " + std::to_string(in_) + "], got " +
                                input.str());
  return Shape({input.dim(0), out_});
}

Tensor Dense::forward(const Tensor& input, bool /*train*/) {
  (void)output_shape(input.shape());  // validates
  cached_input_ = input;
  Tensor out = ops::matmul(input, weight_.value());
  ops::add_row_bias(out, bias_.value());
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.dim(0) != cached_input_.dim(0) || grad_output.dim(1) != out_)
    throw std::invalid_argument(name_ + ": backward shape mismatch " + grad_output.shape().str());
  // dW[in, out] += xᵀ · dy ; db[out] += column sums of dy ; dx = dy · Wᵀ.
  weight_.grad() += ops::matmul_tn(cached_input_, grad_output);
  const std::int64_t n = grad_output.dim(0);
  for (std::int64_t r = 0; r < n; ++r) {
    const float* row = grad_output.data() + r * out_;
    float* bg = bias_.grad().data();
    for (std::int64_t c = 0; c < out_; ++c) bg[c] += row[c];
  }
  return ops::matmul_nt(grad_output, weight_.value());
}

}  // namespace fsa::nn
