#include "nn/conv2d.h"

#include <stdexcept>

#include "backend/compute_backend.h"
#include "tensor/ops.h"

namespace fsa::nn {

Conv2D::Conv2D(std::string name, std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, Rng& rng, std::int64_t stride, std::int64_t padding)
    : name_(std::move(name)),
      in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      weight_(name_ + ".weight",
              kaiming_normal(Shape({in_channels * kernel * kernel, out_channels}),
                             in_channels * kernel * kernel, rng),
              Parameter::Kind::kWeight),
      bias_(name_ + ".bias", Tensor::zeros(Shape({out_channels})), Parameter::Kind::kBias) {
  if (kernel <= 0 || stride <= 0 || padding < 0)
    throw std::invalid_argument(name_ + ": bad conv geometry");
}

Shape Conv2D::output_shape(const Shape& input) const {
  if (input.rank() != 4 || input.dim(1) != in_c_)
    throw std::invalid_argument(name_ + ": expected [N, " + std::to_string(in_c_) +
                                ", H, W], got " + input.str());
  const std::int64_t oh = (input.dim(2) + 2 * pad_ - k_) / stride_ + 1;
  const std::int64_t ow = (input.dim(3) + 2 * pad_ - k_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument(name_ + ": input too small for kernel");
  return Shape({input.dim(0), out_c_, oh, ow});
}

void Conv2D::im2col_into(const Tensor& input, const Shape& out_shape, Tensor& cols) const {
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  const std::int64_t patch = in_c_ * k_ * k_;
  const Shape cols_shape({n * oh * ow, patch});
  if (cols.shape() != cols_shape) cols = Tensor(cols_shape);
  float* dst = cols.data();
  const float* src = input.data();
  // Every output row (img, oy) pair is written by exactly one index, and
  // every element of `cols` is assigned (padding included), so the reused
  // workspace never leaks stale values.
  backend::active().parallel_rows(n * oh, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t io = b; io < e; ++io) {
      const std::int64_t img = io / oh, oy = io % oh;
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float* row = dst + ((img * oh + oy) * ow + ox) * patch;
        const std::int64_t iy0 = oy * stride_ - pad_;
        const std::int64_t ix0 = ox * stride_ - pad_;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < in_c_; ++c) {
          const float* plane = src + (img * in_c_ + c) * h * w;
          for (std::int64_t ky = 0; ky < k_; ++ky) {
            const std::int64_t iy = iy0 + ky;
            for (std::int64_t kx = 0; kx < k_; ++kx, ++idx) {
              const std::int64_t ix = ix0 + kx;
              row[idx] = (iy >= 0 && iy < h && ix >= 0 && ix < w) ? plane[iy * w + ix] : 0.0f;
            }
          }
        }
      }
    }
  });
}

Tensor Conv2D::col2im(const Tensor& cols, const Shape& input_shape) const {
  const Shape out_shape = output_shape(input_shape);
  const std::int64_t n = input_shape.dim(0), h = input_shape.dim(2), w = input_shape.dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  const std::int64_t patch = in_c_ * k_ * k_;
  Tensor out(input_shape);
  float* dst = out.data();
  const float* src = cols.data();
  // Overlapping windows within one image scatter-add into the same plane,
  // so the parallel split is per image (disjoint planes).
  backend::active().parallel_rows(n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t img = b; img < e; ++img) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float* row = src + ((img * oh + oy) * ow + ox) * patch;
          const std::int64_t iy0 = oy * stride_ - pad_;
          const std::int64_t ix0 = ox * stride_ - pad_;
          std::int64_t idx = 0;
          for (std::int64_t c = 0; c < in_c_; ++c) {
            float* plane = dst + (img * in_c_ + c) * h * w;
            for (std::int64_t ky = 0; ky < k_; ++ky) {
              const std::int64_t iy = iy0 + ky;
              for (std::int64_t kx = 0; kx < k_; ++kx, ++idx) {
                const std::int64_t ix = ix0 + kx;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w) plane[iy * w + ix] += row[idx];
              }
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor Conv2D::forward(const Tensor& input, bool /*train*/) {
  // Geometry plan: derived (and validated) once per distinct input shape,
  // then reused — consecutive same-geometry calls skip the shape math and
  // keep the im2col/GEMM workspaces allocated below warm.
  if (input.shape() != cached_input_shape_) {
    cached_out_shape_ = output_shape(input.shape());
    cached_input_shape_ = input.shape();
  }
  const Shape& out_shape = cached_out_shape_;
  im2col_into(input, out_shape, cached_cols_);
  // [N·OH·OW, patch] · [patch, out_c] → [N·OH·OW, out_c]
  const Shape flat_shape({cached_cols_.dim(0), out_c_});
  if (flat_ws_.shape() != flat_shape) flat_ws_ = Tensor(flat_shape);
  flat_ws_.fill(0.0f);
  ops::matmul_acc(cached_cols_, weight_.value(), flat_ws_);
  ops::add_row_bias(flat_ws_, bias_.value());
  // Rearrange [N·OH·OW, out_c] → [N, out_c, OH, OW].
  const std::int64_t n = out_shape.dim(0), oh = out_shape.dim(2), ow = out_shape.dim(3);
  Tensor out(out_shape);
  const float* src = flat_ws_.data();
  float* dst = out.data();
  backend::active().parallel_rows(n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t img = b; img < e; ++img)
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float* row = src + ((img * oh + oy) * ow + ox) * out_c_;
          for (std::int64_t c = 0; c < out_c_; ++c)
            dst[((img * out_c_ + c) * oh + oy) * ow + ox] = row[c];
        }
  });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const Shape out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape)
    throw std::invalid_argument(name_ + ": backward shape mismatch " + grad_output.shape().str());
  const std::int64_t n = out_shape.dim(0), oh = out_shape.dim(2), ow = out_shape.dim(3);
  // Rearrange dy to the flat [N·OH·OW, out_c] layout used in forward.
  Tensor flat(Shape({n * oh * ow, out_c_}));
  {
    const float* src = grad_output.data();
    float* dst = flat.data();
    backend::active().parallel_rows(n, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t img = b; img < e; ++img)
        for (std::int64_t c = 0; c < out_c_; ++c)
          for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox)
              dst[((img * oh + oy) * ow + ox) * out_c_ + c] =
                  src[((img * out_c_ + c) * oh + oy) * ow + ox];
    });
  }
  // dW = colsᵀ · dy_flat ; db = column sums ; dcols = dy_flat · Wᵀ.
  weight_.grad() += ops::matmul_tn(cached_cols_, flat);
  {
    float* bg = bias_.grad().data();
    const float* src = flat.data();
    const std::int64_t rows = flat.dim(0);
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < out_c_; ++c) bg[c] += src[r * out_c_ + c];
  }
  const Tensor dcols = ops::matmul_nt(flat, weight_.value());
  return col2im(dcols, cached_input_shape_);
}

}  // namespace fsa::nn
