// sequential.h — ordered layer container.
//
// Beyond the usual forward/backward, Sequential supports running *suffixes*
// of the network: forward_from(k) evaluates layers [k, end). The attack
// engine relies on this — conv activations are computed once and cached,
// and the ADMM loop then only ever evaluates the small FC "head", which is
// what makes R=1000 parameter-space attacks tractable on a single core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fsa::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns its index.
  std::size_t add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return layers_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Index of the layer with the given name; throws if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// Deep copy of the whole stack. The clone shares no storage with this
  /// network, so it can be forwarded/backwarded/perturbed from another
  /// thread while the original keeps serving — the sweep engine gives every
  /// concurrent attack instance its own clone.
  [[nodiscard]] Sequential clone() const {
    Sequential out;
    for (const auto& l : layers_) out.add(l->clone());
    return out;
  }

  /// Full forward pass (logits out — no softmax layer; the paper's g
  /// function works on logits, eq. 3).
  Tensor forward(const Tensor& input, bool train = false) { return forward_from(0, input, train); }

  /// Forward through layers [from, end).
  Tensor forward_from(std::size_t from, const Tensor& input, bool train = false);

  /// Backward through all layers (after a full forward).
  Tensor backward(const Tensor& grad_logits) { return backward_to(0, grad_logits); }

  /// Backward through layers [to, end) in reverse (after forward_from(to)).
  Tensor backward_to(std::size_t to, const Tensor& grad_logits);

  /// All trainable parameters in layer order.
  [[nodiscard]] std::vector<Parameter*> params();

  /// Parameters of layers [from, end) only — the attackable subset when the
  /// network is cut at `from`.
  [[nodiscard]] std::vector<Parameter*> params_from(std::size_t from);

  [[nodiscard]] std::int64_t param_count();

  void zero_grad();

  /// Output shape for a given input shape (validates the whole stack).
  [[nodiscard]] Shape output_shape(const Shape& input) const;

  /// Serialize parameter values (architecture is reconstructed by the
  /// caller; see models::ModelZoo).
  void save_params(const std::string& path);
  void load_params(const std::string& path);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace fsa::nn
