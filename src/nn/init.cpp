#include "nn/init.h"

#include <cmath>
#include <stdexcept>

namespace fsa::nn {

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("kaiming_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, 0.0f, stddev);
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) throw std::invalid_argument("xavier_uniform: bad fans");
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace fsa::nn
