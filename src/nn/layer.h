// layer.h — the layer interface.
//
// A Layer maps a batch tensor to a batch tensor and can push a gradient
// back through itself. forward() caches whatever the backward pass needs;
// backward() must be called after the forward() whose activations it uses
// (standard tape-free reverse mode, sufficient for sequential models).
//
// Parameter gradients ACCUMULATE across backward() calls until zero_grad(),
// which is what both mini-batch training and the attack's per-image
// gradient sums rely on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace fsa::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Batch forward pass. `train` toggles behaviours like dropout (none of
  /// the layers in this library currently differ, but the flag keeps the
  /// interface honest for extensions).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Push `grad_output` (d loss / d output) back; returns d loss / d input
  /// and accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Non-owning pointers to this layer's trainable parameters (possibly empty).
  virtual std::vector<Parameter*> params() { return {}; }

  /// Deep copy of this layer (parameters, gradients, and caches). Tensor
  /// members have value semantics, so a cloned layer shares no storage with
  /// the original — the attack engine clones whole networks to run
  /// independent solves concurrently without racing on parameters.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Short diagnostic name, e.g. "conv1".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Output shape for a given input shape (batch dim preserved). Used to
  /// validate architectures before running data through them.
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  void zero_grad() {
    for (auto* p : params()) p->zero_grad();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fsa::nn
