// sweep.h — declarative attack sweeps, executed in parallel.
//
// Every table/figure in the paper is a grid of independent attack
// instances: method × attack surface × (S, R) × seed. Sweep is the
// declarative description of such a grid (builder-style; build() expands
// the cartesian product into SweepSpecs), and SweepRunner executes the
// instances concurrently on the shared thread pool, giving each instance
// its own network clone so solves never race on parameters.
//
// Determinism contract: results are collected into a pre-sized vector by
// instance index, every instance derives its randomness from its own spec
// seed, and each solve runs the same serial kernel path whether it
// executes on the calling thread (1 worker) or inside the pool (N workers,
// where nested parallel_for falls back to serial). A sweep therefore
// produces bitwise-identical rows — including every float in each δ — for
// any FSA_NUM_THREADS (engine_test proves it).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "defense/defense.h"
#include "engine/attacker.h"
#include "eval/attack_bench.h"
#include "eval/table.h"
#include "faultsim/campaign.h"
#include "faultsim/quantize.h"

namespace fsa::compile {
class CompiledModel;
}

namespace fsa::engine {

/// Configuration of the optional end-to-end campaign stage appended to
/// every sweep row: δ → realize in `format` → BitFlipPlan → sharded
/// CampaignRunner, once per configured injector. Campaign totals are
/// bitwise identical for any `shards` (the planner's K-invariance
/// contract), so the shard count is a throughput knob, not a result knob.
struct CampaignConfig {
  std::vector<std::string> injectors = {"rowhammer"};  ///< registry keys
  int shards = 1;
  std::uint64_t seed = 7;  ///< mixed with each row's spec seed per campaign
  faultsim::StorageFormat format = faultsim::StorageFormat::kFloat32;
  faultsim::MemoryLayout layout;

  [[nodiscard]] eval::Json to_json() const;
  static CampaignConfig from_json(const eval::Json& j);
};

/// One attack instance, declaratively: what to run, on which surface.
struct SweepSpec {
  std::string method = "fsa-l0";            ///< registry key (ignored when `attacker` set)
  std::vector<std::string> layers = {"fc3"};  ///< attacked layers (defines the surface/cut)
  bool weights = true;
  bool biases = true;
  std::int64_t S = 1;
  std::int64_t R = 100;
  std::uint64_t seed = 1;                   ///< spec seed (image/target draws)
  core::TargetPolicy policy = core::TargetPolicy::kRandom;
  std::string tag;                          ///< free-form row label (ablation point etc.)
  std::shared_ptr<const Attacker> attacker; ///< pre-configured method override
  bool measure_accuracy = true;             ///< evaluate full-test-set accuracy with δ
  std::optional<CampaignConfig> campaign;   ///< lower δ to hardware campaigns per row
  std::optional<defense::DefenseConfig> defense;  ///< deploy a guard against this row's δ

  /// Canonical surface identity, e.g. "fc1,fc2[w]" — keys the per-surface
  /// AttackBench (features/cut) shared by all instances on that surface.
  [[nodiscard]] std::string surface_key() const;

  /// The declarative fields as JSON — what a dist shard manifest carries so
  /// a worker process can rebuild and solve this exact instance. Throws
  /// std::invalid_argument when a pre-configured `attacker` override is
  /// set: instances shipped across processes must name a registry method.
  [[nodiscard]] eval::Json to_json() const;
  static SweepSpec from_json(const eval::Json& j);
};

/// Builder for a grid of SweepSpecs (methods × surfaces × (S,R) × seeds).
/// Explicitly add()-ed specs are appended to the cartesian expansion; if
/// ONLY add() was used, build() returns just those.
class Sweep {
 public:
  Sweep& method(std::string m) { return methods({std::move(m)}); }
  Sweep& methods(std::vector<std::string> ms);
  Sweep& layers(std::vector<std::string> ls) { return layer_sets({std::move(ls)}); }
  Sweep& layer_sets(std::vector<std::vector<std::string>> sets);
  Sweep& weights_only();
  Sweep& biases_only();
  Sweep& s_values(std::vector<std::int64_t> ss);
  Sweep& r_values(std::vector<std::int64_t> rs);
  /// Explicit (S, R) pairs, in the exact row order wanted.
  Sweep& sr_pairs(std::vector<std::pair<std::int64_t, std::int64_t>> pairs);
  /// R = S for every S in s_values (Table 1/2 style).
  Sweep& r_equals_s();
  /// R = S + offset for every S in s_values (Figure 3 style).
  Sweep& r_offset(std::int64_t offset);
  Sweep& seeds(std::vector<std::uint64_t> seeds);
  /// Derive each instance's seed from its (S, R) — replaces the seeds list.
  /// This is how benches keep their historical per-cell seed formulas.
  Sweep& seed_fn(std::function<std::uint64_t(std::int64_t S, std::int64_t R)> fn);
  Sweep& policy(core::TargetPolicy p);
  /// Shared pre-configured attacker for every cartesian instance.
  Sweep& attacker(std::shared_ptr<const Attacker> a);
  Sweep& measure_accuracy(bool m);
  /// Append the hardware-campaign stage to every instance. Injector names
  /// are validated eagerly (throws the registry's unknown-name error).
  Sweep& with_campaign(CampaignConfig config);
  /// Deploy a defense against every instance's realized δ. The config is
  /// validated eagerly (throws the defense registry's unknown-name error).
  Sweep& with_defense(defense::DefenseConfig config);
  /// Append one fully-specified instance.
  Sweep& add(SweepSpec spec);

  [[nodiscard]] std::vector<SweepSpec> build() const;

 private:
  std::vector<std::string> methods_ = {"fsa-l0"};
  std::vector<std::vector<std::string>> layer_sets_ = {{"fc3"}};
  bool weights_ = true, biases_ = true;
  std::vector<std::int64_t> s_values_ = {1};
  std::vector<std::int64_t> r_values_ = {100};
  std::vector<std::pair<std::int64_t, std::int64_t>> sr_pairs_;
  enum class RMode { kList, kEqualsS, kOffset, kPairs } r_mode_ = RMode::kList;
  std::int64_t r_offset_ = 0;
  std::vector<std::uint64_t> seeds_ = {1};
  std::function<std::uint64_t(std::int64_t, std::int64_t)> seed_fn_;
  core::TargetPolicy policy_ = core::TargetPolicy::kRandom;
  std::shared_ptr<const Attacker> attacker_;
  bool measure_accuracy_ = true;
  std::optional<CampaignConfig> campaign_;
  std::optional<defense::DefenseConfig> defense_;
  bool cartesian_touched_ = false;
  std::vector<SweepSpec> explicit_;
};

/// One executed instance: the request plus its unified report.
struct SweepRow {
  SweepSpec spec;
  AttackReport report;
};

struct SweepResult {
  std::vector<SweepRow> rows;   ///< in build()/request order, independent of schedule
  std::string model;
  std::string backend;          ///< compute backend active during the run
  double seconds = 0.0;         ///< sweep wall time
  int workers = 1;              ///< thread-pool size during the run
  bool compiled = false;        ///< rows ran through the compiled forward path
  std::int64_t fused_nodes = 0; ///< fused execution nodes in the plan (0 uncompiled)

  /// First row matching (method, S, R) and, when non-empty, tag. Throws if absent.
  [[nodiscard]] const SweepRow& row(const std::string& method, std::int64_t S, std::int64_t R,
                                    const std::string& tag = "") const;
  /// First row with the given tag. Throws if absent.
  [[nodiscard]] const SweepRow& row_tagged(const std::string& tag) const;

  /// Whole sweep as JSON: {model, backend, workers, seconds, rows: [...]}.
  [[nodiscard]] eval::Json to_json() const;
  /// Write to_json(2) to `path` (directories created; ignored on failure,
  /// like Table::write_csv — bench stdout is the primary artifact).
  void write_json(const std::string& path) const;

  /// Generic flat table (method/surface/S/R/seed/l0/l2/hits/kept/acc/time).
  [[nodiscard]] eval::Table table(const std::string& title) const;
};

/// Executes sweeps against one zoo model. Per-surface AttackBenches
/// (feature caches, clean accuracy) are built once and reused across runs;
/// the per-instance solves fan out over the shared thread pool.
class SweepRunner {
 public:
  SweepRunner(models::ZooModel& model, std::string cache_dir, bool verbose = true);
  ~SweepRunner();

  /// The shared AttackBench for a surface (created on first use). Benches
  /// that post-process results (defense/faultsim/detect) use this to avoid
  /// re-deriving features the runner already cached.
  eval::AttackBench& bench(const std::vector<std::string>& layers, bool weights = true,
                           bool biases = true);

  /// When compile::enabled(), build (once) and return the model's
  /// CompiledPlan; nullptr when the compiled path is off. run() calls this
  /// lazily; the serve daemon calls it at zoo warm-up so compilation
  /// happens before the socket opens.
  const compile::CompiledModel* warm_compile();
  /// Fused-node count of the plan (0 when not compiled) — the compile
  /// attribution figure /stats reports per model.
  [[nodiscard]] std::size_t fused_nodes() const;

  SweepResult run(const Sweep& sweep) { return run(sweep.build()); }
  SweepResult run(const std::vector<SweepSpec>& specs);

 private:
  models::ZooModel* model_;
  std::string cache_dir_;
  bool verbose_;
  std::map<std::string, std::unique_ptr<eval::AttackBench>> benches_;
  std::unique_ptr<compile::CompiledModel> compiled_;  ///< built on first compiled run
};

}  // namespace fsa::engine
