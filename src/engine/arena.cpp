#include "engine/arena.h"

#include <map>
#include <stdexcept>

#include "engine/registry.h"

namespace fsa::engine {

std::vector<SweepSpec> arena_specs(const ArenaConfig& config) {
  if (config.methods.empty()) throw std::invalid_argument("arena: empty method list");
  if (config.defenses.empty())
    throw std::invalid_argument("arena: needs at least one deployed defense");
  if (config.layer_sets.empty()) throw std::invalid_argument("arena: empty layer-set list");
  if (config.sr_pairs.empty()) throw std::invalid_argument("arena: empty (S,R) pair list");
  if (config.seeds.empty()) throw std::invalid_argument("arena: empty seed list");
  for (const std::string& m : config.methods)
    (void)make_attacker(m);  // throws listing known methods
  for (const defense::DefenseConfig& d : config.defenses) (void)defense::make_defense(d);

  std::vector<SweepSpec> out;
  for (const std::string& method : config.methods)
    for (const defense::DefenseConfig& d : config.defenses)
      for (const std::vector<std::string>& layers : config.layer_sets)
        for (const auto& [s, r] : config.sr_pairs)
          for (const std::uint64_t seed : config.seeds) {
            SweepSpec spec;
            spec.method = method;
            spec.layers = layers;
            spec.weights = config.weights;
            spec.biases = config.biases;
            spec.S = s;
            spec.R = r;
            spec.seed = seed;
            spec.policy = config.policy;
            spec.tag = d.key();
            spec.measure_accuracy = config.measure_accuracy;
            spec.campaign = config.campaign;
            spec.defense = d;
            out.push_back(std::move(spec));
          }
  return out;
}

eval::Json arena_frontier(const eval::Json& rows) {
  struct Agg {
    std::int64_t rows = 0, detected = 0, evaded = 0;
    std::int64_t overhead_bytes = 0, verify_cost = 0;
    double sum_l0 = 0.0, sum_l2 = 0.0;
  };
  // std::map iterates sorted by (method, defense), which fixes the
  // frontier's entry order; per-group sums accumulate in row order, which
  // the canonical row sort fixes — so the aggregation is byte-stable.
  std::map<std::pair<std::string, std::string>, Agg> groups;
  for (const eval::Json& row : rows.items()) {
    if (!row.has("defense") || row.at("defense").is_null()) continue;
    const eval::Json& d = row.at("defense");
    Agg& g = groups[{row.get_string("method", ""), d.get_string("defense", "")}];
    ++g.rows;
    if (d.get_bool("detected", false)) ++g.detected;
    if (d.get_bool("evaded", false)) ++g.evaded;
    g.overhead_bytes = d.get_int("overhead_bytes", 0);
    g.verify_cost = d.get_int("verify_cost", 0);
    g.sum_l0 += static_cast<double>(row.get_int("l0", 0));
    g.sum_l2 += row.get_number("l2", 0.0);
  }

  eval::Json out = eval::Json::array();
  for (const auto& [key, g] : groups) {
    eval::Json e = eval::Json::object();
    e.set("method", eval::Json::string(key.first));
    e.set("defense", eval::Json::string(key.second));
    e.set("rows", eval::Json::number(g.rows));
    e.set("detected", eval::Json::number(g.detected));
    e.set("evaded", eval::Json::number(g.evaded));
    const double n = static_cast<double>(g.rows);
    e.set("detect_rate", eval::Json::number(static_cast<double>(g.detected) / n));
    e.set("evasion_rate", eval::Json::number(static_cast<double>(g.evaded) / n));
    e.set("mean_l0", eval::Json::number(g.sum_l0 / n));
    e.set("mean_l2", eval::Json::number(g.sum_l2 / n));
    e.set("overhead_bytes", eval::Json::number(g.overhead_bytes));
    e.set("verify_cost", eval::Json::number(g.verify_cost));
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace fsa::engine
