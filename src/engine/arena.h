// arena.h — the attack↔defense arena.
//
// The paper evaluates attacks against two countermeasures one bench at a
// time; the arena closes the loop as a first-class grid: every attack
// method meets every deployed defense on every (surface × (S,R) × seed)
// cell, each row's realized δ is audited/sanitized by the row's guard
// (engine/sweep.cpp's defense pass), and the reduced rows aggregate into
// the evasion frontier — per (method × defense) detect/evasion rates
// against defender storage and verification costs. Arena grids ride the
// sweep machinery end to end (SweepRunner locally, "arena" dist jobs
// across processes), so they inherit the determinism contract: reduced
// documents are byte-identical for any worker or thread count.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "defense/defense.h"
#include "engine/sweep.h"

namespace fsa::engine {

/// Declarative attack↔defense cross.
struct ArenaConfig {
  std::vector<std::string> methods = {"fsa-l0", "fsa-l2"};
  std::vector<defense::DefenseConfig> defenses;  ///< deployed guards (>= 1 required)
  std::vector<std::vector<std::string>> layer_sets = {{"fc3"}};
  bool weights = true, biases = true;
  std::vector<std::pair<std::int64_t, std::int64_t>> sr_pairs = {{2, 100}};
  std::vector<std::uint64_t> seeds = {1};
  core::TargetPolicy policy = core::TargetPolicy::kRandom;
  bool measure_accuracy = false;  ///< rates, not accuracy, are the arena's output
  std::optional<CampaignConfig> campaign;  ///< lower δ through a storage format first
};

/// Expand the cross into SweepSpecs — method → defense → surface → (S,R)
/// → seed, with each row tagged by its defense's canonical key so the
/// deployment survives the dist round trip inside the row sort key.
/// Validates every method and defense name eagerly (throws the registry
/// unknown-name errors before any model loads).
std::vector<SweepSpec> arena_specs(const ArenaConfig& config);

/// Aggregate arena rows (a JSON array of AttackReport objects carrying
/// "defense" outcomes) into the evasion frontier: one entry per (method ×
/// defense), sorted by that pair, with rows/detected/evaded counts,
/// detect_rate/evasion_rate, mean realized ‖δ‖₀/‖δ‖₂, and the defender's
/// overhead_bytes/verify_cost. A pure function of the row set — reduced
/// documents present rows canonically sorted, so every worker count
/// reproduces the frontier byte-identically.
eval::Json arena_frontier(const eval::Json& rows);

}  // namespace fsa::engine
