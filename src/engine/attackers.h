// attackers.h — the built-in Attacker adapters.
//
// Each adapter wraps one of the repo's attack implementations behind the
// unified engine interface, translating its bespoke Config/Result structs
// into an AttackReport. Concrete classes are exposed (not just the
// registry) so ablation benches can pre-configure a method — e.g. a ρ
// sweep builds seven FsaAttackers with different AdmmConfigs and hands
// them to the SweepRunner as per-instance overrides.
#pragma once

#include "baseline/gda.h"
#include "core/fault_sneaking.h"
#include "defense/defense.h"
#include "engine/attacker.h"

namespace fsa::engine {

/// The paper's fault sneaking attack (ADMM + refinement + c-escalation).
/// Registry keys "fsa-l0" / "fsa-l2" / "fsa-l1" are this adapter with the
/// corresponding NormKind baked into the config.
class FsaAttacker final : public Attacker {
 public:
  explicit FsaAttacker(core::FaultSneakingConfig cfg = {}, std::string name = "")
      : cfg_(cfg), name_(name.empty() ? default_name(cfg.admm.norm) : std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] AttackReport run(nn::Sequential& net, const core::ParamMask& mask,
                                 const core::AttackSpec& spec) const override;

  [[nodiscard]] const core::FaultSneakingConfig& config() const { return cfg_; }

  static std::string default_name(core::NormKind norm);

 private:
  core::FaultSneakingConfig cfg_;
  std::string name_;
};

/// Detection-aware fault sneaking (registry keys "fsa-l2-evasive" /
/// "fsa-l0-evasive"): before solving, derives an EvasionConstraint from
/// the TARGET defense against the live surface — a range guard's widened
/// group envelope becomes a δ box folded into the ADMM prox step, a
/// checksum's block granularity becomes a per-block flip budget, and
/// canary sentinels are pinned untouched. An empty target name derives
/// nothing, leaving the solve path bitwise identical to FsaAttacker (the
/// parity tests rely on this).
class EvasiveFsaAttacker final : public Attacker {
 public:
  EvasiveFsaAttacker(core::FaultSneakingConfig cfg, defense::DefenseConfig target,
                     std::string name, std::int64_t block_budget = 2);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] AttackReport run(nn::Sequential& net, const core::ParamMask& mask,
                                 const core::AttackSpec& spec) const override;

  [[nodiscard]] const defense::DefenseConfig& target() const { return target_; }
  [[nodiscard]] const core::FaultSneakingConfig& config() const { return cfg_; }

  /// A copy aimed at `target` — the sweep runner retargets evasive
  /// methods at each arena row's deployed defense so the constraint
  /// matches THE guard the row faces.
  [[nodiscard]] AttackerPtr retargeted(defense::DefenseConfig target) const;

 private:
  core::FaultSneakingConfig cfg_;
  defense::DefenseConfig target_;
  std::string name_;
  std::int64_t block_budget_;
};

/// ICCAD'17 Gradient Descent Attack baseline (no stealth constraint; the
/// maintained rows of the spec are reported but never optimized for).
class GdaAttacker final : public Attacker {
 public:
  explicit GdaAttacker(baseline::GdaConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "gda"; }
  [[nodiscard]] AttackReport run(nn::Sequential& net, const core::ParamMask& mask,
                                 const core::AttackSpec& spec) const override;

  [[nodiscard]] const baseline::GdaConfig& config() const { return cfg_; }

 private:
  baseline::GdaConfig cfg_;
};

/// ICCAD'17 Single Bias Attack baseline: misclassify the first fault image
/// by raising one output bias. Requires the surface to include the biases
/// of a final Dense layer (throws a clear error otherwise) so the
/// modification is expressible as a δ over the mask like every other method.
class SbaAttacker final : public Attacker {
 public:
  explicit SbaAttacker(double eps = 0.1) : eps_(eps) {}

  [[nodiscard]] std::string name() const override { return "sba"; }
  [[nodiscard]] AttackReport run(nn::Sequential& net, const core::ParamMask& mask,
                                 const core::AttackSpec& spec) const override;

 private:
  double eps_;
};

}  // namespace fsa::engine
