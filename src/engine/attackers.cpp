#include "engine/attackers.h"

#include <chrono>

#include "baseline/sba.h"
#include "core/head_gradient.h"
#include "nn/dense.h"
#include "tensor/ops.h"

namespace fsa::engine {

namespace {

/// Shared AttackReport scaffolding: problem identity + constraint counts.
AttackReport base_report(const std::string& method, const core::ParamMask& mask,
                         const core::AttackSpec& spec) {
  AttackReport r;
  r.method = method;
  r.surface = mask.describe();
  r.S = spec.S;
  r.R = spec.R();
  return r;
}

void fill_satisfaction(AttackReport& r, std::int64_t hit, std::int64_t kept) {
  r.targets_hit = hit;
  r.maintained = kept;
  r.success_rate = r.S == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(r.S);
  r.all_targets_hit = hit == r.S;
  r.all_maintained = kept == r.R - r.S;
}

}  // namespace

// ---- FsaAttacker -------------------------------------------------------------

std::string FsaAttacker::default_name(core::NormKind norm) {
  switch (norm) {
    case core::NormKind::kL0: return "fsa-l0";
    case core::NormKind::kL2: return "fsa-l2";
    case core::NormKind::kL1: return "fsa-l1";
  }
  return "fsa";
}

AttackReport FsaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  core::FaultSneakingAttack attack(net, mask);
  const core::FaultSneakingResult res = attack.run(spec, cfg_);

  AttackReport r = base_report(name_, mask, spec);
  r.delta = res.delta;
  r.l0 = res.l0;
  r.l2 = res.l2;
  fill_satisfaction(r, res.targets_hit, res.maintained);
  r.attempts = res.attempts;
  r.iterations = res.admm_iterations;
  r.seconds = res.seconds;
  return r;
}

// ---- GdaAttacker -------------------------------------------------------------

AttackReport GdaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  baseline::GradientDescentAttack gda(net, mask);
  const baseline::GdaResult res = gda.run(spec, cfg_);

  AttackReport r = base_report("gda", mask, spec);
  r.delta = res.delta;
  r.l0 = res.l0;
  r.l2 = res.l2;
  r.seconds = res.seconds;
  r.attempts = 1;

  // GDA only optimizes the S fault rows; measure the whole spec (faults AND
  // anchors) so its report is comparable with the stealth-aware methods.
  const Tensor theta0 = mask.gather_values();
  core::HeadGradient grad(net, mask);
  Tensor theta = theta0;
  theta += res.delta;
  const Tensor logits = grad.logits_at(theta, spec);
  const auto [hit, kept] = core::count_satisfied(logits, spec);
  mask.scatter_values(theta0);
  fill_satisfaction(r, hit, kept);
  return r;
}

// ---- SbaAttacker -------------------------------------------------------------

AttackReport SbaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  const auto t0 = std::chrono::steady_clock::now();
  if (spec.S < 1)
    throw std::invalid_argument("sba: needs at least one fault image (S >= 1)");

  // SBA modifies one bias of the network's final Dense layer. Locate it and
  // require it to be inside the surface, so δ lives in the mask space.
  std::size_t li = net.size();
  nn::Dense* final_dense = nullptr;
  for (std::size_t i = net.size(); i-- > 0;) {
    if (auto* d = dynamic_cast<nn::Dense*>(&net.layer(i))) {
      li = i;
      final_dense = d;
      break;
    }
  }
  if (final_dense == nullptr) throw std::invalid_argument("sba: network has no Dense layer");
  const bool bias_in_mask = [&] {
    for (const auto& seg : mask.segments())
      if (seg.param == &final_dense->bias()) return true;
    return false;
  }();
  if (!bias_in_mask)
    throw std::invalid_argument(
        "sba: attack surface must include the final Dense layer's biases (layer '" +
        final_dense->name() + "')");

  const Tensor theta0 = mask.gather_values();

  // Lift the first fault image's cut-point activations to the final layer's
  // input (identity when the surface IS the final layer).
  Tensor f = spec.features.slice0(0, 1);
  for (std::size_t i = mask.cut(); i < li; ++i) f = net.layer(i).forward(f, /*train=*/false);

  const baseline::SbaResult res =
      baseline::single_bias_attack(net, final_dense->name(), f, spec.labels[0], eps_);

  // Express the modification as a δ over the mask and measure the full spec.
  Tensor after = mask.gather_values();
  Tensor delta = after;
  delta -= theta0;
  const Tensor logits = net.forward_from(mask.cut(), spec.features, /*train=*/false);
  const auto [hit, kept] = core::count_satisfied(logits, spec);
  mask.scatter_values(theta0);

  AttackReport r = base_report("sba", mask, spec);
  r.delta = std::move(delta);
  r.l0 = ops::l0_norm(r.delta);
  r.l2 = ops::l2_norm(r.delta);
  fill_satisfaction(r, hit, kept);
  r.attempts = 1;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return r;
}

}  // namespace fsa::engine
