#include "engine/attackers.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "baseline/sba.h"
#include "defense/defenses.h"
#include "core/head_gradient.h"
#include "nn/dense.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace fsa::engine {

namespace {

/// Shared AttackReport scaffolding: problem identity + constraint counts.
AttackReport base_report(const std::string& method, const core::ParamMask& mask,
                         const core::AttackSpec& spec) {
  AttackReport r;
  r.method = method;
  r.surface = mask.describe();
  r.S = spec.S;
  r.R = spec.R();
  return r;
}

void fill_satisfaction(AttackReport& r, std::int64_t hit, std::int64_t kept) {
  r.targets_hit = hit;
  r.maintained = kept;
  r.success_rate = r.S == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(r.S);
  r.all_targets_hit = hit == r.S;
  r.all_maintained = kept == r.R - r.S;
}

/// The fault sneaking pipeline shared by the vanilla and evasive
/// adapters: only the AdmmConfig (and thus the evasion constraint)
/// differs between them.
AttackReport run_fsa(const core::FaultSneakingConfig& cfg, const std::string& name,
                     nn::Sequential& net, const core::ParamMask& mask,
                     const core::AttackSpec& spec) {
  core::FaultSneakingConfig traced_cfg = cfg;
  // Convergence curves ride the trace flag: the extra per-iteration work
  // only happens when someone asked to watch, and reducers strip the
  // block so reduced artifacts stay byte-identical either way.
  traced_cfg.admm.record_convergence = obs::trace_enabled();
  core::FaultSneakingAttack attack(net, mask);
  const core::FaultSneakingResult res = attack.run(spec, traced_cfg);

  AttackReport r = base_report(name, mask, spec);
  r.delta = res.delta;
  r.l0 = res.l0;
  r.l2 = res.l2;
  fill_satisfaction(r, res.targets_hit, res.maintained);
  r.attempts = res.attempts;
  r.iterations = res.admm_iterations;
  r.seconds = res.seconds;
  r.convergence = res.convergence;
  return r;
}

/// Make sure the constraint has a box to intersect into; until a guard
/// contributes a bound, every coordinate is effectively free.
void ensure_box(core::EvasionConstraint& ev, std::int64_t d) {
  if (ev.has_box()) return;
  ev.lo = Tensor(Shape({d}));
  ev.hi = Tensor(Shape({d}));
  for (std::int64_t i = 0; i < d; ++i) {
    ev.lo[static_cast<std::size_t>(i)] = -3.0e38f;
    ev.hi[static_cast<std::size_t>(i)] = 3.0e38f;
  }
}

/// Translate one armed guard into constraint terms, recursing through
/// ensembles. Range → δ box from the widened group envelope; checksum →
/// flip budget at block granularity; canary → sentinel coordinates
/// pinned to δ = 0 (their positions are a pure function of the surface,
/// so the attacker predicts them exactly).
void fold_constraint(const defense::Defense& guard, const Tensor& theta0,
                     std::int64_t block_budget, core::EvasionConstraint& ev, bool& any) {
  const auto d = static_cast<std::int64_t>(theta0.numel());
  if (const auto* range = dynamic_cast<const defense::RangeDefense*>(&guard)) {
    const defense::RangeGuard& g = range->guard();
    ensure_box(ev, d);
    for (std::int64_t i = 0; i < d; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const std::int64_t grp = g.group_of(i);
      ev.lo[ui] = std::max(ev.lo[ui], g.group_lo(grp) - theta0[ui]);
      ev.hi[ui] = std::min(ev.hi[ui], g.group_hi(grp) - theta0[ui]);
    }
    any = true;
  } else if (const auto* ck = dynamic_cast<const defense::ChecksumDefense*>(&guard)) {
    ev.block_params = ck->block_params();
    ev.max_blocks = block_budget;
    any = true;
  } else if (const auto* canary = dynamic_cast<const defense::CanaryDefense*>(&guard)) {
    ensure_box(ev, d);
    for (const std::int64_t i : canary->sentinel_indices()) {
      const auto ui = static_cast<std::size_t>(i);
      ev.lo[ui] = 0.0f;
      ev.hi[ui] = 0.0f;
    }
    any = true;
  } else if (const auto* ens = dynamic_cast<const defense::EnsembleDefense*>(&guard)) {
    for (const defense::DefensePtr& m : ens->members())
      fold_constraint(*m, theta0, block_budget, ev, any);
  }
}

}  // namespace

// ---- FsaAttacker -------------------------------------------------------------

std::string FsaAttacker::default_name(core::NormKind norm) {
  switch (norm) {
    case core::NormKind::kL0: return "fsa-l0";
    case core::NormKind::kL2: return "fsa-l2";
    case core::NormKind::kL1: return "fsa-l1";
  }
  return "fsa";
}

AttackReport FsaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  return run_fsa(cfg_, name_, net, mask, spec);
}

// ---- EvasiveFsaAttacker ------------------------------------------------------

EvasiveFsaAttacker::EvasiveFsaAttacker(core::FaultSneakingConfig cfg,
                                       defense::DefenseConfig target, std::string name,
                                       std::int64_t block_budget)
    : cfg_(std::move(cfg)), target_(std::move(target)), name_(std::move(name)),
      block_budget_(block_budget) {
  if (block_budget_ <= 0)
    throw std::invalid_argument("EvasiveFsaAttacker: block budget must be > 0");
  // Fail on an unknown target now, like parse_defense — before a solve.
  if (!target_.name.empty()) (void)defense::make_defense(target_);
}

AttackReport EvasiveFsaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                                     const core::AttackSpec& spec) const {
  core::FaultSneakingConfig cfg = cfg_;
  if (!target_.name.empty()) {
    const Tensor theta0 = mask.gather_values();
    defense::DefensePtr guard = defense::make_defense(target_);
    guard->snapshot(theta0);
    auto ev = std::make_shared<core::EvasionConstraint>();
    bool any = false;
    fold_constraint(*guard, theta0, block_budget_, *ev, any);
    if (any) cfg.admm.evasion = std::move(ev);
  }
  return run_fsa(cfg, name_, net, mask, spec);
}

AttackerPtr EvasiveFsaAttacker::retargeted(defense::DefenseConfig target) const {
  return std::make_unique<EvasiveFsaAttacker>(cfg_, std::move(target), name_, block_budget_);
}

// ---- GdaAttacker -------------------------------------------------------------

AttackReport GdaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  baseline::GradientDescentAttack gda(net, mask);
  const baseline::GdaResult res = gda.run(spec, cfg_);

  AttackReport r = base_report("gda", mask, spec);
  r.delta = res.delta;
  r.l0 = res.l0;
  r.l2 = res.l2;
  r.seconds = res.seconds;
  r.attempts = 1;

  // GDA only optimizes the S fault rows; measure the whole spec (faults AND
  // anchors) so its report is comparable with the stealth-aware methods.
  const Tensor theta0 = mask.gather_values();
  core::HeadGradient grad(net, mask);
  Tensor theta = theta0;
  theta += res.delta;
  const Tensor logits = grad.logits_at(theta, spec);
  const auto [hit, kept] = core::count_satisfied(logits, spec);
  mask.scatter_values(theta0);
  fill_satisfaction(r, hit, kept);
  return r;
}

// ---- SbaAttacker -------------------------------------------------------------

AttackReport SbaAttacker::run(nn::Sequential& net, const core::ParamMask& mask,
                              const core::AttackSpec& spec) const {
  const auto t0 = std::chrono::steady_clock::now();
  if (spec.S < 1)
    throw std::invalid_argument("sba: needs at least one fault image (S >= 1)");

  // SBA modifies one bias of the network's final Dense layer. Locate it and
  // require it to be inside the surface, so δ lives in the mask space.
  std::size_t li = net.size();
  nn::Dense* final_dense = nullptr;
  for (std::size_t i = net.size(); i-- > 0;) {
    if (auto* d = dynamic_cast<nn::Dense*>(&net.layer(i))) {
      li = i;
      final_dense = d;
      break;
    }
  }
  if (final_dense == nullptr) throw std::invalid_argument("sba: network has no Dense layer");
  const bool bias_in_mask = [&] {
    for (const auto& seg : mask.segments())
      if (seg.param == &final_dense->bias()) return true;
    return false;
  }();
  if (!bias_in_mask)
    throw std::invalid_argument(
        "sba: attack surface must include the final Dense layer's biases (layer '" +
        final_dense->name() + "')");

  const Tensor theta0 = mask.gather_values();

  // Lift the first fault image's cut-point activations to the final layer's
  // input (identity when the surface IS the final layer).
  Tensor f = spec.features.slice0(0, 1);
  for (std::size_t i = mask.cut(); i < li; ++i) f = net.layer(i).forward(f, /*train=*/false);

  const baseline::SbaResult res =
      baseline::single_bias_attack(net, final_dense->name(), f, spec.labels[0], eps_);

  // Express the modification as a δ over the mask and measure the full spec.
  Tensor after = mask.gather_values();
  Tensor delta = after;
  delta -= theta0;
  const Tensor logits = net.forward_from(mask.cut(), spec.features, /*train=*/false);
  const auto [hit, kept] = core::count_satisfied(logits, spec);
  mask.scatter_values(theta0);

  AttackReport r = base_report("sba", mask, spec);
  r.delta = std::move(delta);
  r.l0 = ops::l0_norm(r.delta);
  r.l2 = ops::l2_norm(r.delta);
  fill_satisfaction(r, hit, kept);
  r.attempts = 1;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return r;
}

}  // namespace fsa::engine
