#include "engine/attacker.h"

#include <stdexcept>

namespace fsa::engine {

const faultsim::CampaignReport& CampaignSummary::report(const std::string& injector) const {
  for (const auto& r : reports)
    if (r.injector == injector) return r;
  throw std::out_of_range("CampaignSummary: no report for injector \"" + injector + "\"");
}

eval::Json CampaignSummary::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("format", eval::Json::string(format));
  j.set("shards", eval::Json::number(static_cast<std::int64_t>(shards)));
  j.set("params_modified", eval::Json::number(params_modified));
  j.set("total_bit_flips", eval::Json::number(total_bit_flips));
  j.set("rows_touched", eval::Json::number(rows_touched));
  eval::Json arr = eval::Json::array();
  for (const auto& r : reports) arr.push_back(r.to_json());
  j.set("injectors", std::move(arr));
  return j;
}

CampaignSummary CampaignSummary::from_json(const eval::Json& j) {
  CampaignSummary c;
  c.format = j.get_string("format", "float32");
  c.shards = static_cast<int>(j.get_int("shards", 1));
  c.params_modified = j.get_int("params_modified", 0);
  c.total_bit_flips = j.get_int("total_bit_flips", 0);
  c.rows_touched = j.get_int("rows_touched", 0);
  if (j.has("injectors"))
    for (const eval::Json& r : j.at("injectors").items())
      c.reports.push_back(faultsim::CampaignReport::from_json(r));
  return c;
}

eval::Json DefenseOutcome::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("defense", eval::Json::string(defense));
  j.set("detected_pre", eval::Json::boolean(detected_pre));
  j.set("detected_post", eval::Json::boolean(detected_post));
  j.set("detected", eval::Json::boolean(detected));
  j.set("evaded", eval::Json::boolean(evaded));
  j.set("regions_flagged", eval::Json::number(regions_flagged));
  j.set("sanitize_clamped", eval::Json::number(sanitize_clamped));
  j.set("faults_after_sanitize", eval::Json::number(faults_after_sanitize));
  j.set("overhead_bytes", eval::Json::number(overhead_bytes));
  j.set("verify_cost", eval::Json::number(verify_cost));
  return j;
}

DefenseOutcome DefenseOutcome::from_json(const eval::Json& j) {
  DefenseOutcome d;
  d.defense = j.get_string("defense", "");
  d.detected_pre = j.get_bool("detected_pre", false);
  d.detected_post = j.get_bool("detected_post", false);
  d.detected = j.get_bool("detected", false);
  d.evaded = j.get_bool("evaded", false);
  d.regions_flagged = j.get_int("regions_flagged", 0);
  d.sanitize_clamped = j.get_int("sanitize_clamped", 0);
  d.faults_after_sanitize = j.get_int("faults_after_sanitize", 0);
  d.overhead_bytes = j.get_int("overhead_bytes", 0);
  d.verify_cost = j.get_int("verify_cost", 0);
  return d;
}

eval::Json AttackReport::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("method", eval::Json::string(method));
  j.set("backend", eval::Json::string(backend));
  j.set("surface", eval::Json::string(surface));
  j.set("S", eval::Json::number(S));
  j.set("R", eval::Json::number(R));
  // Seeds are 64-bit and must survive the round trip exactly; JSON numbers
  // are doubles (2^53), so serialize as a string.
  j.set("seed", eval::Json::string(std::to_string(seed)));
  j.set("l0", eval::Json::number(l0));
  j.set("l2", eval::Json::number(l2));
  j.set("targets_hit", eval::Json::number(targets_hit));
  j.set("maintained", eval::Json::number(maintained));
  j.set("success_rate", eval::Json::number(success_rate));
  j.set("all_targets_hit", eval::Json::boolean(all_targets_hit));
  j.set("all_maintained", eval::Json::boolean(all_maintained));
  j.set("attempts", eval::Json::number(attempts));
  j.set("iterations", eval::Json::number(iterations));
  j.set("seconds", eval::Json::number(seconds));
  j.set("test_accuracy",
        test_accuracy < 0.0 ? eval::Json::null() : eval::Json::number(test_accuracy));
  j.set("clean_accuracy",
        clean_accuracy < 0.0 ? eval::Json::null() : eval::Json::number(clean_accuracy));
  // Compile attribution: which execution path produced this row. The
  // compiled path is bitwise-identical, so byte-comparisons between
  // compiled and uncompiled artifacts scrub this field first (the same
  // way reducers scrub wall times).
  j.set("compiled", eval::Json::boolean(compiled));
  if (campaign) j.set("campaign", campaign->to_json());
  if (defense) j.set("defense", defense->to_json());
  if (!convergence.empty()) {
    eval::Json conv = eval::Json::object();
    const auto series = [](const std::vector<double>& v) {
      eval::Json arr = eval::Json::array();
      for (const double x : v) arr.push_back(eval::Json::number(x));
      return arr;
    };
    conv.set("objective", series(convergence.objective));
    conv.set("primal", series(convergence.primal));
    conv.set("dual", series(convergence.dual));
    j.set("convergence", std::move(conv));
  }
  return j;
}

AttackReport AttackReport::from_json(const eval::Json& j) {
  AttackReport r;
  r.method = j.get_string("method", "");
  r.backend = j.get_string("backend", "");
  r.surface = j.get_string("surface", "");
  r.S = j.get_int("S", 0);
  r.R = j.get_int("R", 0);
  if (j.has("seed") && !j.at("seed").is_null()) {
    const eval::Json& s = j.at("seed");
    r.seed = s.type() == eval::Json::Type::kString
                 ? std::stoull(s.as_string())
                 : static_cast<std::uint64_t>(s.as_number());
  }
  r.l0 = j.get_int("l0", 0);
  r.l2 = j.get_number("l2", 0.0);
  r.targets_hit = j.get_int("targets_hit", 0);
  r.maintained = j.get_int("maintained", 0);
  r.success_rate = j.get_number("success_rate", 1.0);
  r.all_targets_hit = j.get_bool("all_targets_hit", false);
  r.all_maintained = j.get_bool("all_maintained", false);
  r.attempts = j.get_int("attempts", 0);
  r.iterations = j.get_int("iterations", 0);
  r.seconds = j.get_number("seconds", 0.0);
  r.test_accuracy = j.get_number("test_accuracy", -1.0);
  r.clean_accuracy = j.get_number("clean_accuracy", -1.0);
  r.compiled = j.get_bool("compiled", false);
  if (j.has("campaign") && !j.at("campaign").is_null())
    r.campaign = CampaignSummary::from_json(j.at("campaign"));
  if (j.has("defense") && !j.at("defense").is_null())
    r.defense = DefenseOutcome::from_json(j.at("defense"));
  if (j.has("convergence") && !j.at("convergence").is_null()) {
    const eval::Json& conv = j.at("convergence");
    const auto series = [&](const char* key, std::vector<double>& out) {
      if (!conv.has(key)) return;
      for (const eval::Json& x : conv.at(key).items()) out.push_back(x.as_number());
    };
    series("objective", r.convergence.objective);
    series("primal", r.convergence.primal);
    series("dual", r.convergence.dual);
  }
  return r;
}

}  // namespace fsa::engine
