// registry.h — string-keyed attack method registry.
//
// Benches, the CLI, and sweep configs select attack methods by name at
// runtime ("fsa-l0", "fsa-l2", "fsa-l1", "gda", "sba"), so adding a method
// means registering one factory — no bench needs to know concrete types.
// Registration is explicit and lazy (seeded on first lookup) rather than
// via static initializers, which the linker would dead-strip out of a
// static library.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "defense/defense.h"
#include "engine/attacker.h"

namespace fsa::engine {

using AttackerFactory = std::function<AttackerPtr()>;

/// Register (or replace) a method under `name`.
void register_attacker(const std::string& name, AttackerFactory factory);

/// Instantiate the method registered under `name`. Throws
/// std::invalid_argument listing the known methods when `name` is unknown.
AttackerPtr make_attacker(const std::string& name);

/// Instantiate `name` retargeted at a specific deployed defense: the
/// detection-aware variants rebuild their evasion constraint against THE
/// guard an arena row faces; defense-unaware methods come back exactly
/// as make_attacker returns them.
AttackerPtr make_attacker_for(const std::string& name, const defense::DefenseConfig& defense);

/// True if `name` is registered.
bool has_attacker(const std::string& name);

/// All registered method names, sorted.
std::vector<std::string> attacker_names();

}  // namespace fsa::engine
