// attacker.h — the unified attack-engine interface.
//
// The paper's experiments all reduce to "solve many independent (S, R)
// attack instances and tabulate", but the three attack methods in this
// repo (the ADMM fault sneaking attack, the ICCAD'17 GDA baseline, and
// the single bias attack) historically exposed incompatible Config/Result
// structs, so every bench hand-rolled its own loop. Attacker is the common
// seam: one virtual run() that takes a network + attack surface + problem
// instance and returns one AttackReport, regardless of method. Benches,
// the CLI, and the SweepRunner consume only this interface; methods are
// selected at runtime through the string registry (registry.h).
//
// Thread-safety contract: run() is const and an Attacker instance holds
// only configuration, so ONE attacker may serve many concurrent run()
// calls — provided each call gets its own network (the SweepRunner clones
// the model per instance; run() mutates `net` while solving and restores
// the surface's original parameters before returning).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/admm.h"
#include "core/attack_spec.h"
#include "core/param_mask.h"
#include "eval/json.h"
#include "faultsim/injector.h"

namespace fsa::engine {

/// Optional end-to-end hardware-campaign stage of an attack report: the
/// solved δ lowered (through the configured storage format) to a bit-flip
/// plan and simulated with one CampaignReport per configured injector.
/// This is what connects the paper's ‖δ‖₀ objective to campaign cost in
/// every sweep row.
struct CampaignSummary {
  std::string format = "float32";    ///< storage format δ was realized in
  int shards = 1;                    ///< campaign shard count (totals are K-invariant)
  std::int64_t params_modified = 0;  ///< plan size after format realization
  std::int64_t total_bit_flips = 0;
  std::int64_t rows_touched = 0;     ///< distinct DRAM rows in the plan
  std::vector<faultsim::CampaignReport> reports;  ///< one per injector, config order

  /// The report for `injector`. Throws std::out_of_range if absent.
  [[nodiscard]] const faultsim::CampaignReport& report(const std::string& injector) const;

  [[nodiscard]] eval::Json to_json() const;
  static CampaignSummary from_json(const eval::Json& j);
};

/// Optional defense stage of an attack report: one deployed Defense
/// (defense/defense.h) audited the attacked parameters both before and
/// after storage-format lowering (quantization realization counts — a δ
/// that rounds away in int8 can't trip a checksum), then ran its
/// sanitize pass, and the surviving faults were re-measured. This is the
/// arena's per-row ground truth for the evasion frontier.
struct DefenseOutcome {
  std::string defense;                   ///< DefenseConfig::key() of the deployed guard
  bool detected_pre = false;             ///< alarm on θ0 + δ (pre-lowering)
  bool detected_post = false;            ///< alarm on the stored (lowered) parameters
  bool detected = false;                 ///< detected_pre || detected_post
  bool evaded = false;                   ///< undetected AND all S faults survive sanitization
  std::int64_t regions_flagged = 0;      ///< guard regions flagged on the stored parameters
  std::int64_t sanitize_clamped = 0;     ///< entries repaired by the sanitize pass
  std::int64_t faults_after_sanitize = 0;///< targets still hit after sanitization (of S)
  std::int64_t overhead_bytes = 0;       ///< defender storage cost
  std::int64_t verify_cost = 0;          ///< abstract verification work (parameters audited)

  [[nodiscard]] eval::Json to_json() const;
  static DefenseOutcome from_json(const eval::Json& j);
};

/// Unified result of one attack instance, independent of method.
struct AttackReport {
  std::string method;            ///< registry key ("fsa-l0", "gda", ...)
  std::string backend;           ///< compute backend that produced the row ("" = unrecorded)
  std::string surface;           ///< mask description, e.g. "fc3[weights+biases] (2010 params)"
  std::int64_t S = 0;            ///< faults requested
  std::int64_t R = 0;            ///< total images (faults + anchors)
  std::uint64_t seed = 0;        ///< spec seed (0 when the caller built the spec directly)
  std::int64_t l0 = 0;           ///< ‖δ‖₀ — parameters modified
  double l2 = 0.0;               ///< ‖δ‖₂ — modification magnitude
  std::int64_t targets_hit = 0;  ///< faults injected successfully (of S)
  std::int64_t maintained = 0;   ///< anchor images kept (of R−S)
  double success_rate = 1.0;     ///< targets_hit / S (1.0 when S = 0)
  bool all_targets_hit = false;
  bool all_maintained = false;
  std::int64_t attempts = 0;     ///< escalation/retry attempts (method-specific)
  std::int64_t iterations = 0;   ///< inner solver iterations (method-specific)
  double seconds = 0.0;          ///< solve wall time
  double test_accuracy = -1.0;   ///< full-test-set accuracy with δ applied; < 0 = not measured
  double clean_accuracy = -1.0;  ///< clean accuracy at the same cut; < 0 = not measured
  bool compiled = false;         ///< produced by the compiled forward path (FSA_COMPILE)
  std::optional<CampaignSummary> campaign;  ///< hardware stage (when the sweep asked for one)
  std::optional<DefenseOutcome> defense;    ///< defense stage (when a guard was deployed)
  /// Per-iteration solver curves (objective/primal/dual), present only
  /// when FSA_TRACE was on during the solve. Reducers strip this block —
  /// reduced.json stays byte-identical with telemetry on or off.
  core::ConvergenceTrace convergence;
  Tensor delta;                  ///< modification over the surface's flat space (not serialized)

  /// Scalar fields as a JSON object (`delta` is intentionally excluded —
  /// reports are metrics; tensors go through io::save_tensors).
  [[nodiscard]] eval::Json to_json() const;

  /// Inverse of to_json (delta left empty, unknown keys ignored).
  static AttackReport from_json(const eval::Json& j);
};

/// A fault-injection attack method, selectable at runtime.
class Attacker {
 public:
  virtual ~Attacker() = default;

  /// Registry key of this method.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Solve one instance. `mask` must be bound to `net`'s parameters, and
  /// `spec.features` must be activations at `mask.cut()`. The network is
  /// mutated during the solve and restored (over the mask) before return.
  [[nodiscard]] virtual AttackReport run(nn::Sequential& net, const core::ParamMask& mask,
                                         const core::AttackSpec& spec) const = 0;
};

using AttackerPtr = std::unique_ptr<Attacker>;

}  // namespace fsa::engine
