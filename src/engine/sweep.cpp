#include "engine/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "compile/model_compiler.h"
#include "core/head_gradient.h"
#include "core/margin_loss.h"
#include "engine/registry.h"
#include "eval/stopwatch.h"
#include "models/feature_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace fsa::engine {

// ---- CampaignConfig JSON -----------------------------------------------------

eval::Json CampaignConfig::to_json() const {
  eval::Json j = eval::Json::object();
  eval::Json inj = eval::Json::array();
  for (const auto& name : injectors) inj.push_back(eval::Json::string(name));
  j.set("injectors", std::move(inj));
  j.set("shards", eval::Json::number(static_cast<std::int64_t>(shards)));
  // 64-bit values serialize as strings (JSON numbers are doubles, 2^53).
  j.set("seed", eval::Json::string(std::to_string(seed)));
  j.set("format", eval::Json::string(faultsim::format_name(format)));
  eval::Json lay = eval::Json::object();
  lay.set("base_address", eval::Json::string(std::to_string(layout.base_address)));
  lay.set("row_bytes", eval::Json::number(static_cast<std::int64_t>(layout.row_bytes)));
  lay.set("bytes_per_param",
          eval::Json::number(static_cast<std::int64_t>(layout.bytes_per_param)));
  j.set("layout", std::move(lay));
  return j;
}

CampaignConfig CampaignConfig::from_json(const eval::Json& j) {
  CampaignConfig c;
  c.injectors.clear();
  for (const eval::Json& name : j.at("injectors").items()) c.injectors.push_back(name.as_string());
  c.shards = static_cast<int>(j.get_int("shards", 1));
  c.seed = std::stoull(j.get_string("seed", "7"));
  c.format = faultsim::format_from_name(j.get_string("format", "float32"));
  if (j.has("layout")) {
    const eval::Json& lay = j.at("layout");
    c.layout.base_address = std::stoull(lay.get_string("base_address", "0"));
    c.layout.row_bytes = static_cast<std::uint64_t>(lay.get_int("row_bytes", 8192));
    c.layout.bytes_per_param = static_cast<std::uint64_t>(lay.get_int("bytes_per_param", 4));
  }
  return c;
}

// ---- SweepSpec ---------------------------------------------------------------

std::string SweepSpec::surface_key() const {
  std::string key;
  for (const auto& l : layers) key += (key.empty() ? "" : ",") + l;
  if (weights && biases) return key;
  return key + (weights ? "[w]" : "[b]");
}

namespace {

const char* policy_name(core::TargetPolicy p) {
  return p == core::TargetPolicy::kNextLabel ? "next-label" : "random";
}

core::TargetPolicy policy_from_name(const std::string& name) {
  if (name == "random") return core::TargetPolicy::kRandom;
  if (name == "next-label") return core::TargetPolicy::kNextLabel;
  throw std::invalid_argument("unknown target policy \"" + name +
                              "\" (known: random, next-label)");
}

}  // namespace

eval::Json SweepSpec::to_json() const {
  if (attacker)
    throw std::invalid_argument(
        "SweepSpec: a pre-configured attacker override is not serializable — dist shard "
        "manifests carry registry method names only");
  eval::Json j = eval::Json::object();
  j.set("method", eval::Json::string(method));
  eval::Json ls = eval::Json::array();
  for (const auto& l : layers) ls.push_back(eval::Json::string(l));
  j.set("layers", std::move(ls));
  j.set("weights", eval::Json::boolean(weights));
  j.set("biases", eval::Json::boolean(biases));
  j.set("S", eval::Json::number(S));
  j.set("R", eval::Json::number(R));
  j.set("seed", eval::Json::string(std::to_string(seed)));
  j.set("policy", eval::Json::string(policy_name(policy)));
  if (!tag.empty()) j.set("tag", eval::Json::string(tag));
  j.set("measure_accuracy", eval::Json::boolean(measure_accuracy));
  if (campaign) j.set("campaign", campaign->to_json());
  if (defense) j.set("defense", defense->to_json());
  return j;
}

SweepSpec SweepSpec::from_json(const eval::Json& j) {
  SweepSpec s;
  s.method = j.get_string("method", "fsa-l0");
  if (j.has("layers")) {
    s.layers.clear();
    for (const eval::Json& l : j.at("layers").items()) s.layers.push_back(l.as_string());
  }
  s.weights = j.get_bool("weights", true);
  s.biases = j.get_bool("biases", true);
  s.S = j.get_int("S", 1);
  s.R = j.get_int("R", 100);
  s.seed = std::stoull(j.get_string("seed", "1"));
  s.policy = policy_from_name(j.get_string("policy", "random"));
  s.tag = j.get_string("tag", "");
  s.measure_accuracy = j.get_bool("measure_accuracy", true);
  if (j.has("campaign") && !j.at("campaign").is_null())
    s.campaign = CampaignConfig::from_json(j.at("campaign"));
  if (j.has("defense") && !j.at("defense").is_null())
    s.defense = defense::DefenseConfig::from_json(j.at("defense"));
  return s;
}

// ---- Sweep builder -----------------------------------------------------------

Sweep& Sweep::methods(std::vector<std::string> ms) {
  if (ms.empty()) throw std::invalid_argument("Sweep: empty method list");
  methods_ = std::move(ms);
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::layer_sets(std::vector<std::vector<std::string>> sets) {
  if (sets.empty()) throw std::invalid_argument("Sweep: empty layer-set list");
  layer_sets_ = std::move(sets);
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::weights_only() {
  weights_ = true;
  biases_ = false;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::biases_only() {
  weights_ = false;
  biases_ = true;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::s_values(std::vector<std::int64_t> ss) {
  if (ss.empty()) throw std::invalid_argument("Sweep: empty S list");
  s_values_ = std::move(ss);
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::r_values(std::vector<std::int64_t> rs) {
  if (rs.empty()) throw std::invalid_argument("Sweep: empty R list");
  r_values_ = std::move(rs);
  r_mode_ = RMode::kList;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::sr_pairs(std::vector<std::pair<std::int64_t, std::int64_t>> pairs) {
  if (pairs.empty()) throw std::invalid_argument("Sweep: empty (S,R) pair list");
  sr_pairs_ = std::move(pairs);
  r_mode_ = RMode::kPairs;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::r_equals_s() {
  r_mode_ = RMode::kEqualsS;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::r_offset(std::int64_t offset) {
  r_mode_ = RMode::kOffset;
  r_offset_ = offset;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::seeds(std::vector<std::uint64_t> seeds) {
  if (seeds.empty()) throw std::invalid_argument("Sweep: empty seed list");
  seeds_ = std::move(seeds);
  seed_fn_ = nullptr;
  cartesian_touched_ = true;
  return *this;
}

Sweep& Sweep::seed_fn(std::function<std::uint64_t(std::int64_t, std::int64_t)> fn) {
  seed_fn_ = std::move(fn);
  cartesian_touched_ = true;
  return *this;
}

// policy/attacker/measure_accuracy are per-instance OPTIONS, not grid
// dimensions: setting one must not conjure a default cartesian cell when the
// sweep is otherwise built from explicit add() calls.
Sweep& Sweep::policy(core::TargetPolicy p) {
  policy_ = p;
  return *this;
}

Sweep& Sweep::attacker(std::shared_ptr<const Attacker> a) {
  attacker_ = std::move(a);
  return *this;
}

Sweep& Sweep::measure_accuracy(bool m) {
  measure_accuracy_ = m;
  return *this;
}

Sweep& Sweep::with_campaign(CampaignConfig config) {
  if (config.injectors.empty())
    throw std::invalid_argument("Sweep: with_campaign needs at least one injector");
  if (config.shards < 1)
    throw std::invalid_argument("Sweep: campaign shard count must be >= 1, got " +
                                std::to_string(config.shards));
  // Validate every injector name now, not inside the parallel phase.
  for (const auto& name : config.injectors) (void)faultsim::make_injector(name);
  campaign_ = std::move(config);
  return *this;
}

Sweep& Sweep::with_defense(defense::DefenseConfig config) {
  // Unknown names / bad knobs fail here, not inside the parallel phase.
  (void)defense::make_defense(config);
  defense_ = std::move(config);
  return *this;
}

Sweep& Sweep::add(SweepSpec spec) {
  explicit_.push_back(std::move(spec));
  return *this;
}

std::vector<SweepSpec> Sweep::build() const {
  std::vector<SweepSpec> out;
  if (cartesian_touched_ || explicit_.empty()) {
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    switch (r_mode_) {
      case RMode::kPairs: pairs = sr_pairs_; break;
      case RMode::kEqualsS:
        for (auto s : s_values_) pairs.emplace_back(s, s);
        break;
      case RMode::kOffset:
        for (auto s : s_values_) pairs.emplace_back(s, s + r_offset_);
        break;
      case RMode::kList:
        for (auto r : r_values_)
          for (auto s : s_values_) pairs.emplace_back(s, r);
        break;
    }
    // seed_fn replaces the seeds list: one instance per cell, seeded by (S, R).
    const std::vector<std::uint64_t> seeds = seed_fn_ ? std::vector<std::uint64_t>{0} : seeds_;
    for (const auto& method : methods_)
      for (const auto& layers : layer_sets_)
        for (const auto& [s, r] : pairs)
          for (const auto seed : seeds) {
            SweepSpec spec;
            spec.method = method;
            spec.layers = layers;
            spec.weights = weights_;
            spec.biases = biases_;
            spec.S = s;
            spec.R = r;
            spec.seed = seed_fn_ ? seed_fn_(s, r) : seed;
            spec.policy = policy_;
            spec.attacker = attacker_;
            spec.measure_accuracy = measure_accuracy_;
            out.push_back(std::move(spec));
          }
  }
  out.insert(out.end(), explicit_.begin(), explicit_.end());
  if (campaign_)
    for (auto& spec : out)
      if (!spec.campaign) spec.campaign = campaign_;
  if (defense_)
    for (auto& spec : out)
      if (!spec.defense) spec.defense = defense_;
  return out;
}

// ---- SweepResult -------------------------------------------------------------

const SweepRow& SweepResult::row(const std::string& method, std::int64_t S, std::int64_t R,
                                 const std::string& tag) const {
  for (const auto& r : rows)
    if (r.report.method == method && r.spec.S == S && r.spec.R == R &&
        (tag.empty() || r.spec.tag == tag))
      return r;
  throw std::out_of_range("SweepResult: no row for method=" + method + " S=" + std::to_string(S) +
                          " R=" + std::to_string(R) + (tag.empty() ? "" : " tag=" + tag));
}

const SweepRow& SweepResult::row_tagged(const std::string& tag) const {
  for (const auto& r : rows)
    if (r.spec.tag == tag) return r;
  throw std::out_of_range("SweepResult: no row tagged \"" + tag + "\"");
}

eval::Json SweepResult::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("model", eval::Json::string(model));
  j.set("backend", eval::Json::string(backend));
  j.set("workers", eval::Json::number(static_cast<std::int64_t>(workers)));
  j.set("seconds", eval::Json::number(seconds));
  j.set("compiled", eval::Json::boolean(compiled));
  if (compiled) j.set("fused_nodes", eval::Json::number(fused_nodes));
  eval::Json arr = eval::Json::array();
  for (const auto& r : rows) {
    eval::Json obj = r.report.to_json();
    if (!r.spec.tag.empty()) obj.set("tag", eval::Json::string(r.spec.tag));
    arr.push_back(std::move(obj));
  }
  j.set("rows", std::move(arr));
  return j;
}

void SweepResult::write_json(const std::string& path) const {
  try {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream os(path);
    os << to_json().dump(2) << "\n";
  } catch (const std::exception&) {
    // Like Table::write_csv: stdout is the primary artifact.
  }
}

eval::Table SweepResult::table(const std::string& title) const {
  // Campaign columns are appended only when some row carries the stage:
  // bit-flip plan size plus, per injector, projected hours and the
  // attempts/massages effort counters. The column set is the union of
  // every row's injectors (explicit specs may configure different ones),
  // in first-appearance order.
  std::vector<std::string> injectors;
  for (const auto& r : rows)
    if (r.report.campaign)
      for (const auto& c : r.report.campaign->reports)
        if (std::find(injectors.begin(), injectors.end(), c.injector) == injectors.end())
          injectors.push_back(c.injector);
  bool any_defense = false;
  for (const auto& r : rows)
    if (r.report.defense) any_defense = true;
  eval::Table t(title);
  std::vector<std::string> header = {"method", "backend", "surface", "S", "R", "seed", "l0",
                                     "l2", "faults", "anchors", "test acc", "time"};
  if (any_defense) {
    header.push_back("defense");
    header.push_back("det");
    header.push_back("evaded");
  }
  if (!injectors.empty()) {
    header.push_back("bits");
    for (const auto& name : injectors) {
      header.push_back(name + " h");
      header.push_back(name + " att/mass");
    }
  }
  t.header(header);
  for (const auto& r : rows) {
    const auto& rep = r.report;
    std::vector<std::string> cells = {
        rep.method + (r.spec.tag.empty() ? "" : " (" + r.spec.tag + ")"),
        rep.backend.empty() ? "-" : rep.backend, r.spec.surface_key(),
        std::to_string(rep.S), std::to_string(rep.R), std::to_string(r.spec.seed),
        std::to_string(rep.l0), eval::fmt(rep.l2, 2),
        std::to_string(rep.targets_hit) + "/" + std::to_string(rep.S),
        std::to_string(rep.maintained) + "/" + std::to_string(rep.R - rep.S),
        rep.test_accuracy < 0.0 ? "-" : eval::pct(rep.test_accuracy),
        eval::fmt(rep.seconds, 1) + "s"};
    if (any_defense) {
      cells.push_back(rep.defense ? rep.defense->defense : "-");
      cells.push_back(!rep.defense ? "-" : (rep.defense->detected ? "yes" : "no"));
      cells.push_back(!rep.defense ? "-" : (rep.defense->evaded ? "yes" : "no"));
    }
    if (!injectors.empty()) {
      cells.push_back(rep.campaign ? std::to_string(rep.campaign->total_bit_flips) : "-");
      for (const auto& name : injectors) {
        if (!rep.campaign) {
          cells.push_back("-");
          cells.push_back("-");
          continue;
        }
        const faultsim::CampaignReport* c = nullptr;
        for (const auto& cand : rep.campaign->reports)
          if (cand.injector == name) c = &cand;
        cells.push_back(c ? eval::fmt(c->seconds / 3600.0, 2) + (c->success ? "" : "!") : "-");
        cells.push_back(c ? std::to_string(c->attempts) + "/" + std::to_string(c->massages)
                          : "-");
      }
    }
    t.row(cells);
  }
  return t;
}

// ---- SweepRunner -------------------------------------------------------------

SweepRunner::SweepRunner(models::ZooModel& model, std::string cache_dir, bool verbose)
    : model_(&model), cache_dir_(std::move(cache_dir)), verbose_(verbose) {}

SweepRunner::~SweepRunner() = default;

const compile::CompiledModel* SweepRunner::warm_compile() {
  if (!compile::enabled()) return nullptr;
  if (!compiled_) {
    compiled_ = std::make_unique<compile::CompiledModel>(model_->net);
    if (verbose_)
      std::printf("[sweep] compiled %s: %zu node(s), %zu fused\n", model_->name.c_str(),
                  compiled_->node_count(), compiled_->fused_nodes());
  }
  return compiled_.get();
}

std::size_t SweepRunner::fused_nodes() const { return compiled_ ? compiled_->fused_nodes() : 0; }

eval::AttackBench& SweepRunner::bench(const std::vector<std::string>& layers, bool weights,
                                      bool biases) {
  SweepSpec key_spec;
  key_spec.layers = layers;
  key_spec.weights = weights;
  key_spec.biases = biases;
  const std::string key = key_spec.surface_key();
  auto it = benches_.find(key);
  if (it == benches_.end())
    it = benches_
             .emplace(key, std::make_unique<eval::AttackBench>(*model_, cache_dir_, layers,
                                                               weights, biases))
             .first;
  return *it->second;
}

SweepResult SweepRunner::run(const std::vector<SweepSpec>& specs) {
  if (specs.empty()) throw std::invalid_argument("SweepRunner: empty sweep");
  const std::int64_t n = static_cast<std::int64_t>(specs.size());
  const eval::Stopwatch total;
  OBS_SPAN("sweep.run");
  static obs::Counter& rows_metric = obs::Registry::global().counter("fsa_sweep_rows_total");
  static obs::Histogram& row_ms_metric = obs::Registry::global().histogram(
      "fsa_sweep_row_ms", obs::exponential_bounds(1.0, 4.0, 12));

  // Serial prologue: per-surface benches (feature caches hit disk), attack
  // problem instances, and one shared Attacker per method. Everything the
  // parallel phase touches after this point is either task-local (network
  // clones) or read-only (features, specs, configs).
  struct Task {
    const SweepSpec* spec = nullptr;
    eval::AttackBench* bench = nullptr;
    std::shared_ptr<const Attacker> attacker;
    core::AttackSpec problem;
    std::size_t cut = 0;  ///< surface cut (compiled path: shared-prefix boundary)
  };
  const compile::CompiledModel* plan = warm_compile();  // nullptr when FSA_COMPILE=off
  std::vector<Task> tasks(static_cast<std::size_t>(n));
  std::map<std::string, std::shared_ptr<const Attacker>> method_cache;
  std::optional<obs::TraceSpan> prologue_span;
  prologue_span.emplace("sweep.prologue");
  for (std::int64_t i = 0; i < n; ++i) {
    Task& t = tasks[static_cast<std::size_t>(i)];
    t.spec = &specs[static_cast<std::size_t>(i)];
    t.bench = &bench(t.spec->layers, t.spec->weights, t.spec->biases);
    if (t.spec->attacker) {
      t.attacker = t.spec->attacker;
    } else if (t.spec->defense) {
      // Detection-aware methods retarget at THE guard this row faces, so
      // cache per (method, deployed defense); unaware methods come back
      // unchanged but keying them the same way is harmless.
      auto& cached = method_cache[t.spec->method + "@" + t.spec->defense->key()];
      if (!cached) cached = make_attacker_for(t.spec->method, *t.spec->defense);
      t.attacker = cached;
    } else {
      auto& cached = method_cache[t.spec->method];
      if (!cached) cached = make_attacker(t.spec->method);  // throws on unknown name
      t.attacker = cached;
    }
    t.problem = t.bench->spec(t.spec->S, t.spec->R, t.spec->seed, t.spec->policy);
    if (plan != nullptr)
      t.cut = core::ParamMask::make(model_->net, t.spec->layers, t.spec->weights, t.spec->biases)
                  .cut();
  }

  // Parallel phase: one task per instance, each on its own network clone.
  // Results land at their instance index, so row order (and content — the
  // solves are deterministic given the spec) is independent of scheduling.
  // Instances are claimed one at a time from an atomic queue rather than
  // pre-chunked: parallel_for's ~4-chunks-per-thread sizing would batch
  // several minutes-long solves into one unstealable chunk and leave
  // workers idle behind a straggler.
  SweepResult result;
  result.model = model_->name;
  result.backend = backend::active_name();
  result.workers = num_threads();
  result.compiled = plan != nullptr;
  result.fused_nodes = plan != nullptr ? static_cast<std::int64_t>(plan->fused_nodes()) : 0;
  result.rows.resize(static_cast<std::size_t>(n));
  prologue_span.reset();
  std::atomic<std::int64_t> next{0};
  const std::int64_t lanes = std::min<std::int64_t>(n, num_threads());
  parallel_for(0, lanes, 1, [&](std::int64_t, std::int64_t) {
    for (std::int64_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      const Task& t = tasks[static_cast<std::size_t>(i)];
      const eval::Stopwatch row_watch;
      // Attribution tag only materializes when tracing is on — and is
      // built with one allocation, not a concatenation chain: rows can be
      // tens of microseconds, so per-row telemetry cost must stay in the
      // noise (run_benches.sh gates the traced path at 3%).
      std::string row_tag;
      if (obs::trace_enabled()) {
        row_tag.reserve(96);
        row_tag += t.spec->method;
        row_tag += ' ';
        row_tag += t.spec->surface_key();
        row_tag += " S=";
        row_tag += std::to_string(t.spec->S);
        row_tag += " R=";
        row_tag += std::to_string(t.spec->R);
        row_tag += " seed=";
        row_tag += std::to_string(t.spec->seed);
        row_tag += " backend=";
        row_tag += backend::active_name();
        if (plan != nullptr) row_tag += " compiled";
      }
      OBS_SPAN("sweep.row", std::move(row_tag));
      // Compiled: O(δ-surface) instance — the prefix below the cut is
      // shared read-only with every other instance, only the attacked
      // head is deep-copied. Uncompiled: full deep clone (parity oracle).
      nn::Sequential net =
          plan != nullptr ? plan->instance_net(t.cut) : t.bench->model().net.clone();
      const core::ParamMask mask =
          core::ParamMask::make(net, t.spec->layers, t.spec->weights, t.spec->biases);
      const backend::ComputeBackend& be = backend::active();
      be.begin_attribution();  // this instance's kernels all run on this thread
      AttackReport rep = t.attacker->run(net, mask, t.problem);
      rep.seed = t.spec->seed;
      rep.backend = be.attribution();  // which kernels produced this row ("auto(...)")
      rep.clean_accuracy = t.bench->clean_test_accuracy();
      rep.compiled = plan != nullptr;
      if (t.spec->campaign) {
        // Lower δ to hardware: runs BEFORE the accuracy scatter below, while
        // the surface still holds θ0. The campaign seed mixes the config
        // seed with the row's spec seed so rows draw independent campaigns
        // while staying deterministic (and shard-count invariant).
        const CampaignConfig& cfg = *t.spec->campaign;
        const Tensor theta0 = mask.gather_values();
        const Tensor realized = faultsim::realize_in_format(theta0, rep.delta, cfg.format);
        const faultsim::BitFlipPlan plan =
            faultsim::plan_bit_flips(theta0, realized, cfg.layout);
        CampaignSummary summary;
        summary.format = faultsim::format_name(cfg.format);
        summary.shards = cfg.shards;
        summary.params_modified = plan.params_modified;
        summary.total_bit_flips = plan.total_bit_flips;
        summary.rows_touched = plan.rows_touched;
        const std::uint64_t campaign_seed = SplitMix64(cfg.seed ^ t.spec->seed).next();
        const faultsim::CampaignRunner campaign_runner(cfg.shards, campaign_seed);
        for (const std::string& injector : cfg.injectors)
          summary.reports.push_back(campaign_runner.run(injector, plan, cfg.layout));
        rep.campaign = std::move(summary);
      }
      if (t.spec->defense) {
        // Audit the row's δ with the deployed guard: arm on θ0, verify
        // the attacked parameters both before and after storage-format
        // lowering (quantization realization counts — a δ absorbed by
        // int8 rounding can't trip a checksum), sanitize, and re-measure
        // the S faults on the repaired parameters. Runs while the
        // surface still holds θ0; the clone is task-local, so
        // logits_at's scatter can't race.
        const Tensor theta0 = mask.gather_values();
        const defense::DefensePtr guard = defense::make_defense(*t.spec->defense);
        guard->snapshot(theta0);
        Tensor attacked = theta0;
        attacked += rep.delta;
        const defense::VerifyOutcome pre = guard->verify(attacked);
        const auto format = t.spec->campaign ? t.spec->campaign->format
                                             : faultsim::StorageFormat::kFloat32;
        Tensor stored = theta0;
        stored += faultsim::realize_in_format(theta0, rep.delta, format);
        const defense::VerifyOutcome post = guard->verify(stored);
        Tensor repaired = stored;
        const std::int64_t clamped = guard->sanitize(repaired);
        core::HeadGradient grad(net, mask);
        const Tensor logits = grad.logits_at(repaired, t.problem);
        const auto [hit, kept] = core::count_satisfied(logits, t.problem);
        (void)kept;
        mask.scatter_values(theta0);
        DefenseOutcome dout;
        dout.defense = t.spec->defense->key();
        dout.detected_pre = pre.detected;
        dout.detected_post = post.detected;
        dout.detected = pre.detected || post.detected;
        dout.regions_flagged = post.regions_flagged;
        dout.sanitize_clamped = clamped;
        dout.faults_after_sanitize = hit;
        dout.evaded = !dout.detected && t.spec->S > 0 && hit == t.spec->S;
        dout.overhead_bytes = guard->overhead_bytes();
        dout.verify_cost = guard->verify_cost();
        rep.defense = std::move(dout);
      }
      if (t.spec->measure_accuracy) {
        Tensor theta = mask.gather_values();  // == θ0: run() restored the surface
        theta += rep.delta;
        mask.scatter_values(theta);  // bumps surface param versions (panel COW)
        if (plan != nullptr) {
          // Fused head evaluation sharing the plan's pack-once panels;
          // panels of mutated surface layers repack privately on first
          // use (copy-on-write), so the result is bitwise the oracle's.
          compile::CompiledModel cm = plan->rebind(net);
          rep.test_accuracy = compile::head_accuracy(cm, mask.cut(), t.bench->test_features(),
                                                     t.bench->model().test.labels());
        } else {
          rep.test_accuracy = models::head_accuracy(net, mask.cut(), t.bench->test_features(),
                                                    t.bench->model().test.labels());
        }
      }
      if (verbose_)
        std::printf("[sweep %lld/%lld] %s %s S=%lld R=%lld seed=%llu: l0=%lld targets %lld/%lld"
                    " (%.1fs)\n",
                    static_cast<long long>(i + 1), static_cast<long long>(n),
                    rep.method.c_str(), t.spec->surface_key().c_str(),
                    static_cast<long long>(rep.S), static_cast<long long>(rep.R),
                    static_cast<unsigned long long>(rep.seed), static_cast<long long>(rep.l0),
                    static_cast<long long>(rep.targets_hit), static_cast<long long>(rep.S),
                    rep.seconds);
      SweepRow& row = result.rows[static_cast<std::size_t>(i)];
      row.spec = *t.spec;
      row.report = std::move(rep);
      rows_metric.inc();
      row_ms_metric.observe(row_watch.seconds() * 1000.0);
    }
  });

  result.seconds = total.seconds();
  if (verbose_)
    std::printf("[sweep] %lld instance(s) in %.1fs on %d worker(s)\n", static_cast<long long>(n),
                result.seconds, result.workers);
  return result;
}

}  // namespace fsa::engine
