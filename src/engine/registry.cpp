#include "engine/registry.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "engine/attackers.h"

namespace fsa::engine {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, AttackerFactory> factories;

  Registry() {
    auto fsa_with = [](core::NormKind norm) {
      return [norm] {
        core::FaultSneakingConfig cfg;
        cfg.admm.norm = norm;
        return std::make_unique<FsaAttacker>(cfg);
      };
    };
    factories["fsa-l0"] = fsa_with(core::NormKind::kL0);
    factories["fsa-l2"] = fsa_with(core::NormKind::kL2);
    factories["fsa-l1"] = fsa_with(core::NormKind::kL1);
    // Detection-aware variants ship aimed at the paper-default deployment
    // of the defense class they dodge; make_attacker_for retargets them
    // at whatever guard an arena row actually faces.
    auto evasive_with = [](core::NormKind norm, const char* target, const char* name) {
      return [norm, target, name] {
        core::FaultSneakingConfig cfg;
        cfg.admm.norm = norm;
        defense::DefenseConfig t;
        t.name = target;
        return std::make_unique<EvasiveFsaAttacker>(cfg, t, name);
      };
    };
    factories["fsa-l2-evasive"] = evasive_with(core::NormKind::kL2, "range", "fsa-l2-evasive");
    factories["fsa-l0-evasive"] = evasive_with(core::NormKind::kL0, "checksum", "fsa-l0-evasive");
    factories["gda"] = [] { return std::make_unique<GdaAttacker>(); };
    factories["sba"] = [] { return std::make_unique<SbaAttacker>(); };
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_attacker(const std::string& name, AttackerFactory factory) {
  if (name.empty()) throw std::invalid_argument("register_attacker: empty name");
  if (!factory) throw std::invalid_argument("register_attacker: null factory");
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  r.factories[name] = std::move(factory);
}

AttackerPtr make_attacker(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  const auto it = r.factories.find(name);
  if (it == r.factories.end()) {
    std::string known;
    for (const auto& [k, v] : r.factories) known += (known.empty() ? "" : ", ") + k;
    throw std::invalid_argument("unknown attack method \"" + name + "\" (known: " + known + ")");
  }
  return it->second();
}

AttackerPtr make_attacker_for(const std::string& name, const defense::DefenseConfig& defense) {
  AttackerPtr a = make_attacker(name);
  if (const auto* ev = dynamic_cast<const EvasiveFsaAttacker*>(a.get()))
    return ev->retargeted(defense);
  return a;
}

bool has_attacker(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  return r.factories.count(name) > 0;
}

std::vector<std::string> attacker_names() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::string> out;
  out.reserve(r.factories.size());
  for (const auto& [k, v] : r.factories) out.push_back(k);
  return out;
}

}  // namespace fsa::engine
