// gda.h — Gradient Descent Attack baseline (Liu et al., ICCAD 2017, §"GDA").
//
// GDA perturbs a chosen parameter subset by plain gradient descent on the
// misclassification loss of the fault images, then COMPRESSES the
// modification: repeatedly zero the smallest-magnitude entries of δ and
// keep the zeroing only if the attack still succeeds (their "feasibility
// check"). Two structural differences from the fault sneaking attack that
// the paper calls out:
//   * no stealth term — nothing constrains the other images, so accuracy
//     collapses faster (the §5.4 comparison);
//   * compression is a greedy heuristic around a differentiable loss — it
//     cannot optimize the ℓ0 norm directly the way the ADMM prox does.
#pragma once

#include "core/attack_spec.h"
#include "core/head_gradient.h"
#include "core/param_mask.h"

namespace fsa::baseline {

struct GdaConfig {
  std::int64_t gd_steps = 400;
  double lr = 2e-2;
  double eps = 0.1;             ///< success confidence margin during descent
  std::int64_t max_compress_rounds = 40;
  double compress_fraction = 0.25;  ///< initial fraction of support zeroed per try
  bool verbose = false;
};

struct GdaResult {
  Tensor delta;                 ///< flat modification over the mask
  std::int64_t l0 = 0;
  double l2 = 0.0;
  std::int64_t targets_hit = 0;
  bool success = false;         ///< all S faults classified as targets
  double seconds = 0.0;
};

class GradientDescentAttack {
 public:
  GradientDescentAttack(nn::Sequential& net, const core::ParamMask& mask)
      : net_(&net), mask_(&mask), theta0_(mask.gather_values()) {}

  /// Attack the first `spec.S` images (maintained rows, if any, are ignored
  /// — GDA has no stealth constraint). Network restored to θ0 on return.
  GdaResult run(const core::AttackSpec& spec, const GdaConfig& cfg = {});

 private:
  /// True if all S faults hold with margin `eps` at θ0 + delta.
  bool feasible(const Tensor& delta, const core::AttackSpec& spec, double eps);

  nn::Sequential* net_;
  const core::ParamMask* mask_;
  Tensor theta0_;
};

}  // namespace fsa::baseline
