#include "baseline/sba.h"

#include <stdexcept>

#include "nn/dense.h"

namespace fsa::baseline {

SbaResult single_bias_attack(nn::Sequential& net, const std::string& final_layer,
                             const Tensor& features, std::int64_t target, double eps) {
  const std::size_t li = net.index_of(final_layer);
  auto* dense = dynamic_cast<nn::Dense*>(&net.layer(li));
  if (dense == nullptr)
    throw std::invalid_argument("single_bias_attack: '" + final_layer + "' is not a Dense layer");
  if (features.shape().rank() != 2 || features.dim(0) != 1 ||
      features.dim(1) != dense->in_features())
    throw std::invalid_argument("single_bias_attack: features must be [1, in_features]");
  if (target < 0 || target >= dense->out_features())
    throw std::invalid_argument("single_bias_attack: target out of range");

  const Tensor logits = net.forward_from(li, features, /*train=*/false);
  // Required bias lift: make Z_target exceed the strongest other logit by eps.
  float strongest_other = -1e30f;
  for (std::int64_t j = 0; j < dense->out_features(); ++j)
    if (j != target) strongest_other = std::max(strongest_other, logits.at2(0, j));
  const float need = strongest_other - logits.at2(0, target) + static_cast<float>(eps);

  SbaResult out;
  out.bias_index = target;
  out.old_value = dense->bias().value()[static_cast<std::size_t>(target)];
  out.new_value = out.old_value + std::max(need, 0.0f);
  out.modification = std::max(need, 0.0f);
  dense->bias().value()[static_cast<std::size_t>(target)] = out.new_value;
  out.success = true;
  return out;
}

}  // namespace fsa::baseline
