#include "baseline/gda.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "tensor/ops.h"

namespace fsa::baseline {

namespace {
/// Spec with only the fault rows (GDA ignores the maintained images).
core::AttackSpec faults_only(const core::AttackSpec& spec) {
  core::AttackSpec out;
  out.S = spec.S;
  out.features = spec.features.slice0(0, spec.S);
  out.labels.assign(spec.labels.begin(), spec.labels.begin() + spec.S);
  if (!spec.c.empty()) out.c.assign(spec.c.begin(), spec.c.begin() + spec.S);
  return out;
}
}  // namespace

bool GradientDescentAttack::feasible(const Tensor& delta, const core::AttackSpec& spec,
                                     double eps) {
  core::HeadGradient grad(*net_, *mask_);
  Tensor theta = theta0_;
  theta += delta;
  const Tensor logits = grad.logits_at(theta, spec);
  const core::MarginEval e = core::eval_margin(logits, spec, 0.0);
  for (std::int64_t i = 0; i < spec.S; ++i)
    if (e.margins[static_cast<std::size_t>(i)] > -eps) return false;
  return true;
}

GdaResult GradientDescentAttack::run(const core::AttackSpec& spec, const GdaConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::AttackSpec faults = faults_only(spec);
  core::HeadGradient grad(*net_, *mask_);

  // ---- phase 1: plain gradient descent on the fault hinge loss -------------
  Tensor delta = Tensor::zeros(Shape({mask_->size()}));
  Tensor theta = theta0_;
  for (std::int64_t step = 0; step < cfg.gd_steps; ++step) {
    auto res = grad.eval(theta, faults, /*c_scale=*/1.0, /*kappa=*/cfg.eps, /*want_grad=*/true);
    if (res.eval.total_g == 0.0) break;  // every fault holds with margin eps
    const double lr = cfg.lr / std::sqrt(1.0 + static_cast<double>(step) / 50.0);
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] -= static_cast<float>(lr * res.grad[i]);
      theta[i] = theta0_[i] + delta[i];
    }
  }

  // ---- phase 2: modification compression -----------------------------------
  // Zero the smallest-|δ| entries in shrinking chunks, keeping a zeroing only
  // if the faults remain feasible.
  if (feasible(delta, faults, cfg.eps * 0.5)) {
    double fraction = cfg.compress_fraction;
    for (std::int64_t round = 0; round < cfg.max_compress_rounds; ++round) {
      std::vector<std::size_t> support;
      for (std::size_t i = 0; i < delta.size(); ++i)
        if (delta[i] != 0.0f) support.push_back(i);
      if (support.empty()) break;
      std::sort(support.begin(), support.end(), [&](std::size_t a, std::size_t b) {
        return std::fabs(delta[a]) < std::fabs(delta[b]);
      });
      const auto chunk =
          std::max<std::size_t>(1, static_cast<std::size_t>(fraction * static_cast<double>(support.size())));
      Tensor trial = delta;
      for (std::size_t k = 0; k < chunk && k < support.size(); ++k) trial[support[k]] = 0.0f;
      if (feasible(trial, faults, cfg.eps * 0.5)) {
        delta = trial;
      } else if (chunk == 1) {
        break;  // even the single smallest entry is load-bearing
      } else {
        fraction *= 0.5;  // too greedy — try a smaller chunk next round
      }
      if (cfg.verbose)
        std::printf("[gda] compress round %lld: l0=%lld\n", static_cast<long long>(round),
                    static_cast<long long>(ops::l0_norm(delta)));
    }
  }

  // ---- measure ---------------------------------------------------------------
  theta = theta0_;
  theta += delta;
  const Tensor logits = grad.logits_at(theta, faults);
  const auto [hit, kept] = core::count_satisfied(logits, faults);
  (void)kept;
  mask_->scatter_values(theta0_);

  GdaResult out;
  out.delta = std::move(delta);
  out.l0 = ops::l0_norm(out.delta);
  out.l2 = ops::l2_norm(out.delta);
  out.targets_hit = hit;
  out.success = hit == faults.S;
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace fsa::baseline
