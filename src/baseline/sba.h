// sba.h — Single Bias Attack baseline (Liu et al., ICCAD 2017, §"SBA").
//
// SBA misclassifies ONE input by enlarging a single bias of an output
// neuron: raising b_t until Z_t leads. It is the cheapest possible fault
// (ℓ0 = 1) but, as the fault-sneaking paper stresses, it has no stealth
// mechanism — the raised bias lifts Z_t for EVERY input, so test accuracy
// collapses toward the target class. We reproduce it to regenerate the
// paper's §5.4 comparison (SBA loses 3.86% MNIST accuracy vs our 0.8%)
// and Table 2's point that bias-only attacks cannot scale past 1–2 faults.
#pragma once

#include "core/attack_spec.h"
#include "core/param_mask.h"
#include "nn/sequential.h"

namespace fsa::baseline {

struct SbaResult {
  bool success = false;
  std::int64_t bias_index = -1;  ///< output-class index whose bias was changed
  float old_value = 0.0f;
  float new_value = 0.0f;
  double modification = 0.0;     ///< |new − old| (the ℓ2 norm; ℓ0 is 1)
};

/// Make the single image with cut-point activations `features` ([1, F])
/// classify as `target` by raising the target's bias in the FINAL dense
/// layer, with a confidence margin `eps`. Mutates the network (callers
/// snapshot/restore via ParamMask if needed). Fails only if the final
/// layer has no bias for `target`.
SbaResult single_bias_attack(nn::Sequential& net, const std::string& final_layer,
                             const Tensor& features, std::int64_t target, double eps = 0.1);

}  // namespace fsa::baseline
