#include "dist/reducer.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "engine/arena.h"
#include "faultsim/injector.h"
#include "faultsim/profile.h"

namespace fsa::dist {

namespace {

// ---- campaign ----------------------------------------------------------------

class CampaignReducer final : public Reducer {
 public:
  [[nodiscard]] std::string kind() const override { return "campaign"; }

  [[nodiscard]] eval::Json reduce(const eval::Json& manifest,
                                  const std::vector<eval::Json>& shard_results) const override {
    // Replay the calibration the shards ran under: cost_seconds must use
    // the same parameters on the merged counters.
    if (manifest.has("injector_profile"))
      faultsim::load_injector_profile(manifest.at("injector_profile"));
    const std::string name = manifest.at("injector").as_string();
    const faultsim::InjectorPtr injector = faultsim::make_injector(name);

    std::vector<faultsim::CampaignReport> parts;
    parts.reserve(shard_results.size());
    for (const eval::Json& r : shard_results) {
      const faultsim::CampaignReport part =
          faultsim::CampaignReport::from_json(r.has("report") ? r.at("report") : r);
      if (!part.injector.empty() && part.injector != name)
        throw std::runtime_error("campaign reduce: shard report from injector \"" +
                                 part.injector + "\" in a \"" + name + "\" job");
      parts.push_back(part);
    }
    const faultsim::CampaignReport total = injector->merge(parts);

    eval::Json out = eval::Json::object();
    out.set("kind", eval::Json::string("campaign"));
    out.set("injector", eval::Json::string(name));
    out.set("shards", eval::Json::number(manifest.get_int("shards",
                static_cast<std::int64_t>(shard_results.size()))));
    out.set("report", total.to_json());
    return out;
  }
};

// ---- sweep -------------------------------------------------------------------

/// Canonical row order: the union key from the issue contract, with the
/// global instance index as the final tiebreaker so duplicate cells (same
/// method/surface/S/R/seed added twice) still order deterministically.
struct RowKey {
  std::string method, surface, tag;
  std::int64_t S = 0, R = 0, index = 0;
  std::uint64_t seed = 0;

  explicit RowKey(const eval::Json& row) {
    method = row.get_string("method", "");
    surface = row.get_string("surface", "");
    tag = row.get_string("tag", "");
    S = row.get_int("S", 0);
    R = row.get_int("R", 0);
    index = row.get_int("index", 0);
    const std::string s = row.get_string("seed", "0");
    seed = s.empty() ? 0 : std::stoull(s);
  }

  [[nodiscard]] auto tie() const { return std::tie(method, surface, S, R, seed, tag, index); }
};

/// Shared row reduction for sweep-shaped jobs: union every shard's rows,
/// sort canonically, scrub the nondeterministic solve wall time.
eval::Json reduce_rows(const char* kind, const eval::Json& manifest,
                       const std::vector<eval::Json>& shard_results) {
  std::vector<eval::Json> rows;
  for (const eval::Json& r : shard_results)
    if (r.has("rows"))
      for (const eval::Json& row : r.at("rows").items()) rows.push_back(row);
  std::sort(rows.begin(), rows.end(),
            [](const eval::Json& a, const eval::Json& b) { return RowKey(a).tie() < RowKey(b).tie(); });

  eval::Json arr = eval::Json::array();
  for (eval::Json& row : rows) {
    // Solve wall time is the one nondeterministic field in a row; zero it
    // so the reduced document is canonical. (Campaign seconds stay: they
    // are recomputed from exact integer counters.)
    row.set("seconds", eval::Json::number(0.0));
    // Convergence curves exist only when the worker ran with FSA_TRACE on;
    // strip them so reduced bytes are identical with telemetry on or off.
    // (They remain available in the per-shard results and via --out rows.)
    row.remove("convergence");
    arr.push_back(std::move(row));
  }

  eval::Json out = eval::Json::object();
  out.set("kind", eval::Json::string(kind));
  out.set("dataset", eval::Json::string(manifest.get_string("dataset", "")));
  out.set("backend", eval::Json::string(manifest.get_string("backend", "")));
  out.set("shards", eval::Json::number(manifest.get_int("shards",
              static_cast<std::int64_t>(shard_results.size()))));
  out.set("rows", std::move(arr));
  return out;
}

class SweepReducer final : public Reducer {
 public:
  [[nodiscard]] std::string kind() const override { return "sweep"; }

  [[nodiscard]] eval::Json reduce(const eval::Json& manifest,
                                  const std::vector<eval::Json>& shard_results) const override {
    return reduce_rows("sweep", manifest, shard_results);
  }
};

// ---- arena -------------------------------------------------------------------

/// Sweep reduction plus the evasion frontier, aggregated from the
/// CANONICAL row order so the frontier is as worker-count-invariant as
/// the rows it summarizes.
class ArenaReducer final : public Reducer {
 public:
  [[nodiscard]] std::string kind() const override { return "arena"; }

  [[nodiscard]] eval::Json reduce(const eval::Json& manifest,
                                  const std::vector<eval::Json>& shard_results) const override {
    eval::Json out = reduce_rows("arena", manifest, shard_results);
    out.set("frontier", engine::arena_frontier(out.at("rows")));
    return out;
  }
};

}  // namespace

std::unique_ptr<Reducer> make_reducer(const std::string& kind) {
  if (kind == "arena") return std::make_unique<ArenaReducer>();
  if (kind == "campaign") return std::make_unique<CampaignReducer>();
  if (kind == "sweep") return std::make_unique<SweepReducer>();
  throw std::invalid_argument("unknown reducer kind \"" + kind +
                              "\" (known: arena, campaign, sweep)");
}

eval::Json reduce_job(const JobDir& job) {
  // A corrupt result must surface as a MISSING shard (so the caller
  // re-runs it), not as a parse error mid-reduction.
  job.validate_results();
  const JobStatus st = job.status();
  if (!st.missing.empty()) {
    std::string missing;
    for (int s : st.missing) missing += (missing.empty() ? "" : ", ") + std::to_string(s);
    throw std::runtime_error("dist: cannot reduce " + job.path() + ": missing result(s) for shard " +
                             missing + " (run the workers first, or `dist run` to resume)");
  }
  std::vector<eval::Json> results;
  results.reserve(static_cast<std::size_t>(job.shards()));
  for (int s = 0; s < job.shards(); ++s) results.push_back(job.result(s));
  return make_reducer(job.kind())->reduce(job.manifest(), results);
}

}  // namespace fsa::dist
