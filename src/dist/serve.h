// serve.h — the coordinator-free worker daemon behind `fsa_cli dist serve`.
//
// `dist run` (jobs.h) is a coordinator: one living process owns a job and
// fans children out over its missing shards. serve() is the opposite
// discipline — no process owns anything. Each worker polls one or more
// job directories, claims missing shards one at a time through O_EXCL
// lease files (lease.h), runs the claimed shard in a child process (the
// same `--run-shard` worker contract) while renewing the lease heartbeat,
// and releases the lease after the result lands via the atomic tmp+rename
// path. Heterogeneous hosts drain one queue by simply running serve()
// against the same directory on shared storage.
//
// Crash tolerance: a worker that dies — SIGKILL, power loss, a wedged
// host — simply stops renewing its heartbeat. Any other worker that finds
// a lease older than the expiry reclaims it and re-runs the shard, so
// progress never blocks on a human. Reclamation races at worst duplicate
// a shard's execution, and duplicates are harmless: shard work is a pure
// function of the manifest and results are written atomically, so the
// reduction cannot change by a byte.
//
// Scheduling is cost-aware: claimable shards are attempted longest-first
// by the manifest's per-shard `plan_cost` estimates (schedule_longest_
// first, jobs.h). Determinism is free — the reduction is order-independent
// — and draining the expensive shards first minimizes the tail.
#pragma once

#include <string>
#include <vector>

namespace fsa::dist {

struct ServeOptions {
  std::vector<std::string> jobs;  ///< job directories to poll (≥ 1)
  int poll_ms = 500;              ///< idle sleep between poll cycles
  int lease_expiry_ms = 15000;    ///< heartbeats older than this are reclaimed
  int heartbeat_ms = 0;           ///< renewal cadence; 0 → lease_expiry_ms / 4
  bool once = false;       ///< drain everything claimable, then exit (no idle wait)
  int max_shards = 0;      ///< stop after running this many shards (0 = unlimited)
  int max_shard_failures = 3;  ///< give up claiming a shard after this many local failures
  bool verbose = true;
  std::string owner;  ///< lease owner id; empty → fresh lease_owner_id()
  std::vector<std::string> extra_argv;  ///< appended to every worker argv (tests)
};

/// What one serve() lifetime did.
struct ServeReport {
  int shards_run = 0;        ///< results this worker produced
  int shards_failed = 0;     ///< claimed runs that exited nonzero (lease released)
  int shards_reclaimed = 0;  ///< stale leases taken over from dead workers
  int jobs_reduced = 0;      ///< reduced.json documents this worker wrote
  bool drained = false;      ///< exited on SIGTERM/SIGINT after finishing in flight
};

/// Run the serve loop: poll `options.jobs`, claim/run/release shards with
/// `exe` as the worker binary (the fsa_cli --run-shard contract), reduce
/// any job whose last result lands, and return when the options say so —
/// `once` drains and exits, `max_shards` caps the work, SIGTERM/SIGINT
/// drain gracefully (the in-flight shard is finished and its lease
/// released; nothing new is claimed). Without any of those, serves
/// forever. Throws std::invalid_argument on unusable options.
ServeReport serve(const ServeOptions& options, const std::string& exe);

}  // namespace fsa::dist
