// worker_pool.h — bounded fork/exec fan-out over shard worker processes.
//
// The process-level sibling of tensor/parallel.h: where the thread pool
// shards work inside one address space, WorkerPool spawns one CHILD
// PROCESS per shard — at most `workers` in flight — and waits for them.
// Children are fully described by their argv (the fsa_cli shard-worker
// contract, see jobs.h) and their stdout/stderr is appended to a per-shard
// log file, so a worker can run unchanged on another machine against the
// same job directory.
//
// Failure policy: a child that exits nonzero (or dies on a signal) is
// re-spawned up to `max_attempts` total tries — crash recovery is safe
// because shard results are written atomically and shard work is a pure
// function of the manifest, so a retry can only produce the identical
// result file. Shards that still fail are reported, never silently
// dropped.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

namespace fsa::dist {

struct WorkerOptions {
  int workers = 1;       ///< max concurrent child processes
  int max_attempts = 2;  ///< total tries per shard (1 initial + retries)
  bool verbose = false;  ///< narrate spawns/retries/failures to stderr
  /// Base delay before respawning a failed shard. The k-th retry waits
  /// base * 2^(k-1), jittered uniformly in [0.5x, 1.5x) and capped at 10 s,
  /// so a crash-looping shard never hot-loops fork/exec and simultaneous
  /// retries de-synchronize. 0 disables the delay (immediate respawn).
  int retry_backoff_ms = 100;
};

/// Outcome of one shard's (possibly retried) execution.
struct ShardRun {
  int shard = 0;
  int attempts = 0;   ///< spawns consumed (1 = first try succeeded)
  int exit_code = 0;  ///< final child status: 0 ok, 128+sig for signals, 127 exec failure
};

class WorkerPool {
 public:
  explicit WorkerPool(WorkerOptions options);

  /// Execute every shard in `shards`: spawn `argv_for(shard)` (argv[0] is
  /// the executable path) with stdout/stderr appended to
  /// `log_for(shard)`, keeping at most `workers` children alive. Returns
  /// one ShardRun per shard, sorted by shard index. Throws only on
  /// spawn-machinery failure (fork); child failures are reported in the
  /// ShardRuns.
  std::vector<ShardRun> run(const std::vector<int>& shards,
                            const std::function<std::vector<std::string>(int)>& argv_for,
                            const std::function<std::string(int)>& log_for) const;

 private:
  WorkerOptions options_;
};

/// Spawn one worker child: redirect stdout+stderr to `log` (append, parent
/// directories created), exec `argv` (argv[0] is the executable; a bare
/// name resolves via PATH). Returns the child pid; the child exits 127 on
/// exec failure. Shared by WorkerPool and the `dist serve` daemon.
pid_t spawn_worker(const std::vector<std::string>& argv, const std::string& log);

/// Collapse a waitpid status into one exit code: the child's own code,
/// 128+sig for a signal death, -1 for anything else.
int decode_exit_status(int status);

/// Absolute path of the running executable (/proc/self/exe when available,
/// else `argv0` resolved against the cwd) — what a process passes as the
/// worker argv[0] to fan SHARDS of its own job out to copies of itself.
std::string self_exe(const char* argv0 = nullptr);

}  // namespace fsa::dist
