// jobs.h — campaign & sweep jobs over the JobDir protocol.
//
// Ties the pieces together: planners produce self-contained manifests,
// create_*_job lays them out as job directories, run_*_shard is the pure
// worker entry a child process (fsa_cli's --run-shard mode, or any binary
// honoring the same contract) executes for one shard, and run_job is the
// coordinator loop — spawn workers for every shard still missing a
// result, then reduce.
//
// Worker contract (what run_job execs, and what --run-shard implements):
//
//   <exe> <kind> --run-shard <job>/manifest.json --shard <i>
//         --out <job>/results/shard_<i>.json
//
// with stdout/stderr appended to <job>/logs/shard_<i>.log. A worker needs
// nothing else: campaign manifests carry every flip, seed, attribution
// and calibration profile; sweep manifests carry every instance spec plus
// the dataset and backend names (the model itself comes from the shared
// FSA_CACHE_DIR, which the coordinator warms before spawning).
#pragma once

#include <string>
#include <vector>

#include "dist/job_dir.h"
#include "engine/sweep.h"
#include "faultsim/campaign.h"

namespace fsa::dist {

// ---- campaign jobs -----------------------------------------------------------

/// Lay `planner`'s manifest for `plan` out as a campaign job directory
/// with one result slot per planner shard.
JobDir create_campaign_job(const std::string& dir, const faultsim::CampaignPlanner& planner,
                           const faultsim::BitFlipPlan& plan,
                           const faultsim::MemoryLayout& layout);

/// Worker entry: simulate shard `index` of a campaign manifest (as
/// emitted by CampaignPlanner::manifest) and return the shard result
/// document. Applies the manifest's embedded calibration profile, so the
/// cost model matches the planning process exactly. Throws on an index
/// outside [0, manifest shards).
eval::Json run_campaign_shard(const eval::Json& manifest, int index);

// ---- sweep jobs --------------------------------------------------------------

/// Self-contained sweep manifest: one shard per instance spec, plus the
/// dataset/backend names workers need to rebuild the runner and the
/// active injector calibration profile (when one is loaded).
eval::Json sweep_manifest(const std::string& dataset, const std::string& backend,
                          const std::vector<engine::SweepSpec>& specs);

/// A sweep manifest with kind "arena": same shard layout and worker
/// behavior (run_sweep_shard serves both kinds), but the reducer also
/// aggregates the evasion frontier. Every spec must carry a defense.
eval::Json arena_manifest(const std::string& dataset, const std::string& backend,
                          const std::vector<engine::SweepSpec>& specs);

/// Lay a sweep manifest out as a job directory.
JobDir create_sweep_job(const std::string& dir, const eval::Json& manifest);

/// Worker entry: solve shard `index` of a sweep manifest on `runner` and
/// return the shard result document ({"rows": [...]}, each row an
/// AttackReport object carrying its global instance index). The caller
/// owns the runner so tests drive this with any model; fsa_cli builds one
/// from the manifest's dataset. Throws on an index outside the manifest.
eval::Json run_sweep_shard(const eval::Json& manifest, int index, engine::SweepRunner& runner);

/// Format a runner result's rows the way sweep shard results carry them:
/// one AttackReport object per row, plus "tag" (when the spec has one)
/// and the caller-supplied global instance index. Shared by
/// run_sweep_shard and the fsa_serve batched executor so both paths emit
/// byte-identical rows. `indices` must parallel `result.rows`.
eval::Json sweep_rows_json(const engine::SweepResult& result,
                           const std::vector<std::size_t>& indices);

/// Resume-or-create: open the job at `dir` if one exists — verifying its
/// kind AND that its stored manifest is byte-identical to `manifest`, so
/// a leftover directory from a DIFFERENT request can never be silently
/// re-served as the answer to this one — or lay out a fresh job. Throws
/// std::invalid_argument on a kind or manifest mismatch.
JobDir open_or_create_job(const std::string& dir, const std::string& kind,
                          const eval::Json& manifest);

// ---- scheduling --------------------------------------------------------------

/// Per-shard cost estimates from a manifest's "shard_costs" array
/// (campaign manifests carry Injector::plan_cost per shard; sweep
/// manifests a work proxy per spec). Legacy manifests without the array
/// get all-zero costs — every scheduling decision then degrades to plain
/// index order.
std::vector<double> manifest_shard_costs(const eval::Json& manifest);

/// Order `shards` longest-first by `costs` (stable: ties keep ascending
/// index order, and all-zero costs leave the input order intact). Running
/// the expensive shards first minimizes the drain tail under any worker
/// count; the reduction is order-independent, so this is free. Indices
/// outside `costs` count as zero cost.
std::vector<int> schedule_longest_first(std::vector<int> shards, const std::vector<double>& costs);

// ---- coordination ------------------------------------------------------------

struct RunJobOptions {
  int workers = 1;
  int max_attempts = 2;  ///< total tries per shard (1 initial + retries)
  bool verbose = true;
  std::vector<std::string> extra_argv;  ///< appended to every worker argv (tests)
  int retry_backoff_ms = 100;  ///< WorkerOptions::retry_backoff_ms for the pool
};

/// Coordinator loop: quarantine corrupt results, spawn `exe` workers (per
/// the contract above) for every shard of `job` missing a result —
/// longest-first by the manifest's shard costs — reduce, write
/// reduced.json, and return the reduced document. Resume-friendly:
/// completed shards are never re-run, and a corrupt/truncated result file
/// is moved aside to `.bad` and its shard re-executed instead of aborting
/// the job. Throws listing shard index, exit code and log path when a
/// shard still fails after the bounded retries.
eval::Json run_job(const JobDir& job, const std::string& exe, const RunJobOptions& options);

/// run_job for a THROWAWAY job directory (the CLI's `--workers` mode
/// without `--job`): on success the directory is removed; on failure it
/// is retained — its logs are the only diagnosis trail — and the error
/// is rethrown with the retained path appended, so an ad-hoc job can
/// never leak a nameless temp directory silently.
eval::Json run_temp_job(const JobDir& job, const std::string& exe, const RunJobOptions& options);

}  // namespace fsa::dist
