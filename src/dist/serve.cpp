#include "dist/serve.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "dist/jobs.h"
#include "dist/lease.h"
#include "dist/reducer.h"
#include "dist/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsa::dist {

namespace {

namespace fs = std::filesystem;

// SIGTERM/SIGINT request a graceful drain: finish (never abandon) the
// in-flight shard, release its lease, claim nothing new, exit.
volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

struct SignalGuard {
  struct sigaction old_term = {};
  struct sigaction old_int = {};
  SignalGuard() {
    g_stop = 0;
    struct sigaction sa = {};
    sa.sa_handler = handle_stop;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);
  }
  ~SignalGuard() {
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
  }
};

void sleep_interruptible(int ms) {
  for (int waited = 0; waited < ms && !g_stop; waited += 20)
    ::usleep(static_cast<useconds_t>(std::min(20, ms - waited)) * 1000);
}

/// Local give-up bookkeeping for a shard that keeps failing: exponential
/// backoff between attempts (so a broken shard never hot-loops fork/exec
/// across the cluster), a hard local cap after which this worker leaves
/// the shard to someone else.
struct ShardBackoff {
  int failures = 0;
  std::int64_t not_before_ms = 0;
};

std::int64_t backoff_delay_ms(int poll_ms, int failures) {
  const int shift = std::min(failures - 1, 6);
  return std::min<std::int64_t>(static_cast<std::int64_t>(poll_ms) << shift, 30000);
}

struct JobState {
  JobDir job;
  std::vector<double> costs;    ///< per-shard plan_cost estimates (manifest)
  std::set<int> validated;      ///< result files already seen parsing clean
  std::map<int, ShardBackoff> backoff;
};

void maybe_reduce(const JobDir& job, ServeReport& rep, const ServeOptions& opts) {
  std::error_code ec;
  if (fs::is_regular_file(job.reduced_path(), ec)) return;
  try {
    // Any worker may reduce: the document is deterministic and the write
    // is atomic, so concurrent reducers are last-one-wins over identical
    // bytes.
    job.write_reduced(reduce_job(job));
    ++rep.jobs_reduced;
    obs::Registry::global().counter("fsa_dist_jobs_reduced_total").inc();
    // Sidecars ride along when the shard workers ran with FSA_METRICS on;
    // merging them never touches reduced.json (byte-identity contract).
    const int telemetry = merge_job_telemetry(job);
    if (opts.verbose) {
      std::fprintf(stderr, "[serve] %s: all %d shard(s) done, reduced.json written\n",
                   job.path().c_str(), job.shards());
      if (telemetry > 0)
        std::fprintf(stderr, "[serve] %s: merged %d telemetry sidecar(s) into telemetry.json\n",
                     job.path().c_str(), telemetry);
    }
  } catch (const std::exception& e) {
    // A result was quarantined or vanished between the listing and the
    // reduce — the next poll cycle re-runs that shard.
    if (opts.verbose)
      std::fprintf(stderr, "[serve] %s: reduce deferred: %s\n", job.path().c_str(), e.what());
  }
}

/// Run one claimed shard in a child process, renewing the lease heartbeat
/// until the child exits. Returns true when the child exited 0 and its
/// result landed. The lease is released iff it is still ours; a lease
/// lost to a reclaimer (this worker was wedged past the expiry) is left
/// alone — but the shard is still finished, because the result write is
/// atomic and duplicate execution is harmless.
bool run_claimed_shard(const JobDir& job, int shard, const std::string& exe,
                       const ServeOptions& opts, const std::string& owner, int heartbeat_ms) {
  OBS_SPAN("dist.shard", !obs::trace_enabled()
                             ? std::string()
                             : job.kind() + " shard=" + std::to_string(shard));
  std::vector<std::string> argv = {exe,           job.kind(),
                                   "--run-shard", job.manifest_path(),
                                   "--shard",     std::to_string(shard),
                                   "--out",       job.result_path(shard)};
  argv.insert(argv.end(), opts.extra_argv.begin(), opts.extra_argv.end());
  const std::string lease = job.lease_path(shard);
  const pid_t pid = spawn_worker(argv, job.log_path(shard));
  if (opts.verbose)
    std::fprintf(stderr, "[serve] %s shard %d: claimed, worker pid %d\n", job.path().c_str(),
                 shard, static_cast<int>(pid));

  bool ours = true;
  std::int64_t last_renew = lease_now_ms();
  int status = 0;
  for (;;) {
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) break;
    if (got < 0 && errno != EINTR)
      throw std::runtime_error(std::string("serve: waitpid failed: ") + std::strerror(errno));
    const std::int64_t now = lease_now_ms();
    if (ours && now - last_renew >= heartbeat_ms) {
      ours = renew_lease(lease, owner, now);
      last_renew = now;
      if (!ours && opts.verbose)
        std::fprintf(stderr,
                     "[serve] %s shard %d: lease lost to a reclaimer; finishing anyway\n",
                     job.path().c_str(), shard);
    }
    ::usleep(10 * 1000);
  }

  const int code = decode_exit_status(status);
  const bool ok = code == 0 && job.has_result(shard);
  obs::Registry::global()
      .counter(ok ? "fsa_dist_shards_run_total" : "fsa_dist_shards_failed_total")
      .inc();
  if (ours) release_lease(lease, owner);
  if (opts.verbose) {
    if (ok)
      std::fprintf(stderr, "[serve] %s shard %d: done\n", job.path().c_str(), shard);
    else
      std::fprintf(stderr, "[serve] %s shard %d: FAILED with exit code %d, lease released (see %s)\n",
                   job.path().c_str(), shard, code, job.log_path(shard).c_str());
  }
  return ok;
}

}  // namespace

ServeReport serve(const ServeOptions& options, const std::string& exe) {
  if (options.jobs.empty())
    throw std::invalid_argument("serve: at least one job directory is required");
  if (options.poll_ms < 1)
    throw std::invalid_argument("serve: poll interval must be >= 1 ms");
  if (options.lease_expiry_ms < 2)
    throw std::invalid_argument("serve: lease expiry must be >= 2 ms");
  const int heartbeat = options.heartbeat_ms > 0
                            ? options.heartbeat_ms
                            : std::max(1, std::min(options.lease_expiry_ms / 4, 5000));
  if (heartbeat >= options.lease_expiry_ms)
    throw std::invalid_argument("serve: heartbeat cadence must be shorter than the lease expiry");
  const std::string owner = options.owner.empty() ? lease_owner_id() : options.owner;

  SignalGuard signals;
  std::map<std::string, JobState> states;
  ServeReport rep;
  if (options.verbose)
    std::fprintf(stderr, "[serve] worker %s: polling %zu job dir(s), poll %d ms, expiry %d ms\n",
                 owner.c_str(), options.jobs.size(), options.poll_ms, options.lease_expiry_ms);

  while (!g_stop) {
    bool attempted = false;        // ran (or tried to run) a shard this cycle
    bool claimable_later = false;  // unfinished work that could still become ours
    bool all_done = true;

    for (const std::string& path : options.jobs) {
      if (g_stop) break;
      auto it = states.find(path);
      if (it == states.end()) {
        if (!JobDir::exists(path)) {
          // Not laid out yet: a daemon keeps polling for it; a --once
          // drain has nothing to wait for.
          all_done = false;
          if (!options.once) claimable_later = true;
          continue;
        }
        JobDir opened = JobDir::open(path);  // sweeps orphaned tmp files
        std::vector<double> costs = manifest_shard_costs(opened.manifest());
        if (static_cast<int>(costs.size()) != opened.shards())
          costs.assign(static_cast<std::size_t>(opened.shards()), 0.0);
        it = states.emplace(path, JobState{opened, std::move(costs), {}, {}}).first;
        if (options.verbose)
          std::fprintf(stderr, "[serve] %s: %s job, %d shard(s)\n", path.c_str(),
                       opened.kind().c_str(), opened.shards());
      }
      JobState& st = it->second;
      const JobDir& job = st.job;

      // Quarantine corrupt results so their shards re-enter the queue;
      // each clean file is parse-checked once, then trusted.
      for (int s = 0; s < job.shards(); ++s) {
        if (st.validated.count(s) != 0 || !job.has_result(s)) continue;
        try {
          (void)read_json_file(job.result_path(s));
          st.validated.insert(s);
        } catch (const std::exception& e) {
          job.quarantine_result(s);
          std::fprintf(stderr, "[serve] %s: quarantined corrupt result for shard %d (%s)\n",
                       job.path().c_str(), s, e.what());
        }
      }

      std::vector<int> missing;
      for (int s = 0; s < job.shards(); ++s)
        if (!job.has_result(s)) missing.push_back(s);
      if (missing.empty()) {
        maybe_reduce(job, rep, options);
        continue;
      }
      all_done = false;

      for (const int shard : schedule_longest_first(missing, st.costs)) {
        if (g_stop) break;
        if (job.has_result(shard)) continue;  // landed while we worked this cycle
        ShardBackoff& slot = st.backoff[shard];
        if (slot.failures >= options.max_shard_failures) continue;  // someone else's problem now
        if (lease_now_ms() < slot.not_before_ms) {
          claimable_later = true;  // backing off, not giving up
          continue;
        }

        const std::string lease = job.lease_path(shard);
        if (std::optional<LeaseInfo> cur = read_lease(lease)) {
          if (!lease_expired(*cur, options.lease_expiry_ms, lease_now_ms())) continue;
          if (!try_reclaim_lease(lease, owner)) {
            claimable_later = true;  // a concurrent reclaimer won; re-check next cycle
            continue;
          }
          ++rep.shards_reclaimed;
          if (options.verbose)
            std::fprintf(stderr,
                         "[serve] %s shard %d: reclaimed stale lease from %s (heartbeat %lld ms old)\n",
                         job.path().c_str(), shard, cur->owner.empty() ? "(corrupt lease)" : cur->owner.c_str(),
                         static_cast<long long>(lease_now_ms() - cur->heartbeat_ms));
        }
        if (!try_claim_lease(lease, make_lease(owner, lease_now_ms()))) {
          claimable_later = true;  // lost the claim race — the winner is running it
          continue;
        }
        if (job.has_result(shard)) {  // result landed between the listing and the claim
          release_lease(lease, owner);
          continue;
        }

        attempted = true;
        if (run_claimed_shard(job, shard, exe, options, owner, heartbeat)) {
          ++rep.shards_run;
          st.validated.insert(shard);
          st.backoff.erase(shard);
        } else {
          ++rep.shards_failed;
          ++slot.failures;
          slot.not_before_ms = lease_now_ms() + backoff_delay_ms(options.poll_ms, slot.failures);
          if (slot.failures < options.max_shard_failures)
            claimable_later = true;
          else if (options.verbose)
            std::fprintf(stderr, "[serve] %s shard %d: giving up after %d local failure(s)\n",
                         job.path().c_str(), shard, slot.failures);
        }
        break;  // one shard per job per cycle: refresh status, signals, and the cost order
      }
    }

    if (g_stop) break;
    if (options.max_shards > 0 && rep.shards_run >= options.max_shards) break;
    if (all_done && (options.once || options.max_shards > 0)) break;
    if (options.once && !attempted && !claimable_later) break;
    if (!attempted) sleep_interruptible(options.poll_ms);
  }
  if (g_stop) rep.drained = true;

  // Exit housekeeping on every path (drain included): reduce any job
  // whose final result has landed, so a drained cluster still leaves
  // reduced.json behind.
  for (auto& [path, st] : states) {
    bool complete = true;
    for (int s = 0; s < st.job.shards() && complete; ++s) complete = st.job.has_result(s);
    if (complete) maybe_reduce(st.job, rep, options);
  }
  if (options.verbose)
    std::fprintf(stderr,
                 "[serve] worker %s: exiting%s — %d shard(s) run, %d failed, %d reclaimed, %d job(s) reduced\n",
                 owner.c_str(), rep.drained ? " (drained on signal)" : "", rep.shards_run,
                 rep.shards_failed, rep.shards_reclaimed, rep.jobs_reduced);
  return rep;
}

}  // namespace fsa::dist
