// job_dir.h — the file-based coordination protocol for multi-process work.
//
// A job is a directory; the directory IS the protocol. Place it on shared
// storage and any process that can read it can take part:
//
//   <job>/
//     job.json                 {"kind": "campaign"|"sweep", "shards": K}
//     manifest.json            kind-specific, self-contained work spec
//     results/shard_00000.json one per completed shard, written atomically
//     results/shard_00000.telemetry.json
//                              optional metrics sidecar (FSA_METRICS on)
//     logs/shard_00000.log     worker stdout+stderr, one per shard attempt
//     leases/shard_00000.lease live shard claims (`dist serve`, see lease.h)
//     reduced.json             the zero-drift reduction over all results
//     telemetry.json           merged sidecars — always OUTSIDE reduced.json
//
// Workers never coordinate with each other: shard i's work is a pure
// function of manifest.json and i (the planner assigned every seed and
// attribution before slicing — see campaign.h), and a result file either
// exists completely or not at all (tmp + rename). Status, resume, and
// reduce therefore need nothing but directory listings: a killed campaign
// is re-run by spawning workers for the shards whose results are missing.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "eval/json.h"

namespace fsa::dist {

/// Write `j` to `path` atomically: dump to `path.tmp`, then rename. The
/// parent directory is created. Readers never observe a partial file.
void write_json_atomic(const std::string& path, const eval::Json& j);

/// Parse the JSON document stored at `path` (throws with the path on a
/// missing or malformed file).
eval::Json read_json_file(const std::string& path);

/// Snapshot of a job's progress, from directory listings alone.
struct JobStatus {
  int shards = 0;
  std::vector<int> done;     ///< shard indices with a result file
  std::vector<int> missing;  ///< shard indices without one
  bool reduced = false;      ///< reduced.json present
};

class JobDir {
 public:
  /// Lay out a fresh job directory: job.json, manifest.json, results/ and
  /// logs/. Throws if `path` already holds a job (open() it instead — a
  /// job dir is append-only state, never silently clobbered).
  static JobDir create(const std::string& path, const std::string& kind, int shards,
                       const eval::Json& manifest);

  /// Attach to an existing job directory (throws if job.json is absent or
  /// malformed).
  static JobDir open(const std::string& path);

  /// True if `path` holds a job (a readable job.json).
  static bool exists(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& kind() const { return kind_; }
  [[nodiscard]] int shards() const { return shards_; }

  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string result_path(int shard) const;
  [[nodiscard]] std::string log_path(int shard) const;
  [[nodiscard]] std::string lease_path(int shard) const;
  [[nodiscard]] std::string reduced_path() const;
  /// Optional per-shard metrics sidecar (a worker writes its registry
  /// snapshot here when FSA_METRICS is on). Never part of the reduction.
  [[nodiscard]] std::string telemetry_sidecar_path(int shard) const;
  /// Job-level merge target for the sidecars: `<job>/telemetry.json`.
  [[nodiscard]] std::string telemetry_path() const;

  [[nodiscard]] eval::Json manifest() const;
  [[nodiscard]] bool has_result(int shard) const;
  [[nodiscard]] eval::Json result(int shard) const;
  void write_result(int shard, const eval::Json& j) const;
  void write_reduced(const eval::Json& j) const;
  [[nodiscard]] JobStatus status() const;

  /// Quarantine a corrupt or truncated result: rename it to
  /// `shard_NNNNN.json.bad` (replacing any earlier quarantine) so the
  /// shard re-enters the missing set and `dist run`/`serve` re-execute
  /// it. The worker path can't produce such a file (results are written
  /// tmp+rename), but a write outside the atomic path — a crashed editor,
  /// fs corruption, a partial copy — must not abort the whole job.
  void quarantine_result(int shard) const;

  /// Parse-check every present result file and quarantine the corrupt
  /// ones. Returns the quarantined shard indices (usually empty). Run
  /// before status()/reduce on resume so corrupt results count as missing
  /// instead of poisoning the reduction.
  std::vector<int> validate_results() const;

  /// Remove orphaned `*.tmp.<pid>` staging files (write_json_atomic
  /// leftovers from crashed writers) older than `min_age` from the job's
  /// root, results/ and leases/ directories. The age guard keeps a live
  /// writer's in-flight tmp safe; open() sweeps automatically.
  void sweep_orphaned_tmp(std::chrono::seconds min_age = std::chrono::seconds(10)) const;

 private:
  JobDir(std::string path, std::string kind, int shards);
  void check_shard(int shard) const;  // throws on out-of-range indices

  std::string path_;
  std::string kind_;
  int shards_ = 0;
};

/// Merge every present per-shard telemetry sidecar into
/// `<job>/telemetry.json` (counters add, gauges take the max — see
/// obs::merge_telemetry) and return how many sidecars were folded in.
/// Telemetry is best-effort by design: missing or corrupt sidecars are
/// skipped, zero sidecars writes nothing, and reduced.json is never
/// touched — it must stay byte-identical with telemetry on or off.
int merge_job_telemetry(const JobDir& job);

}  // namespace fsa::dist
