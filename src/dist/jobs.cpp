#include "dist/jobs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "compile/compile.h"
#include "dist/reducer.h"
#include "dist/worker_pool.h"
#include "faultsim/profile.h"

namespace fsa::dist {

namespace {

int manifest_shards(const eval::Json& manifest) {
  const int shards = static_cast<int>(manifest.get_int("shards", 0));
  if (shards < 1) throw std::runtime_error("dist: manifest has no valid \"shards\" count");
  return shards;
}

void check_shard_index(const eval::Json& manifest, int index) {
  const int shards = manifest_shards(manifest);
  if (index < 0 || index >= shards)
    throw std::out_of_range("dist: shard index " + std::to_string(index) +
                            " out of the manifest's range [0, " + std::to_string(shards) + ")");
}

/// Contiguous-slice ownership, the same formula CampaignPlanner uses:
/// item i of n belongs to shard i·K/n — depends only on (i, n, K), never
/// on which process asks.
std::size_t owner_of(std::size_t i, std::size_t n, int shards) {
  if (n == 0) return 0;
  return std::min(i * static_cast<std::size_t>(shards) / n,
                  static_cast<std::size_t>(shards) - 1);
}

}  // namespace

// ---- campaign jobs -----------------------------------------------------------

JobDir create_campaign_job(const std::string& dir, const faultsim::CampaignPlanner& planner,
                           const faultsim::BitFlipPlan& plan,
                           const faultsim::MemoryLayout& layout) {
  return JobDir::create(dir, "campaign", planner.shard_count(), planner.manifest(plan, layout));
}

eval::Json run_campaign_shard(const eval::Json& manifest, int index) {
  check_shard_index(manifest, index);
  if (manifest.has("injector_profile"))
    faultsim::load_injector_profile(manifest.at("injector_profile"));
  const std::vector<faultsim::CampaignShard> shards =
      faultsim::CampaignPlanner::shards_from_manifest(manifest);
  if (static_cast<int>(shards.size()) != manifest_shards(manifest))
    throw std::runtime_error("dist: manifest shard_list does not match its shard count");
  const faultsim::InjectorPtr injector =
      faultsim::make_injector(manifest.at("injector").as_string());
  // The layout only matters at planning time (row attribution is already
  // baked into every flip), so the default suffices here.
  const faultsim::CampaignReport report =
      injector->simulate_shard(shards[static_cast<std::size_t>(index)], faultsim::MemoryLayout{});

  eval::Json out = eval::Json::object();
  out.set("kind", eval::Json::string("campaign"));
  out.set("shard", eval::Json::number(static_cast<std::int64_t>(index)));
  out.set("report", report.to_json());
  return out;
}

// ---- sweep jobs --------------------------------------------------------------

eval::Json sweep_manifest(const std::string& dataset, const std::string& backend,
                          const std::vector<engine::SweepSpec>& specs) {
  if (specs.empty()) throw std::invalid_argument("dist: sweep manifest needs at least one spec");
  eval::Json j = eval::Json::object();
  j.set("kind", eval::Json::string("sweep"));
  j.set("dataset", eval::Json::string(dataset));
  j.set("backend", eval::Json::string(backend));
  // One shard per instance: worker-count invariance then needs no slicing
  // argument at all — every process count executes the same shard set.
  j.set("shards", eval::Json::number(static_cast<std::int64_t>(specs.size())));
  // The manifest pins the execution path like it pins the backend: shard
  // workers apply it in run_sweep_shard, so a job's rows come from one
  // path no matter which process (or env) drains its shards.
  j.set("compiled", eval::Json::boolean(compile::enabled()));
  if (const eval::Json* profile = faultsim::active_injector_profile())
    j.set("injector_profile", *profile);
  eval::Json arr = eval::Json::array();
  eval::Json costs = eval::Json::array();
  for (const engine::SweepSpec& s : specs) {
    arr.push_back(s.to_json());
    // Work proxy for longest-first scheduling: the S·R budget dominates a
    // sweep instance's solve time. Only the ORDER matters, not the scale.
    costs.push_back(eval::Json::number(static_cast<double>(s.S) * static_cast<double>(s.R)));
  }
  j.set("specs", std::move(arr));
  j.set("shard_costs", std::move(costs));
  return j;
}

eval::Json arena_manifest(const std::string& dataset, const std::string& backend,
                          const std::vector<engine::SweepSpec>& specs) {
  for (const engine::SweepSpec& s : specs)
    if (!s.defense)
      throw std::invalid_argument("dist: arena manifest requires a defense on every spec");
  eval::Json j = sweep_manifest(dataset, backend, specs);
  j.set("kind", eval::Json::string("arena"));
  return j;
}

JobDir create_sweep_job(const std::string& dir, const eval::Json& manifest) {
  return JobDir::create(dir, "sweep", manifest_shards(manifest), manifest);
}

eval::Json run_sweep_shard(const eval::Json& manifest, int index, engine::SweepRunner& runner) {
  check_shard_index(manifest, index);
  if (manifest.has("injector_profile"))
    faultsim::load_injector_profile(manifest.at("injector_profile"));
  if (manifest.has("compiled")) compile::set_enabled(manifest.get_bool("compiled", false));
  const int shards = manifest_shards(manifest);
  const auto& spec_list = manifest.at("specs").items();

  // This shard's contiguous slice of the instance list (the common case is
  // one instance per shard, but the formula supports coarser jobs).
  std::vector<engine::SweepSpec> specs;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < spec_list.size(); ++i)
    if (owner_of(i, spec_list.size(), shards) == static_cast<std::size_t>(index)) {
      specs.push_back(engine::SweepSpec::from_json(spec_list[i]));
      indices.push_back(i);
    }

  eval::Json rows = eval::Json::array();
  if (!specs.empty()) rows = sweep_rows_json(runner.run(specs), indices);
  eval::Json out = eval::Json::object();
  // Arena jobs run the same worker path; the shard result echoes the
  // manifest's kind so the job directory stays self-describing.
  out.set("kind", eval::Json::string(manifest.get_string("kind", "sweep")));
  out.set("shard", eval::Json::number(static_cast<std::int64_t>(index)));
  out.set("rows", std::move(rows));
  return out;
}

eval::Json sweep_rows_json(const engine::SweepResult& result,
                           const std::vector<std::size_t>& indices) {
  if (result.rows.size() != indices.size())
    throw std::invalid_argument("dist: sweep_rows_json needs one index per row");
  eval::Json rows = eval::Json::array();
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    eval::Json row = result.rows[r].report.to_json();
    if (!result.rows[r].spec.tag.empty())
      row.set("tag", eval::Json::string(result.rows[r].spec.tag));
    row.set("index", eval::Json::number(static_cast<std::int64_t>(indices[r])));
    rows.push_back(std::move(row));
  }
  return rows;
}

JobDir open_or_create_job(const std::string& dir, const std::string& kind,
                          const eval::Json& manifest) {
  if (!JobDir::exists(dir)) return JobDir::create(dir, kind, manifest_shards(manifest), manifest);
  const JobDir job = JobDir::open(dir);
  if (job.kind() != kind)
    throw std::invalid_argument("dist: " + dir + " holds a " + job.kind() + " job, not a " +
                                kind);
  if (job.manifest().dump(2) != manifest.dump(2))
    throw std::invalid_argument(
        "dist: " + dir +
        " holds a different " + kind +
        " job (its manifest does not match this request) — remove the directory or pass a "
        "different --job to resume it with `dist run` instead");
  return job;
}

// ---- scheduling --------------------------------------------------------------

std::vector<double> manifest_shard_costs(const eval::Json& manifest) {
  const int shards = manifest_shards(manifest);
  std::vector<double> costs(static_cast<std::size_t>(shards), 0.0);
  if (!manifest.has("shard_costs")) return costs;  // legacy manifest: index order
  const auto& arr = manifest.at("shard_costs").items();
  for (std::size_t i = 0; i < arr.size() && i < costs.size(); ++i)
    costs[i] = arr[i].as_number();
  return costs;
}

std::vector<int> schedule_longest_first(std::vector<int> shards, const std::vector<double>& costs) {
  const auto cost_of = [&](int s) {
    return (s >= 0 && static_cast<std::size_t>(s) < costs.size()) ? costs[static_cast<std::size_t>(s)]
                                                                  : 0.0;
  };
  std::stable_sort(shards.begin(), shards.end(),
                   [&](int a, int b) { return cost_of(a) > cost_of(b); });
  return shards;
}

// ---- coordination ------------------------------------------------------------

eval::Json run_job(const JobDir& job, const std::string& exe, const RunJobOptions& options) {
  const std::vector<double> costs = manifest_shard_costs(job.manifest());
  const auto argv_for = [&](int shard) {
    std::vector<std::string> argv = {exe,       job.kind(),
                                     "--run-shard", job.manifest_path(),
                                     "--shard",     std::to_string(shard),
                                     "--out",       job.result_path(shard)};
    argv.insert(argv.end(), options.extra_argv.begin(), options.extra_argv.end());
    return argv;
  };
  const auto log_for = [&](int shard) { return job.log_path(shard); };

  // The pass loop exists for one reason: a result file that validates as
  // corrupt is quarantined and its shard re-run. Pass 1 handles a clean or
  // resumed job outright; later passes only fire when validation keeps
  // finding corrupt bytes, and the bound turns persistent fs corruption
  // into an error instead of an infinite loop.
  const int max_passes = 1 + std::max(1, options.max_attempts);
  for (int pass = 1;; ++pass) {
    job.validate_results();  // corrupt results -> .bad, shard back to missing
    const JobStatus st = job.status();
    if (st.missing.empty()) break;
    if (pass > max_passes)
      throw std::runtime_error("dist: " + job.path() + ": shards keep producing corrupt results after " +
                               std::to_string(max_passes) + " passes");
    if (options.verbose)
      std::fprintf(stderr, "[dist] %s: %zu/%d shard(s) to run on %d worker(s)%s\n",
                   job.path().c_str(), st.missing.size(), job.shards(), options.workers,
                   pass > 1 ? " (re-running quarantined shards)" : "");
    WorkerPool pool(
        {options.workers, options.max_attempts, options.verbose, options.retry_backoff_ms});
    const std::vector<ShardRun> runs =
        pool.run(schedule_longest_first(st.missing, costs), argv_for, log_for);
    std::string failures;
    for (const ShardRun& r : runs) {
      const bool wrote = r.exit_code == 0 && job.has_result(r.shard);
      if (!wrote)
        failures += (failures.empty() ? "" : "; ") + ("shard " + std::to_string(r.shard) +
                    " exit " + std::to_string(r.exit_code) + " after " +
                    std::to_string(r.attempts) + " attempt(s), see " + job.log_path(r.shard));
    }
    if (!failures.empty()) throw std::runtime_error("dist: worker failure(s): " + failures);
  }
  if (options.verbose)
    std::fprintf(stderr, "[dist] %s: all %d shard result(s) present, reducing\n",
                 job.path().c_str(), job.shards());
  const eval::Json reduced = reduce_job(job);
  job.write_reduced(reduced);
  // Fold any per-shard telemetry sidecars (workers run with FSA_METRICS)
  // into <job>/telemetry.json — separate from reduced.json by contract.
  merge_job_telemetry(job);
  return reduced;
}

eval::Json run_temp_job(const JobDir& job, const std::string& exe, const RunJobOptions& options) {
  eval::Json reduced;
  try {
    reduced = run_job(job, exe, options);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " — job directory retained at " +
                             job.path() + " (resume with `dist run --job " + job.path() +
                             "`, logs under " + job.path() + "/logs)");
  }
  std::error_code ec;
  std::filesystem::remove_all(job.path(), ec);  // best-effort: the reduction is in hand
  return reduced;
}

}  // namespace fsa::dist
