#include "dist/lease.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace fsa::dist {

namespace {

/// Lease lifecycle counters — the coordinator-free protocol's pulse.
/// Registered once; every claim/renew/reclaim/release path ticks them.
obs::Counter& lease_metric(const char* event) {
  return obs::Registry::global().counter(std::string("fsa_lease_") + event + "_total");
}

}  // namespace

namespace fs = std::filesystem;

eval::Json LeaseInfo::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("owner", eval::Json::string(owner));
  j.set("pid", eval::Json::number(pid));
  j.set("host", eval::Json::string(host));
  j.set("created_ms", eval::Json::number(created_ms));
  j.set("heartbeat_ms", eval::Json::number(heartbeat_ms));
  return j;
}

LeaseInfo LeaseInfo::from_json(const eval::Json& j) {
  LeaseInfo info;
  info.owner = j.get_string("owner", "");
  info.pid = j.get_int("pid", 0);
  info.host = j.get_string("host", "");
  info.created_ms = j.get_int("created_ms", 0);
  info.heartbeat_ms = j.get_int("heartbeat_ms", 0);
  return info;
}

std::int64_t lease_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {

std::string hostname() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown-host";
  return buf;
}

}  // namespace

std::string lease_owner_id() {
  // A random token guards against pid recycling: a restarted worker must
  // never believe it owns its dead predecessor's lease.
  std::random_device rd;
  std::ostringstream id;
  id << hostname() << ":" << ::getpid() << ":" << std::hex << rd() << rd();
  return id.str();
}

LeaseInfo make_lease(const std::string& owner, std::int64_t now_ms) {
  LeaseInfo info;
  info.owner = owner;
  info.pid = ::getpid();
  info.host = hostname();
  info.created_ms = now_ms;
  info.heartbeat_ms = now_ms;
  return info;
}

bool try_claim_lease(const std::string& path, const LeaseInfo& info) {
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  // O_EXCL is the whole claim protocol: the filesystem hands the lease to
  // exactly one creator, coordinator-free, across every host that mounts
  // the job directory.
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      lease_metric("claim_conflicts").inc();
      return false;
    }
    throw std::runtime_error("lease: cannot create " + path + ": " + std::strerror(errno));
  }
  lease_metric("claims").inc();
  const std::string text = info.to_json().dump(2) + "\n";
  // Body lands after the O_EXCL create, so a claimer killed right here
  // leaves an empty lease — which parses to heartbeat 0, i.e. instantly
  // reclaimable. No special case needed.
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("lease: cannot write " + path + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

std::optional<LeaseInfo> read_lease(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream text;
  text << is.rdbuf();
  try {
    return LeaseInfo::from_json(eval::Json::parse(text.str()));
  } catch (const std::exception&) {
    // Present but unparseable (claimer killed mid-write): report it with a
    // zero heartbeat so expiry logic reclaims it immediately.
    return LeaseInfo{};
  }
}

bool lease_expired(const LeaseInfo& info, std::int64_t expiry_ms, std::int64_t now_ms) {
  if (now_ms <= info.heartbeat_ms) return false;  // future heartbeat = clock skew, assume alive
  return now_ms - info.heartbeat_ms > expiry_ms;
}

bool renew_lease(const std::string& path, const std::string& owner, std::int64_t now_ms) {
  std::optional<LeaseInfo> cur = read_lease(path);
  if (!cur || cur->owner != owner) return false;  // reclaimed out from under us
  cur->heartbeat_ms = now_ms;
  // Atomic replace: a reader sees the old heartbeat or the new one, never
  // a torn file. (A reclaimer that renamed the lease aside between our
  // read and this rename would be resurrected by the rename re-creating
  // the path — but reclaim only follows expiry, and a renewing owner is by
  // definition inside its expiry window, so the window is unreachable in
  // practice; and even then the worst case is duplicate execution.)
  write_json_atomic(path, cur->to_json());
  lease_metric("renews").inc();
  return true;
}

void release_lease(const std::string& path, const std::string& owner) {
  const std::optional<LeaseInfo> cur = read_lease(path);
  if (!cur || cur->owner != owner) return;  // lost to a reclaimer — not ours to unlink
  std::error_code ec;
  fs::remove(path, ec);  // ENOENT race with a reclaimer is fine
  if (!ec) lease_metric("releases").inc();
}

bool try_reclaim_lease(const std::string& path, const std::string& claimer) {
  // rename() arbitrates concurrent reclaimers: the stale lease can only be
  // renamed away once, so exactly one caller wins the right to clear it.
  // A per-claimer target name keeps the losers from colliding on cleanup.
  std::string suffix = claimer;
  for (char& c : suffix)
    if (c == '/' || c == ':') c = '_';
  const std::string aside = path + ".reclaim." + suffix;
  std::error_code ec;
  fs::rename(path, aside, ec);
  if (ec) return false;  // someone else already renamed it away
  fs::remove(aside, ec);
  lease_metric("reclaims").inc();
  return true;
}

std::vector<std::pair<int, LeaseInfo>> list_leases(const JobDir& job) {
  std::vector<std::pair<int, LeaseInfo>> out;
  for (int s = 0; s < job.shards(); ++s)
    if (std::optional<LeaseInfo> info = read_lease(job.lease_path(s)))
      out.emplace_back(s, std::move(*info));
  return out;
}

}  // namespace fsa::dist
