#include "dist/worker_pool.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

namespace fsa::dist {

namespace {

/// Spawn one child: redirect stdout+stderr to `log` (append), exec argv.
/// Runs in the parent; returns the child pid. The child never returns —
/// exec failure exits 127 (the shell convention), which the pool reports
/// like any other nonzero status.
pid_t spawn_child(const std::vector<std::string>& argv, const std::string& log) {
  if (argv.empty()) throw std::invalid_argument("WorkerPool: empty argv");
  {
    const std::filesystem::path p(log);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  }
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error(std::string("WorkerPool: fork failed: ") +
                                        std::strerror(errno));
  if (pid > 0) return pid;

  // Child. Only async-signal-safe calls until exec.
  const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    if (fd > 2) ::close(fd);
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  // execvP semantics: a bare command name (self_exe's fallback when
  // /proc/self/exe is unavailable and argv[0] came from PATH) resolves
  // the same way the original invocation did.
  ::execvp(cargv[0], cargv.data());
  ::dprintf(2, "WorkerPool: execvp %s: %s\n", cargv[0], std::strerror(errno));
  ::_exit(127);
}

int exit_code_of(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

WorkerPool::WorkerPool(WorkerOptions options) : options_(options) {
  if (options_.workers < 1)
    throw std::invalid_argument("WorkerPool: worker count must be >= 1, got " +
                                std::to_string(options_.workers));
  if (options_.max_attempts < 1)
    throw std::invalid_argument("WorkerPool: max_attempts must be >= 1, got " +
                                std::to_string(options_.max_attempts));
}

std::vector<ShardRun> WorkerPool::run(const std::vector<int>& shards,
                                      const std::function<std::vector<std::string>(int)>& argv_for,
                                      const std::function<std::string(int)>& log_for) const {
  struct InFlight {
    int shard = 0;
    int attempts = 0;
  };
  std::map<pid_t, InFlight> running;
  std::map<int, ShardRun> finished;
  std::size_t next = 0;

  const auto spawn = [&](int shard, int attempts) {
    if (options_.verbose && attempts > 1)
      std::fprintf(stderr, "[dist] shard %d: retry (attempt %d/%d)\n", shard, attempts,
                   options_.max_attempts);
    const pid_t pid = spawn_child(argv_for(shard), log_for(shard));
    if (options_.verbose)
      std::fprintf(stderr, "[dist] shard %d: worker pid %d\n", shard, static_cast<int>(pid));
    running[pid] = {shard, attempts};
  };

  // Reap ONLY pids this pool spawned — never waitpid(-1), which would
  // steal (and discard) statuses from an embedding process's own children
  // or from a second pool on another thread. WNOHANG over the in-flight
  // set with a short backoff costs microseconds against worker runtimes.
  const auto reap_one = [&]() -> std::pair<pid_t, int> {
    for (useconds_t backoff = 500;; backoff = std::min<useconds_t>(backoff * 2, 20000)) {
      for (const auto& [pid, inflight] : running) {
        int status = 0;
        const pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid) return {pid, status};
        if (got < 0 && errno != EINTR)
          throw std::runtime_error(std::string("WorkerPool: waitpid failed: ") +
                                   std::strerror(errno));
      }
      ::usleep(backoff);
    }
  };

  while (next < shards.size() || !running.empty()) {
    while (next < shards.size() && running.size() < static_cast<std::size_t>(options_.workers))
      spawn(shards[next++], 1);
    const auto [pid, status] = reap_one();
    const auto it = running.find(pid);
    const InFlight done = it->second;
    running.erase(it);
    const int code = exit_code_of(status);
    if (code != 0 && done.attempts < options_.max_attempts) {
      spawn(done.shard, done.attempts + 1);  // bounded retry
      continue;
    }
    if (options_.verbose && code != 0)
      std::fprintf(stderr, "[dist] shard %d: FAILED with exit code %d after %d attempt(s)\n",
                   done.shard, code, done.attempts);
    finished[done.shard] = {done.shard, done.attempts, code};
  }

  std::vector<ShardRun> out;
  out.reserve(finished.size());
  for (const auto& [shard, run] : finished) out.push_back(run);  // map iterates sorted
  return out;
}

std::string self_exe(const char* argv0) {
  std::error_code ec;
  const auto p = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return p.string();
  if (argv0 && *argv0) {
    // A path with a slash is resolved against the cwd now (the children
    // may run elsewhere later); a bare command name is left for the
    // spawn's execvp to resolve against PATH, exactly like the original
    // invocation — absolutizing it against the cwd would fabricate a
    // nonexistent path.
    const std::string a0 = argv0;
    return a0.find('/') == std::string::npos ? a0 : std::filesystem::absolute(a0).string();
  }
  throw std::runtime_error("dist: cannot determine the worker executable path");
}

}  // namespace fsa::dist
