#include "dist/worker_pool.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <random>
#include <stdexcept>
#include <utility>

namespace fsa::dist {

pid_t spawn_worker(const std::vector<std::string>& argv, const std::string& log) {
  if (argv.empty()) throw std::invalid_argument("WorkerPool: empty argv");
  {
    const std::filesystem::path p(log);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  }
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error(std::string("WorkerPool: fork failed: ") +
                                        std::strerror(errno));
  if (pid > 0) return pid;

  // Child. Only async-signal-safe calls until exec.
  const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    if (fd > 2) ::close(fd);
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  // execvP semantics: a bare command name (self_exe's fallback when
  // /proc/self/exe is unavailable and argv[0] came from PATH) resolves
  // the same way the original invocation did.
  ::execvp(cargv[0], cargv.data());
  ::dprintf(2, "WorkerPool: execvp %s: %s\n", cargv[0], std::strerror(errno));
  ::_exit(127);
}

int decode_exit_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

namespace {

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkerPool::WorkerPool(WorkerOptions options) : options_(options) {
  if (options_.workers < 1)
    throw std::invalid_argument("WorkerPool: worker count must be >= 1, got " +
                                std::to_string(options_.workers));
  if (options_.max_attempts < 1)
    throw std::invalid_argument("WorkerPool: max_attempts must be >= 1, got " +
                                std::to_string(options_.max_attempts));
  if (options_.retry_backoff_ms < 0)
    throw std::invalid_argument("WorkerPool: retry_backoff_ms must be >= 0, got " +
                                std::to_string(options_.retry_backoff_ms));
}

std::vector<ShardRun> WorkerPool::run(const std::vector<int>& shards,
                                      const std::function<std::vector<std::string>(int)>& argv_for,
                                      const std::function<std::string(int)>& log_for) const {
  struct InFlight {
    int shard = 0;
    int attempts = 0;
  };
  struct PendingRetry {
    int shard = 0;
    int attempts = 0;           ///< attempts already consumed
    std::int64_t ready_ms = 0;  ///< steady-clock instant the respawn unblocks
  };
  std::map<pid_t, InFlight> running;
  std::map<int, ShardRun> finished;
  std::vector<PendingRetry> pending;
  std::size_t next = 0;

  // Jittered exponential backoff: attempt k (k >= 2) waits
  // base * 2^(k-2) * uniform[0.5, 1.5), capped at 10 s. The jitter keeps a
  // fleet of simultaneously-failed shards from respawning in lockstep.
  std::mt19937 rng(static_cast<std::uint32_t>(::getpid()) ^
                   static_cast<std::uint32_t>(mono_ms()));
  const auto backoff_ms = [&](int attempts_done) -> std::int64_t {
    if (options_.retry_backoff_ms == 0) return 0;
    const int shift = std::min(attempts_done - 1, 10);
    const double base =
        std::min<double>(static_cast<double>(options_.retry_backoff_ms) * (1u << shift), 10000.0);
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    return static_cast<std::int64_t>(base * jitter(rng));
  };

  const auto spawn = [&](int shard, int attempts) {
    if (options_.verbose && attempts > 1)
      std::fprintf(stderr, "[dist] shard %d: retry (attempt %d/%d)\n", shard, attempts,
                   options_.max_attempts);
    const pid_t pid = spawn_worker(argv_for(shard), log_for(shard));
    if (options_.verbose)
      std::fprintf(stderr, "[dist] shard %d: worker pid %d\n", shard, static_cast<int>(pid));
    running[pid] = {shard, attempts};
  };

  // Reap ONLY pids this pool spawned — never waitpid(-1), which would
  // steal (and discard) statuses from an embedding process's own children
  // or from a second pool on another thread. WNOHANG over the in-flight
  // set keeps the loop free to launch due retries while others run.
  const auto try_reap = [&]() -> std::pair<pid_t, int> {
    for (const auto& [pid, inflight] : running) {
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid) return {pid, status};
      if (got < 0 && errno != EINTR)
        throw std::runtime_error(std::string("WorkerPool: waitpid failed: ") +
                                 std::strerror(errno));
    }
    return {-1, 0};
  };

  useconds_t idle_backoff = 500;
  while (next < shards.size() || !running.empty() || !pending.empty()) {
    // Launch work while slots are free: due retries first (they are the
    // oldest work), then fresh shards.
    while (running.size() < static_cast<std::size_t>(options_.workers)) {
      const std::int64_t now = mono_ms();
      const auto due = std::find_if(pending.begin(), pending.end(),
                                    [&](const PendingRetry& p) { return p.ready_ms <= now; });
      if (due != pending.end()) {
        const PendingRetry retry = *due;
        pending.erase(due);
        spawn(retry.shard, retry.attempts + 1);
        continue;
      }
      if (next < shards.size()) {
        spawn(shards[next++], 1);
        continue;
      }
      break;
    }

    if (running.empty()) {
      // Nothing in flight: only delayed retries remain. Sleep until the
      // earliest one is due instead of spinning.
      std::int64_t wake = mono_ms() + 50;
      for (const PendingRetry& p : pending) wake = std::min(wake, p.ready_ms);
      const std::int64_t wait = wake - mono_ms();
      if (wait > 0) ::usleep(static_cast<useconds_t>(std::min<std::int64_t>(wait, 50)) * 1000);
      continue;
    }

    const auto [pid, status] = try_reap();
    if (pid < 0) {
      ::usleep(idle_backoff);
      idle_backoff = std::min<useconds_t>(idle_backoff * 2, 20000);
      continue;
    }
    idle_backoff = 500;

    const auto it = running.find(pid);
    const InFlight done = it->second;
    running.erase(it);
    const int code = decode_exit_status(status);
    if (code != 0 && done.attempts < options_.max_attempts) {
      const std::int64_t delay = backoff_ms(done.attempts);
      if (delay == 0) {
        spawn(done.shard, done.attempts + 1);  // bounded retry, backoff disabled
      } else {
        if (options_.verbose)
          std::fprintf(stderr, "[dist] shard %d: backing off %lld ms before retry\n", done.shard,
                       static_cast<long long>(delay));
        pending.push_back({done.shard, done.attempts, mono_ms() + delay});
      }
      continue;
    }
    if (options_.verbose && code != 0)
      std::fprintf(stderr, "[dist] shard %d: FAILED with exit code %d after %d attempt(s)\n",
                   done.shard, code, done.attempts);
    finished[done.shard] = {done.shard, done.attempts, code};
  }

  std::vector<ShardRun> out;
  out.reserve(finished.size());
  for (const auto& [shard, run] : finished) out.push_back(run);  // map iterates sorted
  return out;
}

std::string self_exe(const char* argv0) {
  std::error_code ec;
  const auto p = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return p.string();
  if (argv0 && *argv0) {
    // A path with a slash is resolved against the cwd now (the children
    // may run elsewhere later); a bare command name is left for the
    // spawn's execvp to resolve against PATH, exactly like the original
    // invocation — absolutizing it against the cwd would fabricate a
    // nonexistent path.
    const std::string a0 = argv0;
    return a0.find('/') == std::string::npos ? a0 : std::filesystem::absolute(a0).string();
  }
  throw std::runtime_error("dist: cannot determine the worker executable path");
}

}  // namespace fsa::dist
