#include "dist/job_dir.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace fsa::dist {

namespace fs = std::filesystem;

void write_json_atomic(const std::string& path, const eval::Json& j) {
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  // Per-process tmp name: concurrent writers of the same path (two
  // coordinators resuming one job on shared storage) each stage their own
  // file, and the final renames are last-one-wins with both contents
  // complete — a reader can never observe a partial document.
  const fs::path tmp = p.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp);
    os << j.dump(2) << "\n";
    if (!os.good()) throw std::runtime_error("dist: failed to write " + tmp.string());
  }
  fs::rename(tmp, p);  // atomic on POSIX: readers see the old file or the new one
}

eval::Json read_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("dist: cannot read " + path);
  std::ostringstream text;
  text << is.rdbuf();
  try {
    return eval::Json::parse(text.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("dist: " + path + ": " + e.what());
  }
}

// ---- JobDir ------------------------------------------------------------------

JobDir::JobDir(std::string path, std::string kind, int shards)
    : path_(std::move(path)), kind_(std::move(kind)), shards_(shards) {}

JobDir JobDir::create(const std::string& path, const std::string& kind, int shards,
                      const eval::Json& manifest) {
  if (kind != "arena" && kind != "campaign" && kind != "sweep")
    throw std::invalid_argument("JobDir: unknown job kind \"" + kind +
                                "\" (known: arena, campaign, sweep)");
  if (shards < 1)
    throw std::invalid_argument("JobDir: shard count must be >= 1, got " +
                                std::to_string(shards));
  if (exists(path))
    throw std::invalid_argument("JobDir: " + path +
                                " already holds a job (open it to resume, or remove it)");
  fs::create_directories(fs::path(path) / "results");
  fs::create_directories(fs::path(path) / "logs");
  fs::create_directories(fs::path(path) / "leases");
  JobDir job(path, kind, shards);
  write_json_atomic(job.manifest_path(), manifest);
  eval::Json spec = eval::Json::object();
  spec.set("kind", eval::Json::string(kind));
  spec.set("shards", eval::Json::number(static_cast<std::int64_t>(shards)));
  // job.json is written LAST: its presence marks a fully laid-out job.
  write_json_atomic((fs::path(path) / "job.json").string(), spec);
  return job;
}

JobDir JobDir::open(const std::string& path) {
  const eval::Json spec = read_json_file((fs::path(path) / "job.json").string());
  const std::string kind = spec.get_string("kind", "");
  const int shards = static_cast<int>(spec.get_int("shards", 0));
  if ((kind != "arena" && kind != "campaign" && kind != "sweep") || shards < 1)
    throw std::runtime_error("JobDir: " + path + "/job.json is malformed");
  JobDir job(path, kind, shards);
  // Resume hygiene: crashed writers leave `*.tmp.<pid>` staging files
  // behind; clear the stale ones so the directory stays clean.
  job.sweep_orphaned_tmp();
  return job;
}

bool JobDir::exists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(fs::path(path) / "job.json", ec);
}

std::string JobDir::manifest_path() const { return (fs::path(path_) / "manifest.json").string(); }

std::string JobDir::reduced_path() const { return (fs::path(path_) / "reduced.json").string(); }

namespace {

std::string shard_file(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05d", shard);
  return buf;
}

}  // namespace

std::string JobDir::result_path(int shard) const {
  check_shard(shard);
  return (fs::path(path_) / "results" / (shard_file(shard) + ".json")).string();
}

std::string JobDir::log_path(int shard) const {
  check_shard(shard);
  return (fs::path(path_) / "logs" / (shard_file(shard) + ".log")).string();
}

std::string JobDir::lease_path(int shard) const {
  check_shard(shard);
  return (fs::path(path_) / "leases" / (shard_file(shard) + ".lease")).string();
}

std::string JobDir::telemetry_sidecar_path(int shard) const {
  check_shard(shard);
  return (fs::path(path_) / "results" / (shard_file(shard) + ".telemetry.json")).string();
}

std::string JobDir::telemetry_path() const { return (fs::path(path_) / "telemetry.json").string(); }

eval::Json JobDir::manifest() const { return read_json_file(manifest_path()); }

bool JobDir::has_result(int shard) const {
  std::error_code ec;
  return fs::is_regular_file(result_path(shard), ec);
}

eval::Json JobDir::result(int shard) const { return read_json_file(result_path(shard)); }

void JobDir::write_result(int shard, const eval::Json& j) const {
  write_json_atomic(result_path(shard), j);
}

void JobDir::write_reduced(const eval::Json& j) const { write_json_atomic(reduced_path(), j); }

void JobDir::quarantine_result(int shard) const {
  const std::string path = result_path(shard);
  std::error_code ec;
  fs::remove(path + ".bad", ec);  // replace any earlier quarantine
  fs::rename(path, path + ".bad", ec);
  if (ec)
    throw std::runtime_error("JobDir: cannot quarantine " + path + ": " + ec.message());
}

std::vector<int> JobDir::validate_results() const {
  std::vector<int> quarantined;
  for (int s = 0; s < shards_; ++s) {
    if (!has_result(s)) continue;
    try {
      (void)read_json_file(result_path(s));
    } catch (const std::exception& e) {
      quarantine_result(s);
      std::fprintf(stderr, "[dist] %s: quarantined corrupt result for shard %d -> %s.bad (%s)\n",
                   path_.c_str(), s, result_path(s).c_str(), e.what());
      quarantined.push_back(s);
    }
  }
  return quarantined;
}

void JobDir::sweep_orphaned_tmp(std::chrono::seconds min_age) const {
  const auto cutoff = fs::file_time_type::clock::now() - min_age;
  for (const fs::path dir : {fs::path(path_), fs::path(path_) / "results", fs::path(path_) / "leases"}) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      // write_json_atomic stages as `<name>.tmp.<pid>`; reclaim leaves
      // `<name>.reclaim.<owner>` only transiently, sweep those too.
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp.") == std::string::npos && name.find(".reclaim.") == std::string::npos)
        continue;
      const auto mtime = entry.last_write_time(ec);
      if (ec || mtime > cutoff) continue;  // possibly a live writer — leave it
      fs::remove(entry.path(), ec);
    }
  }
}

JobStatus JobDir::status() const {
  JobStatus st;
  st.shards = shards_;
  for (int s = 0; s < shards_; ++s) (has_result(s) ? st.done : st.missing).push_back(s);
  std::error_code ec;
  st.reduced = fs::is_regular_file(reduced_path(), ec);
  return st;
}

int merge_job_telemetry(const JobDir& job) {
  eval::Json merged;
  int folded = 0;
  for (int s = 0; s < job.shards(); ++s) {
    const std::string sidecar = job.telemetry_sidecar_path(s);
    std::error_code ec;
    if (!fs::is_regular_file(sidecar, ec)) continue;
    eval::Json doc;
    try {
      doc = read_json_file(sidecar);
    } catch (const std::exception&) {
      continue;  // telemetry is best-effort: a torn sidecar never fails a job
    }
    merged = folded == 0 ? std::move(doc) : obs::merge_telemetry(merged, doc);
    ++folded;
  }
  if (folded > 0) write_json_atomic(job.telemetry_path(), merged);
  return folded;
}

void JobDir::check_shard(int shard) const {
  if (shard < 0 || shard >= shards_)
    throw std::out_of_range("JobDir: shard index " + std::to_string(shard) +
                            " out of range [0, " + std::to_string(shards_) + ")");
}

}  // namespace fsa::dist
