// reducer.h — zero-drift reduction of shard results.
//
// The whole point of the dist subsystem is that fanning a campaign or a
// sweep out over N processes must not change a single byte of the final
// artifact. The reducers deliver that by construction:
//
//  * campaign — shard CampaignReports merge through the injector's exact
//    integer-counter merge (Injector::merge): counters sum associatively
//    and commutatively, success AND-s, and `seconds` is recomputed from
//    the merged counters by the (profile-calibrated) cost model — never
//    accumulated as floating point across shards. Any shard count, any
//    arrival order, any grouping: identical totals.
//
//  * sweep — result rows are an order-independent UNION keyed by
//    (method, surface, S, R, seed, tag): every instance is solved by
//    exactly one shard, so the reducer just reassembles the set and sorts
//    it by that key (global instance index as the final tiebreaker for
//    duplicate cells). Wall-time fields are scrubbed to zero — they are
//    the only nondeterministic bytes in a row — so the reduced document is
//    canonical: bitwise identical for 1 worker, N workers, or a resumed
//    half-finished job.
//
// Reduced documents are plain JSON, so "reduce" can run anywhere the job
// directory is mounted — it needs no model, no features, no GPU.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/job_dir.h"

namespace fsa::dist {

/// Reduction strategy for one job kind, selected by name like the
/// engine's Attacker and the backend's ComputeBackend.
class Reducer {
 public:
  virtual ~Reducer() = default;

  /// The job kind this reducer handles ("campaign", "sweep").
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Fold shard results (any order) into the canonical reduced document.
  /// `manifest` is the job's manifest.json — it names the injector /
  /// dataset and carries the calibration profile the shards ran under.
  [[nodiscard]] virtual eval::Json reduce(const eval::Json& manifest,
                                          const std::vector<eval::Json>& shard_results) const = 0;
};

/// Reducer for `kind`. Throws std::invalid_argument listing the known
/// kinds when `kind` is unknown.
std::unique_ptr<Reducer> make_reducer(const std::string& kind);

/// Read every shard result of `job` (throws listing the missing shard
/// indices if any), reduce them, and return the canonical document. Does
/// NOT write reduced.json — run_job / the CLI decide where it lands.
eval::Json reduce_job(const JobDir& job);

}  // namespace fsa::dist
