// lease.h — crash-tolerant shard claiming over shared storage.
//
// A lease is a file: `<job>/leases/shard_NNNNN.lease`, created with
// O_CREAT|O_EXCL so exactly one worker in the cluster wins each claim, no
// coordinator required. The file holds the owner's identity and a
// heartbeat timestamp the owner renews (atomic tmp+rename) on a fixed
// cadence while its shard runs. Any worker that reads a lease whose
// heartbeat is older than the configured expiry may RECLAIM it: rename
// the stale file aside (rename is atomic, so concurrent reclaimers race
// safely — exactly one rename succeeds), delete it, and claim fresh.
//
// Safety does not depend on the lease protocol being airtight. Shard work
// is a pure function of (manifest, index) and results land via atomic
// tmp+rename, so the worst a lost race or a wrongly-expired-but-alive
// owner can cause is DUPLICATE execution — both writers produce the
// identical result file and the reduction cannot change. Leases exist to
// make duplicates rare, not to make them impossible. The one clock
// assumption: hosts sharing a job directory agree on wall time to within
// the lease expiry (heartbeat comparisons mix the writer's clock and the
// reader's).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/job_dir.h"
#include "eval/json.h"

namespace fsa::dist {

/// What a lease file records about its owner. `heartbeat_ms` is wall time
/// (ms since epoch) of the most recent renewal; a corrupt or half-written
/// lease parses to heartbeat 0, i.e. already expired and reclaimable.
struct LeaseInfo {
  std::string owner;  ///< globally unique worker id (host:pid:token)
  std::int64_t pid = 0;
  std::string host;
  std::int64_t created_ms = 0;
  std::int64_t heartbeat_ms = 0;

  [[nodiscard]] eval::Json to_json() const;
  static LeaseInfo from_json(const eval::Json& j);
};

/// Wall time in milliseconds since the epoch — the clock lease heartbeats
/// are stamped and judged with.
std::int64_t lease_now_ms();

/// A fresh globally-unique owner id: `host:pid:token`, where the token is
/// random, so a restarted worker (same host, recycled pid) never mistakes
/// a dead predecessor's lease for its own.
std::string lease_owner_id();

/// A LeaseInfo for `owner` on this host, stamped `now_ms`.
LeaseInfo make_lease(const std::string& owner, std::int64_t now_ms);

/// Claim `path` with O_CREAT|O_EXCL. True exactly once per lease lifetime
/// across every process in the cluster; false if the file already exists.
bool try_claim_lease(const std::string& path, const LeaseInfo& info);

/// Read a lease file. nullopt when absent; a present-but-unparseable file
/// (a claimer killed between create and write) yields a default LeaseInfo
/// whose zero heartbeat makes it immediately reclaimable.
std::optional<LeaseInfo> read_lease(const std::string& path);

/// True when `info`'s heartbeat is more than `expiry_ms` behind `now_ms`
/// (future heartbeats — clock skew — count as alive).
bool lease_expired(const LeaseInfo& info, std::int64_t expiry_ms, std::int64_t now_ms);

/// Renew the heartbeat: rewrite the lease atomically with `now_ms` iff it
/// still names `owner`. Returns false — the lease was lost to a reclaimer
/// — when the file is gone or owned by someone else; the caller should
/// finish its shard (the result write is atomic and idempotent) but must
/// not release a lease it no longer owns.
bool renew_lease(const std::string& path, const std::string& owner, std::int64_t now_ms);

/// Release `path` iff it still names `owner` (unlink). Releasing a lost
/// lease is a no-op, never a theft of the new owner's claim.
void release_lease(const std::string& path, const std::string& owner);

/// Try to win the right to reclaim a stale lease: atomically rename it
/// aside and delete it. Exactly one of N concurrent reclaimers returns
/// true (rename succeeds for one, ENOENT for the rest); the winner then
/// claims normally with try_claim_lease — and may still lose THAT race to
/// a worker that saw the path empty, which is fine: losing a claim never
/// loses work. Callers must check lease_expired first.
bool try_reclaim_lease(const std::string& path, const std::string& claimer);

/// Every live lease of `job`: (shard, info) pairs, sorted by shard.
/// Unreadable files appear with default (expired) info.
std::vector<std::pair<int, LeaseInfo>> list_leases(const JobDir& job);

}  // namespace fsa::dist
