#include "models/feature_cache.h"

#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace fsa::models {

Tensor compute_features(nn::Sequential& net, std::size_t cut, const Tensor& images,
                        std::int64_t batch_size) {
  const std::int64_t n = images.dim(0);
  if (cut == 0) return images;  // degenerate cut: the images themselves
  Tensor out;
  std::int64_t written = 0;
  std::int64_t row_elems = 0;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    // Run the prefix [0, cut) layer by layer; preserve the natural shape of
    // the activation so conv-layer cuts work too (dense cuts yield [N, F],
    // conv cuts yield [N, C, H, W]).
    Tensor x = images.slice0(begin, end);
    for (std::size_t i = 0; i < cut; ++i) x = net.layer(i).forward(x, /*train=*/false);
    if (written == 0) {
      std::vector<std::int64_t> dims = x.shape().dims();
      dims[0] = n;
      out = Tensor(Shape(dims));
      row_elems = x.numel() / std::max<std::int64_t>(x.dim(0), 1);
    }
    std::copy(x.data(), x.data() + x.numel(), out.data() + written * row_elems);
    written += x.dim(0);
  }
  return out;
}

Tensor cached_features(nn::Sequential& net, std::size_t cut, const Tensor& images,
                       const std::string& cache_path, std::int64_t batch_size) {
  if (io::file_exists(cache_path)) {
    auto tensors = io::load_tensors(cache_path);
    if (tensors.size() == 1 && tensors[0].dim(0) == images.dim(0)) return tensors[0];
  }
  Tensor feats = compute_features(net, cut, images, batch_size);
  io::save_tensors(cache_path, {feats});
  return feats;
}

std::vector<std::int64_t> head_predictions(nn::Sequential& net, std::size_t cut,
                                           const Tensor& features, std::int64_t batch_size) {
  const std::int64_t n = features.dim(0);
  std::vector<std::int64_t> pred;
  pred.reserve(static_cast<std::size_t>(n));
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    const Tensor logits = net.forward_from(cut, features.slice0(begin, end), /*train=*/false);
    for (auto p : ops::argmax_rows(logits)) pred.push_back(p);
  }
  return pred;
}

double head_accuracy(nn::Sequential& net, std::size_t cut, const Tensor& features,
                     const std::vector<std::int64_t>& labels, std::int64_t batch_size) {
  const auto pred = head_predictions(net, cut, features, batch_size);
  if (pred.size() != labels.size())
    throw std::invalid_argument("head_accuracy: label count mismatch");
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return pred.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace fsa::models
