// model_zoo.h — train-once, cache-forever models for the experiments.
//
// Every bench/example needs the same two trained networks (the paper's
// MNIST and CIFAR stand-ins). Training them takes minutes on one core, so
// the zoo persists trained parameters under a cache directory (default
// ".fsa_cache" next to the current working directory, overridable with the
// FSA_CACHE_DIR environment variable) and later runs load instantly.
//
// Three disjoint image sets are generated per dataset, all deterministic:
//   train       — used only to fit the model
//   test        — the paper's "overall test accuracy" set (Table 4)
//   attack_pool — the adversary's own images (the paper's X = {x₁..x_R});
//                 the paper explicitly assumes the adversary does NOT know
//                 the train/test sets, so these come from a third seed.
#pragma once

#include <memory>
#include <string>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace fsa::models {

struct ZooModel {
  std::string name;
  nn::Sequential net;
  data::Dataset train;
  data::Dataset test;
  data::Dataset attack_pool;
  double test_accuracy = 0.0;

  ZooModel() = default;
  ZooModel(const ZooModel&) = delete;
  ZooModel& operator=(const ZooModel&) = delete;
  ZooModel(ZooModel&&) = default;
  ZooModel& operator=(ZooModel&&) = default;
};

struct ZooConfig {
  std::string cache_dir;          ///< empty → $FSA_CACHE_DIR or ".fsa_cache"
  std::int64_t train_count = 6000;
  std::int64_t test_count = 2000;
  std::int64_t pool_count = 1800;
  std::int64_t digits_epochs = 4;
  std::int64_t objects_epochs = 7;
  bool verbose = true;  ///< print one line per training epoch
};

class ModelZoo {
 public:
  explicit ModelZoo(ZooConfig cfg = {});

  /// The paper's MNIST model stand-in (28×28×1, ≈99% test accuracy).
  ZooModel& digits();

  /// The paper's CIFAR model stand-in (32×32×3, ≈80% test accuracy).
  ZooModel& objects();

  [[nodiscard]] const std::string& cache_dir() const { return cfg_.cache_dir; }

 private:
  ZooModel build(const std::string& name);

  ZooConfig cfg_;
  std::unique_ptr<ZooModel> digits_;
  std::unique_ptr<ZooModel> objects_;
};

/// Resolve the effective cache directory (helper shared with benches).
std::string default_cache_dir();

}  // namespace fsa::models
