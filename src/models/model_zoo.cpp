#include "models/model_zoo.h"

#include <cstdio>
#include <cstdlib>

#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "models/cw_net.h"
#include "optim/adam.h"
#include "optim/trainer.h"
#include "tensor/serialize.h"

namespace fsa::models {

std::string default_cache_dir() {
  if (const char* env = std::getenv("FSA_CACHE_DIR"); env != nullptr && *env != '\0') return env;
  return ".fsa_cache";
}

ModelZoo::ModelZoo(ZooConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.cache_dir.empty()) cfg_.cache_dir = default_cache_dir();
}

ZooModel& ModelZoo::digits() {
  if (!digits_) digits_ = std::make_unique<ZooModel>(build("digits"));
  return *digits_;
}

ZooModel& ModelZoo::objects() {
  if (!objects_) objects_ = std::make_unique<ZooModel>(build("objects"));
  return *objects_;
}

ZooModel ModelZoo::build(const std::string& name) {
  const bool is_digits = name == "digits";
  ZooModel m;
  m.name = name;

  // --- data (three disjoint deterministic seeds per dataset) ---------------
  if (is_digits) {
    data::SynthDigitsConfig dc;
    dc.count = cfg_.train_count;
    dc.seed = 101;
    m.train = data::make_synth_digits(dc);
    dc.count = cfg_.test_count;
    dc.seed = 102;
    m.test = data::make_synth_digits(dc);
    dc.count = cfg_.pool_count;
    dc.seed = 103;
    m.attack_pool = data::make_synth_digits(dc);
  } else {
    data::SynthObjectsConfig oc;
    oc.count = cfg_.train_count;
    oc.seed = 201;
    m.train = data::make_synth_objects(oc);
    oc.count = cfg_.test_count;
    oc.seed = 202;
    m.test = data::make_synth_objects(oc);
    oc.count = cfg_.pool_count;
    oc.seed = 203;
    m.attack_pool = data::make_synth_objects(oc);
  }

  // --- model ----------------------------------------------------------------
  CwNetConfig nc;
  nc.in_channels = is_digits ? 1 : 3;
  nc.side = is_digits ? 28 : 32;
  nc.init_seed = is_digits ? 42 : 43;
  m.net = make_cw_net(nc);

  const std::string param_path = cfg_.cache_dir + "/" + name + "_cwnet.bin";
  if (io::file_exists(param_path)) {
    m.net.load_params(param_path);
  } else {
    if (cfg_.verbose) std::printf("[zoo] training %s model (cached at %s)...\n", name.c_str(), param_path.c_str());
    optim::Adam opt(m.net.params(), 1e-3);
    optim::Trainer trainer(m.net, opt);
    optim::TrainConfig tc;
    tc.epochs = is_digits ? cfg_.digits_epochs : cfg_.objects_epochs;
    tc.batch_size = 32;
    tc.shuffle_seed = is_digits ? 7 : 8;
    tc.lr_schedule = [](std::int64_t epoch) { return 1e-3 * std::pow(0.7, static_cast<double>(epoch)); };
    if (cfg_.verbose)
      tc.on_epoch = [&](const optim::EpochStats& s) {
        std::printf("[zoo]   epoch %lld: loss %.4f, train acc %.4f\n",
                    static_cast<long long>(s.epoch), s.train_loss, s.train_accuracy);
      };
    trainer.fit(m.train, tc);
    m.net.save_params(param_path);
  }
  m.test_accuracy = optim::Trainer::accuracy(m.net, m.test);
  if (cfg_.verbose)
    std::printf("[zoo] %s model ready: test accuracy %.4f\n", name.c_str(), m.test_accuracy);
  return m;
}

}  // namespace fsa::models
