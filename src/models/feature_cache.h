// feature_cache.h — cached activations at a network cut point.
//
// Every experiment in the paper modifies FC-layer parameters only, so the
// convolutional prefix of the network is a *fixed* feature extractor for
// the whole attack. Computing those features once per image set — and
// optionally persisting them to disk — turns each ADMM iteration into a
// forward/backward pass over a tiny dense head, which is the difference
// between seconds and hours for the R=1000 sweeps on one CPU core.
#pragma once

#include <string>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace fsa::models {

/// Run layers [0, cut) over `images` in mini-batches; returns [N, F]
/// features (the input expected by layer `cut`).
Tensor compute_features(nn::Sequential& net, std::size_t cut, const Tensor& images,
                        std::int64_t batch_size = 64);

/// Same, but memoized on disk: if `cache_path` exists it is loaded instead
/// of recomputed (callers key the path by model/dataset/cut identity).
Tensor cached_features(nn::Sequential& net, std::size_t cut, const Tensor& images,
                       const std::string& cache_path, std::int64_t batch_size = 64);

/// Evaluate classification accuracy of the head [cut, end) on cached
/// features vs labels — equivalent to full-network accuracy but much
/// cheaper when only head parameters change.
double head_accuracy(nn::Sequential& net, std::size_t cut, const Tensor& features,
                     const std::vector<std::int64_t>& labels, std::int64_t batch_size = 256);

/// Head predictions (argmax logits) on cached features.
std::vector<std::int64_t> head_predictions(nn::Sequential& net, std::size_t cut,
                                           const Tensor& features, std::int64_t batch_size = 256);

}  // namespace fsa::models
