#include "models/cw_net.h"

#include <memory>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"

namespace fsa::models {

std::int64_t cw_fc1_inputs(const CwNetConfig& cfg) {
  // Two valid 3×3 convs shrink by 4, pool halves; twice.
  const std::int64_t after1 = (cfg.side - 4) / 2;
  const std::int64_t after2 = (after1 - 4) / 2;
  return 64 * after2 * after2;
}

nn::Sequential make_cw_net(const CwNetConfig& cfg) {
  using namespace fsa::nn;
  Rng rng(cfg.init_seed);
  Sequential net;
  net.add(std::make_unique<Conv2D>("conv1", cfg.in_channels, 32, 3, rng));
  net.add(std::make_unique<ReLU>("relu1"));
  net.add(std::make_unique<Conv2D>("conv2", 32, 32, 3, rng));
  net.add(std::make_unique<ReLU>("relu2"));
  net.add(std::make_unique<MaxPool2D>("pool1", 2));
  net.add(std::make_unique<Conv2D>("conv3", 32, 64, 3, rng));
  net.add(std::make_unique<ReLU>("relu3"));
  net.add(std::make_unique<Conv2D>("conv4", 64, 64, 3, rng));
  net.add(std::make_unique<ReLU>("relu4"));
  net.add(std::make_unique<MaxPool2D>("pool2", 2));
  net.add(std::make_unique<Flatten>("flatten"));
  net.add(std::make_unique<Dense>("fc1", cw_fc1_inputs(cfg), cfg.fc_width, rng));
  net.add(std::make_unique<ReLU>("relu5"));
  net.add(std::make_unique<Dense>("fc2", cfg.fc_width, cfg.fc_width, rng));
  net.add(std::make_unique<ReLU>("relu6"));
  net.add(std::make_unique<Dense>("fc3", cfg.fc_width, cfg.classes, rng));
  return net;
}

}  // namespace fsa::models
