// cw_net.h — the Carlini & Wagner convnet used by the paper.
//
// The paper trains one architecture for both datasets: four conv layers,
// two max-pools, two hidden FC layers and a final FC classifier (the
// softmax lives in the loss / evaluation code; the attack consumes
// logits). With 28×28×1 input the three FC layers hold exactly the
// 205 000 / 40 200 / 2 010 parameters reported in the paper's Table 1.
//
// Layer names (used by ParamMask and the experiment harnesses):
//   conv1 relu1 conv2 relu2 pool1 conv3 relu3 conv4 relu4 pool2 flatten
//   fc1 relu5 fc2 relu6 fc3
#pragma once

#include "nn/sequential.h"

namespace fsa::models {

struct CwNetConfig {
  std::int64_t in_channels = 1;  ///< 1 for digits, 3 for objects
  std::int64_t side = 28;        ///< input height = width
  std::int64_t classes = 10;
  std::int64_t fc_width = 200;
  std::uint64_t init_seed = 42;
};

/// Build the network (randomly initialized, ready to train).
nn::Sequential make_cw_net(const CwNetConfig& cfg);

/// Flattened feature width at the input of fc1 for the given config.
std::int64_t cw_fc1_inputs(const CwNetConfig& cfg);

}  // namespace fsa::models
