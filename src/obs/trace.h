// trace.h — low-overhead span tracer for the attack stack.
//
// Every layer of the stack (ADMM phases, sweep rows, compile passes,
// batcher batches, dist shards, serve requests) brackets its hot seams
// with OBS_SPAN("name"). When tracing is off — the default — a span is a
// single relaxed atomic load and a dead branch, cheap enough to leave in
// the ADMM inner loop (the run_benches.sh trace-overhead stage holds the
// disabled path to <= 3% on bench_compile rows/s). When FSA_TRACE (or
// --trace) turns it on, spans append to per-thread ring buffers — no
// locks, no allocation past the first span on a thread — and flush to
// Chrome-trace-event JSON that Perfetto / chrome://tracing load directly.
//
// Span names must be string literals (or otherwise outlive the process):
// the tracer stores the pointer, not a copy. The optional tag IS copied —
// it carries per-span attribution (method, backend, shard index) and only
// costs anything when tracing is enabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fsa::obs {

/// Tracing gate. First call reads FSA_TRACE (on/1/true/yes → enabled);
/// set_trace_enabled overrides it either way (CLI --trace does this).
bool trace_enabled();
void set_trace_enabled(bool on);

/// One completed span, as stored in a thread's buffer. Times are
/// microseconds since the process's trace epoch (first tracer touch).
struct SpanRecord {
  const char* name = nullptr;  ///< static storage — the OBS_SPAN literal
  std::string tag;             ///< optional attribution ("" = none)
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;    ///< tracer-assigned dense thread id
  std::uint32_t depth = 0;  ///< nesting depth on its thread at open time
};

/// RAII span guard. Construction stamps the start (when tracing is on),
/// destruction appends the completed record to the calling thread's
/// buffer. Use through OBS_SPAN, not directly.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  TraceSpan(const char* name, std::string tag) {
    if (trace_enabled()) {
      tag_ = std::move(tag);
      begin(name);
    }
  }
  ~TraceSpan() {
    if (armed_) end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  bool armed_ = false;
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
  std::string tag_;
};

#define FSA_OBS_CAT2(a, b) a##b
#define FSA_OBS_CAT(a, b) FSA_OBS_CAT2(a, b)
/// OBS_SPAN("admm.z_step") or OBS_SPAN("sweep.row", tag_string).
#define OBS_SPAN(...) ::fsa::obs::TraceSpan FSA_OBS_CAT(fsa_obs_span_, __LINE__)(__VA_ARGS__)

/// Completed spans across all threads (copies; open spans not included).
std::vector<SpanRecord> snapshot_spans();

/// Spans recorded / dropped (per-thread buffer full) so far.
std::size_t span_count();
std::uint64_t dropped_span_count();

/// Discard every recorded span (buffers stay registered). Test isolation
/// and between-run hygiene for long-lived daemons.
void clear_spans();

/// Render all completed spans as a Chrome trace-event JSON document
/// ({"traceEvents":[{"ph":"X",...}]}) — loadable in Perfetto.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path` (throws std::runtime_error on IO
/// failure).
void write_chrome_trace(const std::string& path);

}  // namespace fsa::obs
