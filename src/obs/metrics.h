// metrics.h — process-wide metrics registry (counters, gauges,
// fixed-bucket histograms).
//
// The hot path is lock-free: a Counter::inc is one relaxed fetch_add, a
// Histogram::observe is a bucket scan plus two fetch_adds. The registry
// mutex is taken only at registration (and at scrape time), so call sites
// cache the returned reference — typically in a function-local static or
// a member initialized at construction:
//
//   static obs::Counter& rows = obs::Registry::global().counter("fsa_sweep_rows_total");
//   rows.inc();
//
// Names follow Prometheus conventions (`fsa_<area>_<what>[_total]`) and
// may carry a label set inline: `fsa_batcher_batches_total{batcher="0"}`.
// The registry renders everything as Prometheus text exposition format
// (the serve daemon's GET /metrics) and as a JSON document (the
// `telemetry.json` sidecar dist shard workers emit, merged per job by
// merge_telemetry — always OUTSIDE reduced.json, which must stay
// byte-identical with telemetry on or off).
//
// Collection is always on (the atomics cost nothing worth gating);
// FSA_METRICS / --metrics gate EMISSION — whether workers write sidecars
// and the CLI dumps a registry snapshot on exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/json.h"

namespace fsa::obs {

/// Emission gate. First call reads FSA_METRICS (on/1/true/yes → enabled);
/// set_metrics_enabled overrides it (CLI --metrics does this).
bool metrics_enabled();
void set_metrics_enabled(bool on);

class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double d);
  [[nodiscard]] double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t b);
  std::atomic<std::uint64_t> bits_{0};  // IEEE bits of 0.0
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit +Inf bucket catches the rest. Bucket i holds observations
/// v <= bounds[i] (and > bounds[i-1]); counts are stored NON-cumulative
/// and rendered cumulative for Prometheus.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count for bucket i, i in [0, bounds().size()] — the
  /// last index is the +Inf overflow bucket.
  [[nodiscard]] std::int64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// selected bucket — the standard Prometheus histogram_quantile rule.
  /// Returns 0 when empty; clamps to the highest finite bound for
  /// observations in the overflow bucket.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// `count` exponential upper bounds: start, start*factor, ...
std::vector<double> exponential_bounds(double start, double factor, int count);
/// `count` linear upper bounds: start, start+step, ...
std::vector<double> linear_bounds(double start, double step, int count);

class Registry {
 public:
  static Registry& global();

  /// Get-or-create. Re-requesting an existing name returns the same
  /// object (histogram bounds are fixed by the first registration); a
  /// name registered as a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus text exposition format, families sorted by name, one
  /// `# TYPE` line per family (label variants share it).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"counters":{name:value}, "gauges":{...},
  /// "histograms":{name:{"bounds":[...],"counts":[...],"sum":s,"count":n}}}.
  [[nodiscard]] eval::Json to_json() const;

  /// Zero every metric (registrations persist). Test isolation.
  void reset_all();

 private:
  Registry() = default;

  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // sorted → deterministic output
};

/// Merge two registry JSON snapshots: counters and histogram buckets/sums
/// add, gauges take the max (a merged telemetry doc answers "how much work
/// happened across the job", and peak gauge is the useful aggregate).
/// Histograms with mismatched bounds keep `a`'s document unchanged.
eval::Json merge_telemetry(const eval::Json& a, const eval::Json& b);

}  // namespace fsa::obs
