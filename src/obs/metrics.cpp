#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace fsa::obs {

namespace {

std::atomic<int> g_metrics_state{-1};

int read_metrics_env() {
  const char* v = std::getenv("FSA_METRICS");
  if (v == nullptr) return 0;
  if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
      std::strcmp(v, "yes") == 0)
    return 1;
  return 0;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Split "base{label=...}" into base and the label body (no braces).
void split_labels(const std::string& name, std::string& base, std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

}  // namespace

bool metrics_enabled() {
  int s = g_metrics_state.load(std::memory_order_relaxed);
  if (s < 0) {
    s = read_metrics_env();
    g_metrics_state.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void set_metrics_enabled(bool on) {
  g_metrics_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- Gauge -------------------------------------------------------------------

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t b) { return std::bit_cast<double>(b); }

void Gauge::add(double d) {
  std::uint64_t old = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(old, pack(unpack(old) + d), std::memory_order_relaxed)) {
  }
}

// ---- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("obs: histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("obs: histogram bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
                                          std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  if (i > bounds_.size()) throw std::out_of_range("obs: histogram bucket index");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::quantile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const double c = static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cum + c >= target && c > 0.0) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (target - cum) / c;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double start, double factor, int count) {
  if (start <= 0.0 || factor <= 1.0 || count < 1)
    throw std::invalid_argument("obs: exponential_bounds needs start > 0, factor > 1, count >= 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i, v *= factor) out.push_back(v);
  return out;
}

std::vector<double> linear_bounds(double start, double step, int count) {
  if (step <= 0.0 || count < 1)
    throw std::invalid_argument("obs: linear_bounds needs step > 0, count >= 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(start + step * i);
  return out;
}

// ---- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: metrics outlive exiting threads
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Entry::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Entry::Kind::kCounter)
    throw std::invalid_argument("obs: metric " + name + " already registered as a different kind");
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Entry::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Entry::Kind::kGauge)
    throw std::invalid_argument("obs: metric " + name + " already registered as a different kind");
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Entry::Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Entry::Kind::kHistogram)
    throw std::invalid_argument("obs: metric " + name + " already registered as a different kind");
  return *it->second.histogram;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [name, entry] : metrics_) {
    std::string base, labels;
    split_labels(name, base, labels);
    if (base != last_family) {
      const char* type = entry.kind == Entry::Kind::kCounter  ? "counter"
                         : entry.kind == Entry::Kind::kGauge ? "gauge"
                                                             : "histogram";
      out += "# TYPE " + base + " " + type + "\n";
      last_family = base;
    }
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += name + " " + format_double(entry.gauge->value()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        const std::string prefix = labels.empty() ? "" : labels + ",";
        std::int64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_count(i);
          out += base + "_bucket{" + prefix + "le=\"" + format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        cum += h.bucket_count(h.bounds().size());
        out += base + "_bucket{" + prefix + "le=\"+Inf\"} " + std::to_string(cum) + "\n";
        const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
        out += base + "_sum" + suffix + " " + format_double(h.sum()) + "\n";
        out += base + "_count" + suffix + " " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

eval::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  eval::Json counters = eval::Json::object();
  eval::Json gauges = eval::Json::object();
  eval::Json histograms = eval::Json::object();
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        counters.set(name, eval::Json::number(entry.counter->value()));
        break;
      case Entry::Kind::kGauge:
        gauges.set(name, eval::Json::number(entry.gauge->value()));
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        eval::Json doc = eval::Json::object();
        eval::Json bounds = eval::Json::array();
        for (const double b : h.bounds()) bounds.push_back(eval::Json::number(b));
        eval::Json counts = eval::Json::array();
        for (std::size_t i = 0; i <= h.bounds().size(); ++i)
          counts.push_back(eval::Json::number(h.bucket_count(i)));
        doc.set("bounds", std::move(bounds));
        doc.set("counts", std::move(counts));
        doc.set("sum", eval::Json::number(h.sum()));
        doc.set("count", eval::Json::number(h.count()));
        histograms.set(name, std::move(doc));
        break;
      }
    }
  }
  eval::Json out = eval::Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter: entry.counter->reset(); break;
      case Entry::Kind::kGauge: entry.gauge->reset(); break;
      case Entry::Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

eval::Json merge_telemetry(const eval::Json& a, const eval::Json& b) {
  // Returns a REFERENCE (not a value): the range-for loops below iterate
  // the section's members, and a by-value return would be a temporary
  // destroyed before the loop body runs.
  static const eval::Json kEmpty = eval::Json::object();
  const auto section = [](const eval::Json& doc, const char* key) -> const eval::Json& {
    return doc.has(key) ? doc.at(key) : kEmpty;
  };

  eval::Json counters = eval::Json::object();
  for (const auto& [k, v] : section(a, "counters").members()) counters.set(k, v);
  for (const auto& [k, v] : section(b, "counters").members())
    counters.set(k, eval::Json::number(counters.get_number(k, 0.0) + v.as_number()));

  eval::Json gauges = eval::Json::object();
  for (const auto& [k, v] : section(a, "gauges").members()) gauges.set(k, v);
  for (const auto& [k, v] : section(b, "gauges").members())
    gauges.set(k, eval::Json::number(std::max(gauges.get_number(k, v.as_number()), v.as_number())));

  eval::Json histograms = eval::Json::object();
  for (const auto& [k, v] : section(a, "histograms").members()) histograms.set(k, v);
  for (const auto& [k, v] : section(b, "histograms").members()) {
    if (!histograms.has(k)) {
      histograms.set(k, v);
      continue;
    }
    const eval::Json& have = histograms.at(k);
    if (have.at("bounds").dump() != v.at("bounds").dump()) continue;  // mismatched: keep a's
    eval::Json merged = eval::Json::object();
    merged.set("bounds", have.at("bounds"));
    eval::Json counts = eval::Json::array();
    for (std::size_t i = 0; i < have.at("counts").size(); ++i)
      counts.push_back(eval::Json::number(have.at("counts").at(i).as_number() +
                                          v.at("counts").at(i).as_number()));
    merged.set("counts", std::move(counts));
    merged.set("sum", eval::Json::number(have.get_number("sum", 0.0) + v.get_number("sum", 0.0)));
    merged.set("count",
               eval::Json::number(have.get_number("count", 0.0) + v.get_number("count", 0.0)));
    histograms.set(k, std::move(merged));
  }

  eval::Json out = eval::Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace fsa::obs
