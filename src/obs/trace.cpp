#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace fsa::obs {

namespace {

/// Same lazy env idiom as compile::enabled(): -1 = unread, else 0/1.
/// Atomic because spans open on worker threads before any CLI override.
std::atomic<int> g_trace_state{-1};

int read_trace_env() {
  const char* v = std::getenv("FSA_TRACE");
  if (v == nullptr) return 0;
  if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
      std::strcmp(v, "yes") == 0)
    return 1;
  return 0;
}

/// Monotonic microseconds since the first tracer touch — small positive
/// timestamps keep the JSON compact and Perfetto's viewport sane.
std::int64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch)
      .count();
}

/// Per-thread span sink. Bounded: a runaway trace drops (and counts)
/// instead of eating the heap. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so spans from exited threads
/// survive until the flush.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t dropped = 0;
  std::vector<SpanRecord> spans;
};

constexpr std::size_t kMaxSpansPerThread = 1u << 18;  // ~16 MB/thread worst case

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // leaked: outlives exiting threads
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool trace_enabled() {
  int s = g_trace_state.load(std::memory_order_relaxed);
  if (s < 0) {
    s = read_trace_env();
    g_trace_state.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void set_trace_enabled(bool on) { g_trace_state.store(on ? 1 : 0, std::memory_order_relaxed); }

void TraceSpan::begin(const char* name) {
  ThreadBuffer& buf = thread_buffer();
  armed_ = true;
  name_ = name;
  depth_ = buf.depth++;
  start_us_ = now_us();
}

void TraceSpan::end() {
  const std::int64_t dur = now_us() - start_us_;
  ThreadBuffer& buf = thread_buffer();
  if (buf.depth > 0) --buf.depth;
  if (buf.spans.size() >= kMaxSpansPerThread) {
    ++buf.dropped;
    return;
  }
  SpanRecord rec;
  rec.name = name_;
  rec.tag = std::move(tag_);
  rec.start_us = start_us_;
  rec.dur_us = dur;
  rec.tid = buf.tid;
  rec.depth = depth_;
  buf.spans.push_back(std::move(rec));
}

std::vector<SpanRecord> snapshot_spans() {
  std::vector<SpanRecord> out;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.buffers) out.insert(out.end(), b->spans.begin(), b->spans.end());
  return out;
}

std::size_t span_count() {
  std::size_t n = 0;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.buffers) n += b->spans.size();
  return n;
}

std::uint64_t dropped_span_count() {
  std::uint64_t n = 0;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.buffers) n += b->dropped;
  return n;
}

void clear_spans() {
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.buffers) {
    b->spans.clear();
    b->dropped = 0;
  }
}

std::string chrome_trace_json() {
  const std::vector<SpanRecord> spans = snapshot_spans();
  const long pid = static_cast<long>(::getpid());
  std::string out;
  out.reserve(spans.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"args\":{\"name\":\"fsa\"}}";
  char num[64];
  for (const SpanRecord& s : spans) {
    out += ",\n{\"name\":\"";
    json_escape_into(out, s.name);
    out += "\",\"cat\":\"fsa\",\"ph\":\"X\",\"ts\":";
    std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(s.start_us));
    out += num;
    out += ",\"dur\":";
    std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(s.dur_us));
    out += num;
    out += ",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(s.tid);
    if (!s.tag.empty()) {
      out += ",\"args\":{\"tag\":\"";
      json_escape_into(out, s.tag.c_str());
      out += "\"}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open trace output " + path);
  os << chrome_trace_json();
  if (!os.good()) throw std::runtime_error("obs: failed to write trace output " + path);
}

}  // namespace fsa::obs
