#include "core/admm.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "backend/compute_backend.h"
#include "core/prox.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace fsa::core {

AdmmResult AdmmSolver::solve(const AttackSpec& spec, const AdmmConfig& cfg) {
  if (cfg.rho <= 0.0) throw std::invalid_argument("AdmmSolver: rho must be positive");
  if (cfg.iterations <= 0) throw std::invalid_argument("AdmmSolver: iterations must be positive");
  const ParamMask& mask = grad_.mask();
  const std::int64_t d = mask.size();
  if (cfg.evasion && cfg.evasion->has_box() &&
      (static_cast<std::int64_t>(cfg.evasion->lo.numel()) != d ||
       static_cast<std::int64_t>(cfg.evasion->hi.numel()) != d))
    throw std::invalid_argument("AdmmSolver: evasion box must match the mask size");
  const std::int64_t r = spec.R();
  const double alpha = cfg.alpha > 0.0 ? cfg.alpha : cfg.rho / static_cast<double>(std::max<std::int64_t>(r, 1));
  const double denom = alpha * static_cast<double>(r) + cfg.rho;

  const Tensor theta0 = mask.gather_values();
  Tensor delta = Tensor::zeros(Shape({d}));
  Tensor z = Tensor::zeros(Shape({d}));
  Tensor s = Tensor::zeros(Shape({d}));
  Tensor theta = theta0;  // scratch: θ0 + δ

  AdmmResult out;
  out.g_history.reserve(static_cast<std::size_t>(cfg.iterations));
  std::int64_t satisfied_checks = 0;

  OBS_SPAN("admm.solve");
  static obs::Counter& solves_metric = obs::Registry::global().counter("fsa_admm_solves_total");
  static obs::Counter& iters_metric = obs::Registry::global().counter("fsa_admm_iterations_total");
  static obs::Counter& early_metric =
      obs::Registry::global().counter("fsa_admm_early_stops_total");
  solves_metric.inc();

  // Convergence recording keeps zᵏ around for the dual residual; the copy
  // and the two reductions only run when asked for.
  const bool record = cfg.record_convergence;
  Tensor z_prev;
  if (record) {
    z_prev = z;
    out.convergence.objective.reserve(static_cast<std::size_t>(cfg.iterations));
    out.convergence.primal.reserve(static_cast<std::size_t>(cfg.iterations));
    out.convergence.dual.reserve(static_cast<std::size_t>(cfg.iterations));
  }

  for (std::int64_t k = 0; k < cfg.iterations; ++k) {
    // ---- z-step (eq. 13): prox of D at v = δᵏ − sᵏ -------------------------
    {
      OBS_SPAN("admm.z_step");
      Tensor v = delta;
      v -= s;
      switch (cfg.norm) {
        case NormKind::kL0:
          z = prox_l0(v, cfg.rho);
          break;
        case NormKind::kL2:
          z = prox_l2(v, cfg.rho);
          break;
        case NormKind::kL1:
          z = prox_l1(v, cfg.rho);
          break;
      }
      // Detection-aware z-step: budget first (pick blocks from the raw
      // prox output), then box (the kept coordinates land in the accepted
      // envelope), so the early-stop candidate θ0+z is always evasive.
      if (cfg.evasion) {
        const EvasionConstraint& ev = *cfg.evasion;
        if (ev.has_budget()) z = project_block_budget(z, ev.block_params, ev.max_blocks);
        if (ev.has_box()) z = project_box(z, ev.lo, ev.hi);
      }
    }

    // ---- δ-step (eq. 22) ----------------------------------------------------
    double objective = 0.0;
    {
      OBS_SPAN("admm.delta_step");
      theta = theta0;
      theta += delta;
      auto res = grad_.eval(theta, spec, cfg.c, cfg.kappa, /*want_grad=*/true, cfg.anchor_weight);
      objective = res.eval.total_g;
      out.g_history.push_back(res.eval.total_g);
      // δ ← (ρ(z+s) + αRδ − Σ∇g) / (αR+ρ), computed in place. Elementwise,
      // so the backend shards it exactly (serially on "reference").
      backend::active().parallel_rows(d, 8192, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto ui = static_cast<std::size_t>(i);
          const double num = cfg.rho * (static_cast<double>(z[ui]) + s[ui]) +
                             alpha * static_cast<double>(r) * delta[ui] -
                             static_cast<double>(res.grad[ui]);
          delta[ui] = static_cast<float>(num / denom);
        }
      });
    }

    // ---- s-step (eq. 12): s ← s + z − δ, elementwise ------------------------
    backend::active().parallel_rows(d, 8192, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        s[ui] += z[ui];
        s[ui] -= delta[ui];
      }
    });

    out.iterations_run = k + 1;

    if (record) {
      double primal_sq = 0.0;
      double dual_sq = 0.0;
      for (std::int64_t i = 0; i < d; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const double pr = static_cast<double>(z[ui]) - static_cast<double>(delta[ui]);
        const double du = static_cast<double>(z[ui]) - static_cast<double>(z_prev[ui]);
        primal_sq += pr * pr;
        dual_sq += du * du;
      }
      out.convergence.objective.push_back(objective);
      out.convergence.primal.push_back(std::sqrt(primal_sq));
      out.convergence.dual.push_back(cfg.rho * std::sqrt(dual_sq));
      z_prev = z;
    }

    // ---- early stop: the SPARSE candidate must satisfy the constraints ------
    if (cfg.check_every > 0 && (k + 1) % cfg.check_every == 0) {
      OBS_SPAN("admm.check");
      theta = theta0;
      theta += z;
      const Tensor logits = grad_.logits_at(theta, spec);
      const auto [hit, kept] = count_satisfied(logits, spec);
      if (cfg.verbose)
        std::printf("[admm] iter %4lld: g=%.3f targets %lld/%lld kept %lld/%lld l0(z)=%lld\n",
                    static_cast<long long>(k + 1), objective, static_cast<long long>(hit),
                    static_cast<long long>(spec.S), static_cast<long long>(kept),
                    static_cast<long long>(r - spec.S),
                    static_cast<long long>(ops::l0_norm(z)));
      if (hit == spec.S && kept == r - spec.S) {
        if (++satisfied_checks >= cfg.patience) {
          out.early_stopped = true;
          break;
        }
      } else {
        satisfied_checks = 0;
      }
    }
  }

  mask.scatter_values(theta0);  // leave the network unmodified
  iters_metric.inc(out.iterations_run);
  if (out.early_stopped) early_metric.inc();
  out.delta = std::move(delta);
  out.z = std::move(z);
  return out;
}

}  // namespace fsa::core
