// head_gradient.h — batched evaluation of G(θ+δ) and Σᵢ cᵢ∇gᵢ.
//
// The solver's only interaction with the network: scatter a candidate
// flat parameter vector into the masked parameters, run the head
// [cut, end) over the cached features, form the hinge-loss logits
// gradient (margin_loss.h), and pull Σ∇g back through ONE batched
// backward pass. This is the step that makes the paper's "surprisingly
// much less expensive analytical solutions" concrete: per ADMM iteration
// the cost is a single small-dense-network forward+backward, independent
// of how many parameters the full model has.
#pragma once

#include "core/attack_spec.h"
#include "core/margin_loss.h"
#include "core/param_mask.h"
#include "nn/sequential.h"

namespace fsa::core {

class HeadGradient {
 public:
  /// Binds to the network and mask; the network must outlive this object.
  HeadGradient(nn::Sequential& net, const ParamMask& mask) : net_(&net), mask_(&mask) {}

  struct Result {
    MarginEval eval;  ///< margins / satisfaction counts at θ
    Tensor grad;      ///< Σᵢ c_scale·cᵢ·∇gᵢ over the masked space (if requested)
  };

  /// Evaluate at the flat parameter vector `theta` (θ0 + δ).
  /// Leaves the network holding `theta` — callers that need the original
  /// parameters back must re-scatter them (AdmmSolver does).
  /// `anchor_weight` scales the maintained rows' cᵢ (see eval_margin).
  Result eval(const Tensor& theta, const AttackSpec& spec, double c_scale, double kappa,
              bool want_grad, double anchor_weight = 1.0);

  /// Logits of the head at `theta` over the spec's features.
  Tensor logits_at(const Tensor& theta, const AttackSpec& spec);

  [[nodiscard]] const ParamMask& mask() const { return *mask_; }
  [[nodiscard]] nn::Sequential& net() const { return *net_; }

 private:
  nn::Sequential* net_;
  const ParamMask* mask_;
};

}  // namespace fsa::core
