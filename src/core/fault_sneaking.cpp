#include "core/fault_sneaking.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace fsa::core {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

void FaultSneakingAttack::apply(const Tensor& delta) {
  Tensor theta = theta0_;
  theta += delta;
  mask_.scatter_values(theta);
}

Tensor FaultSneakingAttack::refine(const Tensor& delta, const AttackSpec& spec,
                                   const FaultSneakingConfig& cfg) {
  OBS_SPAN("fsa.refine");
  HeadGradient grad(*net_, mask_);
  // Freeze the support: only coordinates already nonzero may move. This is
  // what keeps refinement from undoing the sparsity the z-step bought.
  std::vector<std::size_t> support;
  for (std::size_t i = 0; i < delta.size(); ++i)
    if (delta[i] != 0.0f) support.push_back(i);
  if (support.empty()) return delta;

  Tensor cur = delta;
  Tensor theta = theta0_;
  theta += cur;
  for (std::int64_t step = 0; step < cfg.refine_steps; ++step) {
    auto res = grad.eval(theta, spec, /*c_scale=*/1.0, cfg.refine_kappa, /*want_grad=*/true,
                         cfg.admm.anchor_weight);
    if (res.eval.targets_hit == spec.S && res.eval.maintained == spec.R() - spec.S &&
        res.eval.total_g == 0.0)
      break;  // all constraints hold with the demanded confidence margin
    const double lr = cfg.refine_lr / std::sqrt(1.0 + static_cast<double>(step) / 50.0);
    // When the solve carried an evasion box, refinement must stay inside
    // it — otherwise the gradient walk would undo the z-step's guarantee
    // on the very last pass. (The budget survives for free: support is
    // frozen to z's nonzeros, which already honor it.)
    const EvasionConstraint* ev = cfg.admm.evasion.get();
    const bool boxed = ev != nullptr && ev->has_box();
    for (std::size_t i : support) {
      float next = cur[i] - static_cast<float>(lr * res.grad[i]);
      if (boxed) next = std::clamp(next, ev->lo[i], ev->hi[i]);
      cur[i] = next;
      theta[i] = theta0_[i] + cur[i];
    }
  }
  return cur;
}

FaultSneakingResult FaultSneakingAttack::run(const AttackSpec& spec,
                                             const FaultSneakingConfig& cfg) {
  const auto t0 = Clock::now();
  AdmmSolver solver(*net_, mask_);
  HeadGradient grad(*net_, mask_);

  FaultSneakingResult best;
  best.delta = Tensor::zeros(Shape({mask_.size()}));
  bool have_best = false;

  AdmmConfig admm_cfg = cfg.admm;
  for (std::int64_t attempt = 0; attempt <= cfg.escalations; ++attempt) {
    OBS_SPAN("fsa.attempt");
    // Re-establish θ0 in the live network: the previous attempt's
    // refinement/measurement evaluations leave θ0 + δ scattered into the
    // masked parameters, and solve() gathers whatever the network holds as
    // its starting point.
    mask_.scatter_values(theta0_);
    const AdmmResult admm = solver.solve(spec, admm_cfg);
    // Sparse candidate → refinement on its support.
    Tensor delta = refine(admm.z, spec, cfg);

    // Measure the candidate.
    Tensor theta = theta0_;
    theta += delta;
    const Tensor logits = grad.logits_at(theta, spec);
    const auto [hit, kept] = count_satisfied(logits, spec);

    FaultSneakingResult cand;
    cand.delta = delta;
    cand.l0 = ops::l0_norm(delta);
    cand.l2 = ops::l2_norm(delta);
    cand.targets_hit = hit;
    cand.maintained = kept;
    cand.success_rate = spec.S == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(spec.S);
    cand.all_targets_hit = hit == spec.S;
    cand.all_maintained = kept == spec.R() - spec.S;
    cand.admm_iterations = admm.iterations_run;
    cand.attempts = attempt + 1;
    cand.convergence = admm.convergence;

    if (cfg.verbose)
      std::printf("[fsa] attempt %lld (c=%.1f): targets %lld/%lld kept %lld/%lld l0=%lld l2=%.3f\n",
                  static_cast<long long>(attempt + 1), admm_cfg.c,
                  static_cast<long long>(cand.targets_hit), static_cast<long long>(spec.S),
                  static_cast<long long>(cand.maintained),
                  static_cast<long long>(spec.R() - spec.S), static_cast<long long>(cand.l0),
                  cand.l2);

    // Prefer more targets hit; break ties with more maintained, then lower ℓ0.
    const auto better = [&](const FaultSneakingResult& a, const FaultSneakingResult& b) {
      if (a.targets_hit != b.targets_hit) return a.targets_hit > b.targets_hit;
      if (a.maintained != b.maintained) return a.maintained > b.maintained;
      return a.l0 < b.l0;
    };
    if (!have_best || better(cand, best)) {
      best = cand;
      have_best = true;
    }
    if (best.all_targets_hit && best.all_maintained) break;
    admm_cfg.c *= cfg.c_growth;  // escalate and try again
  }

  mask_.scatter_values(theta0_);  // leave the network clean
  best.seconds = seconds_since(t0);
  return best;
}

}  // namespace fsa::core
