// attack_spec.h — the attack problem instance (the paper's X, T, L, S, R).
//
// An AttackSpec carries everything image-related the solver needs, already
// reduced to the cut point: `features` row i is the cached activation of
// image xᵢ at the input of the first attacked layer. Rows [0, S) are the
// fault images to be driven to `labels[i]` (their TARGET tᵢ); rows [S, R)
// are the sneak/camouflage images whose `labels[i]` is the classification
// to MAINTAIN (the original model's prediction — the paper's stealthiness
// constraint uses predictions, not ground truth, since the adversary is
// not assumed to know the data labels).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fsa::core {

struct AttackSpec {
  /// Activations at the cut, batch-first: [R, F] for a dense cut, or the
  /// natural [R, C, H, W] when the first attacked layer is convolutional.
  Tensor features;
  std::vector<std::int64_t> labels;  ///< [R]: targets for i<S, keep-labels for i≥S
  std::int64_t S = 0;                ///< number of injected faults
  std::vector<double> c;             ///< per-image weight cᵢ (eq. 5/6); empty = all 1

  [[nodiscard]] std::int64_t R() const { return features.dim(0); }

  void validate(std::int64_t num_classes) const {
    if (features.shape().rank() < 2)
      throw std::invalid_argument("AttackSpec: features must be batch-first, rank >= 2");
    if (static_cast<std::int64_t>(labels.size()) != R())
      throw std::invalid_argument("AttackSpec: label count != R");
    if (S < 0 || S > R()) throw std::invalid_argument("AttackSpec: S out of range");
    for (auto l : labels)
      if (l < 0 || l >= num_classes) throw std::invalid_argument("AttackSpec: label out of range");
    if (!c.empty() && static_cast<std::int64_t>(c.size()) != R())
      throw std::invalid_argument("AttackSpec: c count != R");
  }

  [[nodiscard]] double weight(std::int64_t i) const {
    return c.empty() ? 1.0 : c[static_cast<std::size_t>(i)];
  }
};

/// How fault targets tᵢ are chosen.
enum class TargetPolicy {
  kRandom,    ///< uniform over labels ≠ current prediction (paper default:
              ///< "flexibility to specify any target labels")
  kNextLabel  ///< (pred + 1) mod classes — deterministic, used in tests
};

/// Build a spec from pooled candidates.
///
/// `pool_features` [N, F] / `pool_preds` are the adversary's images pushed
/// through the frozen prefix and the original model. Only images the model
/// currently classifies as `pool_labels` (i.e. correctly) are eligible, so
/// "maintain" and "fault" are both well defined. Throws if fewer than R
/// eligible images exist.
AttackSpec make_spec(const Tensor& pool_features, const std::vector<std::int64_t>& pool_labels,
                     const std::vector<std::int64_t>& pool_preds, std::int64_t S, std::int64_t R,
                     std::int64_t num_classes, std::uint64_t seed,
                     TargetPolicy policy = TargetPolicy::kRandom);

}  // namespace fsa::core
