// fault_sneaking.h — the fault sneaking attack driver (the paper's system).
//
// Wraps the ADMM solver with the practical outer machinery a real attack
// needs:
//   1. escalation — if the sparse solution misses some of the S faults,
//      retry with the per-image weights cᵢ scaled up (warm-started), the
//      standard C&W-style balance search; Fig 3's tolerance knee appears
//      where escalation stops helping;
//   2. support-restricted refinement — the ℓ0 prox zeroes coordinates,
//      which can perturb constraints; a short projected-gradient phase on
//      the surviving support re-satisfies them without growing ‖δ‖₀
//      (mirrors the feasibility check in the ICCAD'17 baseline);
//   3. measurement — ℓ0/ℓ2 norms of the applied modification, fault
//      success rate, sneak (maintain) rate, wall time.
//
// The driver never leaves the network perturbed: run() restores θ0, and
// callers opt in to the modification with apply()/revert().
#pragma once

#include <optional>

#include "core/admm.h"

namespace fsa::core {

struct FaultSneakingConfig {
  AdmmConfig admm;
  std::int64_t escalations = 3;     ///< extra attempts with c ×= c_growth
  double c_growth = 8.0;
  std::int64_t refine_steps = 400;  ///< projected-gradient budget per attempt
  double refine_lr = 5e-3;
  double refine_kappa = 0.05;       ///< confidence demanded during refinement
  bool verbose = false;
};

struct FaultSneakingResult {
  Tensor delta;                     ///< applied modification (flat mask space)
  std::int64_t l0 = 0;              ///< ‖δ‖₀ — number of modified parameters
  double l2 = 0.0;                  ///< ‖δ‖₂ — modification magnitude
  std::int64_t targets_hit = 0;     ///< faults injected successfully (of S)
  std::int64_t maintained = 0;      ///< sneak images kept (of R−S)
  double success_rate = 0.0;        ///< targets_hit / S (1.0 when S = 0)
  bool all_targets_hit = false;
  bool all_maintained = false;
  std::int64_t admm_iterations = 0;
  std::int64_t attempts = 0;        ///< escalation attempts used
  double seconds = 0.0;
  ConvergenceTrace convergence;     ///< best attempt's per-iteration curves
                                    ///< (empty unless admm.record_convergence)
};

class FaultSneakingAttack {
 public:
  /// Attack the named layers of `net` (weights and/or biases).
  FaultSneakingAttack(nn::Sequential& net, const std::vector<std::string>& layers,
                      bool include_weights = true, bool include_biases = true)
      : FaultSneakingAttack(net, ParamMask::make(net, layers, include_weights, include_biases)) {}

  /// Attack through an existing mask (must be bound to `net`'s parameters).
  FaultSneakingAttack(nn::Sequential& net, ParamMask mask)
      : net_(&net), mask_(std::move(mask)), theta0_(mask_.gather_values()) {}

  /// Solve the attack problem; the network is restored to θ0 on return.
  FaultSneakingResult run(const AttackSpec& spec, const FaultSneakingConfig& cfg = {});

  /// Commit a modification (e.g. result.delta) into the live network.
  void apply(const Tensor& delta);

  /// Restore the original parameters.
  void revert() { mask_.scatter_values(theta0_); }

  [[nodiscard]] const ParamMask& mask() const { return mask_; }
  [[nodiscard]] std::size_t cut() const { return mask_.cut(); }
  [[nodiscard]] const Tensor& theta0() const { return theta0_; }

 private:
  /// Projected gradient descent restricted to support(delta); returns the
  /// refined delta (same support or smaller).
  Tensor refine(const Tensor& delta, const AttackSpec& spec, const FaultSneakingConfig& cfg);

  nn::Sequential* net_;
  ParamMask mask_;
  Tensor theta0_;
};

}  // namespace fsa::core
