// prox.h — proximal operators for the ADMM z-step (paper eq. 15–18).
//
// The z-step is  min_z D(z) + (ρ/2)‖z − v‖²  with v = δᵏ − sᵏ:
//  * D = ‖·‖₀ → elementwise hard threshold: keep vᵢ iff vᵢ² > 2/ρ (eq. 16)
//  * D = ‖·‖₂ → block soft threshold: shrink v toward 0 by 1/(ρ‖v‖₂),
//               or collapse to 0 when ‖v‖₂ < 1/ρ (eq. 18)
// These closed forms are exactly why the paper's framework handles the
// non-differentiable ℓ0 norm that the ICCAD'17 baseline cannot.
#pragma once

#include "tensor/tensor.h"

namespace fsa::core {

/// prox_{‖·‖₀/ρ}(v): elementwise hard threshold (eq. 16).
Tensor prox_l0(const Tensor& v, double rho);

/// prox_{‖·‖₂/ρ}(v): block soft threshold (eq. 18).
Tensor prox_l2(const Tensor& v, double rho);

/// prox_{‖·‖₁/ρ}(v): elementwise soft threshold at 1/ρ. Not in the paper's
/// evaluation, but its framework explicitly generalizes over D(·) — ℓ1 is
/// the standard convex surrogate sitting between the two published norms
/// (sparse like ℓ0, convex like ℓ2), exposed as an extension.
Tensor prox_l1(const Tensor& v, double rho);

/// Flip-budget projection for checksum-granularity evasion: zero every
/// coordinate outside the `max_blocks` contiguous blocks of
/// `block_params` entries with the highest energy (Σv², accumulated in
/// double; ties break toward the lower block index, so the result is
/// deterministic for any thread count).
Tensor project_block_budget(const Tensor& v, std::int64_t block_params, std::int64_t max_blocks);

/// Elementwise projection of v onto the box [lo, hi]. The bounds must
/// match v's length.
Tensor project_box(const Tensor& v, const Tensor& lo, const Tensor& hi);

}  // namespace fsa::core
