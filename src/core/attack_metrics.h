// attack_metrics.h — measurement helpers around an attack result.
#pragma once

#include <utility>

#include "core/fault_sneaking.h"

namespace fsa::core {

/// Run `fn` with `delta` applied to the network, then restore θ0.
/// Exception-safe: the modification is reverted even if `fn` throws.
template <typename Fn>
auto with_delta(FaultSneakingAttack& attack, const Tensor& delta, Fn&& fn) {
  attack.apply(delta);
  struct Revert {
    FaultSneakingAttack* a;
    ~Revert() { a->revert(); }
  } revert{&attack};
  return std::forward<Fn>(fn)();
}

}  // namespace fsa::core
