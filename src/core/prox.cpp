#include "core/prox.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "backend/compute_backend.h"
#include "tensor/ops.h"

namespace fsa::core {

Tensor prox_l0(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l0: rho must be positive");
  const double threshold2 = 2.0 / rho;
  Tensor z(v.shape());
  // Elementwise over independent entries: the backend shards it exactly
  // (serially on "reference") — this is the ADMM z-step's hot loop.
  backend::active().parallel_rows(static_cast<std::int64_t>(v.size()), 16384,
                                  [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const double vi = v[ui];
      z[ui] = (vi * vi > threshold2) ? v[ui] : 0.0f;
    }
  });
  return z;
}

Tensor prox_l1(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l1: rho must be positive");
  const float t = static_cast<float>(1.0 / rho);
  Tensor z(v.shape());
  backend::active().parallel_rows(static_cast<std::int64_t>(v.size()), 16384,
                                  [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const float vi = v[ui];
      z[ui] = vi > t ? vi - t : (vi < -t ? vi + t : 0.0f);
    }
  });
  return z;
}

Tensor prox_l2(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l2: rho must be positive");
  const double norm = ops::l2_norm(v);
  if (norm < 1.0 / rho) return Tensor::zeros(v.shape());
  const float shrink = static_cast<float>(1.0 - 1.0 / (rho * norm));
  return ops::scale(v, shrink);
}

Tensor project_block_budget(const Tensor& v, std::int64_t block_params, std::int64_t max_blocks) {
  if (block_params <= 0) throw std::invalid_argument("project_block_budget: block_params must be > 0");
  if (max_blocks <= 0) throw std::invalid_argument("project_block_budget: max_blocks must be > 0");
  const auto n = static_cast<std::int64_t>(v.size());
  const std::int64_t blocks = (n + block_params - 1) / block_params;
  if (blocks <= max_blocks) return v;

  // Serial over blocks: the block count is tiny next to n, and double
  // accumulation in index order keeps energies bit-stable.
  std::vector<std::pair<double, std::int64_t>> energy;
  energy.reserve(static_cast<std::size_t>(blocks));
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t begin = b * block_params;
    const std::int64_t end = std::min(n, begin + block_params);
    double e = 0.0;
    for (std::int64_t i = begin; i < end; ++i) {
      const double vi = v[static_cast<std::size_t>(i)];
      e += vi * vi;
    }
    energy.emplace_back(e, b);
  }
  std::sort(energy.begin(), energy.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<char> keep(static_cast<std::size_t>(blocks), 0);
  for (std::int64_t r = 0; r < max_blocks; ++r)
    keep[static_cast<std::size_t>(energy[static_cast<std::size_t>(r)].second)] = 1;

  Tensor z(v.shape());
  backend::active().parallel_rows(n, 16384, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      z[ui] = keep[static_cast<std::size_t>(i / block_params)] ? v[ui] : 0.0f;
    }
  });
  return z;
}

Tensor project_box(const Tensor& v, const Tensor& lo, const Tensor& hi) {
  if (lo.size() != v.size() || hi.size() != v.size())
    throw std::invalid_argument("project_box: bounds must match v's length");
  Tensor z(v.shape());
  backend::active().parallel_rows(static_cast<std::int64_t>(v.size()), 16384,
                                  [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      z[ui] = std::clamp(v[ui], lo[ui], hi[ui]);
    }
  });
  return z;
}

}  // namespace fsa::core
