#include "core/prox.h"

#include <cmath>
#include <stdexcept>

#include "backend/compute_backend.h"
#include "tensor/ops.h"

namespace fsa::core {

Tensor prox_l0(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l0: rho must be positive");
  const double threshold2 = 2.0 / rho;
  Tensor z(v.shape());
  // Elementwise over independent entries: the backend shards it exactly
  // (serially on "reference") — this is the ADMM z-step's hot loop.
  backend::active().parallel_rows(static_cast<std::int64_t>(v.size()), 16384,
                                  [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const double vi = v[ui];
      z[ui] = (vi * vi > threshold2) ? v[ui] : 0.0f;
    }
  });
  return z;
}

Tensor prox_l1(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l1: rho must be positive");
  const float t = static_cast<float>(1.0 / rho);
  Tensor z(v.shape());
  backend::active().parallel_rows(static_cast<std::int64_t>(v.size()), 16384,
                                  [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const float vi = v[ui];
      z[ui] = vi > t ? vi - t : (vi < -t ? vi + t : 0.0f);
    }
  });
  return z;
}

Tensor prox_l2(const Tensor& v, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("prox_l2: rho must be positive");
  const double norm = ops::l2_norm(v);
  if (norm < 1.0 / rho) return Tensor::zeros(v.shape());
  const float shrink = static_cast<float>(1.0 - 1.0 / (rho * norm));
  return ops::scale(v, shrink);
}

}  // namespace fsa::core
