#include "core/margin_loss.h"

#include <stdexcept>

namespace fsa::core {

MarginEval eval_margin(const Tensor& logits, const AttackSpec& spec, double kappa,
                       double anchor_weight) {
  if (logits.shape().rank() != 2 || logits.dim(0) != spec.R())
    throw std::invalid_argument("eval_margin: logits shape mismatch");
  const std::int64_t r = logits.dim(0), classes = logits.dim(1);
  MarginEval out;
  out.grad_logits = Tensor(Shape({r, classes}));
  out.margins.resize(static_cast<std::size_t>(r));
  for (std::int64_t i = 0; i < r; ++i) {
    const float* z = logits.data() + i * classes;
    const std::int64_t label = spec.labels[static_cast<std::size_t>(i)];
    // Strongest class other than the desired label.
    std::int64_t jstar = label == 0 ? 1 : 0;
    for (std::int64_t j = 0; j < classes; ++j)
      if (j != label && z[j] > z[jstar]) jstar = j;
    const double margin = static_cast<double>(z[jstar]) - static_cast<double>(z[label]);
    out.margins[static_cast<std::size_t>(i)] = margin;
    const double ci = spec.weight(i) * (i < spec.S ? 1.0 : anchor_weight);
    if (margin + kappa > 0.0) {
      out.total_g += ci * (margin + kappa);
      out.grad_logits.at2(i, jstar) = static_cast<float>(ci);
      out.grad_logits.at2(i, label) = static_cast<float>(-ci);
    }
    if (margin < 0.0) {
      if (i < spec.S)
        ++out.targets_hit;
      else
        ++out.maintained;
    }
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> count_satisfied(const Tensor& logits,
                                                      const AttackSpec& spec) {
  const MarginEval e = eval_margin(logits, spec, 0.0);
  return {e.targets_hit, e.maintained};
}

}  // namespace fsa::core
