#include "core/head_gradient.h"

#include "backend/compute_backend.h"

namespace fsa::core {

Tensor HeadGradient::logits_at(const Tensor& theta, const AttackSpec& spec) {
  mask_->scatter_values(theta);
  return net_->forward_from(mask_->cut(), spec.features, /*train=*/false);
}

HeadGradient::Result HeadGradient::eval(const Tensor& theta, const AttackSpec& spec, double c_scale,
                                        double kappa, bool want_grad, double anchor_weight) {
  const Tensor logits = logits_at(theta, spec);
  Result out;
  out.eval = eval_margin(logits, spec, kappa, anchor_weight);
  out.eval.total_g *= c_scale;
  if (want_grad) {
    mask_->zero_head_grads(*net_);
    Tensor gl = out.eval.grad_logits;
    if (c_scale != 1.0) {
      // Scale the batched logit gradient through the backend seam, like
      // every other batched-rows elementwise kernel on this path.
      const float cs = static_cast<float>(c_scale);
      float* g = gl.data();
      backend::active().parallel_rows(gl.numel(), 8192, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) g[i] *= cs;
      });
    }
    net_->backward_to(mask_->cut(), gl);
    out.grad = mask_->gather_grads();
  }
  return out;
}

}  // namespace fsa::core
