// margin_loss.h — the paper's g function (eq. 3–6) on a batch of logits.
//
// For fault images (i < S):      gᵢ = max( max_{j≠tᵢ} Zⱼ − Z_{tᵢ}, 0 )
// For maintained images (i ≥ S): gᵢ = max( max_{j≠lᵢ} Zⱼ − Z_{lᵢ}, 0 )
// — identical formulas with the label column swapped, which is why
// AttackSpec stores one `labels` vector. gᵢ = 0 exactly when image i is
// classified as desired; its subgradient is eⱼ* − e_{label} otherwise
// (j* the strongest wrong class), giving the grad-logits matrix that one
// batched backward pass turns into Σᵢ cᵢ ∇gᵢ over the masked parameters.
#pragma once

#include "core/attack_spec.h"
#include "tensor/tensor.h"

namespace fsa::core {

struct MarginEval {
  double total_g = 0.0;               ///< Σᵢ cᵢ gᵢ
  std::int64_t targets_hit = 0;       ///< fault images currently at their target
  std::int64_t maintained = 0;        ///< sneak images currently at their keep-label
  Tensor grad_logits;                 ///< [R, classes] — ∂(Σ cᵢ gᵢ)/∂Z
  std::vector<double> margins;        ///< per-image max_{j≠label} Zⱼ − Z_label
};

/// Evaluate g and its logits-gradient for a batch.
///
/// `kappa ≥ 0` demands a confidence margin: the hinge becomes
/// max(margin + kappa, 0), so an image only counts as settled once its
/// desired logit leads by kappa. The paper uses kappa = 0; the attack
/// driver's refinement phase uses a small positive kappa so the sparse
/// solution is robust to the final thresholding.
///
/// `anchor_weight` additionally scales cᵢ for the maintained rows (i ≥ S).
/// This is the paper's cᵢ freedom made operational: with hundreds of
/// anchors and a handful of faults, uniform weights let the (rarely
/// active) anchor hinges drown the fault gradient and the solver can
/// stall; anchors only need CORRECTIVE pressure, so a fraction of the
/// fault weight suffices.
MarginEval eval_margin(const Tensor& logits, const AttackSpec& spec, double kappa = 0.0,
                       double anchor_weight = 1.0);

/// Count of images whose argmax equals their spec label (strict argmax,
/// no kappa) — the success measure used in the paper's tables.
std::pair<std::int64_t, std::int64_t> count_satisfied(const Tensor& logits,
                                                      const AttackSpec& spec);

}  // namespace fsa::core
