#include "core/param_mask.h"

#include <limits>
#include <stdexcept>

namespace fsa::core {

ParamMask ParamMask::make(nn::Sequential& net, const std::vector<std::string>& layer_names,
                          bool include_weights, bool include_biases) {
  if (!include_weights && !include_biases)
    throw std::invalid_argument("ParamMask: must include weights, biases, or both");
  ParamMask mask;
  mask.cut_ = std::numeric_limits<std::size_t>::max();
  for (const auto& name : layer_names) {
    const std::size_t li = net.index_of(name);  // throws on unknown name
    for (auto* p : net.layer(li).params()) {
      const bool is_weight = p->kind() == nn::Parameter::Kind::kWeight;
      if ((is_weight && !include_weights) || (!is_weight && !include_biases)) continue;
      mask.segments_.push_back(Segment{p, li, mask.size_});
      mask.size_ += p->numel();
      mask.cut_ = std::min(mask.cut_, li);
    }
  }
  if (mask.segments_.empty()) throw std::invalid_argument("ParamMask: empty selection");
  std::string kinds = include_weights && include_biases ? "weights+biases"
                      : include_weights                 ? "weights"
                                                        : "biases";
  std::string joined;
  for (const auto& n : layer_names) joined += (joined.empty() ? "" : ",") + n;
  mask.label_ = joined + "[" + kinds + "] (" + std::to_string(mask.size_) + " params)";
  return mask;
}

Tensor ParamMask::gather_values() const {
  Tensor flat(Shape({size_}));
  for (const auto& seg : segments_) {
    const auto& v = seg.param->value();
    std::copy(v.data(), v.data() + v.numel(), flat.data() + seg.offset);
  }
  return flat;
}

void ParamMask::scatter_values(const Tensor& flat) const {
  if (flat.numel() != size_) throw std::invalid_argument("ParamMask::scatter_values: size mismatch");
  for (const auto& seg : segments_) {
    auto& v = seg.param->value();
    std::copy(flat.data() + seg.offset, flat.data() + seg.offset + v.numel(), v.data());
    // Invalidate any compiled packed panels built from the old values.
    seg.param->bump_version();
  }
}

Tensor ParamMask::gather_grads() const {
  Tensor flat(Shape({size_}));
  for (const auto& seg : segments_) {
    const auto& g = seg.param->grad();
    std::copy(g.data(), g.data() + g.numel(), flat.data() + seg.offset);
  }
  return flat;
}

void ParamMask::zero_head_grads(nn::Sequential& net) const {
  for (std::size_t i = cut_; i < net.size(); ++i) net.layer(i).zero_grad();
}

std::string ParamMask::describe() const { return label_; }

}  // namespace fsa::core
