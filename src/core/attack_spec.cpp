#include "core/attack_spec.h"

#include <algorithm>

namespace fsa::core {

AttackSpec make_spec(const Tensor& pool_features, const std::vector<std::int64_t>& pool_labels,
                     const std::vector<std::int64_t>& pool_preds, std::int64_t S, std::int64_t R,
                     std::int64_t num_classes, std::uint64_t seed, TargetPolicy policy) {
  if (pool_features.shape().rank() < 2)
    throw std::invalid_argument("make_spec: pool_features must be batch-first, rank >= 2");
  const std::int64_t n = pool_features.dim(0);
  if (static_cast<std::int64_t>(pool_labels.size()) != n ||
      static_cast<std::int64_t>(pool_preds.size()) != n)
    throw std::invalid_argument("make_spec: pool metadata count mismatch");
  if (S < 0 || S > R) throw std::invalid_argument("make_spec: need 0 <= S <= R");

  // Eligible = correctly classified by the original model.
  std::vector<std::int64_t> eligible;
  for (std::int64_t i = 0; i < n; ++i)
    if (pool_preds[static_cast<std::size_t>(i)] == pool_labels[static_cast<std::size_t>(i)])
      eligible.push_back(i);
  if (static_cast<std::int64_t>(eligible.size()) < R)
    throw std::runtime_error("make_spec: pool has only " + std::to_string(eligible.size()) +
                             " correctly classified images, need R=" + std::to_string(R));

  Rng rng(seed);
  // Deterministic shuffle so different seeds give different image subsets.
  for (std::size_t i = eligible.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    std::swap(eligible[i - 1], eligible[j]);
  }

  const std::int64_t f = pool_features.numel() / std::max<std::int64_t>(n, 1);
  AttackSpec spec;
  spec.S = S;
  std::vector<std::int64_t> dims = pool_features.shape().dims();
  dims[0] = R;
  spec.features = Tensor(Shape(dims));
  spec.labels.resize(static_cast<std::size_t>(R));
  for (std::int64_t k = 0; k < R; ++k) {
    const std::int64_t src = eligible[static_cast<std::size_t>(k)];
    std::copy(pool_features.data() + src * f, pool_features.data() + (src + 1) * f,
              spec.features.data() + k * f);
    const std::int64_t pred = pool_preds[static_cast<std::size_t>(src)];
    if (k < S) {
      std::int64_t target = pred;
      if (policy == TargetPolicy::kNextLabel) {
        target = (pred + 1) % num_classes;
      } else {
        while (target == pred)
          target = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(num_classes)));
      }
      spec.labels[static_cast<std::size_t>(k)] = target;
    } else {
      spec.labels[static_cast<std::size_t>(k)] = pred;  // maintain
    }
  }
  spec.validate(num_classes);
  return spec;
}

}  // namespace fsa::core
