// param_mask.h — selection of the attackable parameter subset.
//
// The paper's θ "has the flexibility of specifying either all the DNN
// parameters or only a portion of the parameters, e.g., weight parameters
// of the specific layer(s)" (§3). ParamMask is that portion: an ordered
// list of (layer, parameter) segments with gather/scatter between the
// model's parameter tensors and the flat vector space the ADMM solver
// works in. Table 1 masks each FC layer in turn; Table 2 masks only the
// weights or only the biases of the last FC layer.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"

namespace fsa::core {

class ParamMask {
 public:
  struct Segment {
    nn::Parameter* param = nullptr;
    std::size_t layer_index = 0;   ///< index of the owning layer in the net
    std::int64_t offset = 0;       ///< start offset in the flat vector
  };

  /// Select parameters of the named layers, filtered by kind.
  /// Throws if the selection is empty or a layer name is unknown.
  static ParamMask make(nn::Sequential& net, const std::vector<std::string>& layer_names,
                        bool include_weights = true, bool include_biases = true);

  /// Flat dimension of the masked space (the paper's dim(δ)).
  [[nodiscard]] std::int64_t size() const { return size_; }

  /// Lowest layer index among the selected parameters — the network "cut":
  /// activations below it are unaffected by any masked modification, so
  /// they can be cached (see models::FeatureCache).
  [[nodiscard]] std::size_t cut() const { return cut_; }

  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// Copy current model values into a flat vector (the attack's θ).
  [[nodiscard]] Tensor gather_values() const;

  /// Write a flat vector back into the model parameters (θ + δ).
  void scatter_values(const Tensor& flat) const;

  /// Copy current accumulated gradients into a flat vector.
  [[nodiscard]] Tensor gather_grads() const;

  /// Zero the gradients of every layer at or above the cut (sufficient for
  /// head-only backward passes, cheaper than zeroing the whole model).
  void zero_head_grads(nn::Sequential& net) const;

  /// Human-readable description, e.g. "fc3[weights+biases] (2010 params)".
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Segment> segments_;
  std::int64_t size_ = 0;
  std::size_t cut_ = 0;
  std::string label_;
};

}  // namespace fsa::core
