// admm.h — the paper's general linearized-ADMM framework (§4).
//
// Solves   min_δ D(δ) + G(θ+δ, X, T, L)   via the splitting z = δ:
//
//   zᵏ⁺¹ = prox_{D/ρ}(δᵏ − sᵏ)                        (eq. 13, 16/18)
//   δᵏ⁺¹ = (ρ(zᵏ⁺¹+sᵏ) + αRδᵏ − Σᵢ∇gᵢ(θ+δᵏ)) / (αR+ρ) (eq. 21/22)
//   sᵏ⁺¹ = sᵏ + zᵏ⁺¹ − δᵏ⁺¹                            (eq. 12)
//
// The δ-step uses the linearization H = αI, so both steps are closed-form —
// the "systematic application of ADMM with analytical solutions" the paper
// contrasts against the heuristic ICCAD'17 attack. The same loop serves the
// ℓ0 and ℓ2 objectives; only the prox operator differs.
#pragma once

#include <memory>
#include <vector>

#include "core/head_gradient.h"

namespace fsa::core {

enum class NormKind {
  kL0,  ///< number of modified parameters (paper eq. 16)
  kL2,  ///< modification magnitude (paper eq. 18)
  kL1,  ///< extension: convex sparse surrogate (soft threshold)
};

/// Detection-aware constraint folded into the ADMM z-step (and honored by
/// the refinement phase): keeps δ inside a deployed defense's accepted
/// set DURING the solve instead of hoping post hoc. Both parts compose —
/// the z-step applies the flip budget first, then the box.
struct EvasionConstraint {
  /// Per-coordinate δ box (flat mask space; empty = no box), from a
  /// RangeGuard's widened group envelope: lo[i] = group_lo − θ0[i],
  /// hi[i] = group_hi − θ0[i], so any in-box δ leaves θ0+δ in range and
  /// sanitization never bites. Each interval must contain 0.
  Tensor lo, hi;
  /// Flip budget at checksum granularity: after the prox, keep only the
  /// `max_blocks` contiguous blocks of `block_params` coordinates with
  /// the highest energy (0 = unbudgeted), minimizing integrity regions
  /// the attack trips.
  std::int64_t block_params = 0;
  std::int64_t max_blocks = 0;

  [[nodiscard]] bool has_box() const { return lo.numel() > 0; }
  [[nodiscard]] bool has_budget() const { return block_params > 0 && max_blocks > 0; }
};

struct AdmmConfig {
  NormKind norm = NormKind::kL0;
  double rho = 2000.0;   ///< augmented-Lagrangian weight; also sets the ℓ0
                         ///< keep-threshold √(2/ρ) and ℓ2 shrink radius 1/ρ.
                         ///< The ablation bench shows ρ is the sparsity/
                         ///< magnitude knob: at S=2, R=50 on the digits
                         ///< model, ρ=25 → ℓ0≈1324, ℓ2≈475 while ρ=3200 →
                         ///< ℓ0≈265, ℓ2≈1.9, both at 100% success. The
                         ///< default sits near the sparse end, matching the
                         ///< paper's reported ℓ0 scale on the last FC layer.
  double alpha = -1.0;   ///< Bregman H = αI; ≤ 0 selects the auto rule α = ρ/R
                         ///< (balances the gradient and proximal pulls)
  double c = 10.0;       ///< uniform scale on the per-image weights cᵢ.
                         ///< Must satisfy c·|feature| ≳ √(2ρ) or the hinge
                         ///< gradient cannot push any coordinate of δ past
                         ///< the ℓ0 keep-threshold and the solver stalls at
                         ///< δ = 0 (the dual fixed point is s = ∇g/ρ, so a
                         ///< coordinate survives the prox only when
                         ///< |∇g_i| > √(2ρ)). The driver escalates c when
                         ///< faults remain unmet.
  double kappa = 0.05;   ///< hinge confidence margin (paper: 0; a small
                         ///< cushion keeps the hard-thresholded z feasible)
  double anchor_weight = 0.1;  ///< cᵢ scale for maintained rows (the paper's
                               ///< per-image weights): anchors only need
                               ///< corrective pressure, so damping them keeps
                               ///< hundreds of (rarely violated) maintain
                               ///< hinges from drowning the fault gradient at
                               ///< large R
  std::int64_t iterations = 600;
  std::int64_t check_every = 25;  ///< evaluate the sparse candidate θ0+z
  std::int64_t patience = 2;      ///< consecutive satisfied checks → early stop
  bool verbose = false;
  /// Record per-iteration objective/primal/dual residuals into
  /// AdmmResult::convergence. Off by default: the extra O(d) passes and
  /// the zᵏ copy only run when someone asked to watch the solve (the
  /// engine sets this from the trace flag), so the untraced solve path
  /// is untouched.
  bool record_convergence = false;
  /// Optional detection-aware constraint (shared: AdmmConfig is copied
  /// freely during escalation and the box tensors are large). Null for
  /// the vanilla attack — the solve path is then bitwise identical to
  /// pre-evasion builds.
  std::shared_ptr<const EvasionConstraint> evasion;
};

/// Per-iteration solver diagnostics — the convergence curves behind the
/// paper's experiments section. All three vectors are index-aligned
/// (entry k = iteration k): objective Σcᵢgᵢ, primal residual ‖zᵏ⁺¹−δᵏ⁺¹‖₂
/// and dual residual ρ‖zᵏ⁺¹−zᵏ‖₂ (the standard ADMM stopping pair).
struct ConvergenceTrace {
  std::vector<double> objective;
  std::vector<double> primal;
  std::vector<double> dual;

  [[nodiscard]] bool empty() const { return objective.empty(); }
};

struct AdmmResult {
  Tensor delta;  ///< dense final iterate δᴷ
  Tensor z;      ///< proximal copy — exactly sparse under ℓ0
  std::int64_t iterations_run = 0;
  bool early_stopped = false;
  std::vector<double> g_history;  ///< Σcᵢgᵢ at each iteration (diagnostics)
  ConvergenceTrace convergence;   ///< filled only when cfg.record_convergence
};

class AdmmSolver {
 public:
  /// `net`/`mask` must outlive the solver. The solver restores the
  /// network's original masked parameters before returning from solve().
  AdmmSolver(nn::Sequential& net, const ParamMask& mask) : grad_(net, mask) {}

  AdmmResult solve(const AttackSpec& spec, const AdmmConfig& cfg);

  [[nodiscard]] HeadGradient& gradient() { return grad_; }

 private:
  HeadGradient grad_;
};

}  // namespace fsa::core
