#include "tensor/serialize.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace fsa::io {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'A', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("fsa::io: truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(t.shape().rank()));
  for (auto d : t.shape().dims()) write_pod(os, static_cast<std::int64_t>(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!os) throw std::runtime_error("fsa::io: tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("fsa::io: bad tensor magic");
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("fsa::io: unsupported tensor version " + std::to_string(version));
  const auto rank = read_pod<std::uint32_t>(is);
  if (rank > 8) throw std::runtime_error("fsa::io: implausible tensor rank");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    d = read_pod<std::int64_t>(is);
    if (d < 0 || d > (1LL << 32)) throw std::runtime_error("fsa::io: implausible tensor dim");
  }
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()), static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("fsa::io: truncated tensor data");
  return t;
}

void save_tensors(const std::string& path, const std::vector<Tensor>& tensors) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("fsa::io: cannot open for write: " + path);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& t : tensors) write_tensor(os, t);
}

std::vector<Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("fsa::io: cannot open for read: " + path);
  const auto count = read_pod<std::uint64_t>(is);
  if (count > (1ULL << 20)) throw std::runtime_error("fsa::io: implausible tensor count");
  std::vector<Tensor> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(read_tensor(is));
  return out;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace fsa::io
