#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/compute_backend.h"

namespace fsa::ops {

namespace {

void check2d(const Tensor& t, const char* who) {
  if (t.shape().rank() != 2)
    throw std::invalid_argument(std::string(who) + ": expected rank-2, got " + t.shape().str());
}

void check_same(const Tensor& a, const Tensor& b, const char* who) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(who) + ": shape mismatch " + a.shape().str() + " vs " +
                                b.shape().str());
}

}  // namespace

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  check2d(a, "matmul");
  check2d(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k)
    throw std::invalid_argument("matmul: inner dims " + a.shape().str() + " · " + b.shape().str());
  if (c.dim(0) != m || c.dim(1) != n) throw std::invalid_argument("matmul: bad output shape");
  backend::active().gemm_nn_acc(a.data(), b.data(), c.data(), m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape({a.dim(0), b.dim(1)}));
  matmul_acc(a, b, c);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check2d(a, "matmul_tn");
  check2d(b, "matmul_tn");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dims mismatch");
  Tensor c(Shape({m, n}));
  backend::active().gemm_tn_acc(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check2d(a, "matmul_nt");
  check2d(b, "matmul_nt");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dims mismatch");
  Tensor c(Shape({m, n}));
  backend::active().gemm_nt_acc(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor transpose2d(const Tensor& a) {
  check2d(a, "transpose2d");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape({n, m}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out.at2(j, i) = a.at2(i, j);
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  check_same(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same(a, b, "add");
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same(a, b, "sub");
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same(a, b, "mul");
  Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  for (auto& v : out.span()) v = std::max(v, 0.0f);
  return out;
}

Tensor relu_mask(const Tensor& a) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] > 0.0f ? 1.0f : 0.0f;
  return out;
}

void add_row_bias(Tensor& m, const Tensor& bias) {
  check2d(m, "add_row_bias");
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  if (bias.numel() != cols) throw std::invalid_argument("add_row_bias: bias length mismatch");
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = m.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] += bias[static_cast<std::size_t>(c)];
  }
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.span()) acc += v;
  return acc;
}

double mean(const Tensor& a) { return a.numel() == 0 ? 0.0 : sum(a) / static_cast<double>(a.numel()); }

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.span()) m = std::max(m, std::fabs(v));
  return m;
}

std::int64_t argmax(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < a.numel(); ++i)
    if (a[static_cast<std::size_t>(i)] > a[static_cast<std::size_t>(best)]) best = i;
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  check2d(a, "argmax_rows");
  const std::int64_t rows = a.dim(0), cols = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = a.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c)
      if (row[c] > row[best]) best = c;
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.span()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

std::int64_t l0_norm(const Tensor& a, float tol) {
  std::int64_t n = 0;
  for (float v : a.span())
    if (std::fabs(v) > tol) ++n;
  return n;
}

Tensor softmax_rows(const Tensor& logits) {
  check2d(logits, "softmax_rows");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  // Rows are independent, so sharding them through the backend is exact
  // (the reference backend runs them serially, pooled backends shard).
  backend::active().parallel_rows(
      rows, std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(cols, 1)),
      [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* in = logits.data() + r * cols;
      float* o = out.data() + r * cols;
      float mx = in[0];
      for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      double denom = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        o[c] = std::exp(in[c] - mx);
        denom += o[c];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
    }
  });
  return out;
}

double cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check2d(logits, "cross_entropy");
  const std::int64_t rows = logits.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != rows)
    throw std::invalid_argument("cross_entropy: label count mismatch");
  const Tensor p = softmax_rows(logits);
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float pr = p.at2(r, labels[static_cast<std::size_t>(r)]);
    loss -= std::log(std::max(pr, 1e-12f));
  }
  return loss / static_cast<double>(rows);
}

Tensor cross_entropy_grad(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check2d(logits, "cross_entropy_grad");
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != rows)
    throw std::invalid_argument("cross_entropy_grad: label count mismatch");
  Tensor g = softmax_rows(logits);
  const float inv_n = 1.0f / static_cast<float>(rows);
  backend::active().parallel_rows(
      rows, std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(cols, 1)),
      [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float* row = g.data() + r * cols;
      row[labels[static_cast<std::size_t>(r)]] -= 1.0f;
      for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv_n;
    }
  });
  return g;
}

}  // namespace fsa::ops
