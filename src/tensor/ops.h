// ops.h — numeric kernels over Tensors.
//
// Free functions rather than members: layers and the attack engine compose
// these kernels, and keeping them out of Tensor keeps the class small.
// The GEMM variants route through the blocked, register-tiled kernels in
// gemm.h, and the row-parallel kernels (softmax, cross-entropy gradient)
// shard over the parallel.h thread pool. Every kernel is deterministic for
// any thread count: each output element is produced by exactly one thread
// in a fixed accumulation order (see parallel.h for the contract).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fsa::ops {

// ---- linear algebra ---------------------------------------------------------

/// C = A(m×k) · B(k×n). Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += A(m×k) · B(k×n) into an existing output buffer.
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);

/// C = Aᵀ(k×m becomes m-major) · B — i.e. matmul(transpose(a), b) without
/// materializing the transpose.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A · Bᵀ without materializing the transpose.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

/// Dot product of two same-shape tensors (flattened).
double dot(const Tensor& a, const Tensor& b);

// ---- elementwise ------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< Hadamard product.
Tensor scale(const Tensor& a, float s);

/// Elementwise max(a, 0).
Tensor relu(const Tensor& a);

/// Mask of a > 0 (1.0f / 0.0f), used for the ReLU backward pass.
Tensor relu_mask(const Tensor& a);

/// Add a length-n bias vector to every row of an (m×n) matrix.
void add_row_bias(Tensor& m, const Tensor& bias);

// ---- reductions -------------------------------------------------------------

double sum(const Tensor& a);
double mean(const Tensor& a);
float max_abs(const Tensor& a);

/// Index of the largest element (first on ties).
std::int64_t argmax(const Tensor& a);

/// Per-row argmax of a 2-D tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

/// Euclidean norm of the flattened tensor.
double l2_norm(const Tensor& a);

/// Number of entries with |x| > tol — the paper's ℓ0 measure of δ.
std::int64_t l0_norm(const Tensor& a, float tol = 1e-8f);

// ---- softmax ----------------------------------------------------------------

/// Row-wise numerically-stable softmax of a 2-D logits tensor.
Tensor softmax_rows(const Tensor& logits);

/// Mean cross-entropy of row-wise softmax vs integer labels.
double cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Gradient of mean cross-entropy w.r.t. logits: (softmax − onehot)/N.
Tensor cross_entropy_grad(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace fsa::ops
