// tensor.h — contiguous row-major float32 tensor.
//
// This is the numeric workhorse of the library: activations, parameters,
// gradients, images, and attack perturbations are all Tensors. The design
// is deliberately simple — a Shape plus an owning std::vector<float> —
// because the fault-sneaking workloads are dominated by GEMM inside
// conv/dense layers (see ops.h), not by tensor bookkeeping.
//
// Copying a Tensor copies its data (value semantics). Views are not
// supported; slices materialize. This keeps aliasing reasoning trivial in
// the attack code, where the same parameter vector is read by many images.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace fsa {

class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor() : shape_({0}) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), value) {}

  /// Tensor adopting an existing buffer; `data.size()` must match the shape.
  Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != shape_.numel())
      throw std::invalid_argument("Tensor: buffer size " + std::to_string(data_.size()) +
                                  " does not match shape " + shape_.str());
  }

  // ---- factories ----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// I.i.d. N(mean, stddev²) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
    return t;
  }

  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
    return t;
  }

  /// Rank-1 tensor from explicit values.
  static Tensor from_vector(std::vector<float> values) {
    const auto n = static_cast<std::int64_t>(values.size());
    return Tensor(Shape({n}), std::move(values));
  }

  // ---- structure -----------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }

  /// Same data, new shape (element count must match).
  [[nodiscard]] Tensor reshape(Shape new_shape) const {
    if (new_shape.numel() != shape_.numel())
      throw std::invalid_argument("Tensor::reshape: cannot reshape " + shape_.str() + " to " +
                                  new_shape.str());
    Tensor out = *this;
    out.shape_ = std::move(new_shape);
    return out;
  }

  /// Materialized copy of rows [begin, end) along dimension 0.
  [[nodiscard]] Tensor slice0(std::int64_t begin, std::int64_t end) const;

  /// Materialized copy of row `i` along dimension 0 (rank reduced by 1).
  [[nodiscard]] Tensor row(std::int64_t i) const;

  // ---- element access ------------------------------------------------------

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access.
  float& at(std::int64_t i) {
    if (i < 0 || i >= numel()) throw std::out_of_range("Tensor::at " + std::to_string(i));
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float at(std::int64_t i) const {
    if (i < 0 || i >= numel()) throw std::out_of_range("Tensor::at " + std::to_string(i));
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexed access (rank must be 2).
  float& at2(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
  }
  [[nodiscard]] float at2(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
  }

  /// NCHW indexed access (rank must be 4).
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    const auto C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
    return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
  }
  [[nodiscard]] float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    const auto C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
    return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
  }

  // ---- in-place arithmetic --------------------------------------------------

  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);
  Tensor& fill(float v);

  /// this += alpha * o  (BLAS axpy).
  Tensor& axpy(float alpha, const Tensor& o);

  bool operator==(const Tensor& o) const { return shape_ == o.shape_ && data_ == o.data_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fsa
