#include "tensor/tensor.h"

namespace fsa {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string("Tensor::") + op + ": shape mismatch " +
                                a.shape().str() + " vs " + b.shape().str());
}
}  // namespace

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  if (shape_.rank() == 0) throw std::invalid_argument("Tensor::slice0 on rank-0 tensor");
  const std::int64_t n = shape_.dim(0);
  if (begin < 0 || end > n || begin > end)
    throw std::out_of_range("Tensor::slice0 [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") of " + shape_.str());
  std::vector<std::int64_t> dims = shape_.dims();
  dims[0] = end - begin;
  const std::int64_t row_elems = (n == 0) ? 0 : numel() / n;
  Tensor out{Shape(dims)};
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * row_elems),
            data_.begin() + static_cast<std::ptrdiff_t>(end * row_elems), out.data_.begin());
  return out;
}

Tensor Tensor::row(std::int64_t i) const {
  Tensor s = slice0(i, i + 1);
  std::vector<std::int64_t> dims(shape_.dims().begin() + 1, shape_.dims().end());
  if (dims.empty()) dims = {1};
  return s.reshape(Shape(dims));
}

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(*this, o, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  check_same_shape(*this, o, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

Tensor& Tensor::axpy(float alpha, const Tensor& o) {
  check_same_shape(*this, o, "axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o.data_[i];
  return *this;
}

}  // namespace fsa
