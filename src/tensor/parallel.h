// parallel.h — the shared thread-pool behind every hot kernel.
//
// One process-wide pool of worker threads executes index ranges submitted
// through parallel_for. The worker count defaults to the hardware thread
// count, can be pinned with the FSA_NUM_THREADS environment variable, and
// can be changed at runtime with set_num_threads (tests use this to prove
// 1-thread and N-thread runs agree bit-for-bit).
//
// Determinism contract: parallel_for may split [begin, end) into chunks in
// a thread-count-dependent way, so the BODY must compute each index's
// result independently of where chunk boundaries fall (true for every
// kernel in this library: each output element is produced by exactly one
// index). parallel_reduce instead fixes its chunk boundaries from `grain`
// alone and folds the per-chunk partials in chunk order, so floating-point
// reductions are identical for any number of threads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fsa {

/// Current worker count (≥ 1). First call reads FSA_NUM_THREADS.
int num_threads();

/// Override the worker count; n ≤ 0 restores the environment default.
void set_num_threads(int n);

/// Run body(b, e) over disjoint subranges covering [begin, end). `grain` is
/// the minimum number of indices per chunk; ranges at or below it (or a
/// 1-thread pool) run serially on the calling thread. Exceptions thrown by
/// the body are rethrown on the caller.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Deterministic parallel reduction: chunk boundaries depend only on
/// `grain`, partials are combined serially in ascending chunk order.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain, T init,
                  const Body& body, const Combine& combine) {
  if (end <= begin) return init;
  if (grain < 1) grain = 1;
  const std::int64_t total = end - begin;
  const std::int64_t nchunks = (total + grain - 1) / grain;
  if (nchunks == 1) return combine(init, body(begin, end));
  std::vector<T> parts(static_cast<std::size_t>(nchunks), init);
  parallel_for(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(end, b + grain);
      parts[static_cast<std::size_t>(c)] = body(b, e);
    }
  });
  T acc = init;
  for (const T& p : parts) acc = combine(acc, p);
  return acc;
}

}  // namespace fsa
