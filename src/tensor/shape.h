// shape.h — dense tensor shapes for the fault-sneaking-attack library.
//
// A Shape is an ordered list of non-negative extents. Tensors in this
// library are contiguous row-major float32 buffers, so the shape alone
// determines the memory layout; strides are derived, never stored.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace fsa {

/// Ordered list of tensor extents (row-major, outermost first).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { validate(); }

  /// Number of dimensions (0 for a scalar-shaped tensor).
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `i`; negative `i` counts from the back.
  [[nodiscard]] std::int64_t dim(std::int64_t i) const {
    const auto r = static_cast<std::int64_t>(dims_.size());
    if (i < 0) i += r;
    if (i < 0 || i >= r) throw std::out_of_range("Shape::dim index " + std::to_string(i));
    return dims_[static_cast<std::size_t>(i)];
  }

  /// Total number of elements (1 for rank-0).
  [[nodiscard]] std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements, not bytes).
  [[nodiscard]] std::vector<std::int64_t> strides() const {
    std::vector<std::int64_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) s[i - 1] = s[i] * dims_[i];
    return s;
  }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  /// Human-readable form, e.g. "[32, 1, 28, 28]".
  [[nodiscard]] std::string str() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    for (auto d : dims_)
      if (d < 0) throw std::invalid_argument("Shape: negative extent in " + str());
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace fsa
