// serialize.h — binary (de)serialization of tensors.
//
// Format (little-endian, the only platform we target):
//   magic "FSAT"  u32 version  u32 rank  i64 dims[rank]  f32 data[numel]
// Used by the model zoo to cache trained networks and feature caches so
// that every bench/example after the first run starts instantly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fsa::io {

/// Write one tensor to a binary stream. Throws std::runtime_error on failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read one tensor written by write_tensor. Throws std::runtime_error on
/// malformed input.
Tensor read_tensor(std::istream& is);

/// Write a whole list of tensors (count-prefixed) to `path`.
void save_tensors(const std::string& path, const std::vector<Tensor>& tensors);

/// Read a list written by save_tensors.
std::vector<Tensor> load_tensors(const std::string& path);

/// True if `path` exists and is a regular file.
bool file_exists(const std::string& path);

}  // namespace fsa::io
