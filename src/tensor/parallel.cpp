#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace fsa {

namespace {

// Workers run on the thread pool; the submitting thread also executes
// chunks, so a pool of N threads means N-1 spawned workers. One job runs at
// a time (a nested parallel_for from inside a worker falls back to serial).
thread_local bool tl_inside_pool = false;

int default_thread_count() {
  if (const char* env = std::getenv("FSA_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// Each submission gets its own heap-allocated state. A worker that wakes up
// late (or lingers after the caller returned) only ever touches the job it
// holds a shared_ptr to, whose chunk counter is already exhausted — it can
// never bleed into the next submission.
struct Job {
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  std::int64_t begin = 0, end = 0, chunk = 0, nchunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  // Returns once no chunks remain to claim. The caller's `body` outlives
  // every execution: the submitter blocks until done == nchunks, and done
  // is only incremented after body returns.
  void work() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::int64_t b = begin + c * chunk;
      const std::int64_t e = std::min(end, b + chunk);
      try {
        (*body)(b, e);
      } catch (...) {
        std::lock_guard lk(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == nchunks) {
        std::lock_guard lk(mu);  // pairs with the submitter's wait
        done_cv.notify_all();
      }
    }
  }

  void wait() {
    std::unique_lock lk(mu);
    done_cv.wait(lk, [&] { return done.load(std::memory_order_acquire) == nchunks; });
    if (error) std::rethrow_exception(error);
  }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int threads() const { return threads_; }

  void set_threads(int n) {
    if (n <= 0) n = default_thread_count();
    std::lock_guard submit_lock(submit_mu_);
    if (n == threads_) return;
    stop_workers();
    threads_ = n;
    start_workers();
  }

  void run(const std::shared_ptr<Job>& job) {
    std::lock_guard submit_lock(submit_mu_);
    {
      std::lock_guard lk(mu_);
      job_ = job;
      ++generation_;
    }
    cv_.notify_all();
    // The submitting thread is pool member #0. While it executes chunks it
    // must count as inside the pool, or a nested parallel_for in the body
    // would re-enter run() and self-deadlock on submit_mu_.
    const bool was_inside = tl_inside_pool;
    tl_inside_pool = true;
    job->work();
    tl_inside_pool = was_inside;
    job->wait();
    std::lock_guard lk(mu_);
    job_ = nullptr;
  }

 private:
  ThreadPool() : threads_(default_thread_count()) { start_workers(); }

  ~ThreadPool() { stop_workers(); }

  void start_workers() {
    stopping_ = false;
    for (int i = 0; i < threads_ - 1; ++i) workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      std::lock_guard lk(mu_);
      stopping_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    tl_inside_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return stopping_ || generation_ != seen; });
        seen = generation_;
        if (stopping_) return;
        job = job_;
      }
      if (job) job->work();
    }
  }

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // serializes run()/set_threads() callers

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::shared_ptr<Job> job_;
};

}  // namespace

int num_threads() { return ThreadPool::instance().threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_threads(n); }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t total = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  const int nt = pool.threads();
  if (total <= grain || nt == 1 || tl_inside_pool) {
    body(begin, end);
    return;
  }
  // ~4 chunks per thread for load balance, but never below the grain.
  std::int64_t chunk = (total + nt * 4 - 1) / (nt * 4);
  chunk = std::max(chunk, grain);
  const std::int64_t nchunks = (total + chunk - 1) / chunk;
  if (nchunks == 1) {
    body(begin, end);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->nchunks = nchunks;
  pool.run(job);
}

}  // namespace fsa
