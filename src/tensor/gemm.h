// gemm.h — cache-blocked, register-tiled GEMM kernels.
//
// The attack's wall-clock lives in three GEMM variants: NN (forward),
// TN (weight gradients), NT (input gradients). All three kernels here
// accumulate (C += …) over row-major contiguous buffers and tile the
// output into mr×nr register blocks: the C block stays in vector registers
// for the whole k loop, so each output element costs one load and one
// store total while every streamed B stripe feeds mr rows at once.
// Work is sharded across the parallel.h thread pool by output-row tile;
// tile boundaries depend only on the shapes, and every output element is
// accumulated in ascending-k order by exactly one thread, so results are
// bit-identical for any thread count.
//
// The NN kernel keeps the seed's sparse-row fast path: rows that are
// mostly zeros (δ rows in the attack) skip their zero entries instead of
// multiplying through.
#pragma once

#include <cstdint>

namespace fsa::gemm {

/// Tiling parameters, exposed so tests can pick shapes that straddle them.
struct Blocking {
  static constexpr std::int64_t mr = 4;   ///< C rows per register block
  static constexpr std::int64_t nr = 32;  ///< C columns per register block
};

/// C(m×n) += A(m×k) · B(k×n).
void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n);

/// C(m×n) += Aᵀ · B where A is stored (k×m) — no materialized transpose.
void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n);

/// C(m×n) += A · Bᵀ where B is stored (n×k) — no materialized transpose.
void gemm_nt_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n);

}  // namespace fsa::gemm
