// rng.h — deterministic pseudo-random number generation.
//
// Everything stochastic in this library (weight init, data synthesis,
// shuffling, Monte-Carlo fault campaigns) draws from an explicitly seeded
// Rng so that every experiment in EXPERIMENTS.md regenerates exactly.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded via SplitMix64 as its
// authors recommend. Small, fast, and fully reproducible across platforms
// (unlike std::normal_distribution, whose output is implementation-defined;
// we implement Box-Muller ourselves for the same reason).
#pragma once

#include <cstdint>
#include <cmath>

namespace fsa {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic xoshiro256** generator with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();  // avoid log(0)
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for parallel streams).
  Rng fork() { return Rng(next_u64() ^ 0xA3EC4E93D0F8B7C1ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fsa
