// synth_objects.h — procedural CIFAR-10 substitute.
//
// The paper's CIFAR results differ from its MNIST results only through the
// model's lower accuracy (79.5% vs 99.5%): the capacity margin available
// for "hiding" faults shrinks, which is what drives the CIFAR rows in
// Table 4 and Fig 2. SynthObjects therefore targets the *regime*, not the
// pixels: 32×32×3 images of 10 textured shape classes with heavy pose,
// color, background and occlusion noise tuned so that the same C&W
// architecture plateaus near ~80%. Deterministic from the seed.
#pragma once

#include "data/dataset.h"
#include "tensor/rng.h"

namespace fsa::data {

struct SynthObjectsConfig {
  std::int64_t count = 10000;
  std::uint64_t seed = 2;
  double noise_stddev = 0.16;     ///< additive per-channel Gaussian noise
  double color_jitter = 0.30;     ///< uniform jitter around class color prior
  double occlusion_prob = 0.45;   ///< probability of a random occluding bar
  double background_texture = 0.25;  ///< amplitude of low-frequency clutter
};

/// Render `cfg.count` images; labels uniform over the 10 shape classes.
Dataset make_synth_objects(const SynthObjectsConfig& cfg);

/// Render one object image of the given class (exposed for tests).
Tensor render_object(std::int64_t cls, Rng& rng, const SynthObjectsConfig& cfg);

}  // namespace fsa::data
