// synth_digits.h — procedural MNIST substitute.
//
// The paper's experiments need (a) a 28×28×1 ten-class problem that the
// C&W architecture learns to ≈99% accuracy and (b) per-image logits and
// gradients from that trained model; the pixel semantics are irrelevant to
// the attack. SynthDigits renders seven-segment-style digit glyphs with
// randomized affine pose, stroke width, intensity, additive noise, and
// distractor speckles — hard enough that the model stays just below
// perfect (mirroring MNIST's 99.5%), easy enough to train in minutes on
// one CPU core. Generation is fully deterministic from the seed.
#pragma once

#include "data/dataset.h"
#include "tensor/rng.h"

namespace fsa::data {

struct SynthDigitsConfig {
  std::int64_t count = 10000;   ///< number of images
  std::uint64_t seed = 1;       ///< generator seed (class-balanced sampling inside)
  double noise_stddev = 0.14;   ///< additive Gaussian pixel noise
  double max_rotation = 0.30;   ///< radians, uniform ±
  double max_translate = 3.0;   ///< pixels, uniform ±, each axis
  double min_scale = 0.75;      ///< isotropic glyph scale range
  double max_scale = 1.10;
  int distractor_speckles = 10;  ///< random bright dots per image
};

/// Render `cfg.count` images; labels are uniformly distributed over 0..9.
Dataset make_synth_digits(const SynthDigitsConfig& cfg);

/// Render a single digit image (exposed for tests / examples).
Tensor render_digit(std::int64_t digit, Rng& rng, const SynthDigitsConfig& cfg);

}  // namespace fsa::data
