#include "data/synth_digits.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace fsa::data {

namespace {

constexpr std::int64_t kSide = 28;

struct Pt {
  double x, y;
};

// Seven-segment layout in glyph coordinates ([0,1]² box, y down):
//      --0--
//     1     2
//      --3--
//     4     5
//      --6--
constexpr double kL = 0.28, kR = 0.72, kT = 0.12, kM = 0.50, kB = 0.88;
const std::array<std::pair<Pt, Pt>, 7> kSegments = {{
    {{kL, kT}, {kR, kT}},  // 0 top
    {{kL, kT}, {kL, kM}},  // 1 top-left
    {{kR, kT}, {kR, kM}},  // 2 top-right
    {{kL, kM}, {kR, kM}},  // 3 middle
    {{kL, kM}, {kL, kB}},  // 4 bottom-left
    {{kR, kM}, {kR, kB}},  // 5 bottom-right
    {{kL, kB}, {kR, kB}},  // 6 bottom
}};

// Which segments light up for each digit (classic seven-segment encoding).
constexpr std::array<std::uint8_t, 10> kDigitMask = {
    0b1110111,  // 0: top, tl, tr, bl, br, bottom
    0b0100100,  // 1: tr, br
    0b1101011,  // 2: top, tr, mid, bl, bottom
    0b1101101,  // 3: top, tr, mid, br, bottom
    0b0111100,  // 4: tl, tr, mid, br
    0b1011101,  // 5: top, tl, mid, br, bottom
    0b1011111,  // 6: top, tl, mid, bl, br, bottom
    0b1100100,  // 7: top, tr, br
    0b1111111,  // 8: all
    0b1111101,  // 9: top, tl, tr, mid, br, bottom
};

double dist_to_segment(double px, double py, const Pt& a, const Pt& b) {
  const double vx = b.x - a.x, vy = b.y - a.y;
  const double wx = px - a.x, wy = py - a.y;
  const double len2 = vx * vx + vy * vy;
  double t = len2 > 0 ? (wx * vx + wy * vy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = px - (a.x + t * vx), dy = py - (a.y + t * vy);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Tensor render_digit(std::int64_t digit, Rng& rng, const SynthDigitsConfig& cfg) {
  if (digit < 0 || digit > 9) throw std::invalid_argument("render_digit: digit out of range");
  // Sample the pose once per image.
  const double theta = rng.uniform(-cfg.max_rotation, cfg.max_rotation);
  const double scale = rng.uniform(cfg.min_scale, cfg.max_scale);
  const double tx = rng.uniform(-cfg.max_translate, cfg.max_translate);
  const double ty = rng.uniform(-cfg.max_translate, cfg.max_translate);
  const double stroke = rng.uniform(0.9, 1.7);  // pixels
  const double intensity = rng.uniform(0.75, 1.0);
  const double ct = std::cos(theta), st = std::sin(theta);

  // Transform active segment endpoints into pixel coordinates.
  std::vector<std::pair<Pt, Pt>> segs;
  const std::uint8_t mask = kDigitMask[static_cast<std::size_t>(digit)];
  for (std::size_t s = 0; s < kSegments.size(); ++s) {
    if (!(mask >> s & 1)) continue;
    auto xf = [&](const Pt& p) -> Pt {
      const double gx = (p.x - 0.5) * scale, gy = (p.y - 0.5) * scale;
      return {(gx * ct - gy * st + 0.5) * kSide + tx, (gx * st + gy * ct + 0.5) * kSide + ty};
    };
    segs.push_back({xf(kSegments[s].first), xf(kSegments[s].second)});
  }

  Tensor img(Shape({1, 1, kSide, kSide}));
  float* px = img.data();
  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      double d = 1e9;
      for (const auto& [a, b] : segs)
        d = std::min(d, dist_to_segment(static_cast<double>(x), static_cast<double>(y), a, b));
      // Soft-edged stroke: full intensity inside, smooth 1px falloff.
      const double v = intensity * std::clamp(1.0 - (d - stroke * 0.5) / 1.0, 0.0, 1.0);
      px[y * kSide + x] = static_cast<float>(v);
    }
  }
  // Distractor speckles (small bright dots that are not part of the glyph).
  for (int s = 0; s < cfg.distractor_speckles; ++s) {
    const auto sx = static_cast<std::int64_t>(rng.uniform_int(kSide));
    const auto sy = static_cast<std::int64_t>(rng.uniform_int(kSide));
    px[sy * kSide + sx] =
        std::min(1.0f, px[sy * kSide + sx] + static_cast<float>(rng.uniform(0.1, 0.45)));
  }
  // Additive Gaussian noise, clamped to [0, 1].
  for (std::int64_t i = 0; i < kSide * kSide; ++i)
    px[i] = std::clamp(px[i] + static_cast<float>(rng.normal(0.0, cfg.noise_stddev)), 0.0f, 1.0f);
  return img;
}

Dataset make_synth_digits(const SynthDigitsConfig& cfg) {
  Rng rng(cfg.seed);
  Tensor images(Shape({cfg.count, 1, kSide, kSide}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(cfg.count));
  const std::int64_t img_elems = kSide * kSide;
  for (std::int64_t i = 0; i < cfg.count; ++i) {
    const std::int64_t digit = static_cast<std::int64_t>(rng.uniform_int(10));
    const Tensor img = render_digit(digit, rng, cfg);
    std::copy(img.data(), img.data() + img_elems, images.data() + i * img_elems);
    labels[static_cast<std::size_t>(i)] = digit;
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

}  // namespace fsa::data
