#include "data/dataset.h"

namespace fsa::data {

Dataset Dataset::subset(const std::vector<std::int64_t>& indices) const {
  const std::int64_t c = images_.dim(1), h = images_.dim(2), w = images_.dim(3);
  const std::int64_t img_elems = c * h * w;
  Tensor out(Shape({static_cast<std::int64_t>(indices.size()), c, h, w}));
  std::vector<std::int64_t> lbl;
  lbl.reserve(indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::int64_t i = indices[k];
    if (i < 0 || i >= size()) throw std::out_of_range("Dataset::subset index");
    std::copy(images_.data() + i * img_elems, images_.data() + (i + 1) * img_elems,
              out.data() + static_cast<std::int64_t>(k) * img_elems);
    lbl.push_back(labels_[static_cast<std::size_t>(i)]);
  }
  return Dataset(std::move(out), std::move(lbl), num_classes_);
}

Batch Dataset::head(std::int64_t n) const {
  if (n < 0 || n > size()) throw std::out_of_range("Dataset::head");
  return Batch{images_.slice0(0, n),
               std::vector<std::int64_t>(labels_.begin(), labels_.begin() + n)};
}

}  // namespace fsa::data
