#include "data/synth_objects.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace fsa::data {

namespace {

constexpr std::int64_t kSide = 32;

// Class color priors (RGB in [0,1]); deliberately overlapping so color alone
// does not solve the task.
constexpr std::array<std::array<double, 3>, 10> kColor = {{
    {0.85, 0.25, 0.25},  // 0 circle
    {0.25, 0.65, 0.85},  // 1 square
    {0.30, 0.80, 0.35},  // 2 triangle
    {0.85, 0.75, 0.25},  // 3 cross
    {0.70, 0.35, 0.80},  // 4 ring
    {0.85, 0.50, 0.20},  // 5 diamond
    {0.45, 0.45, 0.85},  // 6 h-stripes
    {0.60, 0.80, 0.70},  // 7 v-stripes
    {0.80, 0.40, 0.55},  // 8 checker
    {0.55, 0.65, 0.30},  // 9 star
}};

/// Signed membership of point (u,v) in shape `cls`, in shape-local
/// coordinates (unit box centred at origin). Returns 1 inside, 0 outside,
/// with soft edges left to the caller.
double shape_mask(std::int64_t cls, double u, double v) {
  const double au = std::fabs(u), av = std::fabs(v);
  switch (cls) {
    case 0:  // circle
      return (u * u + v * v <= 0.40 * 0.40) ? 1.0 : 0.0;
    case 1:  // square
      return (au <= 0.36 && av <= 0.36) ? 1.0 : 0.0;
    case 2:  // triangle (upward)
      return (v >= -0.38 && v <= 0.40 && au <= 0.42 * (0.40 - v) / 0.78 * 2.0) ? 1.0 : 0.0;
    case 3:  // cross
      return ((au <= 0.14 && av <= 0.44) || (av <= 0.14 && au <= 0.44)) ? 1.0 : 0.0;
    case 4: {  // ring
      const double r2 = u * u + v * v;
      return (r2 <= 0.42 * 0.42 && r2 >= 0.22 * 0.22) ? 1.0 : 0.0;
    }
    case 5:  // diamond
      return (au + av <= 0.48) ? 1.0 : 0.0;
    case 6:  // horizontal stripes
      return (au <= 0.42 && av <= 0.42 && std::fmod(v + 2.0, 0.24) < 0.12) ? 1.0 : 0.0;
    case 7:  // vertical stripes
      return (au <= 0.42 && av <= 0.42 && std::fmod(u + 2.0, 0.24) < 0.12) ? 1.0 : 0.0;
    case 8:  // checker
      return (au <= 0.42 && av <= 0.42 &&
              (static_cast<int>(std::floor((u + 2.0) / 0.21)) +
               static_cast<int>(std::floor((v + 2.0) / 0.21))) % 2 == 0)
                 ? 1.0
                 : 0.0;
    case 9: {  // five-point star (angular modulated radius)
      const double r = std::sqrt(u * u + v * v);
      const double a = std::atan2(v, u);
      const double rim = 0.24 + 0.18 * std::cos(5.0 * a);
      return (r <= rim) ? 1.0 : 0.0;
    }
    default:
      throw std::invalid_argument("shape_mask: class out of range");
  }
}

}  // namespace

Tensor render_object(std::int64_t cls, Rng& rng, const SynthObjectsConfig& cfg) {
  if (cls < 0 || cls > 9) throw std::invalid_argument("render_object: class out of range");
  const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double scale = rng.uniform(0.75, 1.25);
  const double tx = rng.uniform(-5.0, 5.0), ty = rng.uniform(-5.0, 5.0);
  const double ct = std::cos(theta), st = std::sin(theta);

  // Jittered foreground color and random background color.
  std::array<double, 3> fg{}, bg{};
  for (int c = 0; c < 3; ++c) {
    fg[static_cast<std::size_t>(c)] =
        std::clamp(kColor[static_cast<std::size_t>(cls)][static_cast<std::size_t>(c)] +
                       rng.uniform(-cfg.color_jitter, cfg.color_jitter),
                   0.0, 1.0);
    bg[static_cast<std::size_t>(c)] = rng.uniform(0.05, 0.65);
  }
  // Low-frequency background clutter phase.
  const double phx = rng.uniform(0.0, 6.28), phy = rng.uniform(0.0, 6.28);
  const double fqx = rng.uniform(0.15, 0.45), fqy = rng.uniform(0.15, 0.45);

  Tensor img(Shape({1, 3, kSide, kSide}));
  float* px = img.data();
  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      // Pixel → shape-local coordinates (rotation is only meaningful for
      // anisotropic shapes; stripes/checker rotate too, adding pose noise).
      const double cxp = (static_cast<double>(x) - kSide / 2.0 - tx) / (kSide * 0.5 * scale);
      const double cyp = (static_cast<double>(y) - kSide / 2.0 - ty) / (kSide * 0.5 * scale);
      const double u = cxp * ct + cyp * st;
      const double v = -cxp * st + cyp * ct;
      const double inside = shape_mask(cls, u, v);
      const double tex = cfg.background_texture *
                         std::sin(fqx * static_cast<double>(x) + phx) *
                         std::cos(fqy * static_cast<double>(y) + phy);
      for (int c = 0; c < 3; ++c) {
        const double base = inside > 0.5 ? fg[static_cast<std::size_t>(c)]
                                         : bg[static_cast<std::size_t>(c)] + tex;
        px[(c * kSide + y) * kSide + x] = static_cast<float>(std::clamp(base, 0.0, 1.0));
      }
    }
  }
  // Random occluding bar (drawn over the object) — a major difficulty source.
  if (rng.bernoulli(cfg.occlusion_prob)) {
    const bool horizontal = rng.bernoulli(0.5);
    const auto pos = static_cast<std::int64_t>(rng.uniform_int(kSide));
    const auto thick = static_cast<std::int64_t>(2 + rng.uniform_int(4));
    const float shade = static_cast<float>(rng.uniform(0.0, 0.9));
    for (std::int64_t t = 0; t < thick; ++t) {
      const std::int64_t line = std::clamp<std::int64_t>(pos + t, 0, kSide - 1);
      for (std::int64_t k = 0; k < kSide; ++k)
        for (int c = 0; c < 3; ++c)
          px[(c * kSide + (horizontal ? line : k)) * kSide + (horizontal ? k : line)] = shade;
    }
  }
  // Heavy additive noise.
  for (std::int64_t i = 0; i < 3 * kSide * kSide; ++i)
    px[i] = std::clamp(px[i] + static_cast<float>(rng.normal(0.0, cfg.noise_stddev)), 0.0f, 1.0f);
  return img;
}

Dataset make_synth_objects(const SynthObjectsConfig& cfg) {
  Rng rng(cfg.seed);
  Tensor images(Shape({cfg.count, 3, kSide, kSide}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(cfg.count));
  const std::int64_t img_elems = 3 * kSide * kSide;
  for (std::int64_t i = 0; i < cfg.count; ++i) {
    const std::int64_t cls = static_cast<std::int64_t>(rng.uniform_int(10));
    const Tensor img = render_object(cls, rng, cfg);
    std::copy(img.data(), img.data() + img_elems, images.data() + i * img_elems);
    labels[static_cast<std::size_t>(i)] = cls;
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

}  // namespace fsa::data
