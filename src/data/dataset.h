// dataset.h — in-memory labeled image datasets.
//
// Both synthetic datasets in this library materialize fully in memory
// (tens of MB), which keeps epoch iteration allocation-free and makes the
// attack's image subsets (the paper's X = {x₁..x_R}) trivial to slice out.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"

namespace fsa::data {

/// A mini-batch: images [N, C, H, W] plus integer class labels.
struct Batch {
  Tensor images;
  std::vector<std::int64_t> labels;

  [[nodiscard]] std::int64_t size() const { return images.dim(0); }
};

/// A fully materialized dataset.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor images, std::vector<std::int64_t> labels, std::int64_t num_classes)
      : images_(std::move(images)), labels_(std::move(labels)), num_classes_(num_classes) {
    if (images_.shape().rank() != 4)
      throw std::invalid_argument("Dataset: images must be [N, C, H, W]");
    if (images_.dim(0) != static_cast<std::int64_t>(labels_.size()))
      throw std::invalid_argument("Dataset: image/label count mismatch");
    for (auto l : labels_)
      if (l < 0 || l >= num_classes_) throw std::invalid_argument("Dataset: label out of range");
  }

  [[nodiscard]] std::int64_t size() const { return images_.dim(0); }
  [[nodiscard]] std::int64_t num_classes() const { return num_classes_; }
  [[nodiscard]] const Tensor& images() const { return images_; }
  [[nodiscard]] const std::vector<std::int64_t>& labels() const { return labels_; }

  /// One image as a [1, C, H, W] batch tensor.
  [[nodiscard]] Tensor image(std::int64_t i) const { return images_.slice0(i, i + 1); }
  [[nodiscard]] std::int64_t label(std::int64_t i) const {
    return labels_.at(static_cast<std::size_t>(i));
  }

  /// Materialize a subset in the given index order.
  [[nodiscard]] Dataset subset(const std::vector<std::int64_t>& indices) const;

  /// First-n prefix as a Batch (used to build the attack's image set X).
  [[nodiscard]] Batch head(std::int64_t n) const;

 private:
  Tensor images_;
  std::vector<std::int64_t> labels_;
  std::int64_t num_classes_ = 0;
};

}  // namespace fsa::data
