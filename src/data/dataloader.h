// dataloader.h — shuffled mini-batch iteration over a Dataset.
#pragma once

#include <numeric>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace fsa::data {

class DataLoader {
 public:
  /// `shuffle` reshuffles indices at the start of every epoch using `rng`.
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle, Rng rng)
      : ds_(&dataset), batch_(batch_size), shuffle_(shuffle), rng_(rng) {
    if (batch_ <= 0) throw std::invalid_argument("DataLoader: batch_size must be positive");
    order_.resize(static_cast<std::size_t>(ds_->size()));
    std::iota(order_.begin(), order_.end(), 0);
  }

  /// Number of batches per epoch (last partial batch included).
  [[nodiscard]] std::int64_t batches_per_epoch() const {
    return (ds_->size() + batch_ - 1) / batch_;
  }

  /// Reset to the start of an epoch (reshuffles if enabled).
  void start_epoch() {
    cursor_ = 0;
    if (shuffle_) {
      // Fisher-Yates with our deterministic Rng.
      for (std::size_t i = order_.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng_.uniform_int(i));
        std::swap(order_[i - 1], order_[j]);
      }
    }
  }

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out) {
    if (cursor_ >= ds_->size()) return false;
    const std::int64_t n = std::min(batch_, ds_->size() - cursor_);
    std::vector<std::int64_t> idx(order_.begin() + cursor_, order_.begin() + cursor_ + n);
    const Dataset sub = ds_->subset(idx);
    out.images = sub.images();
    out.labels = sub.labels();
    cursor_ += n;
    return true;
  }

 private:
  const Dataset* ds_;
  std::int64_t batch_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace fsa::data
