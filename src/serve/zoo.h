// zoo.h — startup-loaded model registry for the attack service.
//
// A long-lived daemon must pay model training/loading and feature-cache
// derivation ONCE, at startup, never on a request path: the first request
// after boot must be as fast as the thousandth. ModelHost is the seam the
// service works against — a name → SweepRunner mapping whose runners are
// constructed before the server socket opens — and ServeZoo is the
// production implementation over models::ModelZoo (digits/objects, the
// paper's two stand-ins), pre-warming each configured attack surface's
// AttackBench so its feature caches are hot.
//
// Handing out SweepRunner& (not const) is deliberate: the runner lazily
// grows its per-surface bench map, which is NOT thread-safe — the
// DynamicBatcher serializes execution per (model, backend) key, so each
// runner only ever runs one batch at a time. Tests implement ModelHost
// over small blob-trained models (test_util.h) so the full service stack
// runs in seconds without the zoo.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/sweep.h"
#include "models/model_zoo.h"

namespace fsa::serve {

/// The service's view of "which models exist": read-only name listing
/// plus per-model execution handles, all constructed before serving.
class ModelHost {
 public:
  virtual ~ModelHost() = default;

  /// Registered model names, sorted (for /healthz and error messages).
  [[nodiscard]] virtual std::vector<std::string> names() const = 0;

  /// The model's sweep runner. Throws std::invalid_argument listing the
  /// registered names when `model` is unknown.
  virtual engine::SweepRunner& runner(const std::string& model) = 0;

  /// True when `model` is registered.
  [[nodiscard]] bool has(const std::string& model) const;
};

struct ServeZooOptions {
  /// Zoo datasets to load at startup ("digits", "objects"). Loading only
  /// what a deployment serves keeps boot fast.
  std::vector<std::string> datasets = {"digits"};
  /// Surfaces whose AttackBench (features, clean accuracy) is pre-warmed
  /// per model, one layer-CSV entry each.
  std::vector<std::string> warm_layers = {"fc3"};
  bool verbose = true;
};

/// Production ModelHost: loads/builds every configured zoo model once
/// (training into FSA_CACHE_DIR on a cold cache) and pre-warms feature
/// caches, so request workers only ever touch hot state.
class ServeZoo : public ModelHost {
 public:
  explicit ServeZoo(ServeZooOptions options = {});

  [[nodiscard]] std::vector<std::string> names() const override;
  engine::SweepRunner& runner(const std::string& model) override;

 private:
  models::ModelZoo zoo_;
  std::map<std::string, std::unique_ptr<engine::SweepRunner>> runners_;
};

/// ModelHost over caller-owned (model, runner) pairs — the test seam, and
/// the building block for serving ad-hoc models without the zoo.
class StaticModelHost : public ModelHost {
 public:
  /// Register `runner` under `name` (replaces an existing entry). The
  /// runner must outlive this host.
  void add(const std::string& name, engine::SweepRunner& runner);

  [[nodiscard]] std::vector<std::string> names() const override;
  engine::SweepRunner& runner(const std::string& model) override;

 private:
  std::map<std::string, engine::SweepRunner*> runners_;
};

}  // namespace fsa::serve
