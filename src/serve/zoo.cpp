#include "serve/zoo.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "compile/compile.h"
#include "compile/model_compiler.h"
#include "eval/args.h"

namespace fsa::serve {

namespace {

[[noreturn]] void unknown_model(const std::string& model, const std::vector<std::string>& names) {
  std::string known;
  for (const auto& n : names) known += (known.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown model \"" + model + "\" (known: " + known + ")");
}

}  // namespace

bool ModelHost::has(const std::string& model) const {
  const std::vector<std::string> all = names();
  return std::find(all.begin(), all.end(), model) != all.end();
}

// ---- ServeZoo ----------------------------------------------------------------

ServeZoo::ServeZoo(ServeZooOptions options) : zoo_(models::ZooConfig{.verbose = options.verbose}) {
  if (options.datasets.empty())
    throw std::invalid_argument("serve zoo: at least one dataset is required");
  for (const std::string& name : options.datasets) {
    if (runners_.count(name)) continue;
    if (name != "digits" && name != "objects")
      throw std::invalid_argument("serve zoo: unknown dataset \"" + name +
                                  "\" (expected digits or objects)");
    if (options.verbose) std::fprintf(stderr, "[serve] loading model %s...\n", name.c_str());
    models::ZooModel& model = name == "objects" ? zoo_.objects() : zoo_.digits();
    auto runner =
        std::make_unique<engine::SweepRunner>(model, zoo_.cache_dir(), /*verbose=*/false);
    // Pre-warm the configured surfaces: features and clean accuracy are
    // derived (and disk-cached) now, so no request pays for them.
    for (const std::string& layers_csv : options.warm_layers)
      (void)runner->bench(eval::split_csv(layers_csv));
    // Compile before the socket opens: fusion, plan caches, and pack-once
    // weight panels are built here, so the first request already runs the
    // compiled path at steady-state cost. No-op when FSA_COMPILE=off.
    if (const compile::CompiledModel* plan = runner->warm_compile();
        plan != nullptr && options.verbose)
      std::fprintf(stderr, "[serve] model %s compiled: %zu fused node(s)\n", name.c_str(),
                   plan->fused_nodes());
    runners_.emplace(name, std::move(runner));
    if (options.verbose)
      std::fprintf(stderr, "[serve] model %s ready (%.1f%% test accuracy)\n", name.c_str(),
                   model.test_accuracy * 100.0);
  }
}

std::vector<std::string> ServeZoo::names() const {
  std::vector<std::string> out;
  out.reserve(runners_.size());
  for (const auto& [name, runner] : runners_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

engine::SweepRunner& ServeZoo::runner(const std::string& model) {
  const auto it = runners_.find(model);
  if (it == runners_.end()) unknown_model(model, names());
  return *it->second;
}

// ---- StaticModelHost ---------------------------------------------------------

void StaticModelHost::add(const std::string& name, engine::SweepRunner& runner) {
  runners_[name] = &runner;
}

std::vector<std::string> StaticModelHost::names() const {
  std::vector<std::string> out;
  out.reserve(runners_.size());
  for (const auto& [name, runner] : runners_) out.push_back(name);
  return out;
}

engine::SweepRunner& StaticModelHost::runner(const std::string& model) {
  const auto it = runners_.find(model);
  if (it == runners_.end()) unknown_model(model, names());
  return *it->second;
}

}  // namespace fsa::serve
