#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "eval/json.h"

namespace fsa::serve {

namespace {

std::atomic<std::int64_t> g_connections{0};

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Strip ASCII whitespace from both ends (header values arrive padded).
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Write all of `data` (short writes retried). False on error/timeout.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Append up to `want` more bytes into `buf`. Returns false on EOF,
/// error, or timeout with nothing read.
bool recv_some(int fd, std::string& buf, std::size_t want = 4096) {
  char chunk[4096];
  const ssize_t n = ::recv(fd, chunk, std::min(want, sizeof(chunk)), 0);
  if (n <= 0) return false;
  buf.append(chunk, static_cast<std::size_t>(n));
  return true;
}

}  // namespace

// ---- messages ----------------------------------------------------------------

std::string status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string render_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string parse_request_head(const std::string& head, HttpRequest& out) {
  out = HttpRequest{};
  std::size_t pos = 0;
  const auto next_line = [&](std::string& line) {
    if (pos >= head.size()) return false;
    const std::size_t eol = head.find("\r\n", pos);
    line = head.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 2;
    return true;
  };

  std::string line;
  if (!next_line(line) || line.empty()) return "empty request line";
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.find(' ', sp2 + 1) != std::string::npos)
    return "malformed request line (expected METHOD TARGET VERSION)";
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = line.substr(sp2 + 1);
  if (out.method.empty() || out.target.empty() || out.target[0] != '/')
    return "malformed request target (must start with /)";
  if (out.version.rfind("HTTP/1.", 0) != 0) return "unsupported protocol version";

  while (next_line(line)) {
    if (line.empty()) continue;  // tolerate a trailing CRLF in the head slice
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return "malformed header line";
    out.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  return "";
}

std::string error_body(const std::string& message) {
  // Escape via Json so embedded quotes/newlines in exception text can't
  // break the document shape.
  eval::Json doc = eval::Json::object();
  doc.set("error", eval::Json::string(message));
  return doc.dump(2) + "\n";
}

// ---- server ------------------------------------------------------------------

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(options), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(options_.port) +
                             " (" + std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::int64_t HttpServer::connections_handled() const { return g_connections.load(); }

void HttpServer::start() {
  if (running_) return;
  running_ = true;
  const int n = std::max(1, options_.threads);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads_.emplace_back([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;  // accept loops poll this every 100 ms
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

void HttpServer::accept_loop() {
  // All accept threads poll the same listening fd; whichever wakes first
  // takes the connection and serves it to completion (Connection: close),
  // so "threads" is exactly the concurrent-connection budget.
  while (running_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (!running_) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // another thread won the race, or transient error
    set_io_timeout(fd, options_.limits.io_timeout_ms);
    handle_connection(fd);
    ::close(fd);
    g_connections.fetch_add(1);
  }
}

void HttpServer::handle_connection(int fd) {
  const HttpLimits& limits = options_.limits;
  const auto reply = [&](int status, const std::string& message) {
    HttpResponse r;
    r.status = status;
    r.body = error_body(message);
    (void)send_all(fd, render_response(r));
  };

  // Buffer until the head terminator; bytes beyond it are body prefix.
  std::string buf;
  std::size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (buf.size() > limits.max_head_bytes)
      return reply(431, "request head exceeds " + std::to_string(limits.max_head_bytes) +
                            " bytes");
    if (!recv_some(fd, buf)) return;  // peer gone or stalled past the timeout
  }

  HttpRequest request;
  if (const std::string err = parse_request_head(buf.substr(0, head_end), request); !err.empty())
    return reply(400, err);
  if (request.method != "GET" && request.method != "POST")
    return reply(405, "method " + request.method + " not supported (GET, POST)");

  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length"); it != request.headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(it->second));
    } catch (const std::exception&) {
      return reply(400, "malformed Content-Length");
    }
  } else if (request.method == "POST") {
    // No chunked decoding here: length-framed bodies only.
    return reply(411, "POST requires Content-Length");
  }
  if (content_length > limits.max_body_bytes)
    return reply(413, "body of " + std::to_string(content_length) + " bytes exceeds the " +
                          std::to_string(limits.max_body_bytes) + "-byte limit");

  request.body = buf.substr(head_end + 4);
  while (request.body.size() < content_length) {
    if (!recv_some(fd, request.body, content_length - request.body.size())) return;
  }
  request.body.resize(content_length);  // ignore pipelined bytes; we close anyway

  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = error_body(e.what());
  }
  (void)send_all(fd, render_response(response));
}

// ---- client ------------------------------------------------------------------

HttpResponse http_fetch(const std::string& host, int port, const std::string& method,
                        const std::string& target, const std::string& body,
                        const HttpLimits& limits) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_fetch: socket() failed");
  set_io_timeout(fd, limits.io_timeout_ms);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_fetch: bad numeric host \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("http_fetch: cannot connect to " + host + ":" +
                             std::to_string(port) + " (" + std::strerror(errno) + ")");
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!send_all(fd, request)) {
    ::close(fd);
    throw std::runtime_error("http_fetch: send failed");
  }

  // The server closes after one response, so read to EOF and parse.
  std::string raw;
  while (recv_some(fd, raw)) {
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos)
    throw std::runtime_error("http_fetch: truncated response (no header terminator)");
  const std::string head = raw.substr(0, head_end);
  const std::size_t eol = head.find("\r\n");
  const std::string status_line = head.substr(0, eol);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos || status_line.rfind("HTTP/", 0) != 0)
    throw std::runtime_error("http_fetch: malformed status line \"" + status_line + "\"");
  HttpResponse response;
  try {
    response.status = std::stoi(status_line.substr(sp + 1));
  } catch (const std::exception&) {
    throw std::runtime_error("http_fetch: malformed status line \"" + status_line + "\"");
  }
  response.body = raw.substr(head_end + 4);
  // Honor Content-Length when present (trailing bytes would break diffs).
  std::size_t lpos = head.find("ontent-Length:");
  if (lpos != std::string::npos) {
    const std::size_t vstart = head.find(':', lpos) + 1;
    const std::size_t vend = head.find("\r\n", vstart);
    try {
      const auto n = static_cast<std::size_t>(
          std::stoull(trim(head.substr(vstart, vend - vstart))));
      if (response.body.size() < n)
        throw std::runtime_error("http_fetch: truncated body (" +
                                 std::to_string(response.body.size()) + " of " +
                                 std::to_string(n) + " bytes)");
      response.body.resize(n);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
  return response;
}

// ---- graceful shutdown -------------------------------------------------------

namespace {
volatile std::sig_atomic_t g_drain = 0;
void on_drain_signal(int) { g_drain = 1; }
}  // namespace

struct DrainSignalGuard::Impl {
  struct sigaction old_term = {};
  struct sigaction old_int = {};
};

DrainSignalGuard::DrainSignalGuard() : impl_(std::make_unique<Impl>()) {
  g_drain = 0;
  struct sigaction sa = {};
  sa.sa_handler = on_drain_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, &impl_->old_term);
  ::sigaction(SIGINT, &sa, &impl_->old_int);
}

DrainSignalGuard::~DrainSignalGuard() {
  ::sigaction(SIGTERM, &impl_->old_term, nullptr);
  ::sigaction(SIGINT, &impl_->old_int, nullptr);
}

bool DrainSignalGuard::stop_requested() { return g_drain != 0; }

}  // namespace fsa::serve
