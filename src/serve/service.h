// service.h — the attack service: HTTP routes over the dynamic batcher.
//
// AttackService is the daemon's brain: it validates untrusted request
// JSON (bounded parse, strict field checks — a typo'd request fails with
// a 400 naming the problem, mirroring the CLI's strict flags), folds
// requests into the DynamicBatcher per execution context, and renders
// responses whose BYTES match the offline artifacts:
//
//   POST /v1/sweep     {"dataset", "specs": [SweepSpec...],
//                       "injector_profile"?}       → the reduced sweep
//       document, byte-identical to `fsa_cli sweep --workers N --json`
//       for the same specs (same reducer, same dump(2) + "\n" format).
//   POST /v1/campaign  a self-contained campaign manifest (the
//       CampaignPlanner::manifest document `fsa_cli campaign --manifest`
//       emits) → the reduced campaign document, byte-identical to the
//       job directory's reduced.json from `dist run`.
//   POST /v1/eval      {"dataset", "layers": [...], "weights"?,
//                       "biases"?} → the deterministic surface-evaluation
//       document, byte-identical to `fsa_cli eval` for the same surface.
//   GET  /healthz      liveness + the served model/backend inventory.
//   GET  /stats        queue depth, request/batch counters, batch-size
//                      histogram, p50/p99 latency.
//
// Batched execution reuses the dist layer's primitives — sweep rows
// through dist::sweep_rows_json, campaign shards through
// dist::run_campaign_shard, reduction through dist::make_reducer — so
// serve-vs-CLI byte-identity holds by construction, not by parallel
// reimplementation. Injector calibration is process-global state; any
// batch that touches injectors (campaigns, sweeps with a campaign stage
// or an explicit profile) loads the REQUEST's profile (or clears to
// defaults) under a global gate held for the whole batch, so concurrent
// requests with different calibrations can never contaminate each other.
//
// The compute backend is pinned at construction: requests naming a
// different backend are rejected (400) rather than racing a global
// backend switch under in-flight kernels.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/http.h"
#include "serve/zoo.h"

namespace fsa::serve {

struct ServiceOptions {
  BatcherOptions batcher;
  /// Bounds for parsing request bodies (attacker bytes).
  eval::Json::ParseLimits parse_limits{64, 4 * 1024 * 1024};
  /// Per-request spec-count cap for /v1/sweep (admission control).
  std::size_t max_specs_per_request = 256;
  /// Shard-count cap for /v1/campaign manifests.
  std::int64_t max_campaign_shards = 4096;
};

class AttackService {
 public:
  /// `host` must outlive the service. Pins the active backend name.
  AttackService(ModelHost& host, ServiceOptions options = {});
  ~AttackService();
  AttackService(const AttackService&) = delete;
  AttackService& operator=(const AttackService&) = delete;

  /// Route one request (the HttpServer handler). Blocks until the
  /// response is ready — concurrency comes from the server's threads.
  HttpResponse handle(const HttpRequest& request);

  /// Graceful shutdown: stop admission, finish every queued request.
  void drain();

  /// Total requests handled (any status) — the `--once` exit condition.
  [[nodiscard]] std::int64_t requests_handled() const { return requests_.load(); }

  [[nodiscard]] eval::Json stats_json() const;
  [[nodiscard]] const std::string& backend() const { return backend_; }

 private:
  HttpResponse handle_get(const HttpRequest& request);
  HttpResponse handle_post(const HttpRequest& request);
  HttpResponse submit_and_wait(const BatchKey& key, eval::Json payload);
  std::vector<BatchResponse> execute(const BatchKey& key,
                                     const std::vector<eval::Json>& payloads);
  std::vector<BatchResponse> execute_sweep(const BatchKey& key,
                                           const std::vector<eval::Json>& payloads);
  std::vector<BatchResponse> execute_campaign(const std::vector<eval::Json>& payloads);
  std::vector<BatchResponse> execute_eval(const BatchKey& key,
                                          const std::vector<eval::Json>& payloads);

  ModelHost& host_;
  const ServiceOptions options_;
  const std::string backend_;
  std::unique_ptr<DynamicBatcher> batcher_;
  std::atomic<std::int64_t> requests_{0};
};

/// The deterministic surface-evaluation document behind POST /v1/eval AND
/// `fsa_cli eval` — one implementation, so CI byte-diffs daemon output
/// against the CLI. Builds (or reuses) the runner's AttackBench for the
/// surface.
eval::Json eval_document(engine::SweepRunner& runner, const std::string& model,
                         const std::string& backend, const std::vector<std::string>& layers,
                         bool weights, bool biases);

/// Canonical response-body rendering for every JSON document the service
/// emits: dump(2) + "\n" — the exact bytes dist::write_json_atomic puts
/// on disk, so `cmp` against CLI artifacts works.
std::string render_json_body(const eval::Json& doc);

}  // namespace fsa::serve
