#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>

namespace fsa::serve {

namespace {

constexpr std::size_t kLatencyWindow = 4096;

/// Percentile over a COPY of the window (nearest-rank on the sorted
/// sample). Returns 0 for an empty window.
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sample.size() - 1) + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

}  // namespace

DynamicBatcher::DynamicBatcher(BatcherOptions options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  if (options_.max_batch < 1 || options_.max_queue < 1 || options_.executors < 1 ||
      options_.max_delay_ms < 0)
    throw std::invalid_argument(
        "batcher: max_batch, max_queue and executors must be >= 1, max_delay_ms >= 0");
  latency_window_.reserve(kLatencyWindow);
  executors_.reserve(static_cast<std::size_t>(options_.executors));
  for (int i = 0; i < options_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

DynamicBatcher::~DynamicBatcher() { drain(); }

std::optional<std::future<BatchResponse>> DynamicBatcher::submit(const BatchKey& key,
                                                                 eval::Json payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || total_queued_ >= static_cast<std::size_t>(options_.max_queue)) {
    ++shed_;
    return std::nullopt;
  }
  ++submitted_;
  Pending p;
  p.payload = std::move(payload);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<BatchResponse> future = p.promise.get_future();
  queues_[key].waiting.push_back(std::move(p));
  ++total_queued_;
  cv_.notify_one();
  return future;
}

void DynamicBatcher::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    draining_ = true;
    cv_.notify_all();
  }
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

bool DynamicBatcher::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t DynamicBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

void DynamicBatcher::record_latency(double ms) {
  // Caller holds mu_. Fixed-size ring: stats stay O(1) memory forever.
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(ms);
  } else {
    latency_window_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
  ++latency_count_;
}

eval::Json DynamicBatcher::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  eval::Json out = eval::Json::object();
  out.set("queue_depth", eval::Json::number(static_cast<std::int64_t>(total_queued_)));
  eval::Json requests = eval::Json::object();
  requests.set("submitted", eval::Json::number(submitted_));
  requests.set("completed", eval::Json::number(completed_));
  requests.set("shed", eval::Json::number(shed_));
  out.set("requests", std::move(requests));

  eval::Json batches = eval::Json::object();
  batches.set("count", eval::Json::number(batches_));
  eval::Json histogram = eval::Json::object();
  for (const auto& [size, count] : batch_histogram_)
    histogram.set(std::to_string(size), eval::Json::number(count));
  batches.set("size_histogram", std::move(histogram));
  out.set("batches", std::move(batches));

  eval::Json latency = eval::Json::object();
  latency.set("count", eval::Json::number(latency_count_));
  latency.set("p50_ms", eval::Json::number(percentile(latency_window_, 0.50)));
  latency.set("p99_ms", eval::Json::number(percentile(latency_window_, 0.99)));
  out.set("latency_ms", std::move(latency));
  return out;
}

void DynamicBatcher::executor_loop() {
  using Clock = std::chrono::steady_clock;
  const auto delay = std::chrono::milliseconds(options_.max_delay_ms);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A key is ripe when its batch is full, its oldest request has aged
    // past the deadline, or we're draining (fire everything immediately).
    const auto now = Clock::now();
    auto ripe = queues_.end();
    std::optional<Clock::time_point> next_deadline;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      if (it->second.busy || it->second.waiting.empty()) continue;
      const auto deadline = it->second.waiting.front().enqueued + delay;
      if (draining_ || it->second.waiting.size() >= static_cast<std::size_t>(options_.max_batch) ||
          now >= deadline) {
        ripe = it;
        break;
      }
      if (!next_deadline || deadline < *next_deadline) next_deadline = deadline;
    }

    if (ripe == queues_.end()) {
      if (draining_ && total_queued_ == 0) return;  // in-flight keys finish on their executors
      if (next_deadline)
        cv_.wait_until(lock, *next_deadline);
      else
        cv_.wait(lock);
      continue;
    }

    // Claim: mark the key busy and move up to max_batch requests out.
    KeyQueue& q = ripe->second;
    q.busy = true;
    const BatchKey key = ripe->first;
    const std::size_t n =
        std::min(q.waiting.size(), static_cast<std::size_t>(options_.max_batch));
    std::vector<Pending> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q.waiting.front()));
      q.waiting.pop_front();
    }
    total_queued_ -= n;
    ++batches_;
    ++batch_histogram_[static_cast<int>(n)];
    lock.unlock();

    std::vector<eval::Json> payloads;
    payloads.reserve(n);
    for (Pending& p : batch) payloads.push_back(std::move(p.payload));

    std::vector<BatchResponse> responses;
    std::string failure;
    try {
      responses = fn_(key, payloads);
      if (responses.size() != n)
        failure = "batch executor returned " + std::to_string(responses.size()) +
                  " responses for " + std::to_string(n) + " requests";
    } catch (const std::exception& e) {
      failure = e.what();
    }

    lock.lock();
    const auto done = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      if (failure.empty()) {
        batch[i].promise.set_value(std::move(responses[i]));
      } else {
        BatchResponse err;
        err.status = 500;
        eval::Json doc = eval::Json::object();
        doc.set("error", eval::Json::string(failure));
        err.body = doc.dump(2) + "\n";
        batch[i].promise.set_value(std::move(err));
      }
      ++completed_;
      record_latency(std::chrono::duration<double, std::milli>(done - batch[i].enqueued).count());
    }
    queues_[key].busy = false;
    cv_.notify_all();
  }
}

}  // namespace fsa::serve
