#include "serve/batcher.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/trace.h"

namespace fsa::serve {

namespace {

/// Distinct label set per batcher instance, so a process hosting several
/// batchers (the test binary, most notably) keeps their series apart.
std::string batcher_label() {
  static std::atomic<int> next{0};
  return "{batcher=\"" + std::to_string(next.fetch_add(1)) + "\"}";
}

}  // namespace

DynamicBatcher::DynamicBatcher(BatcherOptions options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  if (options_.max_batch < 1 || options_.max_queue < 1 || options_.executors < 1 ||
      options_.max_delay_ms < 0)
    throw std::invalid_argument(
        "batcher: max_batch, max_queue and executors must be >= 1, max_delay_ms >= 0");
  const std::string label = batcher_label();
  obs::Registry& reg = obs::Registry::global();
  submitted_metric_ = &reg.counter("fsa_batcher_requests_submitted_total" + label);
  shed_metric_ = &reg.counter("fsa_batcher_requests_shed_total" + label);
  completed_metric_ = &reg.counter("fsa_batcher_requests_completed_total" + label);
  batches_metric_ = &reg.counter("fsa_batcher_batches_total" + label);
  queue_depth_metric_ = &reg.gauge("fsa_batcher_queue_depth" + label);
  // One bucket per exact batch size: the /stats size_histogram (exact
  // size → count) reconstructs losslessly from non-cumulative buckets.
  batch_size_metric_ = &reg.histogram("fsa_batcher_batch_size" + label,
                                      obs::linear_bounds(1.0, 1.0, options_.max_batch));
  // 0.5ms .. ~4s exponential: sweep solves live in the upper decades,
  // healthz-sized batches in the lower ones.
  latency_metric_ = &reg.histogram("fsa_batcher_request_latency_ms" + label,
                                   obs::exponential_bounds(0.5, 2.0, 14));
  executors_.reserve(static_cast<std::size_t>(options_.executors));
  for (int i = 0; i < options_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

DynamicBatcher::~DynamicBatcher() { drain(); }

std::optional<std::future<BatchResponse>> DynamicBatcher::submit(const BatchKey& key,
                                                                 eval::Json payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || total_queued_ >= static_cast<std::size_t>(options_.max_queue)) {
    shed_metric_->inc();
    return std::nullopt;
  }
  submitted_metric_->inc();
  Pending p;
  p.payload = std::move(payload);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<BatchResponse> future = p.promise.get_future();
  queues_[key].waiting.push_back(std::move(p));
  ++total_queued_;
  queue_depth_metric_->set(static_cast<double>(total_queued_));
  cv_.notify_one();
  return future;
}

void DynamicBatcher::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    draining_ = true;
    cv_.notify_all();
  }
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

bool DynamicBatcher::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t DynamicBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

eval::Json DynamicBatcher::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  eval::Json out = eval::Json::object();
  out.set("queue_depth", eval::Json::number(static_cast<std::int64_t>(total_queued_)));
  eval::Json requests = eval::Json::object();
  requests.set("submitted", eval::Json::number(submitted_metric_->value()));
  requests.set("completed", eval::Json::number(completed_metric_->value()));
  requests.set("shed", eval::Json::number(shed_metric_->value()));
  out.set("requests", std::move(requests));

  eval::Json batches = eval::Json::object();
  batches.set("count", eval::Json::number(batches_metric_->value()));
  eval::Json histogram = eval::Json::object();
  // Bucket i covers exactly size i+1 (bounds are 1, 2, ..., max_batch and
  // a batch never exceeds max_batch); emit only observed sizes, matching
  // the sparse map this histogram replaced.
  for (std::size_t i = 0; i < batch_size_metric_->bounds().size(); ++i) {
    const std::int64_t count = batch_size_metric_->bucket_count(i);
    if (count > 0) histogram.set(std::to_string(i + 1), eval::Json::number(count));
  }
  batches.set("size_histogram", std::move(histogram));
  out.set("batches", std::move(batches));

  eval::Json latency = eval::Json::object();
  latency.set("count", eval::Json::number(latency_metric_->count()));
  latency.set("p50_ms", eval::Json::number(latency_metric_->quantile(0.50)));
  latency.set("p99_ms", eval::Json::number(latency_metric_->quantile(0.99)));
  out.set("latency_ms", std::move(latency));
  return out;
}

void DynamicBatcher::executor_loop() {
  using Clock = std::chrono::steady_clock;
  const auto delay = std::chrono::milliseconds(options_.max_delay_ms);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A key is ripe when its batch is full, its oldest request has aged
    // past the deadline, or we're draining (fire everything immediately).
    const auto now = Clock::now();
    auto ripe = queues_.end();
    std::optional<Clock::time_point> next_deadline;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      if (it->second.busy || it->second.waiting.empty()) continue;
      const auto deadline = it->second.waiting.front().enqueued + delay;
      if (draining_ || it->second.waiting.size() >= static_cast<std::size_t>(options_.max_batch) ||
          now >= deadline) {
        ripe = it;
        break;
      }
      if (!next_deadline || deadline < *next_deadline) next_deadline = deadline;
    }

    if (ripe == queues_.end()) {
      if (draining_ && total_queued_ == 0) return;  // in-flight keys finish on their executors
      if (next_deadline)
        cv_.wait_until(lock, *next_deadline);
      else
        cv_.wait(lock);
      continue;
    }

    // Claim: mark the key busy and move up to max_batch requests out.
    KeyQueue& q = ripe->second;
    q.busy = true;
    const BatchKey key = ripe->first;
    const std::size_t n =
        std::min(q.waiting.size(), static_cast<std::size_t>(options_.max_batch));
    std::vector<Pending> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q.waiting.front()));
      q.waiting.pop_front();
    }
    total_queued_ -= n;
    queue_depth_metric_->set(static_cast<double>(total_queued_));
    batches_metric_->inc();
    batch_size_metric_->observe(static_cast<double>(n));
    lock.unlock();

    std::vector<BatchResponse> responses;
    std::string failure;
    {
      OBS_SPAN("serve.batch", obs::trace_enabled() ? key.kind + " n=" + std::to_string(n)
                                                   : std::string());
      std::vector<eval::Json> payloads;
      payloads.reserve(n);
      for (Pending& p : batch) payloads.push_back(std::move(p.payload));
      try {
        responses = fn_(key, payloads);
        if (responses.size() != n)
          failure = "batch executor returned " + std::to_string(responses.size()) +
                    " responses for " + std::to_string(n) + " requests";
      } catch (const std::exception& e) {
        failure = e.what();
      }
    }

    lock.lock();
    const auto done = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      if (failure.empty()) {
        batch[i].promise.set_value(std::move(responses[i]));
      } else {
        BatchResponse err;
        err.status = 500;
        eval::Json doc = eval::Json::object();
        doc.set("error", eval::Json::string(failure));
        err.body = doc.dump(2) + "\n";
        batch[i].promise.set_value(std::move(err));
      }
      completed_metric_->inc();
      latency_metric_->observe(
          std::chrono::duration<double, std::milli>(done - batch[i].enqueued).count());
    }
    queues_[key].busy = false;
    cv_.notify_all();
  }
}

}  // namespace fsa::serve
