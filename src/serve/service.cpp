#include "serve/service.h"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "dist/jobs.h"
#include "dist/reducer.h"
#include "faultsim/profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsa::serve {

namespace {

/// Injector calibration profiles are process-global (profile.h): any
/// batch that creates injectors must own that state for its whole
/// execution. One gate for the process, matching the one profile slot.
std::mutex g_profile_gate;

HttpResponse json_error(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  r.body = error_body(message);
  return r;
}

/// Strict request-shape check, mirroring the CLI's expect_only: unknown
/// fields fail loudly instead of being silently ignored (a typo'd
/// "datset" must not run the default sweep). Returns "" when clean.
std::string check_keys(const eval::Json& doc, const std::set<std::string>& allowed) {
  if (doc.type() != eval::Json::Type::kObject) return "request body must be a JSON object";
  for (const auto& [key, value] : doc.members())
    if (allowed.count(key) == 0) return "unknown field \"" + key + "\"";
  return "";
}

/// Parse and bound-check the request's spec list. Throws
/// std::invalid_argument with a request-facing message.
std::vector<engine::SweepSpec> parse_specs(const eval::Json& doc, std::size_t max_specs) {
  if (!doc.has("specs") || doc.at("specs").type() != eval::Json::Type::kArray)
    throw std::invalid_argument("\"specs\" must be an array of sweep instance specs");
  const auto& items = doc.at("specs").items();
  if (items.empty()) throw std::invalid_argument("\"specs\" must not be empty");
  if (items.size() > max_specs)
    throw std::invalid_argument("request carries " + std::to_string(items.size()) +
                                " specs, more than the " + std::to_string(max_specs) +
                                " per-request limit");
  std::vector<engine::SweepSpec> specs;
  specs.reserve(items.size());
  for (const eval::Json& item : items) {
    engine::SweepSpec spec = engine::SweepSpec::from_json(item);
    if (spec.S < 1 || spec.R < spec.S)
      throw std::invalid_argument("spec with S=" + std::to_string(spec.S) +
                                  ", R=" + std::to_string(spec.R) +
                                  ": need 1 <= S <= R");
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Arena request specs: parsed like a sweep's, with the request's
/// top-level "defense" (a config object or the CLI's string spelling)
/// folded into specs lacking one. Every spec must end up with a deployed
/// defense, validated against the defense registry — all before the
/// request is admitted to a batch.
std::vector<engine::SweepSpec> parse_arena_specs(const eval::Json& doc, std::size_t max_specs) {
  std::vector<engine::SweepSpec> specs = parse_specs(doc, max_specs);
  std::optional<defense::DefenseConfig> shared;
  if (doc.has("defense") && !doc.at("defense").is_null()) {
    const eval::Json& d = doc.at("defense");
    shared = d.type() == eval::Json::Type::kString ? defense::parse_defense(d.as_string())
                                                   : defense::DefenseConfig::from_json(d);
  }
  for (engine::SweepSpec& s : specs) {
    if (!s.defense) s.defense = shared;
    if (!s.defense)
      throw std::invalid_argument(
          "arena specs need a deployed \"defense\" (per spec, or top-level for all)");
    (void)defense::make_defense(*s.defense);  // unknown name/bad knobs → 400
    if (s.tag.empty()) s.tag = s.defense->key();
  }
  return specs;
}

/// The minimal sweep/arena "manifest" the reducer reads (dataset,
/// backend, shards) — built locally instead of via dist::sweep_manifest
/// so no request path reads the process-global injector-profile slot.
eval::Json reducer_manifest(const std::string& kind, const std::string& dataset,
                            const std::string& backend, std::size_t shards) {
  eval::Json j = eval::Json::object();
  j.set("kind", eval::Json::string(kind));
  j.set("dataset", eval::Json::string(dataset));
  j.set("backend", eval::Json::string(backend));
  j.set("shards", eval::Json::number(static_cast<std::int64_t>(shards)));
  return j;
}

int status_for(const std::exception& e) {
  return dynamic_cast<const std::invalid_argument*>(&e) != nullptr ? 400 : 500;
}

}  // namespace

std::string render_json_body(const eval::Json& doc) { return doc.dump(2) + "\n"; }

eval::Json eval_document(engine::SweepRunner& runner, const std::string& model,
                         const std::string& backend, const std::vector<std::string>& layers,
                         bool weights, bool biases) {
  engine::SweepSpec surface;
  surface.layers = layers;
  surface.weights = weights;
  surface.biases = biases;
  eval::AttackBench& bench = runner.bench(layers, weights, biases);

  eval::Json doc = eval::Json::object();
  doc.set("kind", eval::Json::string("eval"));
  doc.set("model", eval::Json::string(model));
  doc.set("backend", eval::Json::string(backend));
  doc.set("surface", eval::Json::string(surface.surface_key()));
  doc.set("params", eval::Json::number(bench.model().net.param_count()));
  doc.set("surface_params",
          eval::Json::number(static_cast<std::int64_t>(bench.attack().mask().size())));
  doc.set("pool_images",
          eval::Json::number(static_cast<std::int64_t>(bench.pool_preds().size())));
  doc.set("clean_test_accuracy", eval::Json::number(bench.clean_test_accuracy()));
  return doc;
}

// ---- AttackService -----------------------------------------------------------

AttackService::AttackService(ModelHost& host, ServiceOptions options)
    : host_(host), options_(options), backend_(backend::active_name()) {
  batcher_ = std::make_unique<DynamicBatcher>(
      options_.batcher, [this](const BatchKey& key, const std::vector<eval::Json>& payloads) {
        return execute(key, payloads);
      });
}

AttackService::~AttackService() { drain(); }

void AttackService::drain() { batcher_->drain(); }

eval::Json AttackService::stats_json() const {
  eval::Json out = eval::Json::object();
  out.set("backend", eval::Json::string(backend_));
  eval::Json models = eval::Json::array();
  for (const std::string& name : host_.names()) models.push_back(eval::Json::string(name));
  out.set("models", std::move(models));
  out.set("requests_handled", eval::Json::number(requests_.load()));
  // Compile attribution: which forward path this daemon runs, and — when
  // compiled — each model's fused-node count, so served artifacts record
  // the execution path the same way sweep rows do ("compiled" per row).
  eval::Json comp = eval::Json::object();
  comp.set("enabled", eval::Json::boolean(compile::enabled()));
  if (compile::enabled()) {
    eval::Json fused = eval::Json::object();
    for (const std::string& name : host_.names())
      fused.set(name,
                eval::Json::number(static_cast<std::int64_t>(host_.runner(name).fused_nodes())));
    comp.set("fused_nodes", std::move(fused));
  }
  out.set("compile", std::move(comp));
  const eval::Json batcher_stats = batcher_->stats_json();
  for (const auto& [key, value] : batcher_stats.members()) out.set(key, value);
  return out;
}

namespace {

/// Bounded label space for per-route counters: unknown targets collapse
/// to "other" so a scanner can't grow the registry without bound.
const char* route_label(const std::string& target) {
  static const char* known[] = {"/healthz", "/stats",       "/metrics",    "/v1/sweep",
                                "/v1/arena", "/v1/campaign", "/v1/eval"};
  for (const char* r : known)
    if (target == r) return r;
  return "other";
}

}  // namespace

HttpResponse AttackService::handle(const HttpRequest& request) {
  OBS_SPAN("serve.request", obs::trace_enabled() ? request.method + " " + request.target
                                                 : std::string());
  obs::Registry::global()
      .counter("fsa_serve_requests_total{route=\"" + std::string(route_label(request.target)) +
               "\"}")
      .inc();
  HttpResponse response;
  if (request.method == "GET")
    response = handle_get(request);
  else if (request.method == "POST")
    response = handle_post(request);
  else
    response = json_error(405, "method " + request.method + " not supported");
  obs::Registry::global()
      .counter("fsa_serve_responses_total{status=\"" + std::to_string(response.status) + "\"}")
      .inc();
  return response;
}

HttpResponse AttackService::handle_get(const HttpRequest& request) {
  if (request.target == "/healthz") {
    eval::Json doc = eval::Json::object();
    doc.set("status", eval::Json::string("ok"));
    doc.set("backend", eval::Json::string(backend_));
    eval::Json models = eval::Json::array();
    for (const std::string& name : host_.names()) models.push_back(eval::Json::string(name));
    doc.set("models", std::move(models));
    return HttpResponse{200, "application/json", render_json_body(doc)};
  }
  if (request.target == "/stats")
    return HttpResponse{200, "application/json", render_json_body(stats_json())};
  // Prometheus text exposition of the process-wide metrics registry — the
  // same counters/histograms /stats reads, plus everything the engine,
  // compile, and dist layers record in-process.
  if (request.target == "/metrics")
    return HttpResponse{200, "text/plain; version=0.0.4",
                        obs::Registry::global().prometheus_text()};
  return json_error(404, "no route for GET " + request.target +
                             " (GET /healthz, GET /stats, GET /metrics, POST "
                             "/v1/{sweep,arena,campaign,eval})");
}

HttpResponse AttackService::handle_post(const HttpRequest& request) {
  eval::Json doc;
  try {
    doc = eval::Json::parse(request.body, options_.parse_limits);
  } catch (const std::exception& e) {
    return json_error(400, std::string("malformed JSON body: ") + e.what());
  }

  if (request.target == "/v1/sweep" || request.target == "/v1/arena") {
    const bool arena = request.target == "/v1/arena";
    std::set<std::string> allowed = {"dataset", "backend", "specs", "injector_profile"};
    if (arena) allowed.insert("defense");
    if (const std::string err = check_keys(doc, allowed); !err.empty())
      return json_error(400, err);
    const std::string dataset = doc.get_string("dataset", "");
    if (!host_.has(dataset)) {
      std::string known;
      for (const auto& n : host_.names()) known += (known.empty() ? "" : ", ") + n;
      return json_error(400, "unknown dataset \"" + dataset + "\" (serving: " + known + ")");
    }
    if (const std::string be = doc.get_string("backend", ""); !be.empty() && be != backend_)
      return json_error(400, "this daemon is pinned to backend \"" + backend_ +
                                 "\"; request asked for \"" + be + "\"");
    try {
      if (arena)
        (void)parse_arena_specs(doc, options_.max_specs_per_request);
      else
        (void)parse_specs(doc, options_.max_specs_per_request);
    } catch (const std::exception& e) {
      return json_error(400, e.what());
    }
    BatchKey key{arena ? "arena" : "sweep", dataset, backend_,
                 doc.has("injector_profile") ? doc.at("injector_profile").dump() : ""};
    return submit_and_wait(key, std::move(doc));
  }

  if (request.target == "/v1/campaign") {
    if (doc.type() != eval::Json::Type::kObject)
      return json_error(400, "request body must be a campaign manifest object");
    if (!doc.has("injector") || doc.at("injector").type() != eval::Json::Type::kString)
      return json_error(400, "campaign manifest needs an \"injector\" name");
    const std::int64_t shards = doc.get_int("shards", 0);
    if (shards < 1 || shards > options_.max_campaign_shards)
      return json_error(400, "campaign manifest \"shards\" must be in [1, " +
                                 std::to_string(options_.max_campaign_shards) + "], got " +
                                 std::to_string(shards));
    if (!doc.has("shard_list"))
      return json_error(400, "campaign manifest needs its \"shard_list\"");
    BatchKey key{"campaign", "", backend_,
                 doc.has("injector_profile") ? doc.at("injector_profile").dump() : ""};
    return submit_and_wait(key, std::move(doc));
  }

  if (request.target == "/v1/eval") {
    if (const std::string err =
            check_keys(doc, {"dataset", "backend", "layers", "weights", "biases"});
        !err.empty())
      return json_error(400, err);
    const std::string dataset = doc.get_string("dataset", "");
    if (!host_.has(dataset)) return json_error(400, "unknown dataset \"" + dataset + "\"");
    if (const std::string be = doc.get_string("backend", ""); !be.empty() && be != backend_)
      return json_error(400, "this daemon is pinned to backend \"" + backend_ +
                                 "\"; request asked for \"" + be + "\"");
    if (!doc.has("layers") || doc.at("layers").type() != eval::Json::Type::kArray ||
        doc.at("layers").items().empty())
      return json_error(400, "\"layers\" must be a non-empty array of layer names");
    if (!doc.get_bool("weights", true) && !doc.get_bool("biases", true))
      return json_error(400, "weights and biases cannot both be false");
    BatchKey key{"eval", dataset, backend_, ""};
    return submit_and_wait(key, std::move(doc));
  }

  return json_error(404, "no route for POST " + request.target +
                             " (POST /v1/{sweep,arena,campaign,eval})");
}

HttpResponse AttackService::submit_and_wait(const BatchKey& key, eval::Json payload) {
  auto future = batcher_->submit(key, std::move(payload));
  if (!future) {
    if (batcher_->draining()) return json_error(503, "service is draining");
    return json_error(429, "request queue is full (" +
                               std::to_string(batcher_->queue_depth()) + " queued); retry");
  }
  const BatchResponse response = future->get();
  requests_.fetch_add(1);
  return HttpResponse{response.status, "application/json", response.body};
}

// ---- batch executors ---------------------------------------------------------

std::vector<BatchResponse> AttackService::execute(const BatchKey& key,
                                                  const std::vector<eval::Json>& payloads) {
  if (key.kind == "sweep" || key.kind == "arena") return execute_sweep(key, payloads);
  if (key.kind == "campaign") return execute_campaign(payloads);
  if (key.kind == "eval") return execute_eval(key, payloads);
  throw std::runtime_error("serve: unknown batch kind \"" + key.kind + "\"");
}

std::vector<BatchResponse> AttackService::execute_sweep(const BatchKey& key,
                                                        const std::vector<eval::Json>& payloads) {
  // Re-parse each request's specs (admission already validated them) and
  // concatenate into ONE runner call: per-instance determinism (own clone,
  // own seed) makes the merged run bitwise identical to per-request runs.
  // Arena batches (key.kind "arena") take the same path with the arena
  // parser and reducer, so responses carry the evasion frontier.
  std::vector<std::vector<engine::SweepSpec>> per_request;
  std::vector<engine::SweepSpec> merged;
  bool needs_injectors = !key.profile.empty();
  per_request.reserve(payloads.size());
  for (const eval::Json& doc : payloads) {
    std::vector<engine::SweepSpec> specs =
        key.kind == "arena" ? parse_arena_specs(doc, options_.max_specs_per_request)
                            : parse_specs(doc, options_.max_specs_per_request);
    for (const engine::SweepSpec& s : specs) needs_injectors = needs_injectors || s.campaign;
    merged.insert(merged.end(), specs.begin(), specs.end());
    per_request.push_back(std::move(specs));
  }

  engine::SweepRunner& runner = host_.runner(key.model);
  engine::SweepResult result;
  if (needs_injectors) {
    // Own the global calibration slot for the whole run: load this
    // batch's profile, or restore built-in defaults when it has none.
    std::lock_guard<std::mutex> gate(g_profile_gate);
    if (key.profile.empty())
      faultsim::clear_injector_profile();
    else
      faultsim::load_injector_profile(eval::Json::parse(key.profile));
    result = runner.run(merged);
    faultsim::clear_injector_profile();
  } else {
    result = runner.run(merged);
  }

  // Split the merged rows back per request and reduce each one exactly
  // like the dist path, so response bytes match `sweep --workers --json`.
  std::vector<BatchResponse> responses;
  responses.reserve(payloads.size());
  std::size_t offset = 0;
  for (const std::vector<engine::SweepSpec>& specs : per_request) {
    engine::SweepResult slice;
    slice.rows.assign(std::move_iterator(result.rows.begin() + static_cast<std::ptrdiff_t>(offset)),
                      std::move_iterator(result.rows.begin() +
                                         static_cast<std::ptrdiff_t>(offset + specs.size())));
    offset += specs.size();
    std::vector<std::size_t> indices(specs.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

    eval::Json shard = eval::Json::object();
    shard.set("kind", eval::Json::string(key.kind));
    shard.set("shard", eval::Json::number(static_cast<std::int64_t>(0)));
    shard.set("rows", dist::sweep_rows_json(slice, indices));
    const eval::Json reduced = dist::make_reducer(key.kind)->reduce(
        reducer_manifest(key.kind, key.model, key.backend, specs.size()), {shard});
    responses.push_back(BatchResponse{200, render_json_body(reduced)});
  }
  return responses;
}

std::vector<BatchResponse> AttackService::execute_campaign(
    const std::vector<eval::Json>& payloads) {
  // Campaign manifests are already internally sharded; run each request's
  // shards in sequence. The whole batch owns the calibration slot: every
  // manifest either carries its profile (loaded by run_campaign_shard and
  // the reducer) or runs on the built-in defaults.
  std::lock_guard<std::mutex> gate(g_profile_gate);
  std::vector<BatchResponse> responses;
  responses.reserve(payloads.size());
  for (const eval::Json& manifest : payloads) {
    try {
      faultsim::clear_injector_profile();  // defaults unless THIS manifest overrides
      const int shards = static_cast<int>(manifest.get_int("shards", 0));
      std::vector<eval::Json> shard_results;
      shard_results.reserve(static_cast<std::size_t>(shards));
      for (int i = 0; i < shards; ++i)
        shard_results.push_back(dist::run_campaign_shard(manifest, i));
      const eval::Json reduced =
          dist::make_reducer("campaign")->reduce(manifest, shard_results);
      responses.push_back(BatchResponse{200, render_json_body(reduced)});
    } catch (const std::exception& e) {
      responses.push_back(BatchResponse{status_for(e), error_body(e.what())});
    }
  }
  faultsim::clear_injector_profile();
  return responses;
}

std::vector<BatchResponse> AttackService::execute_eval(const BatchKey& key,
                                                       const std::vector<eval::Json>& payloads) {
  engine::SweepRunner& runner = host_.runner(key.model);
  std::vector<BatchResponse> responses;
  responses.reserve(payloads.size());
  for (const eval::Json& doc : payloads) {
    try {
      std::vector<std::string> layers;
      for (const eval::Json& l : doc.at("layers").items()) layers.push_back(l.as_string());
      const eval::Json out = eval_document(runner, key.model, key.backend, layers,
                                           doc.get_bool("weights", true),
                                           doc.get_bool("biases", true));
      responses.push_back(BatchResponse{200, render_json_body(out)});
    } catch (const std::exception& e) {
      responses.push_back(BatchResponse{status_for(e), error_body(e.what())});
    }
  }
  return responses;
}

}  // namespace fsa::serve
