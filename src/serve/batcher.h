// batcher.h — dynamic request batching for the attack service.
//
// The daemon's whole throughput case: solving N sweep instances in ONE
// SweepRunner::run call amortizes feature-cache lookups and fills the
// thread pool, so concurrent small requests should coalesce. The batcher
// queues submitted requests per BatchKey — requests are only merged when
// their execution context is identical (kind, model, backend, injector
// profile) — and an executor fires a batch when either `max_batch`
// requests are waiting or the OLDEST request has waited `max_delay_ms`
// (so a lone request never waits longer than the deadline, and a burst
// never waits at all).
//
// Determinism is the design constraint batching must not break: every
// sweep instance derives its randomness from its own spec seed and solves
// on its own network clone, so executing requests' specs concatenated in
// one run yields bitwise-identical rows to executing them one at a time
// (serve_test proves byte-identical responses for 1 vs 16 concurrent
// clients). Per-key execution is serialized (one in-flight batch per key)
// because SweepRunner's bench cache is not thread-safe.
//
// Admission control: the TOTAL queued-request count is bounded by
// `max_queue`; submit() refuses beyond it (the HTTP layer sheds with 429)
// so a burst degrades into fast refusals instead of unbounded memory and
// latency. drain() stops admission, finishes everything queued, and joins
// the executors — the graceful-SIGTERM path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "eval/json.h"
#include "obs/metrics.h"

namespace fsa::serve {

/// Requests batch together only when every field matches: same handler
/// kind, same model (empty for model-free campaigns), same pinned
/// backend, and the same injector-calibration profile document (its
/// compact dump; "" = built-in defaults).
struct BatchKey {
  std::string kind;
  std::string model;
  std::string backend;
  std::string profile;

  bool operator<(const BatchKey& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (model != o.model) return model < o.model;
    if (backend != o.backend) return backend < o.backend;
    return profile < o.profile;
  }
};

/// What a request resolves to: an HTTP status plus the exact response
/// body bytes (already rendered — byte-identity is the contract, so the
/// executor owns formatting).
struct BatchResponse {
  int status = 200;
  std::string body;
};

/// Execute one batch: `payloads` are the queued request documents in FIFO
/// order; the result MUST parallel them. Called on an executor thread,
/// one batch per key at a time.
using BatchFn =
    std::function<std::vector<BatchResponse>(const BatchKey&, const std::vector<eval::Json>&)>;

struct BatcherOptions {
  int max_batch = 8;     ///< fire when this many requests wait on one key
  int max_delay_ms = 5;  ///< ... or when the oldest has waited this long
  int max_queue = 64;    ///< total queued requests beyond which submit() sheds
  int executors = 2;     ///< executor threads (distinct keys run concurrently)
};

class DynamicBatcher {
 public:
  DynamicBatcher(BatcherOptions options, BatchFn fn);
  ~DynamicBatcher();
  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Queue one request. Returns the future its BatchResponse will arrive
  /// on, or std::nullopt when the queue is full or the batcher is
  /// draining — the caller sheds (HTTP 429/503) instead of blocking.
  std::optional<std::future<BatchResponse>> submit(const BatchKey& key, eval::Json payload);

  /// Stop admission, execute every queued request, join the executors.
  /// Every future obtained from submit() before drain() completes.
  /// Idempotent.
  void drain();

  [[nodiscard]] bool draining() const;

  /// Requests currently queued (excluding in-flight batches).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Counters for GET /stats: queue depth, totals, the batch-size
  /// histogram, and p50/p99 of request latency (submit → response ready,
  /// execution included). All of it reads from this batcher's metrics on
  /// the process-wide obs registry — GET /metrics reports the same
  /// numbers from the same source (the /stats JSON shape is unchanged;
  /// p50/p99 are now histogram-interpolated estimates rather than
  /// nearest-rank over a sample window).
  [[nodiscard]] eval::Json stats_json() const;

 private:
  struct Pending {
    eval::Json payload;
    std::promise<BatchResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct KeyQueue {
    std::deque<Pending> waiting;
    bool busy = false;  ///< an executor is running a batch for this key
  };

  void executor_loop();

  const BatcherOptions options_;
  const BatchFn fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<BatchKey, KeyQueue> queues_;
  std::size_t total_queued_ = 0;
  bool draining_ = false;
  bool joined_ = false;

  // Stats live on the process-wide obs registry (one source of truth for
  // /stats and /metrics). Each batcher instance gets its own label set —
  // `{batcher="N"}` — so concurrent batchers (tests, embedded services)
  // never cross-count. Pointers are registry-owned and process-lived.
  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;
  obs::Counter* batches_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Histogram* batch_size_metric_ = nullptr;  ///< exact bounds 1..max_batch
  obs::Histogram* latency_metric_ = nullptr;     ///< latency ms, exponential buckets

  std::vector<std::thread> executors_;
};

}  // namespace fsa::serve
