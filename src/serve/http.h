// http.h — minimal blocking HTTP/1.1 transport for the attack service.
//
// fsa_serve needs exactly one thing from HTTP: carry a JSON request body
// to a handler and a JSON response body back, on localhost, with no
// external dependency. So this is HTTP/1.1 reduced to that contract:
// GET/POST only, Content-Length framing only (no chunked encoding, no
// keep-alive — every response carries `Connection: close`), loopback
// bind only. The parser is a pure function over bytes (unit-testable
// without sockets), the server is N accept threads each handling one
// connection at a time (the real concurrency lives in the DynamicBatcher
// behind the handler), and the tiny client exists for loadgen, the tests
// and the CI soak job.
//
// Untrusted-input posture: request heads and bodies are size-capped
// BEFORE buffering (431/413), POST without Content-Length is rejected
// (411), and socket reads/writes carry timeouts so a stalled peer cannot
// pin an accept thread forever. JSON parsing happens in the service layer
// under eval::Json::ParseLimits — this layer never interprets bodies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace fsa::serve {

// ---- messages ----------------------------------------------------------------

struct HttpRequest {
  std::string method;   ///< "GET", "POST"
  std::string target;   ///< request path, e.g. "/v1/sweep"
  std::string version;  ///< "HTTP/1.1"
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Reason phrase for the status codes this server emits ("OK", "Too Many
/// Requests", ...); unknown codes get "Status".
std::string status_reason(int status);

/// Serialize a response with Content-Length and `Connection: close`.
std::string render_response(const HttpResponse& response);

/// Parse a request head (request line + header lines, WITHOUT the blank
/// line or body) into `out`. Returns "" on success, else a description of
/// the malformation. Pure — unit tests feed it adversarial bytes directly.
std::string parse_request_head(const std::string& head, HttpRequest& out);

/// `{"error": "<message>"}\n` with JSON string escaping — the body shape
/// every non-2xx response uses.
std::string error_body(const std::string& message);

// ---- server ------------------------------------------------------------------

struct HttpLimits {
  std::size_t max_head_bytes = 16 * 1024;        ///< request line + headers (431 beyond)
  std::size_t max_body_bytes = 8 * 1024 * 1024;  ///< POST body (413 beyond)
  int io_timeout_ms = 30000;                     ///< per-socket send/recv timeout
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  int port = 0;  ///< 0 → ephemeral; read the bound port back with port()
  int threads = 4;
  HttpLimits limits;
  bool verbose = false;
};

/// Blocking HTTP/1.1 server bound to 127.0.0.1. The constructor binds and
/// listens (throwing std::runtime_error if the port is taken), start()
/// spawns the accept threads, stop() makes them finish their in-flight
/// connection and join — in-flight responses are completed, nothing new
/// is accepted. Handler exceptions become 500 responses, never crashes.
class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually-bound port (after an ephemeral `port: 0` bind).
  [[nodiscard]] int port() const { return port_; }

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Connections fully handled (response written) since start().
  [[nodiscard]] std::int64_t connections_handled() const;

 private:
  void accept_loop();
  void handle_connection(int fd);

  HttpServerOptions options_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool running_ = false;
  std::vector<std::thread> threads_;
};

// ---- client ------------------------------------------------------------------

/// One blocking request against a numeric host ("127.0.0.1"). Throws
/// std::runtime_error on transport errors (refused, timeout, truncated);
/// HTTP-level errors come back as the response's status.
HttpResponse http_fetch(const std::string& host, int port, const std::string& method,
                        const std::string& target, const std::string& body,
                        const HttpLimits& limits = {});

// ---- graceful shutdown -------------------------------------------------------

/// Scoped SIGTERM/SIGINT handler for the serve CLI, mirroring `dist
/// serve`: the first signal flips a flag the serve loop polls (finish
/// in-flight work, drain, exit 0); handlers are restored on destruction.
class DrainSignalGuard {
 public:
  DrainSignalGuard();
  ~DrainSignalGuard();
  DrainSignalGuard(const DrainSignalGuard&) = delete;
  DrainSignalGuard& operator=(const DrainSignalGuard&) = delete;

  /// True once SIGTERM or SIGINT arrived (process-wide).
  [[nodiscard]] static bool stop_requested();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fsa::serve
