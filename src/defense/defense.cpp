#include "defense/defense.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "defense/defenses.h"

namespace fsa::defense {

namespace {

/// Per-defense default granularity — the values the seed benches used, so
/// "range" and "range/201" name the same deployment.
std::int64_t default_granularity(const std::string& name) {
  if (name == "checksum") return 64;
  if (name == "range") return 201;
  if (name == "canary") return 32;
  return 0;
}

/// Canonical slack rendering: shortest round-trip form ("%g"), so key()
/// strings are byte-stable across processes and locales never interfere.
std::string slack_text(double slack) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", slack);
  return buf;
}

struct Registry {
  std::mutex mu;
  std::map<std::string, DefenseFactory> factories;

  Registry() {
    factories["checksum"] = [](const DefenseConfig& cfg) -> DefensePtr {
      return std::make_unique<ChecksumDefense>(
          cfg.granularity > 0 ? cfg.granularity : default_granularity("checksum"));
    };
    factories["range"] = [](const DefenseConfig& cfg) -> DefensePtr {
      return std::make_unique<RangeDefense>(
          cfg.granularity > 0 ? cfg.granularity : default_granularity("range"), cfg.slack);
    };
    factories["canary"] = [](const DefenseConfig& cfg) -> DefensePtr {
      return std::make_unique<CanaryDefense>(
          cfg.granularity > 0 ? cfg.granularity : default_granularity("canary"));
    };
    factories["ensemble"] = [](const DefenseConfig& cfg) -> DefensePtr {
      std::vector<DefensePtr> members;
      members.reserve(cfg.members.size());
      for (const DefenseConfig& m : cfg.members) members.push_back(make_defense(m));
      return std::make_unique<EnsembleDefense>(std::move(members));
    };
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

void validate(const DefenseConfig& config) {
  if (config.granularity < 0)
    throw std::invalid_argument("defense \"" + config.name + "\": granularity must be >= 0 (0 = default), got " +
                                std::to_string(config.granularity));
  if (config.slack < 0.0)
    throw std::invalid_argument("defense \"" + config.name + "\": slack must be >= 0");
  if (config.name == "ensemble") {
    if (config.members.empty())
      throw std::invalid_argument("defense \"ensemble\" needs at least one member config");
  } else if (!config.members.empty()) {
    throw std::invalid_argument("defense \"" + config.name +
                                "\" takes no member configs (only \"ensemble\" composes)");
  }
}

}  // namespace

std::string DefenseConfig::key() const {
  if (name == "ensemble") {
    std::string out;
    for (const DefenseConfig& m : members) out += (out.empty() ? "" : "+") + m.key();
    return out;
  }
  const std::int64_t g = granularity > 0 ? granularity : default_granularity(name);
  std::string out = name + "/" + std::to_string(g);
  if (name == "range") out += "/" + slack_text(slack);
  return out;
}

eval::Json DefenseConfig::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("name", eval::Json::string(name));
  if (granularity > 0) j.set("granularity", eval::Json::number(granularity));
  if (name == "range") j.set("slack", eval::Json::number(slack));
  if (!members.empty()) {
    eval::Json arr = eval::Json::array();
    for (const DefenseConfig& m : members) arr.push_back(m.to_json());
    j.set("members", std::move(arr));
  }
  return j;
}

DefenseConfig DefenseConfig::from_json(const eval::Json& j) {
  DefenseConfig c;
  c.name = j.get_string("name", "range");
  c.granularity = j.get_int("granularity", 0);
  c.slack = j.get_number("slack", 0.10);
  if (j.has("members"))
    for (const eval::Json& m : j.at("members").items()) c.members.push_back(from_json(m));
  return c;
}

DefenseConfig parse_defense(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty defense config");

  // "+"-joined configs compose an ensemble.
  if (text.find('+') != std::string::npos) {
    DefenseConfig ensemble;
    ensemble.name = "ensemble";
    std::size_t begin = 0;
    while (begin <= text.size()) {
      const std::size_t plus = text.find('+', begin);
      const std::size_t end = plus == std::string::npos ? text.size() : plus;
      ensemble.members.push_back(parse_defense(text.substr(begin, end - begin)));
      if (plus == std::string::npos) break;
      begin = plus + 1;
    }
    return ensemble;
  }

  DefenseConfig c;
  c.slack = 0.10;
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t slash = text.find('/', begin);
    const std::size_t end = slash == std::string::npos ? text.size() : slash;
    parts.push_back(text.substr(begin, end - begin));
    if (slash == std::string::npos) break;
    begin = slash + 1;
  }
  if (parts.empty() || parts.size() > 3 || parts[0].empty())
    throw std::invalid_argument("malformed defense config \"" + text +
                                "\" (expected name[/granularity[/slack]])");
  c.name = parts[0];
  try {
    if (parts.size() > 1) c.granularity = std::stoll(parts[1]);
    if (parts.size() > 2) c.slack = std::stod(parts[2]);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed defense config \"" + text +
                                "\" (granularity must be an integer, slack a number)");
  }
  // Fail on unknown names (and bad knobs) NOW — before any model loads.
  (void)make_defense(c);
  return c;
}

void register_defense(const std::string& name, DefenseFactory factory) {
  if (name.empty()) throw std::invalid_argument("register_defense: empty name");
  if (!factory) throw std::invalid_argument("register_defense: null factory");
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  r.factories[name] = std::move(factory);
}

DefensePtr make_defense(const DefenseConfig& config) {
  validate(config);
  DefenseFactory factory;
  {
    Registry& r = registry();
    std::lock_guard lk(r.mu);
    const auto it = r.factories.find(config.name);
    if (it == r.factories.end()) {
      std::string known;
      for (const auto& [k, v] : r.factories) known += (known.empty() ? "" : ", ") + k;
      throw std::invalid_argument("unknown defense \"" + config.name + "\" (known: " + known +
                                  ")");
    }
    factory = it->second;
  }
  // Build outside the lock: the ensemble factory recurses into
  // make_defense for its members.
  return factory(config);
}

bool has_defense(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  return r.factories.count(name) > 0;
}

std::vector<std::string> defense_names() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::string> out;
  out.reserve(r.factories.size());
  for (const auto& [k, v] : r.factories) out.push_back(k);
  return out;
}

}  // namespace fsa::defense
