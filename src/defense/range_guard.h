// range_guard.h — sanitization defense: clamp parameters to trained ranges.
//
// A cheaper countermeasure than integrity hashing: record per-parameter-
// group value ranges at deployment (with a slack factor) and clamp or
// alarm on out-of-range values at load/inference time. It costs two floats
// per group and no re-hashing — but unlike ChecksumGuard it only catches
// modifications that LEAVE the trained range. The defense bench quantifies
// how much of the fault sneaking attack survives sanitization: the ℓ2
// attack's small modifications typically slip under it entirely, which is
// the interesting (and sobering) result.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fsa::defense {

class RangeGuard {
 public:
  /// Snapshot per-group [min, max] of `params`, split into contiguous
  /// groups of `group_params` values, widened by `slack` (relative).
  RangeGuard(const Tensor& params, std::int64_t group_params, double slack = 0.10);

  struct SanitizeResult {
    std::int64_t out_of_range = 0;   ///< entries outside their group range
    std::int64_t clamped = 0;        ///< == out_of_range when clamping enabled
    std::int64_t groups_flagged = 0; ///< groups containing a violation
    bool alarm = false;              ///< any violation seen
  };

  /// Check `params` against the recorded ranges; if `clamp` is true,
  /// project violating entries back onto the range boundary in place.
  SanitizeResult sanitize(Tensor& params, bool clamp = true) const;

  /// Audit-only path: identical counts to sanitize(params, false) but
  /// const all the way down, so a guard can audit a shared compiled
  /// prefix without triggering Parameter-version COW repacks.
  [[nodiscard]] SanitizeResult check(const Tensor& params) const;

  [[nodiscard]] std::int64_t group_count() const {
    return static_cast<std::int64_t>(lo_.size());
  }
  [[nodiscard]] std::int64_t group_params() const { return group_params_; }

  /// Recorded (slack-widened) bounds of group `g` — detection-aware
  /// attackers fold these into the ADMM prox step as a δ box.
  [[nodiscard]] float group_lo(std::int64_t g) const { return lo_[static_cast<std::size_t>(g)]; }
  [[nodiscard]] float group_hi(std::int64_t g) const { return hi_[static_cast<std::size_t>(g)]; }

  /// The group that owns flat parameter index `i`.
  [[nodiscard]] std::int64_t group_of(std::int64_t i) const { return i / group_params_; }

  /// Defense storage overhead in bytes (two floats per group).
  [[nodiscard]] std::int64_t overhead_bytes() const { return group_count() * 8; }

 private:
  SanitizeResult scan(const Tensor& params, Tensor* clamp_into) const;

  std::int64_t total_params_;
  std::int64_t group_params_;
  std::vector<float> lo_, hi_;
};

}  // namespace fsa::defense
