// defense.h — the unified defense interface and registry.
//
// The paper's §2.3 countermeasures (integrity checks, range sanitization)
// lived as two orphaned classes only a bench ever touched. Defense is the
// seam that makes them first-class citizens of the engine, mirroring
// Attacker/Injector/ComputeBackend: one polymorphic interface selected by
// a string-keyed lazy registry, so the arena can cross every attacker
// against every defense configuration without knowing concrete types.
//
// Lifecycle: make_defense(config) builds an UNARMED guard; snapshot(θ0)
// arms it against the deployment-time parameters. verify() is const and
// side-effect free — many sweep instances can share nothing and still
// audit concurrently — and sanitize() is the repair pass (clamp/restore),
// a no-op for detection-only guards like checksums.
//
// Costs are reported as deterministic ABSTRACT work, never wall time:
// overhead_bytes() is the defender's storage bill and verify_cost() the
// per-check work units (words hashed / compared). Both flow into sweep
// rows and must be byte-stable across thread and worker counts, which
// wall-clock numbers can never be.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/json.h"
#include "tensor/tensor.h"

namespace fsa::defense {

/// Result of one verification pass over tampered parameters.
struct VerifyOutcome {
  bool detected = false;            ///< any check tripped
  std::int64_t regions_flagged = 0; ///< blocks/groups/sentinels that tripped
  std::int64_t violations = 0;      ///< parameter-level violations seen
};

/// A deployed parameter-integrity defense, selectable at runtime.
class Defense {
 public:
  virtual ~Defense() = default;

  /// Registry key of this defense ("checksum", "range", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Arm the guard against the deployment-time parameters. Must be called
  /// exactly once before verify()/sanitize(); verify() throws otherwise.
  virtual void snapshot(const Tensor& params) = 0;

  /// Audit `params` against the snapshot. Const — auditing a shared
  /// compiled prefix must never trigger Parameter-version COW repacks.
  [[nodiscard]] virtual VerifyOutcome verify(const Tensor& params) const = 0;

  /// Repair pass: project `params` back toward the accepted set in place
  /// and return the number of entries repaired. Detection-only guards
  /// (checksum) keep the default no-op — they know THAT memory changed,
  /// not what it held.
  virtual std::int64_t sanitize(Tensor& params) const {
    (void)params;
    return 0;
  }

  /// Defender's storage bill in bytes (snapshot metadata).
  [[nodiscard]] virtual std::int64_t overhead_bytes() const = 0;

  /// Abstract per-verification work units (words hashed / compared) — a
  /// deterministic cost model, NOT wall time, so it reduces byte-stably.
  [[nodiscard]] virtual std::int64_t verify_cost() const = 0;
};

using DefensePtr = std::unique_ptr<Defense>;

/// Declarative defense selection: what a sweep spec / arena row carries.
/// `granularity` is the defense's size knob (checksum block params, range
/// group params, canary sentinel count); 0 selects the registered
/// default. `slack` only matters to range-style guards. `members`
/// composes an "ensemble" (its own granularity/slack are then unused).
struct DefenseConfig {
  std::string name = "range";
  std::int64_t granularity = 0;
  double slack = 0.10;
  std::vector<DefenseConfig> members;

  /// Canonical identity, e.g. "range/201/0.10" or
  /// "checksum/64+range/201/0.10" (ensemble) — used as the arena row tag,
  /// so it must be stable across processes.
  [[nodiscard]] std::string key() const;

  [[nodiscard]] eval::Json to_json() const;
  static DefenseConfig from_json(const eval::Json& j);
};

/// Parse the CLI spelling of a defense config:
///   name[/granularity[/slack]]            e.g. "checksum/64", "range/201/0.10"
///   cfg+cfg[+cfg...]                      ensemble of the joined configs
/// Throws std::invalid_argument (naming the registry) on unknown names or
/// malformed numbers — strict, so a typo fails before any model loads.
DefenseConfig parse_defense(const std::string& text);

using DefenseFactory = std::function<DefensePtr(const DefenseConfig&)>;

/// Register (or replace) a defense under `name`.
void register_defense(const std::string& name, DefenseFactory factory);

/// Build the (unarmed) defense for `config`. Throws std::invalid_argument
/// listing the known defenses when the name is unknown, and validates the
/// config (granularity ≥ 0, slack ≥ 0, ensembles non-empty) eagerly.
DefensePtr make_defense(const DefenseConfig& config);

/// True if `name` is registered.
bool has_defense(const std::string& name);

/// All registered defense names, sorted.
std::vector<std::string> defense_names();

}  // namespace fsa::defense
