#include "defense/defenses.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

#include "tensor/rng.h"

namespace fsa::defense {

namespace {

/// Exact float identity, bit-for-bit: sentinel checks must see the same
/// tampering a memory integrity check would, so value comparison goes
/// through the stored bits (a -0.0f overwrite of 0.0f IS tampering).
std::uint32_t float_bits(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

[[noreturn]] void throw_unarmed(const char* name) {
  throw std::logic_error(std::string(name) + ": snapshot() must run before verify()/sanitize()");
}

}  // namespace

// ---- ChecksumDefense ---------------------------------------------------------

void ChecksumDefense::snapshot(const Tensor& params) {
  total_params_ = params.numel();
  guard_.emplace(params, block_params_);
}

VerifyOutcome ChecksumDefense::verify(const Tensor& params) const {
  if (!guard_) throw_unarmed("ChecksumDefense");
  const ChecksumGuard::VerifyResult res = guard_->verify(params);
  VerifyOutcome out;
  out.detected = res.detected;
  out.regions_flagged = res.blocks_flagged;
  out.violations = res.blocks_flagged;  // a CRC localizes to blocks, not params
  return out;
}

std::int64_t ChecksumDefense::overhead_bytes() const {
  if (!guard_) throw_unarmed("ChecksumDefense");
  return guard_->overhead_bytes();
}

// ---- RangeDefense ------------------------------------------------------------

void RangeDefense::snapshot(const Tensor& params) {
  total_params_ = params.numel();
  guard_.emplace(params, group_params_, slack_);
}

const RangeGuard& RangeDefense::guard() const {
  if (!guard_) throw_unarmed("RangeDefense");
  return *guard_;
}

VerifyOutcome RangeDefense::verify(const Tensor& params) const {
  if (!guard_) throw_unarmed("RangeDefense");
  const RangeGuard::SanitizeResult res = guard_->check(params);
  VerifyOutcome out;
  out.detected = res.alarm;
  out.regions_flagged = res.groups_flagged;
  out.violations = res.out_of_range;
  return out;
}

std::int64_t RangeDefense::sanitize(Tensor& params) const {
  if (!guard_) throw_unarmed("RangeDefense");
  return guard_->sanitize(params, /*clamp=*/true).clamped;
}

std::int64_t RangeDefense::overhead_bytes() const {
  if (!guard_) throw_unarmed("RangeDefense");
  return guard_->overhead_bytes();
}

// ---- CanaryDefense -----------------------------------------------------------

void CanaryDefense::snapshot(const Tensor& params) {
  if (sentinels_ <= 0) throw std::invalid_argument("CanaryDefense: sentinel count must be > 0");
  total_params_ = params.numel();
  const auto n = static_cast<std::uint64_t>(total_params_);
  const std::int64_t k = std::min<std::int64_t>(sentinels_, total_params_);

  // Sentinel placement is a pure function of (K, n): every process —
  // coordinator, shard worker, serve daemon — audits the same positions,
  // which the reduced-JSON byte-identity contract requires.
  SplitMix64 mix(0xCA4A12F00DULL ^ (n << 16) ^ static_cast<std::uint64_t>(k));
  std::set<std::int64_t> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < k)
    chosen.insert(static_cast<std::int64_t>(mix.next() % n));

  indices_.assign(chosen.begin(), chosen.end());
  reference_.clear();
  reference_.reserve(indices_.size());
  for (const std::int64_t i : indices_)
    reference_.push_back(float_bits(params[static_cast<std::size_t>(i)]));
}

VerifyOutcome CanaryDefense::verify(const Tensor& params) const {
  if (reference_.empty() && indices_.empty()) throw_unarmed("CanaryDefense");
  if (params.numel() != total_params_)
    throw std::invalid_argument("CanaryDefense::verify: parameter count changed");
  VerifyOutcome out;
  for (std::size_t s = 0; s < indices_.size(); ++s) {
    if (float_bits(params[static_cast<std::size_t>(indices_[s])]) != reference_[s]) {
      out.detected = true;
      ++out.regions_flagged;
      ++out.violations;
    }
  }
  return out;
}

std::int64_t CanaryDefense::sanitize(Tensor& params) const {
  if (reference_.empty() && indices_.empty()) throw_unarmed("CanaryDefense");
  if (params.numel() != total_params_)
    throw std::invalid_argument("CanaryDefense::sanitize: parameter count changed");
  std::int64_t restored = 0;
  for (std::size_t s = 0; s < indices_.size(); ++s) {
    float& v = params[static_cast<std::size_t>(indices_[s])];
    if (float_bits(v) != reference_[s]) {
      std::memcpy(&v, &reference_[s], sizeof(float));
      ++restored;
    }
  }
  return restored;
}

// ---- EnsembleDefense ---------------------------------------------------------

EnsembleDefense::EnsembleDefense(std::vector<DefensePtr> members)
    : members_(std::move(members)) {
  if (members_.empty())
    throw std::invalid_argument("EnsembleDefense: needs at least one member");
  for (const DefensePtr& m : members_)
    if (!m) throw std::invalid_argument("EnsembleDefense: null member");
}

void EnsembleDefense::snapshot(const Tensor& params) {
  for (const DefensePtr& m : members_) m->snapshot(params);
}

VerifyOutcome EnsembleDefense::verify(const Tensor& params) const {
  VerifyOutcome out;
  for (const DefensePtr& m : members_) {
    const VerifyOutcome part = m->verify(params);
    out.detected = out.detected || part.detected;
    out.regions_flagged += part.regions_flagged;
    out.violations += part.violations;
  }
  return out;
}

std::int64_t EnsembleDefense::sanitize(Tensor& params) const {
  std::int64_t total = 0;
  for (const DefensePtr& m : members_) total += m->sanitize(params);
  return total;
}

std::int64_t EnsembleDefense::overhead_bytes() const {
  std::int64_t total = 0;
  for (const DefensePtr& m : members_) total += m->overhead_bytes();
  return total;
}

std::int64_t EnsembleDefense::verify_cost() const {
  std::int64_t total = 0;
  for (const DefensePtr& m : members_) total += m->verify_cost();
  return total;
}

}  // namespace fsa::defense
