#include "defense/checksum_guard.h"

#include <array>
#include <stdexcept>

namespace fsa::defense {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    crc = crc_table()[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

ChecksumGuard::ChecksumGuard(const Tensor& params, std::int64_t block_params)
    : total_params_(params.numel()), block_params_(block_params) {
  if (block_params <= 0) throw std::invalid_argument("ChecksumGuard: block_params must be > 0");
  for (std::int64_t begin = 0; begin < total_params_; begin += block_params_) {
    const std::int64_t len = std::min(block_params_, total_params_ - begin);
    reference_.push_back(crc32(params.data() + begin, static_cast<std::size_t>(len) * 4));
  }
}

ChecksumGuard::VerifyResult ChecksumGuard::verify(const Tensor& params) const {
  if (params.numel() != total_params_)
    throw std::invalid_argument("ChecksumGuard::verify: parameter count changed");
  VerifyResult out;
  for (std::int64_t b = 0; b < block_count(); ++b) {
    const std::int64_t begin = b * block_params_;
    const std::int64_t len = std::min(block_params_, total_params_ - begin);
    if (crc32(params.data() + begin, static_cast<std::size_t>(len) * 4) !=
        reference_[static_cast<std::size_t>(b)]) {
      out.detected = true;
      ++out.blocks_flagged;
      out.flagged.push_back(b);
    }
  }
  return out;
}

}  // namespace fsa::defense
