// checksum_guard.h — memory-integrity defense against parameter tampering.
//
// The canonical countermeasure to memory fault injection (paper §2.3) is
// an integrity check over the parameter region: hash blocks of the weight
// memory at deployment, re-hash periodically, alarm on mismatch. The
// defender's design knob is GRANULARITY — small blocks localize tampering
// but cost more storage/verification time; one big block detects but says
// nothing about where.
//
// ChecksumGuard implements the standard CRC32 (IEEE 802.3, table-driven)
// over float32 parameter blocks, so the defense bench can quantify the
// real question: given the attack δ, how often does a periodic check fire
// before the faults matter, and what does detection cost?
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fsa::defense {

/// CRC32 (reflected, polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const void* data, std::size_t bytes);

class ChecksumGuard {
 public:
  /// Snapshot `params`, hashing blocks of `block_params` float32 values
  /// (the last block may be shorter). block_params must be positive.
  ChecksumGuard(const Tensor& params, std::int64_t block_params);

  struct VerifyResult {
    bool detected = false;
    std::int64_t blocks_flagged = 0;
    std::vector<std::int64_t> flagged;  ///< indices of mismatching blocks
  };

  /// Re-hash `params` (same length as the snapshot) and compare.
  [[nodiscard]] VerifyResult verify(const Tensor& params) const;

  [[nodiscard]] std::int64_t block_count() const {
    return static_cast<std::int64_t>(reference_.size());
  }
  [[nodiscard]] std::int64_t block_params() const { return block_params_; }

  /// Defense storage overhead in bytes (one CRC per block).
  [[nodiscard]] std::int64_t overhead_bytes() const { return block_count() * 4; }

 private:
  std::int64_t total_params_;
  std::int64_t block_params_;
  std::vector<std::uint32_t> reference_;
};

}  // namespace fsa::defense
