#include "defense/range_guard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fsa::defense {

RangeGuard::RangeGuard(const Tensor& params, std::int64_t group_params, double slack)
    : total_params_(params.numel()), group_params_(group_params) {
  if (group_params <= 0) throw std::invalid_argument("RangeGuard: group_params must be > 0");
  if (slack < 0.0) throw std::invalid_argument("RangeGuard: slack must be >= 0");
  for (std::int64_t begin = 0; begin < total_params_; begin += group_params_) {
    const std::int64_t end = std::min(total_params_, begin + group_params_);
    float lo = params[static_cast<std::size_t>(begin)];
    float hi = lo;
    for (std::int64_t i = begin; i < end; ++i) {
      lo = std::min(lo, params[static_cast<std::size_t>(i)]);
      hi = std::max(hi, params[static_cast<std::size_t>(i)]);
    }
    // Widen by a relative slack so benign numerical drift never alarms.
    const float pad = static_cast<float>(slack) * std::max(std::fabs(lo), std::fabs(hi));
    lo_.push_back(lo - pad);
    hi_.push_back(hi + pad);
  }
}

RangeGuard::SanitizeResult RangeGuard::sanitize(Tensor& params, bool clamp) const {
  return scan(params, clamp ? &params : nullptr);
}

RangeGuard::SanitizeResult RangeGuard::check(const Tensor& params) const {
  return scan(params, nullptr);
}

// Shared audit loop: counts violations against the recorded ranges and,
// when `clamp_into` is non-null, projects violators back onto the group
// boundary in place. `clamp_into`, when given, aliases `params`.
RangeGuard::SanitizeResult RangeGuard::scan(const Tensor& params, Tensor* clamp_into) const {
  if (params.numel() != total_params_)
    throw std::invalid_argument("RangeGuard: parameter count changed");
  SanitizeResult out;
  for (std::int64_t b = 0; b < group_count(); ++b) {
    const std::int64_t begin = b * group_params_;
    const std::int64_t end = std::min(total_params_, begin + group_params_);
    const float lo = lo_[static_cast<std::size_t>(b)];
    const float hi = hi_[static_cast<std::size_t>(b)];
    bool group_hit = false;
    for (std::int64_t i = begin; i < end; ++i) {
      const float v = params[static_cast<std::size_t>(i)];
      if (v < lo || v > hi) {
        ++out.out_of_range;
        out.alarm = true;
        group_hit = true;
        if (clamp_into != nullptr) {
          (*clamp_into)[static_cast<std::size_t>(i)] = std::clamp(v, lo, hi);
          ++out.clamped;
        }
      }
    }
    if (group_hit) ++out.groups_flagged;
  }
  return out;
}

}  // namespace fsa::defense
