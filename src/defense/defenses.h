// defenses.h — the built-in Defense adapters.
//
// Checksum and Range adapt the seed guards (checksum_guard.h,
// range_guard.h) behind the unified interface; Canary is a new
// weight-sentinel guard (spot-check K pseudo-random parameters instead of
// hashing everything — the cheap end of the detection/cost frontier); and
// Ensemble composes any of them with OR-detection and summed costs.
// Concrete classes are exposed (not just the registry) so tests and
// benches can configure one directly.
#pragma once

#include <optional>

#include "defense/checksum_guard.h"
#include "defense/defense.h"
#include "defense/range_guard.h"

namespace fsa::defense {

/// CRC32 integrity blocks (registry key "checksum"). Detects ANY stored
/// change; the granularity knob trades localization against overhead.
/// Detection-only: a hash knows memory changed, not what it held, so
/// sanitize() is the inherited no-op.
class ChecksumDefense final : public Defense {
 public:
  explicit ChecksumDefense(std::int64_t block_params) : block_params_(block_params) {}

  [[nodiscard]] std::string name() const override { return "checksum"; }
  void snapshot(const Tensor& params) override;
  [[nodiscard]] VerifyOutcome verify(const Tensor& params) const override;
  [[nodiscard]] std::int64_t overhead_bytes() const override;
  [[nodiscard]] std::int64_t verify_cost() const override { return total_params_; }

  /// Integrity-block granularity — detection-aware attackers match their
  /// flip budget to it.
  [[nodiscard]] std::int64_t block_params() const { return block_params_; }

 private:
  std::int64_t block_params_;
  std::int64_t total_params_ = 0;
  std::optional<ChecksumGuard> guard_;
};

/// Per-group value-range sanitization (registry key "range"). Blind to
/// in-range modifications — the paper's sobering result — but the only
/// built-in defense that can REPAIR: sanitize() clamps violators back
/// onto the trained envelope.
class RangeDefense final : public Defense {
 public:
  RangeDefense(std::int64_t group_params, double slack)
      : group_params_(group_params), slack_(slack) {}

  [[nodiscard]] std::string name() const override { return "range"; }
  void snapshot(const Tensor& params) override;
  [[nodiscard]] VerifyOutcome verify(const Tensor& params) const override;
  std::int64_t sanitize(Tensor& params) const override;
  [[nodiscard]] std::int64_t overhead_bytes() const override;
  [[nodiscard]] std::int64_t verify_cost() const override { return total_params_; }

  /// The armed guard (throws if snapshot() has not run) — detection-aware
  /// attackers read its per-group bounds to build their evasion box.
  [[nodiscard]] const RangeGuard& guard() const;

 private:
  std::int64_t group_params_;
  double slack_;
  std::int64_t total_params_ = 0;
  std::optional<RangeGuard> guard_;
};

/// Weight sentinels (registry key "canary"): remember the exact bits of K
/// pseudo-randomly placed parameters and spot-check only those. O(K)
/// verification instead of O(params) — the defender's cheap periodic
/// check — at the price of probabilistic coverage: a sparse δ that misses
/// every sentinel is invisible. Sentinel placement derives from (K,
/// param count) alone, so every process audits the same positions.
class CanaryDefense final : public Defense {
 public:
  explicit CanaryDefense(std::int64_t sentinels) : sentinels_(sentinels) {}

  [[nodiscard]] std::string name() const override { return "canary"; }
  void snapshot(const Tensor& params) override;
  [[nodiscard]] VerifyOutcome verify(const Tensor& params) const override;
  std::int64_t sanitize(Tensor& params) const override;
  /// One 8-byte index plus one 4-byte value per sentinel.
  [[nodiscard]] std::int64_t overhead_bytes() const override {
    return static_cast<std::int64_t>(indices_.size()) * 12;
  }
  [[nodiscard]] std::int64_t verify_cost() const override {
    return static_cast<std::int64_t>(indices_.size());
  }

  [[nodiscard]] const std::vector<std::int64_t>& sentinel_indices() const { return indices_; }

 private:
  std::int64_t sentinels_;
  std::int64_t total_params_ = 0;
  std::vector<std::int64_t> indices_;    ///< sorted sentinel positions
  std::vector<std::uint32_t> reference_; ///< exact float bits at snapshot
};

/// OR-composition (registry key "ensemble"): detected if ANY member
/// detects, sanitize passes run in member order, storage and verify
/// costs sum — the defender's layered deployment as one Defense.
class EnsembleDefense final : public Defense {
 public:
  explicit EnsembleDefense(std::vector<DefensePtr> members);

  [[nodiscard]] std::string name() const override { return "ensemble"; }
  void snapshot(const Tensor& params) override;
  [[nodiscard]] VerifyOutcome verify(const Tensor& params) const override;
  std::int64_t sanitize(Tensor& params) const override;
  [[nodiscard]] std::int64_t overhead_bytes() const override;
  [[nodiscard]] std::int64_t verify_cost() const override;

  [[nodiscard]] const std::vector<DefensePtr>& members() const { return members_; }

 private:
  std::vector<DefensePtr> members_;
};

}  // namespace fsa::defense
