#include "faultsim/injector.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "faultsim/injectors.h"

namespace fsa::faultsim {

// ---- CampaignReport JSON -----------------------------------------------------

eval::Json CampaignReport::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("injector", eval::Json::string(injector));
  j.set("success", eval::Json::boolean(success));
  j.set("params_targeted", eval::Json::number(params_targeted));
  j.set("bits_requested", eval::Json::number(bits_requested));
  j.set("bits_flipped", eval::Json::number(bits_flipped));
  j.set("attempts", eval::Json::number(attempts));
  j.set("massages", eval::Json::number(massages));
  j.set("rows_touched", eval::Json::number(rows_touched));
  j.set("seconds", eval::Json::number(seconds));
  return j;
}

CampaignReport CampaignReport::from_json(const eval::Json& j) {
  CampaignReport r;
  r.injector = j.get_string("injector", "");
  r.success = j.get_bool("success", true);
  r.params_targeted = j.get_int("params_targeted", 0);
  r.bits_requested = j.get_int("bits_requested", 0);
  r.bits_flipped = j.get_int("bits_flipped", 0);
  r.attempts = j.get_int("attempts", 0);
  r.massages = j.get_int("massages", 0);
  r.rows_touched = j.get_int("rows_touched", 0);
  r.seconds = j.get_number("seconds", 0.0);
  return r;
}

// ---- CampaignShard JSON ------------------------------------------------------

eval::Json CampaignShard::to_json() const {
  eval::Json j = eval::Json::object();
  j.set("injector", eval::Json::string(injector));
  j.set("index", eval::Json::number(static_cast<std::int64_t>(index)));
  j.set("count", eval::Json::number(static_cast<std::int64_t>(count)));
  // 64-bit seeds must survive the round trip exactly; JSON numbers are
  // doubles (2^53), so serialize as strings (AttackReport does the same).
  j.set("campaign_seed", eval::Json::string(std::to_string(campaign_seed)));
  eval::Json arr = eval::Json::array();
  for (const auto& sf : flips) {
    eval::Json f = eval::Json::object();
    f.set("param_index", eval::Json::number(sf.flip.param_index));
    f.set("xor_mask", eval::Json::number(static_cast<std::int64_t>(sf.flip.xor_mask)));
    f.set("bit_count", eval::Json::number(static_cast<std::int64_t>(sf.flip.bit_count)));
    f.set("seed", eval::Json::string(std::to_string(sf.seed)));
    f.set("new_row", eval::Json::boolean(sf.new_row));
    arr.push_back(std::move(f));
  }
  j.set("flips", std::move(arr));
  return j;
}

CampaignShard CampaignShard::from_json(const eval::Json& j) {
  CampaignShard s;
  s.injector = j.get_string("injector", "");
  s.index = static_cast<int>(j.get_int("index", 0));
  s.count = static_cast<int>(j.get_int("count", 1));
  s.campaign_seed = std::stoull(j.get_string("campaign_seed", "0"));
  if (j.has("flips"))
    for (const eval::Json& f : j.at("flips").items()) {
      ShardFlip sf;
      sf.flip.param_index = f.get_int("param_index", 0);
      sf.flip.xor_mask = static_cast<std::uint32_t>(f.get_int("xor_mask", 0));
      sf.flip.bit_count = static_cast<int>(f.get_int("bit_count", 0));
      sf.seed = std::stoull(f.get_string("seed", "0"));
      sf.new_row = f.get_bool("new_row", false);
      s.flips.push_back(sf);
    }
  return s;
}

// ---- merge -------------------------------------------------------------------

CampaignReport Injector::merge(const std::vector<CampaignReport>& parts) const {
  CampaignReport total;
  total.injector = name();
  for (const CampaignReport& p : parts) {
    total.success = total.success && p.success;
    total.params_targeted += p.params_targeted;
    total.bits_requested += p.bits_requested;
    total.bits_flipped += p.bits_flipped;
    total.attempts += p.attempts;
    total.massages += p.massages;
    total.rows_touched += p.rows_touched;
  }
  total.seconds = cost_seconds(total);
  return total;
}

// ---- registry ----------------------------------------------------------------

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, InjectorFactory> factories;

  Registry() {
    factories["rowhammer"] = [] { return std::make_unique<RowHammerInjector>(); };
    factories["laser"] = [] { return std::make_unique<LaserInjector>(); };
    factories["clock-glitch"] = [] { return std::make_unique<ClockGlitchInjector>(); };
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_injector(const std::string& name, InjectorFactory factory) {
  if (name.empty()) throw std::invalid_argument("register_injector: empty name");
  if (!factory) throw std::invalid_argument("register_injector: null factory");
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  r.factories[name] = std::move(factory);
}

InjectorPtr make_injector(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  const auto it = r.factories.find(name);
  if (it == r.factories.end()) {
    std::string known;
    for (const auto& [k, v] : r.factories) known += (known.empty() ? "" : ", ") + k;
    throw std::invalid_argument("unknown injector \"" + name + "\" (known: " + known + ")");
  }
  return it->second();
}

bool has_injector(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  return r.factories.count(name) > 0;
}

std::vector<std::string> injector_names() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::string> out;
  out.reserve(r.factories.size());
  for (const auto& [k, v] : r.factories) out.push_back(k);
  return out;
}

}  // namespace fsa::faultsim
