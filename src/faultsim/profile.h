// profile.h — injector calibration profiles.
//
// The built-in injector cost models ship with compiled-in default
// parameters (injectors.h). Real campaigns are calibrated against a
// target platform — a specific DDR3 module's hammer statistics, a bench
// laser's positioning time — so one binary must be able to sweep cost
// models per platform without recompiling. A profile is a JSON document
// that overrides selected parameters of the built-in injectors:
//
//   {
//     "name": "ddr3_rowhammer",
//     "description": "measured on the lab's DDR3-1600 module",
//     "injectors": {
//       "rowhammer": { "flip_success_prob": 0.35, "massage_seconds": 30.0 }
//     }
//   }
//
// Loading a profile re-registers each named injector with a factory bound
// to the overridden parameters, so every later make_injector() — the CLI,
// the sweep engine's campaign stage, a dist shard worker — uses the
// calibrated cost model. Unlisted parameters keep their defaults; unknown
// injector or parameter names throw (same strict style as --backend).
//
// Distribution contract: the most recently loaded profile is retained
// (active_injector_profile) and embedded into campaign manifests, so an
// out-of-process shard worker replays the exact cost model of the process
// that planned the campaign — calibration can never drift across workers.
#pragma once

#include <string>

#include "eval/json.h"

namespace fsa::faultsim {

/// Apply a parsed profile: re-register every injector it names with the
/// overridden parameters and retain the document for manifest embedding.
/// Throws std::invalid_argument on unknown injector names, unknown
/// parameter keys, or a malformed document.
void load_injector_profile(const eval::Json& profile);

/// Read `path`, parse it, and load_injector_profile() it. Errors mention
/// the path.
void load_injector_profile_file(const std::string& path);

/// The most recently loaded profile document, or nullptr when none has
/// been loaded (or it was cleared). Campaign manifests embed this so shard
/// workers in other processes apply the same calibration.
const eval::Json* active_injector_profile();

/// Drop the retained profile and restore the built-in injectors to their
/// compiled-in defaults (used by tests; a fresh process starts clear).
void clear_injector_profile();

}  // namespace fsa::faultsim
