#include "faultsim/profile.h"

#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "faultsim/injectors.h"

namespace fsa::faultsim {

namespace {

// Parameter overlays: each built-in params struct gets a strict JSON
// overlay — listed keys replace defaults, unknown keys throw so a typo'd
// calibration fails loudly instead of silently keeping the default.

[[noreturn]] void unknown_key(const std::string& injector, const std::string& key,
                              const char* known) {
  throw std::invalid_argument("injector profile: unknown parameter \"" + key + "\" for " +
                              injector + " (known: " + known + ")");
}

RowHammerParams rowhammer_overlay(const eval::Json& j) {
  RowHammerParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "flip_success_prob") p.flip_success_prob = v.as_number();
    else if (key == "vulnerable_frac") p.vulnerable_frac = v.as_number();
    else if (key == "seconds_per_attempt") p.seconds_per_attempt = v.as_number();
    else if (key == "massage_seconds") p.massage_seconds = v.as_number();
    else if (key == "massage_success_prob") p.massage_success_prob = v.as_number();
    else if (key == "max_attempts_per_bit") p.max_attempts_per_bit = v.as_int();
    else if (key == "max_massages_per_bit") p.max_massages_per_bit = v.as_int();
    else
      unknown_key("rowhammer", key,
                  "flip_success_prob, vulnerable_frac, seconds_per_attempt, massage_seconds, "
                  "massage_success_prob, max_attempts_per_bit, max_massages_per_bit");
  }
  return p;
}

LaserParams laser_overlay(const eval::Json& j) {
  LaserParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "locate_seconds") p.locate_seconds = v.as_number();
    else if (key == "shot_seconds") p.shot_seconds = v.as_number();
    else if (key == "per_row_setup_seconds") p.per_row_setup_seconds = v.as_number();
    else
      unknown_key("laser", key, "locate_seconds, shot_seconds, per_row_setup_seconds");
  }
  return p;
}

ClockGlitchParams clock_glitch_overlay(const eval::Json& j) {
  ClockGlitchParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "cycle_search_seconds") p.cycle_search_seconds = v.as_number();
    else if (key == "glitch_seconds") p.glitch_seconds = v.as_number();
    else if (key == "success_prob_one_bit") p.success_prob_one_bit = v.as_number();
    else if (key == "per_bit_decay") p.per_bit_decay = v.as_number();
    else if (key == "max_glitches_per_param") p.max_glitches_per_param = v.as_int();
    else
      unknown_key("clock-glitch", key,
                  "cycle_search_seconds, glitch_seconds, success_prob_one_bit, per_bit_decay, "
                  "max_glitches_per_param");
  }
  return p;
}

// The retained document, guarded: load/clear are rare control-plane calls.
struct ProfileState {
  std::mutex mu;
  std::unique_ptr<eval::Json> loaded;
};

ProfileState& state() {
  static ProfileState s;
  return s;
}

}  // namespace

void load_injector_profile(const eval::Json& profile) {
  if (profile.type() != eval::Json::Type::kObject)
    throw std::invalid_argument("injector profile: document must be a JSON object");
  for (const auto& [key, v] : profile.members())
    if (key != "name" && key != "description" && key != "injectors")
      throw std::invalid_argument("injector profile: unknown top-level key \"" + key +
                                  "\" (known: name, description, injectors)");
  if (!profile.has("injectors"))
    throw std::invalid_argument("injector profile: missing \"injectors\" object");
  const eval::Json& injectors = profile.at("injectors");
  if (injectors.type() != eval::Json::Type::kObject || injectors.size() == 0)
    throw std::invalid_argument("injector profile: \"injectors\" must be a non-empty object");

  // Validate EVERY overlay before registering ANY, so a bad profile can
  // never leave the registry half-calibrated.
  std::vector<std::pair<std::string, InjectorFactory>> staged;
  for (const auto& [name, overlay] : injectors.members()) {
    if (name == "rowhammer") {
      const RowHammerParams p = rowhammer_overlay(overlay);
      staged.emplace_back(name, [p] { return std::make_unique<RowHammerInjector>(p); });
    } else if (name == "laser") {
      const LaserParams p = laser_overlay(overlay);
      staged.emplace_back(name, [p] { return std::make_unique<LaserInjector>(p); });
    } else if (name == "clock-glitch") {
      const ClockGlitchParams p = clock_glitch_overlay(overlay);
      staged.emplace_back(name, [p] { return std::make_unique<ClockGlitchInjector>(p); });
    } else {
      throw std::invalid_argument(
          "injector profile: \"" + name +
          "\" is not a calibratable built-in (known: clock-glitch, laser, rowhammer)");
    }
  }
  for (auto& [name, factory] : staged) register_injector(name, std::move(factory));

  ProfileState& s = state();
  const std::lock_guard lk(s.mu);
  s.loaded = std::make_unique<eval::Json>(profile);
}

void load_injector_profile_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::invalid_argument("injector profile: cannot read \"" + path + "\"");
  std::ostringstream text;
  text << is.rdbuf();
  eval::Json profile;
  try {
    profile = eval::Json::parse(text.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument("injector profile \"" + path + "\": " + e.what());
  }
  try {
    load_injector_profile(profile);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string(e.what()) + " (in \"" + path + "\")");
  }
}

const eval::Json* active_injector_profile() {
  ProfileState& s = state();
  const std::lock_guard lk(s.mu);
  return s.loaded.get();
}

void clear_injector_profile() {
  register_injector("rowhammer", [] { return std::make_unique<RowHammerInjector>(); });
  register_injector("laser", [] { return std::make_unique<LaserInjector>(); });
  register_injector("clock-glitch", [] { return std::make_unique<ClockGlitchInjector>(); });
  ProfileState& s = state();
  const std::lock_guard lk(s.mu);
  s.loaded.reset();
}

}  // namespace fsa::faultsim
