#include "faultsim/injectors.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace fsa::faultsim {

// ---- row hammer --------------------------------------------------------------

double RowHammerInjector::plan_cost(const BitFlipPlan& plan, const MemoryLayout& layout) const {
  (void)layout;
  // Expectation, ignoring the retry caps: a bit not vulnerable in place
  // (probability 1−vf) needs ~1/msp relocations, and an aligned bit ~1/fsp
  // hammer bursts.
  const double exp_massages =
      params_.massage_success_prob > 0.0
          ? (1.0 - params_.vulnerable_frac) / params_.massage_success_prob
          : static_cast<double>(params_.max_massages_per_bit);
  const double exp_attempts = params_.flip_success_prob > 0.0
                                  ? 1.0 / params_.flip_success_prob
                                  : static_cast<double>(params_.max_attempts_per_bit);
  return static_cast<double>(plan.total_bit_flips) *
         (exp_massages * params_.massage_seconds + exp_attempts * params_.seconds_per_attempt);
}

CampaignReport RowHammerInjector::simulate_shard(const CampaignShard& shard,
                                                 const MemoryLayout& layout) const {
  (void)layout;
  CampaignReport rep;
  rep.injector = name();
  for (const ShardFlip& sf : shard.flips) {
    ++rep.params_targeted;
    rep.bits_requested += sf.flip.bit_count;
    rep.rows_touched += sf.new_row ? 1 : 0;  // plan-wide first-touch attribution
    Rng rng(sf.seed);
    for (int bit = 0; bit < 32; ++bit) {
      if (!((sf.flip.xor_mask >> bit) & 1u)) continue;
      // Is this cell hammer-vulnerable in place? If not, massage memory
      // (relocate the victim page) until a vulnerable aggressor/victim
      // alignment is found or the retry budget is exhausted.
      bool aligned = rng.bernoulli(params_.vulnerable_frac);
      for (std::int64_t mi = 0; !aligned && mi < params_.max_massages_per_bit; ++mi) {
        ++rep.massages;
        aligned = rng.bernoulli(params_.massage_success_prob);
      }
      if (!aligned) {
        rep.success = false;  // no vulnerable cell found; don't hammer blind
        continue;
      }
      bool flipped = false;
      for (std::int64_t attempt = 0; attempt < params_.max_attempts_per_bit; ++attempt) {
        ++rep.attempts;
        if (rng.bernoulli(params_.flip_success_prob)) {
          flipped = true;
          break;
        }
      }
      if (flipped) {
        ++rep.bits_flipped;
      } else {
        rep.success = false;  // campaign gives up on this bit
      }
    }
  }
  rep.seconds = cost_seconds(rep);
  return rep;
}

double RowHammerInjector::cost_seconds(const CampaignReport& report) const {
  return params_.seconds_per_attempt * static_cast<double>(report.attempts) +
         params_.massage_seconds * static_cast<double>(report.massages);
}

// ---- laser -------------------------------------------------------------------

double LaserInjector::plan_cost(const BitFlipPlan& plan, const MemoryLayout& layout) const {
  // The laser model is deterministic, so the estimate is exact.
  std::set<std::uint64_t> rows;
  for (const ParamFlip& flip : plan.flips) rows.insert(layout.row_of(flip.param_index));
  return params_.locate_seconds * static_cast<double>(plan.flips.size()) +
         params_.shot_seconds * static_cast<double>(plan.total_bit_flips) +
         params_.per_row_setup_seconds * static_cast<double>(rows.size());
}

CampaignReport LaserInjector::simulate_shard(const CampaignShard& shard,
                                             const MemoryLayout& layout) const {
  (void)layout;
  CampaignReport rep;
  rep.injector = name();
  for (const ShardFlip& sf : shard.flips) {
    ++rep.params_targeted;
    rep.bits_requested += sf.flip.bit_count;
    rep.bits_flipped += sf.flip.bit_count;  // every bit is reachable
    rep.attempts += sf.flip.bit_count;      // one shot per bit
    // Row refocus is attributed to the plan-wide FIRST flip in each row
    // (planner-assigned), so shard totals merge without double counting.
    rep.rows_touched += sf.new_row ? 1 : 0;
  }
  rep.seconds = cost_seconds(rep);
  return rep;
}

double LaserInjector::cost_seconds(const CampaignReport& report) const {
  return params_.locate_seconds * static_cast<double>(report.params_targeted) +
         params_.shot_seconds * static_cast<double>(report.attempts) +
         params_.per_row_setup_seconds * static_cast<double>(report.rows_touched);
}

// ---- clock glitch ------------------------------------------------------------

double ClockGlitchInjector::hit_prob(int bits) const {
  if (bits <= 0) return 1.0;
  return params_.success_prob_one_bit *
         std::pow(params_.per_bit_decay, static_cast<double>(bits - 1));
}

double ClockGlitchInjector::plan_cost(const BitFlipPlan& plan, const MemoryLayout& layout) const {
  (void)layout;
  double seconds = 0.0;
  for (const ParamFlip& flip : plan.flips) {
    const double p = hit_prob(flip.bit_count);
    const double exp_glitches =
        p > 0.0 ? std::min(1.0 / p, static_cast<double>(params_.max_glitches_per_param))
                : static_cast<double>(params_.max_glitches_per_param);
    seconds += params_.cycle_search_seconds + params_.glitch_seconds * exp_glitches;
  }
  return seconds;
}

CampaignReport ClockGlitchInjector::simulate_shard(const CampaignShard& shard,
                                                   const MemoryLayout& layout) const {
  (void)layout;
  CampaignReport rep;
  rep.injector = name();
  for (const ShardFlip& sf : shard.flips) {
    ++rep.params_targeted;  // one cycle search per victim word
    rep.bits_requested += sf.flip.bit_count;
    rep.rows_touched += sf.new_row ? 1 : 0;  // plan-wide first-touch attribution
    Rng rng(sf.seed);
    const double p = hit_prob(sf.flip.bit_count);
    bool landed = false;
    for (std::int64_t g = 0; g < params_.max_glitches_per_param; ++g) {
      ++rep.attempts;
      if (rng.bernoulli(p)) {
        landed = true;
        break;
      }
    }
    if (landed) {
      rep.bits_flipped += sf.flip.bit_count;  // the whole pattern lands at once
    } else {
      rep.success = false;
    }
  }
  rep.seconds = cost_seconds(rep);
  return rep;
}

double ClockGlitchInjector::cost_seconds(const CampaignReport& report) const {
  return params_.cycle_search_seconds * static_cast<double>(report.params_targeted) +
         params_.glitch_seconds * static_cast<double>(report.attempts);
}

}  // namespace fsa::faultsim
