#include "faultsim/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "faultsim/bitflip.h"

namespace fsa::faultsim {

namespace {

/// Round a float32 to bfloat16 (round-to-nearest-even on the mantissa cut).
float to_bfloat16(float v) {
  std::uint32_t bits = float_bits(v);
  const std::uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7FFFu + lsb;  // RNE
  bits &= 0xFFFF0000u;
  return bits_to_float(bits);
}

/// Round a float32 to IEEE float16 and back (saturating, RNE).
float to_float16(float v) {
  if (std::isnan(v)) return v;
  const float kMax = 65504.0f;
  v = std::clamp(v, -kMax, kMax);
  const std::uint32_t bits = float_bits(v);
  const std::uint32_t sign = bits & 0x80000000u;
  const std::int32_t exp = static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127;
  if (exp < -24) return bits_to_float(sign);  // below half subnormals → ±0
  if (exp < -14) {
    // Subnormal half: quantize the magnitude to multiples of 2^-24.
    const float step = std::ldexp(1.0f, -24);
    const float q = std::nearbyint(v / step) * step;
    return q;
  }
  // Normal half: keep 10 mantissa bits with RNE.
  std::uint32_t b = bits;
  const std::uint32_t lsb = (b >> 13) & 1u;
  b += 0xFFFu + lsb;
  b &= 0xFFFFE000u;
  return bits_to_float(b);
}

}  // namespace

float int8_scale(const Tensor& theta) {
  float max_abs = 0.0f;
  for (float v : theta.span()) max_abs = std::max(max_abs, std::fabs(v));
  return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

float quantize_value(float v, StorageFormat format, float scale) {
  switch (format) {
    case StorageFormat::kFloat32:
      return v;
    case StorageFormat::kBfloat16:
      return to_bfloat16(v);
    case StorageFormat::kFloat16:
      return to_float16(v);
    case StorageFormat::kInt8: {
      const float q = std::nearbyint(v / scale);
      return std::clamp(q, -127.0f, 127.0f) * scale;
    }
  }
  return v;
}

Tensor realize_in_format(const Tensor& theta0, const Tensor& delta, StorageFormat format) {
  if (theta0.shape() != delta.shape())
    throw std::invalid_argument("realize_in_format: shape mismatch");
  const float scale = format == StorageFormat::kInt8 ? int8_scale(theta0) : 1.0f;
  Tensor out(delta.shape());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const float before = quantize_value(theta0[i], format, scale);
    const float after = quantize_value(theta0[i] + delta[i], format, scale);
    out[i] = after - before;
  }
  return out;
}

const char* format_name(StorageFormat format) {
  switch (format) {
    case StorageFormat::kFloat32:
      return "float32";
    case StorageFormat::kBfloat16:
      return "bfloat16";
    case StorageFormat::kFloat16:
      return "float16";
    case StorageFormat::kInt8:
      return "int8";
  }
  return "?";
}

StorageFormat format_from_name(const std::string& name) {
  if (name == "float32") return StorageFormat::kFloat32;
  if (name == "bfloat16") return StorageFormat::kBfloat16;
  if (name == "float16") return StorageFormat::kFloat16;
  if (name == "int8") return StorageFormat::kInt8;
  throw std::invalid_argument("unknown storage format \"" + name +
                              "\" (known: float32, bfloat16, float16, int8)");
}

}  // namespace fsa::faultsim
