// injector.h — the pluggable fault-injector seam.
//
// The paper's §2.3 argument is that campaign cost — not solver cost —
// dominates a real fault attack, and that the cost model depends on the
// injection technology (row hammer pays for memory massaging, a laser pays
// per positioned shot). Injector is the runtime seam those cost models
// plug into, mirroring the engine's Attacker registry and the backend's
// ComputeBackend registry: one interface, string-keyed factories, strict
// unknown-name errors listing the known injectors.
//
// Sharding contract: a campaign over a BitFlipPlan is split into
// CampaignShards (see campaign.h). Every flip carries its own Monte-Carlo
// stream seed and a globally-attributed `new_row` flag, both assigned by
// the planner from the whole plan BEFORE slicing — so simulate_shard is a
// pure function of its shard and shard reports merge associatively.
// CampaignReport totals are therefore bitwise identical for any shard
// count: effort is accumulated in exact integer counters and `seconds` is
// recomputed from the merged counters (cost_seconds), never summed as
// floating point across shards.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/json.h"
#include "faultsim/bitflip.h"

namespace fsa::faultsim {

/// Outcome of (part of) a fault-injection campaign. All effort counters
/// are integers so shard merges are exact; `seconds` is derived from them
/// by the injector's cost model.
struct CampaignReport {
  std::string injector;             ///< registry key that produced the report
  bool success = true;              ///< every requested bit realized
  std::int64_t params_targeted = 0; ///< parameters (words) the campaign visited
  std::int64_t bits_requested = 0;
  std::int64_t bits_flipped = 0;
  std::int64_t attempts = 0;        ///< injection attempts (hammer bursts / shots / glitches)
  std::int64_t massages = 0;        ///< memory-massaging relocations (row hammer only)
  std::int64_t rows_touched = 0;    ///< distinct DRAM rows opened (first-touch attributed)
  double seconds = 0.0;             ///< cost_seconds(counters) — never summed across shards

  [[nodiscard]] eval::Json to_json() const;
  static CampaignReport from_json(const eval::Json& j);
};

/// One flip of a shard: the bit pattern plus the planner-assigned
/// Monte-Carlo seed and global first-touch row attribution.
struct ShardFlip {
  ParamFlip flip;
  std::uint64_t seed = 0;  ///< per-flip RNG stream (derived from the campaign seed)
  bool new_row = false;    ///< first flip in the WHOLE plan touching its DRAM row
};

/// A deterministic slice of a campaign, self-contained enough to execute
/// in another process or on another machine (JSON round-trips exactly).
struct CampaignShard {
  std::string injector;           ///< registry key the shard was planned for
  int index = 0;                  ///< ordinal in [0, count)
  int count = 1;
  std::uint64_t campaign_seed = 0;
  std::vector<ShardFlip> flips;

  [[nodiscard]] eval::Json to_json() const;
  static CampaignShard from_json(const eval::Json& j);
};

/// A fault-injection technology's cost model, selectable at runtime.
/// Implementations hold only parameters; all methods are const and
/// thread-safe, so one instance may simulate many shards concurrently.
class Injector {
 public:
  virtual ~Injector() = default;

  /// Registry key ("rowhammer", "laser", "clock-glitch", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Closed-form expected campaign seconds for `plan` — no Monte-Carlo,
  /// used for shard budgeting and manifest cost estimates.
  [[nodiscard]] virtual double plan_cost(const BitFlipPlan& plan,
                                         const MemoryLayout& layout) const = 0;

  /// Simulate one shard serially (shards are the unit of parallelism; the
  /// CampaignRunner fans them out). Deterministic given the shard.
  [[nodiscard]] virtual CampaignReport simulate_shard(const CampaignShard& shard,
                                                      const MemoryLayout& layout) const = 0;

  /// Campaign seconds implied by a report's integer effort counters.
  [[nodiscard]] virtual double cost_seconds(const CampaignReport& report) const = 0;

  /// Associative reduction of shard reports: integer counters are summed,
  /// success is AND-ed, and seconds is recomputed from the merged counters
  /// — so any shard grouping yields bitwise-identical totals.
  [[nodiscard]] CampaignReport merge(const std::vector<CampaignReport>& parts) const;
};

using InjectorPtr = std::unique_ptr<Injector>;
using InjectorFactory = std::function<InjectorPtr()>;

/// Register (or replace) an injector under `name`.
void register_injector(const std::string& name, InjectorFactory factory);

/// Instantiate the injector registered under `name`. Throws
/// std::invalid_argument listing the known injectors when `name` is
/// unknown — same strict-validation style as --backend / --method.
InjectorPtr make_injector(const std::string& name);

/// True if `name` is registered.
bool has_injector(const std::string& name);

/// All registered injector names, sorted.
std::vector<std::string> injector_names();

}  // namespace fsa::faultsim
