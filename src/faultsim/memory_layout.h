// memory_layout.h — where the attacked parameters live in (simulated) DRAM.
//
// The paper motivates the ℓ0 objective with the cost of physical fault
// injection (§2.3): laser shots flip chosen SRAM bits, row hammer flips
// DRAM bits row by row, and both scale with the number of modified
// parameters. This substrate gives each flat parameter index a concrete
// byte address so campaign simulators can count rows, pages, and per-bit
// work for a given modification δ.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace fsa::faultsim {

struct MemoryLayout {
  std::uint64_t base_address = 0x7f0000000000ULL;  ///< where θ[0] starts
  std::uint64_t row_bytes = 8192;                  ///< DRAM row (page) size
  std::uint64_t bytes_per_param = 4;               ///< float32 storage

  [[nodiscard]] std::uint64_t address_of(std::int64_t param_index) const {
    if (param_index < 0) throw std::invalid_argument("MemoryLayout: negative index");
    return base_address + static_cast<std::uint64_t>(param_index) * bytes_per_param;
  }

  [[nodiscard]] std::uint64_t row_of(std::int64_t param_index) const {
    return address_of(param_index) / row_bytes;
  }
};

}  // namespace fsa::faultsim
