// bitflip.h — the bit-level cost of a parameter modification.
//
// Turns an attack's δ into the exact set of IEEE-754 bit flips a memory
// fault injector must realize: for every modified parameter, XOR the
// float32 bit patterns of the original and modified values. This is the
// bridge between the paper's abstract ‖δ‖₀ objective and the §2.3
// hardware cost discussion — two attacks with the same ℓ0 can demand very
// different numbers of physical flips.
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/memory_layout.h"
#include "tensor/tensor.h"

namespace fsa::faultsim {

struct ParamFlip {
  std::int64_t param_index = 0;  ///< flat index into the masked space
  std::uint32_t xor_mask = 0;    ///< which of the 32 bits change
  int bit_count = 0;             ///< popcount(xor_mask)
};

struct BitFlipPlan {
  std::vector<ParamFlip> flips;       ///< one entry per modified parameter
  std::int64_t total_bit_flips = 0;
  std::int64_t params_modified = 0;   ///< == ‖δ‖₀
  std::int64_t rows_touched = 0;      ///< distinct DRAM rows (given a layout)
  std::int64_t sign_bit_flips = 0;    ///< bit 31
  std::int64_t exponent_bit_flips = 0;  ///< bits 23..30
  std::int64_t mantissa_bit_flips = 0;  ///< bits 0..22
};

/// Build the plan for moving `theta0` to `theta0 + delta` (same shapes).
BitFlipPlan plan_bit_flips(const Tensor& theta0, const Tensor& delta, const MemoryLayout& layout);

/// Bit pattern of a float (little-endian platforms).
std::uint32_t float_bits(float v);

/// Inverse of float_bits.
float bits_to_float(std::uint32_t bits);

}  // namespace fsa::faultsim
