#include "faultsim/campaign.h"

#include <set>

namespace fsa::faultsim {

CampaignReport simulate_rowhammer(const BitFlipPlan& plan, const RowHammerParams& params,
                                  const MemoryLayout& layout, Rng& rng) {
  (void)layout;
  CampaignReport report;
  report.bits_requested = plan.total_bit_flips;
  report.success = true;
  for (const auto& flip : plan.flips) {
    for (int bit = 0; bit < 32; ++bit) {
      if (!((flip.xor_mask >> bit) & 1u)) continue;
      // Is this cell hammer-vulnerable in place? If not, massage memory
      // until a vulnerable aggressor/victim alignment is found.
      if (!rng.bernoulli(params.vulnerable_frac)) {
        ++report.massages;
        report.seconds += params.massage_seconds;
      }
      bool flipped = false;
      for (std::int64_t attempt = 0; attempt < params.max_attempts_per_bit; ++attempt) {
        ++report.hammer_attempts;
        report.seconds += params.seconds_per_attempt;
        if (rng.bernoulli(params.flip_success_prob)) {
          flipped = true;
          break;
        }
      }
      if (flipped) {
        ++report.bits_flipped;
      } else {
        report.success = false;  // campaign gives up on this bit
      }
    }
  }
  return report;
}

CampaignReport simulate_laser(const BitFlipPlan& plan, const LaserParams& params,
                              const MemoryLayout& layout) {
  CampaignReport report;
  report.bits_requested = plan.total_bit_flips;
  report.bits_flipped = plan.total_bit_flips;
  report.success = true;
  std::set<std::uint64_t> rows;
  for (const auto& flip : plan.flips) {
    rows.insert(layout.row_of(flip.param_index));
    report.seconds += params.locate_seconds;  // position on the word once
    report.seconds += params.shot_seconds * flip.bit_count;
  }
  report.seconds += params.per_row_setup_seconds * static_cast<double>(rows.size());
  return report;
}

}  // namespace fsa::faultsim
