#include "faultsim/campaign.h"

#include <set>
#include <stdexcept>

#include "faultsim/profile.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace fsa::faultsim {

namespace {

// The actual slicing, shared by the (registry-validated) planner and the
// caller-owned-instance runner path — the injector name is only a label
// here. Per-flip assignments are made over the WHOLE plan, in plan order,
// before slicing: flip i's stream seed and first-touch flag depend only
// on (campaign_seed, i) — never on K — which is what makes shard merges
// bitwise identical to the unsharded run.
std::vector<CampaignShard> build_shards(const std::string& injector, int shards,
                                        std::uint64_t seed, const BitFlipPlan& plan,
                                        const MemoryLayout& layout) {
  const std::int64_t n = static_cast<std::int64_t>(plan.flips.size());
  SplitMix64 sm(seed);
  std::vector<std::uint64_t> flip_seeds(static_cast<std::size_t>(n));
  for (auto& s : flip_seeds) s = sm.next();
  std::set<std::uint64_t> seen_rows;
  std::vector<CampaignShard> out(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    CampaignShard& shard = out[static_cast<std::size_t>(s)];
    shard.injector = injector;
    shard.index = s;
    shard.count = shards;
    shard.campaign_seed = seed;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    ShardFlip sf;
    sf.flip = plan.flips[static_cast<std::size_t>(i)];
    sf.seed = flip_seeds[static_cast<std::size_t>(i)];
    sf.new_row = seen_rows.insert(layout.row_of(sf.flip.param_index)).second;
    // Contiguous slices: shard s holds flips [s·n/K, (s+1)·n/K).
    const auto owner = static_cast<std::size_t>(i * shards / std::max<std::int64_t>(n, 1));
    out[std::min(owner, out.size() - 1)].flips.push_back(sf);
  }
  return out;
}

}  // namespace

double shard_cost(const Injector& injector, const CampaignShard& shard,
                  const MemoryLayout& layout) {
  // Fold the shard back into a sub-plan and price it with the same model
  // that priced the whole campaign. rows_touched counts the shard's
  // new_row flags (plan-wide first touches), so shard costs sum exactly
  // to the full plan's estimate — the estimate is a partition, not an
  // overlapping re-count of shared rows.
  BitFlipPlan sub;
  sub.flips.reserve(shard.flips.size());
  for (const ShardFlip& sf : shard.flips) {
    sub.flips.push_back(sf.flip);
    sub.total_bit_flips += sf.flip.bit_count;
    if (sf.new_row) ++sub.rows_touched;
    const std::uint32_t mask = sf.flip.xor_mask;
    sub.sign_bit_flips += (mask >> 31) & 1u;
    sub.exponent_bit_flips += __builtin_popcount(mask & 0x7F800000u);
    sub.mantissa_bit_flips += __builtin_popcount(mask & 0x007FFFFFu);
  }
  sub.params_modified = static_cast<std::int64_t>(sub.flips.size());
  return injector.plan_cost(sub, layout);
}

// ---- CampaignPlanner ---------------------------------------------------------

CampaignPlanner::CampaignPlanner(std::string injector, int shards, std::uint64_t campaign_seed)
    : injector_(std::move(injector)), shards_(shards), seed_(campaign_seed) {
  if (shards_ < 1)
    throw std::invalid_argument("CampaignPlanner: shard count must be >= 1, got " +
                                std::to_string(shards_));
  (void)make_injector(injector_);  // throws the unknown-name error eagerly
}

std::vector<CampaignShard> CampaignPlanner::shards(const BitFlipPlan& plan,
                                                   const MemoryLayout& layout) const {
  return build_shards(injector_, shards_, seed_, plan, layout);
}

eval::Json CampaignPlanner::manifest(const BitFlipPlan& plan, const MemoryLayout& layout) const {
  eval::Json j = eval::Json::object();
  j.set("injector", eval::Json::string(injector_));
  j.set("shards", eval::Json::number(static_cast<std::int64_t>(shards_)));
  j.set("campaign_seed", eval::Json::string(std::to_string(seed_)));
  j.set("params_modified", eval::Json::number(plan.params_modified));
  j.set("total_bit_flips", eval::Json::number(plan.total_bit_flips));
  j.set("estimated_seconds", eval::Json::number(make_injector(injector_)->plan_cost(plan, layout)));
  // Ship the active calibration with the manifest: a shard worker in
  // another process must cost this campaign with the same parameters.
  if (const eval::Json* profile = active_injector_profile())
    j.set("injector_profile", *profile);
  const InjectorPtr inj = make_injector(injector_);
  eval::Json arr = eval::Json::array();
  eval::Json costs = eval::Json::array();
  for (const CampaignShard& s : shards(plan, layout)) {
    arr.push_back(s.to_json());
    // Per-shard cost estimates let `dist run`/`serve` drain the expensive
    // shards first (see dist/jobs.h: schedule_longest_first).
    costs.push_back(eval::Json::number(shard_cost(*inj, s, layout)));
  }
  j.set("shard_list", std::move(arr));
  j.set("shard_costs", std::move(costs));
  return j;
}

std::vector<CampaignShard> CampaignPlanner::shards_from_manifest(const eval::Json& manifest) {
  std::vector<CampaignShard> out;
  for (const eval::Json& s : manifest.at("shard_list").items())
    out.push_back(CampaignShard::from_json(s));
  return out;
}

// ---- CampaignRunner ----------------------------------------------------------

CampaignRunner::CampaignRunner(int shards, std::uint64_t campaign_seed)
    : shards_(shards), seed_(campaign_seed) {
  if (shards_ < 1)
    throw std::invalid_argument("CampaignRunner: shard count must be >= 1, got " +
                                std::to_string(shards_));
}

CampaignReport CampaignRunner::run(const std::string& injector, const BitFlipPlan& plan,
                                   const MemoryLayout& layout) const {
  return run(*make_injector(injector), plan, layout);
}

CampaignReport CampaignRunner::run(const Injector& injector, const BitFlipPlan& plan,
                                   const MemoryLayout& layout) const {
  // No registry lookup: the instance is in hand, so this works for
  // caller-owned injectors that were never register_injector()-ed.
  return run_shards(injector, build_shards(injector.name(), shards_, seed_, plan, layout),
                    layout);
}

CampaignReport CampaignRunner::run_shards(const Injector& injector,
                                          const std::vector<CampaignShard>& shards,
                                          const MemoryLayout& layout) const {
  const std::int64_t n = static_cast<std::int64_t>(shards.size());
  std::vector<CampaignReport> parts(shards.size());
  // One task per shard; shard reports land at their index, and the merge
  // is associative over integer counters, so the result is independent of
  // scheduling (and of whether this nests under a sweep's pool fan-out).
  parallel_for(0, n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      parts[static_cast<std::size_t>(i)] =
          injector.simulate_shard(shards[static_cast<std::size_t>(i)], layout);
  });
  return injector.merge(parts);
}

}  // namespace fsa::faultsim
