#include "faultsim/campaign.h"

#include <set>
#include <vector>

#include "tensor/parallel.h"

namespace fsa::faultsim {

namespace {

// Per-flip slice of a campaign, merged serially in flip order so double
// accumulation (seconds) is deterministic for any thread count.
struct FlipOutcome {
  std::int64_t bits_flipped = 0;
  std::int64_t hammer_attempts = 0;
  std::int64_t massages = 0;
  double seconds = 0.0;
  bool all_flipped = true;
};

FlipOutcome hammer_one_flip(const ParamFlip& flip, const RowHammerParams& params, Rng& rng) {
  FlipOutcome o;
  for (int bit = 0; bit < 32; ++bit) {
    if (!((flip.xor_mask >> bit) & 1u)) continue;
    // Is this cell hammer-vulnerable in place? If not, massage memory
    // (relocate the victim page) until a vulnerable aggressor/victim
    // alignment is found or the retry budget is exhausted.
    bool aligned = rng.bernoulli(params.vulnerable_frac);
    for (std::int64_t mi = 0; !aligned && mi < params.max_massages_per_bit; ++mi) {
      ++o.massages;
      o.seconds += params.massage_seconds;
      aligned = rng.bernoulli(params.massage_success_prob);
    }
    if (!aligned) {
      o.all_flipped = false;  // no vulnerable cell found; don't hammer blind
      continue;
    }
    bool flipped = false;
    for (std::int64_t attempt = 0; attempt < params.max_attempts_per_bit; ++attempt) {
      ++o.hammer_attempts;
      o.seconds += params.seconds_per_attempt;
      if (rng.bernoulli(params.flip_success_prob)) {
        flipped = true;
        break;
      }
    }
    if (flipped) {
      ++o.bits_flipped;
    } else {
      o.all_flipped = false;  // campaign gives up on this bit
    }
  }
  return o;
}

}  // namespace

CampaignReport simulate_rowhammer(const BitFlipPlan& plan, const RowHammerParams& params,
                                  const MemoryLayout& layout, Rng& rng) {
  (void)layout;
  CampaignReport report;
  report.bits_requested = plan.total_bit_flips;
  report.success = true;
  const std::int64_t nflips = static_cast<std::int64_t>(plan.flips.size());
  // Fork one stream per flip serially, then sweep flips in parallel — the
  // flips are independent Monte-Carlo trials.
  std::vector<Rng> streams;
  streams.reserve(plan.flips.size());
  for (std::int64_t i = 0; i < nflips; ++i) streams.push_back(rng.fork());
  std::vector<FlipOutcome> outcomes(plan.flips.size());
  parallel_for(0, nflips, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      outcomes[ui] = hammer_one_flip(plan.flips[ui], params, streams[ui]);
    }
  });
  for (const FlipOutcome& o : outcomes) {
    report.bits_flipped += o.bits_flipped;
    report.hammer_attempts += o.hammer_attempts;
    report.massages += o.massages;
    report.seconds += o.seconds;
    if (!o.all_flipped) report.success = false;
  }
  return report;
}

CampaignReport simulate_laser(const BitFlipPlan& plan, const LaserParams& params,
                              const MemoryLayout& layout) {
  // Deterministic cost model with nanoseconds of work per flip — the row
  // merge dominates, so this stays serial rather than waking the pool.
  CampaignReport report;
  report.bits_requested = plan.total_bit_flips;
  report.bits_flipped = plan.total_bit_flips;
  report.success = true;
  std::set<std::uint64_t> rows;
  for (const auto& flip : plan.flips) {
    rows.insert(layout.row_of(flip.param_index));
    report.seconds += params.locate_seconds;  // position on the word once
    report.seconds += params.shot_seconds * flip.bit_count;
  }
  report.seconds += params.per_row_setup_seconds * static_cast<double>(rows.size());
  return report;
}

}  // namespace fsa::faultsim
