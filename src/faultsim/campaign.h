// campaign.h — Monte-Carlo simulators of physical fault-injection campaigns.
//
// Two injector models from the paper's §2.3:
//
//  * RowHammerSim (DRAM, Kim et al. ISCA'14 / Drammer): a required bit can
//    only be flipped by hammering if its cell is vulnerable in the needed
//    direction; non-vulnerable target bits force a memory-massaging step
//    (relocating the victim page so a vulnerable cell lines up — the
//    expensive, time-consuming part noted in the paper). Each hammer
//    attempt succeeds with some probability; attempts repeat until success.
//
//  * LaserSim (SRAM, Selmke et al.): every bit is reachable but each shot
//    needs per-target beam positioning/tuning time; cost is essentially
//    linear in the number of bit flips.
//
// Both are parameterized cost models, not device physics — the point is to
// expose how ‖δ‖₀ (and bit composition) dominates real campaign time,
// which is the paper's argument for minimizing ℓ0.
#pragma once

#include "faultsim/bitflip.h"
#include "tensor/rng.h"

namespace fsa::faultsim {

struct RowHammerParams {
  double flip_success_prob = 0.25;   ///< per hammer attempt on a vulnerable cell
  double vulnerable_frac = 0.02;     ///< fraction of cells flippable in place
  double seconds_per_attempt = 0.12; ///< one double-sided hammer burst
  double massage_seconds = 45.0;     ///< relocate page so a vulnerable cell aligns
  double massage_success_prob = 0.7; ///< a relocation lands on a vulnerable cell
  std::int64_t max_attempts_per_bit = 200;
  std::int64_t max_massages_per_bit = 8;  ///< relocations before giving up on a bit
};

struct LaserParams {
  double locate_seconds = 20.0;  ///< position/tune the beam onto a new target
  double shot_seconds = 0.002;
  double per_row_setup_seconds = 5.0;  ///< refocus when moving to a new row
};

struct CampaignReport {
  bool success = false;
  std::int64_t bits_requested = 0;
  std::int64_t bits_flipped = 0;
  std::int64_t hammer_attempts = 0;   ///< row-hammer only
  std::int64_t massages = 0;          ///< row-hammer only
  double seconds = 0.0;
};

/// Simulate realizing `plan` with row hammer; deterministic given `rng`
/// (one pseudo-random stream is forked per flip up front, so the result is
/// also independent of how the sweep is sharded across threads). A bit
/// whose cell is not vulnerable in place is massaged until a vulnerable
/// alignment is found, up to max_massages_per_bit relocations; a bit that
/// never aligns is abandoned without hammering and fails the campaign.
CampaignReport simulate_rowhammer(const BitFlipPlan& plan, const RowHammerParams& params,
                                  const MemoryLayout& layout, Rng& rng);

/// Simulate realizing `plan` with a laser injector (deterministic).
CampaignReport simulate_laser(const BitFlipPlan& plan, const LaserParams& params,
                              const MemoryLayout& layout);

}  // namespace fsa::faultsim
