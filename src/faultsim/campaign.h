// campaign.h — deterministic campaign planning and sharded execution.
//
// A fault-injection campaign realizes a BitFlipPlan with one Injector
// (see injector.h). CampaignPlanner splits the plan into K deterministic,
// self-contained shards: every flip is assigned its Monte-Carlo stream
// seed and its plan-wide first-touch row attribution BEFORE slicing, so a
// shard can execute anywhere — another thread, another process, another
// machine — and the merged totals are bitwise identical for any K.
// Shards serialize to JSON (the "manifest") for exactly that purpose.
//
// CampaignRunner executes the shards concurrently on the shared thread
// pool and reduces the shard reports through Injector::merge. Inside a
// sweep the runner's parallel_for nests under the sweep's own pool fan-out
// and falls back to serial — the result is identical either way.
#pragma once

#include "faultsim/injector.h"

namespace fsa::faultsim {

/// Expected cost of ONE shard under `injector`'s cost model: the shard's
/// flips are folded into a sub-plan (bit counts, params, distinct rows)
/// and priced through Injector::plan_cost, so scheduling sees exactly the
/// estimate the paper's hardware model would assign that slice. Used to
/// populate the manifest's "shard_costs" and drive longest-first draining.
double shard_cost(const Injector& injector, const CampaignShard& shard,
                  const MemoryLayout& layout);

/// Deterministically splits a BitFlipPlan into self-contained shards for
/// one injector. The injector name is validated eagerly (throws the
/// registry's unknown-name error).
class CampaignPlanner {
 public:
  CampaignPlanner(std::string injector, int shards, std::uint64_t campaign_seed = 7);

  /// The K shards: contiguous slices of the plan's flips, each flip
  /// carrying its stream seed and global new_row flag. Trailing shards may
  /// be empty when the plan has fewer flips than shards.
  [[nodiscard]] std::vector<CampaignShard> shards(const BitFlipPlan& plan,
                                                  const MemoryLayout& layout) const;

  /// Whole campaign as a JSON manifest: plan summary, the injector's
  /// expected-cost estimate, and every shard (round-trips exactly).
  [[nodiscard]] eval::Json manifest(const BitFlipPlan& plan, const MemoryLayout& layout) const;

  /// Parse the shard list back out of a manifest produced by manifest().
  static std::vector<CampaignShard> shards_from_manifest(const eval::Json& manifest);

  [[nodiscard]] const std::string& injector() const { return injector_; }
  [[nodiscard]] int shard_count() const { return shards_; }
  [[nodiscard]] std::uint64_t campaign_seed() const { return seed_; }

 private:
  std::string injector_;
  int shards_;
  std::uint64_t seed_;
};

/// Plans and executes sharded campaigns. Shards fan out over the shared
/// thread pool; reports are merged associatively, so the totals are
/// bitwise identical for any shard count and any FSA_NUM_THREADS.
class CampaignRunner {
 public:
  explicit CampaignRunner(int shards = 1, std::uint64_t campaign_seed = 7);

  /// Plan `plan` into shards for `injector` (a registry key), simulate
  /// them concurrently, and merge.
  [[nodiscard]] CampaignReport run(const std::string& injector, const BitFlipPlan& plan,
                                   const MemoryLayout& layout) const;

  /// Same, with a caller-owned injector instance (custom parameters).
  [[nodiscard]] CampaignReport run(const Injector& injector, const BitFlipPlan& plan,
                                   const MemoryLayout& layout) const;

  /// Execute pre-planned shards (e.g. parsed back from a manifest).
  [[nodiscard]] CampaignReport run_shards(const Injector& injector,
                                          const std::vector<CampaignShard>& shards,
                                          const MemoryLayout& layout) const;

  [[nodiscard]] int shard_count() const { return shards_; }
  [[nodiscard]] std::uint64_t campaign_seed() const { return seed_; }

 private:
  int shards_;
  std::uint64_t seed_;
};

}  // namespace fsa::faultsim
