// injectors.h — the built-in fault-injector cost models.
//
// Three technologies from the paper's §2.3 threat discussion:
//
//  * RowHammerInjector (DRAM, Kim et al. ISCA'14 / Drammer): a required
//    bit can only be flipped by hammering if its cell is vulnerable in the
//    needed direction; non-vulnerable target bits force memory-massaging
//    steps (relocating the victim page until a vulnerable cell lines up —
//    the expensive part noted in the paper). Each hammer attempt succeeds
//    with some probability; attempts repeat until success or budget.
//
//  * LaserInjector (SRAM, Selmke et al.): every bit is reachable but each
//    targeted word needs beam positioning/tuning time and every new DRAM
//    row a refocus; cost is deterministic and linear in the plan.
//
//  * ClockGlitchInjector (pipeline glitching, Barenghi et al.): underclock
//    spikes corrupt the victim word during a write. The attacker first
//    locates the victim write cycle (per-word search cost), then glitches
//    until the corruption lands the exact desired pattern — wider XOR
//    masks are exponentially less likely to land, so this model punishes
//    multi-bit modifications hardest of the three.
//
// All are parameterized cost models, not device physics — the point is to
// expose how ‖δ‖₀ (and bit composition) dominates real campaign time,
// which is the paper's argument for minimizing ℓ0.
#pragma once

#include "faultsim/injector.h"
#include "tensor/rng.h"

namespace fsa::faultsim {

struct RowHammerParams {
  double flip_success_prob = 0.25;   ///< per hammer attempt on a vulnerable cell
  double vulnerable_frac = 0.02;     ///< fraction of cells flippable in place
  double seconds_per_attempt = 0.12; ///< one double-sided hammer burst
  double massage_seconds = 45.0;     ///< relocate page so a vulnerable cell aligns
  double massage_success_prob = 0.7; ///< a relocation lands on a vulnerable cell
  std::int64_t max_attempts_per_bit = 200;
  std::int64_t max_massages_per_bit = 8;  ///< relocations before giving up on a bit
};

class RowHammerInjector final : public Injector {
 public:
  RowHammerInjector() = default;
  explicit RowHammerInjector(RowHammerParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "rowhammer"; }
  [[nodiscard]] double plan_cost(const BitFlipPlan& plan,
                                 const MemoryLayout& layout) const override;
  [[nodiscard]] CampaignReport simulate_shard(const CampaignShard& shard,
                                              const MemoryLayout& layout) const override;
  [[nodiscard]] double cost_seconds(const CampaignReport& report) const override;

 private:
  RowHammerParams params_;
};

struct LaserParams {
  double locate_seconds = 20.0;  ///< position/tune the beam onto a new target word
  double shot_seconds = 0.002;
  double per_row_setup_seconds = 5.0;  ///< refocus when moving to a new row
};

class LaserInjector final : public Injector {
 public:
  LaserInjector() = default;
  explicit LaserInjector(LaserParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "laser"; }
  [[nodiscard]] double plan_cost(const BitFlipPlan& plan,
                                 const MemoryLayout& layout) const override;
  [[nodiscard]] CampaignReport simulate_shard(const CampaignShard& shard,
                                              const MemoryLayout& layout) const override;
  [[nodiscard]] double cost_seconds(const CampaignReport& report) const override;

 private:
  LaserParams params_;
};

struct ClockGlitchParams {
  double cycle_search_seconds = 8.0;  ///< locate the victim write cycle (per word)
  double glitch_seconds = 0.05;       ///< one underclock spike + readback
  double success_prob_one_bit = 0.2;  ///< glitch lands a single-bit pattern
  double per_bit_decay = 0.6;         ///< multiplier per extra bit in the pattern
  std::int64_t max_glitches_per_param = 500;
};

class ClockGlitchInjector final : public Injector {
 public:
  ClockGlitchInjector() = default;
  explicit ClockGlitchInjector(ClockGlitchParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "clock-glitch"; }
  [[nodiscard]] double plan_cost(const BitFlipPlan& plan,
                                 const MemoryLayout& layout) const override;
  [[nodiscard]] CampaignReport simulate_shard(const CampaignShard& shard,
                                              const MemoryLayout& layout) const override;
  [[nodiscard]] double cost_seconds(const CampaignReport& report) const override;

  /// P(one glitch lands an exact `bits`-bit pattern).
  [[nodiscard]] double hit_prob(int bits) const;

 private:
  ClockGlitchParams params_;
};

}  // namespace fsa::faultsim
