// quantize.h — precision-aware realization of a parameter modification.
//
// The paper's threat model allows the adversary to write "any value that
// is in the valid range of the used arithmetic format" (§3). Deployed
// models are often stored in narrower formats than float32; this module
// answers the follow-up question the paper leaves open: does the solved δ
// survive being written into a coarser grid? It rounds θ0 + δ to the
// target storage format and returns the EFFECTIVE modification — which the
// caller re-validates against the attack spec (see bench_ablation_quantize).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace fsa::faultsim {

enum class StorageFormat {
  kFloat32,   ///< full precision — identity
  kBfloat16,  ///< truncate mantissa to 7 bits (round-to-nearest-even)
  kFloat16,   ///< IEEE half precision (round-to-nearest-even, saturating)
  kInt8,      ///< symmetric per-tensor affine quantization, 8 bits
};

/// Round one value to the format's representable grid. For kInt8 the
/// `scale` is the per-tensor quantization step (max|θ|/127 typically).
float quantize_value(float v, StorageFormat format, float scale = 1.0f);

/// Effective modification after storing θ0 + δ in `format`:
/// returns  quantize(θ0 + δ) − quantize(θ0)  elementwise, i.e. what the
/// network actually sees. Entries whose modification is absorbed by
/// rounding come back exactly 0, shrinking the realized ‖δ‖₀.
Tensor realize_in_format(const Tensor& theta0, const Tensor& delta, StorageFormat format);

/// Per-tensor int8 scale for a parameter vector (max-abs / 127).
float int8_scale(const Tensor& theta);

/// Human-readable format name.
const char* format_name(StorageFormat format);

/// Inverse of format_name. Throws std::invalid_argument listing the known
/// names — manifests and CLI flags parse through this.
StorageFormat format_from_name(const std::string& name);

}  // namespace fsa::faultsim
