#include "faultsim/bitflip.h"

#include <bit>
#include <cstring>
#include <set>
#include <stdexcept>

namespace fsa::faultsim {

std::uint32_t float_bits(float v) {
  std::uint32_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

float bits_to_float(std::uint32_t bits) {
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

BitFlipPlan plan_bit_flips(const Tensor& theta0, const Tensor& delta, const MemoryLayout& layout) {
  if (theta0.shape() != delta.shape())
    throw std::invalid_argument("plan_bit_flips: shape mismatch");
  BitFlipPlan plan;
  std::set<std::uint64_t> rows;
  for (std::int64_t i = 0; i < theta0.numel(); ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (delta[ui] == 0.0f) continue;
    const std::uint32_t before = float_bits(theta0[ui]);
    const std::uint32_t after = float_bits(theta0[ui] + delta[ui]);
    const std::uint32_t diff = before ^ after;
    if (diff == 0) continue;  // δ too small to change the stored float
    ParamFlip f;
    f.param_index = i;
    f.xor_mask = diff;
    f.bit_count = std::popcount(diff);
    plan.flips.push_back(f);
    plan.total_bit_flips += f.bit_count;
    ++plan.params_modified;
    rows.insert(layout.row_of(i));
    plan.sign_bit_flips += (diff >> 31) & 1;
    plan.exponent_bit_flips += std::popcount((diff >> 23) & 0xFFu);
    plan.mantissa_bit_flips += std::popcount(diff & 0x7FFFFFu);
  }
  plan.rows_touched = static_cast<std::int64_t>(rows.size());
  return plan;
}

}  // namespace fsa::faultsim
