// args.h — minimal command-line argument parsing for the tools/CLI.
//
// Supports `--key value` and `--flag` forms after an optional positional
// subcommand. Deliberately tiny: no external dependency, strict about
// unknown keys so typos fail loudly instead of silently running the wrong
// experiment.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace fsa::eval {

/// Split a comma-separated value ("fc1,fc2,fc3" → {"fc1","fc2","fc3"}).
/// Empty segments are dropped, so ",fc3," and "fc3" parse the same — the
/// shared helper behind every CSV-valued CLI flag (--layers, --s-list,
/// --seeds, ...).
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

class Args {
 public:
  /// Parse argv after the program name. The first non--- token (if any) is
  /// the subcommand; everything else must be `--key value` or `--flag`.
  static Args parse(int argc, const char* const* argv) {
    Args out;
    int i = 1;
    if (i < argc && argv[i][0] != '-') out.command_ = argv[i++];
    for (; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok.rfind("--", 0) != 0)
        throw std::invalid_argument("unexpected positional argument: " + tok);
      tok = tok.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        out.values_[tok] = argv[++i];
      } else {
        out.flags_.insert(tok);
      }
    }
    return out;
  }

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] bool has_flag(const std::string& name) const { return flags_.count(name) > 0; }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoll(it->second);
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stod(it->second);
  }

  /// CSV-valued option as a string list (fallback is also CSV).
  [[nodiscard]] std::vector<std::string> get_list(const std::string& key,
                                                  const std::string& fallback) const {
    return split_csv(get(key, fallback));
  }

  /// CSV-valued option as integers, e.g. --s-list 1,4,16.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(const std::string& key,
                                                       const std::string& fallback) const {
    std::vector<std::int64_t> out;
    for (const auto& tok : get_list(key, fallback)) out.push_back(std::stoll(tok));
    return out;
  }

  /// CSV-valued option as unsigned 64-bit seeds.
  [[nodiscard]] std::vector<std::uint64_t> get_u64_list(const std::string& key,
                                                        const std::string& fallback) const {
    std::vector<std::uint64_t> out;
    for (const auto& tok : get_list(key, fallback)) out.push_back(std::stoull(tok));
    return out;
  }

  /// Throw if any provided key/flag is not in `known` (catches typos).
  void expect_only(const std::set<std::string>& known) const {
    for (const auto& [k, v] : values_)
      if (known.count(k) == 0) throw std::invalid_argument("unknown option --" + k);
    for (const auto& f : flags_)
      if (known.count(f) == 0) throw std::invalid_argument("unknown flag --" + f);
  }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

}  // namespace fsa::eval
