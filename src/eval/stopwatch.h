// stopwatch.h — wall-clock timing for harness reporting.
#pragma once

#include <chrono>

namespace fsa::eval {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fsa::eval
