// attack_bench.h — shared harness context for the paper's experiments.
//
// Every table/figure regeneration does the same dance: get a trained model
// from the zoo, choose the attacked layers (which fixes the network cut),
// push the adversary's image pool and the test set through the frozen
// prefix once (disk-cached), and then run many (S, R) attack instances.
// AttackBench packages that so each bench binary is just its sweep loop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/attack_metrics.h"
#include "core/fault_sneaking.h"
#include "models/feature_cache.h"
#include "models/model_zoo.h"

namespace fsa::eval {

class AttackBench {
 public:
  /// `layers` / weight/bias flags define the attack surface (and the cut).
  AttackBench(models::ZooModel& model, const std::string& cache_dir,
              const std::vector<std::string>& layers, bool weights = true, bool biases = true);

  /// Build the attack problem: R correctly-classified pool images, the
  /// first S retargeted (seeded random targets ≠ current prediction).
  [[nodiscard]] core::AttackSpec spec(std::int64_t S, std::int64_t R, std::uint64_t seed,
                                      core::TargetPolicy policy = core::TargetPolicy::kRandom) const;

  /// Full-test-set accuracy with `delta` applied (head evaluation over the
  /// cached test features — numerically identical to running the whole net).
  double test_accuracy_with(const Tensor& delta);

  /// Clean (unmodified) test accuracy at this cut.
  [[nodiscard]] double clean_test_accuracy() const { return clean_test_accuracy_; }

  core::FaultSneakingAttack& attack() { return *attack_; }
  models::ZooModel& model() { return *model_; }
  [[nodiscard]] const Tensor& pool_features() const { return pool_features_; }
  [[nodiscard]] const std::vector<std::int64_t>& pool_preds() const { return pool_preds_; }
  [[nodiscard]] const Tensor& test_features() const { return test_features_; }

 private:
  models::ZooModel* model_;
  std::unique_ptr<core::FaultSneakingAttack> attack_;
  Tensor pool_features_;
  std::vector<std::int64_t> pool_preds_;
  Tensor test_features_;
  double clean_test_accuracy_ = 0.0;
};

}  // namespace fsa::eval
