// json.h — minimal JSON value type for structured experiment reports.
//
// The sweep engine emits machine-readable reports (one object per attack
// instance) alongside the human-facing Table CSV, so downstream tooling —
// plotting scripts, regression diffing, the run_benches.sh trajectory —
// can consume results without screen-scraping. This is a deliberately
// small implementation: objects, arrays, strings, numbers, booleans and
// null, preserved insertion order, no external dependency. It round-trips
// everything it emits (see engine_test), which is all the repo needs.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fsa::eval {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  // ---- factories ----------------------------------------------------------

  static Json null() { return Json(); }
  static Json boolean(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json number(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
  }
  static Json number(std::int64_t v) { return number(static_cast<double>(v)); }
  static Json string(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  // ---- inspection ----------------------------------------------------------

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  [[nodiscard]] bool as_bool() const {
    expect(Type::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    expect(Type::kNumber, "number");
    return num_;
  }
  [[nodiscard]] std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  [[nodiscard]] const std::string& as_string() const {
    expect(Type::kString, "string");
    return str_;
  }

  /// Array element count / object member count.
  [[nodiscard]] std::size_t size() const {
    if (type_ == Type::kArray) return items_.size();
    if (type_ == Type::kObject) return members_.size();
    throw std::runtime_error("Json: size() on non-container");
  }

  /// Array element access (throws on out-of-range).
  [[nodiscard]] const Json& at(std::size_t i) const {
    expect(Type::kArray, "array");
    if (i >= items_.size()) throw std::out_of_range("Json: array index " + std::to_string(i));
    return items_[i];
  }

  /// Object member access (throws if absent).
  [[nodiscard]] const Json& at(const std::string& key) const {
    expect(Type::kObject, "object");
    for (const auto& [k, v] : members_)
      if (k == key) return v;
    throw std::out_of_range("Json: no member \"" + key + "\"");
  }

  [[nodiscard]] bool has(const std::string& key) const {
    if (type_ != Type::kObject) return false;
    for (const auto& [k, v] : members_)
      if (k == key) return true;
    return false;
  }

  /// Object member with fallback when absent or null.
  [[nodiscard]] double get_number(const std::string& key, double fallback) const {
    return has(key) && !at(key).is_null() ? at(key).as_number() : fallback;
  }
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    return static_cast<std::int64_t>(get_number(key, static_cast<double>(fallback)));
  }
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const {
    return has(key) && !at(key).is_null() ? at(key).as_string() : fallback;
  }
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    return has(key) && !at(key).is_null() ? at(key).as_bool() : fallback;
  }

  // ---- mutation ------------------------------------------------------------

  /// Set an object member (replaces an existing key, preserves order otherwise).
  Json& set(const std::string& key, Json value) {
    expect(Type::kObject, "object");
    for (auto& [k, v] : members_)
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    members_.emplace_back(key, std::move(value));
    return *this;
  }

  Json& push_back(Json value) {
    expect(Type::kArray, "array");
    items_.push_back(std::move(value));
    return *this;
  }

  /// Drop an object member if present (no-op otherwise, preserves the
  /// order of the remaining members).
  Json& remove(const std::string& key) {
    expect(Type::kObject, "object");
    for (auto it = members_.begin(); it != members_.end(); ++it)
      if (it->first == key) {
        members_.erase(it);
        return *this;
      }
    return *this;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    expect(Type::kObject, "object");
    return members_;
  }
  [[nodiscard]] const std::vector<Json>& items() const {
    expect(Type::kArray, "array");
    return items_;
  }

  // ---- (de)serialization ---------------------------------------------------

  /// Render as JSON text. `indent < 0` → compact single line; otherwise
  /// pretty-printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Resource bounds for parsing untrusted input. The parser recurses
  /// once per container level, so an attacker-controlled "[[[[..." would
  /// otherwise overflow the stack; `max_depth` bounds that. `max_bytes`
  /// rejects oversized documents before any work happens (0 = unlimited
  /// — the internal artifacts reducers re-read can be large).
  struct ParseLimits {
    int max_depth = 128;
    std::size_t max_bytes = 0;
  };

  /// Parse JSON text (throws std::runtime_error on malformed input,
  /// including trailing garbage after the document). The single-argument
  /// form applies the default ParseLimits; network-facing callers pass
  /// tighter ones.
  static Json parse(const std::string& text);
  static Json parse(const std::string& text, const ParseLimits& limits);

 private:
  void expect(Type t, const char* what) const {
    if (type_ != t) throw std::runtime_error(std::string("Json: value is not a ") + what);
  }

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace fsa::eval
