#include "eval/attack_bench.h"

namespace fsa::eval {

AttackBench::AttackBench(models::ZooModel& model, const std::string& cache_dir,
                         const std::vector<std::string>& layers, bool weights, bool biases)
    : model_(&model) {
  attack_ = std::make_unique<core::FaultSneakingAttack>(model.net, layers, weights, biases);
  const std::size_t cut = attack_->cut();
  const std::string prefix = cache_dir + "/" + model.name + "_cut" + std::to_string(cut);
  pool_features_ = models::cached_features(model.net, cut, model.attack_pool.images(),
                                           prefix + "_pool.bin");
  test_features_ = models::cached_features(model.net, cut, model.test.images(),
                                           prefix + "_test.bin");
  pool_preds_ = models::head_predictions(model.net, cut, pool_features_);
  clean_test_accuracy_ =
      models::head_accuracy(model.net, cut, test_features_, model.test.labels());
}

core::AttackSpec AttackBench::spec(std::int64_t S, std::int64_t R, std::uint64_t seed,
                                   core::TargetPolicy policy) const {
  return core::make_spec(pool_features_, model_->attack_pool.labels(), pool_preds_, S, R,
                         model_->attack_pool.num_classes(), seed, policy);
}

double AttackBench::test_accuracy_with(const Tensor& delta) {
  return core::with_delta(*attack_, delta, [&] {
    return models::head_accuracy(model_->net, attack_->cut(), test_features_,
                                 model_->test.labels());
  });
}

}  // namespace fsa::eval
