#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fsa::eval {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string Table::str() const {
  // Column widths over header + rows.
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  os << "\n== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << " " << cell << std::string(width[c] - std::min(width[c], cell.size()), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (f) f << csv();
}

}  // namespace fsa::eval
