// table.h — aligned console/markdown tables + CSV for the experiment
// harnesses. Every bench prints its paper table/figure series through this
// so EXPERIMENTS.md rows can be pasted straight from bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fsa::eval {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols) {
    header_ = std::move(cols);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Render as an aligned markdown-style table.
  [[nodiscard]] std::string str() const;

  /// Print to stdout.
  void print() const;

  /// Comma-separated form (header + rows).
  [[nodiscard]] std::string csv() const;

  /// Also write the CSV next to the process (ignored on failure — bench
  /// output is the primary artifact).
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double → string (e.g. fmt(0.987654, 3) == "0.988").
std::string fmt(double v, int precision = 3);

/// Percent with one decimal (0.9876 → "98.8%").
std::string pct(double fraction);

}  // namespace fsa::eval
