#include "eval/detect.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace fsa::eval {

namespace {

std::pair<double, double> mean_std(const Tensor& t) {
  if (t.numel() == 0) return {0.0, 0.0};
  double mean = 0.0;
  for (float v : t.span()) mean += v;
  mean /= static_cast<double>(t.numel());
  double var = 0.0;
  for (float v : t.span()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(t.numel());
  return {mean, std::sqrt(var)};
}

}  // namespace

AuditReport audit_weights(const Tensor& before, const Tensor& after) {
  if (before.shape() != after.shape())
    throw std::invalid_argument("audit_weights: shape mismatch");
  AuditReport rep;
  // Count + max are order-independent, so the parallel scan is exact.
  struct Scan {
    std::int64_t changed = 0;
    double max_abs = 0.0;
  };
  const Scan scan = parallel_reduce(
      0, before.numel(), 1 << 16, Scan{},
      [&](std::int64_t b, std::int64_t e) {
        Scan s;
        for (std::int64_t i = b; i < e; ++i) {
          const auto ui = static_cast<std::size_t>(i);
          const double d = std::fabs(static_cast<double>(after[ui]) - before[ui]);
          if (d > 0.0) ++s.changed;
          s.max_abs = std::max(s.max_abs, d);
        }
        return s;
      },
      [](Scan acc, const Scan& s) {
        acc.changed += s.changed;
        acc.max_abs = std::max(acc.max_abs, s.max_abs);
        return acc;
      });
  const std::int64_t changed = scan.changed;
  rep.max_abs_change = scan.max_abs;
  rep.changed_fraction =
      before.numel() == 0 ? 0.0 : static_cast<double>(changed) / static_cast<double>(before.numel());

  const auto [mb, sb] = mean_std(before);
  const auto [ma, sa] = mean_std(after);
  rep.mean_shift = std::fabs(ma - mb);
  rep.std_ratio = sb > 0.0 ? sa / sb : 1.0;

  // Two-sample KS statistic over the sorted weight values.
  std::vector<float> a(before.span().begin(), before.span().end());
  std::vector<float> b(after.span().begin(), after.span().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const std::size_t n = a.size();
  std::size_t ia = 0, ib = 0;
  double ks = 0.0;
  while (ia < n && ib < n) {
    const float x = std::min(a[ia], b[ib]);
    while (ia < n && a[ia] <= x) ++ia;
    while (ib < n && b[ib] <= x) ++ib;
    ks = std::max(ks, std::fabs(static_cast<double>(ia) - static_cast<double>(ib)) /
                          static_cast<double>(n));
  }
  rep.ks_statistic = ks;
  return rep;
}

double anomaly_score(const AuditReport& report) {
  // Normalize each channel to a rough [0, 1] and take the max: a defender
  // alarms on the loudest signal, not the average.
  const double frac = std::min(report.changed_fraction * 2.0, 1.0);   // >50% changed = certain
  const double mag = std::min(report.max_abs_change / 2.0, 1.0);      // |δw| ≥ 2 = certain
  const double mean = std::min(report.mean_shift / 0.1, 1.0);
  const double spread = std::min(std::fabs(report.std_ratio - 1.0) / 0.5, 1.0);
  const double ks = std::min(report.ks_statistic / 0.2, 1.0);
  return std::max({frac, mag, mean, spread, ks});
}

}  // namespace fsa::eval
