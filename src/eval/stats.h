// stats.h — small sample-statistics helpers for multi-seed experiment
// aggregation (the paper reports single runs; the harness can average).
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fsa::eval {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n−1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t n = 0;
};

/// Summarize a non-empty sample. Throws on empty input.
inline Summary summarize(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("summarize: empty sample");
  Summary s;
  s.n = xs.size();
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;
  std::sort(xs.begin(), xs.end());
  s.median = s.n % 2 == 1 ? xs[s.n / 2] : 0.5 * (xs[s.n / 2 - 1] + xs[s.n / 2]);
  return s;
}

}  // namespace fsa::eval
