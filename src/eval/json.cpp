#include "eval/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace fsa::eval {

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan; reports use null for "not measured"
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

struct Parser {
  const std::string& text;
  int max_depth;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("Json::parse: " + why + " at offset " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          for (std::size_t k = 0; k < 4; ++k)
            if (!std::isxdigit(static_cast<unsigned char>(text[pos + k]))) fail("bad \\u escape");
          const unsigned code = static_cast<unsigned>(std::stoul(text.substr(pos, 4), nullptr, 16));
          pos += 4;
          // Reports only emit ASCII control escapes; encode BMP as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_value(int depth) {
    if (depth > max_depth)
      fail("nesting deeper than " + std::to_string(max_depth) + " levels");
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        std::string key = (skip_ws(), parse_string());
        expect(':');
        obj.set(key, parse_value(depth + 1));
        const char d = peek();
        if (d == ',') {
          ++pos;
          continue;
        }
        if (d == '}') {
          ++pos;
          return obj;
        }
        fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        const char d = peek();
        if (d == ',') {
          ++pos;
          continue;
        }
        if (d == ']') {
          ++pos;
          return arr;
        }
        fail("expected ',' or ']'");
      }
    }
    if (c == '"') return Json::string(parse_string());
    skip_ws();
    if (consume_literal("true")) return Json::boolean(true);
    if (consume_literal("false")) return Json::boolean(false);
    if (consume_literal("null")) return Json::null();
    // number
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' || text[pos] == '+'))
      ++pos;
    if (pos == start) fail("unexpected character");
    const std::string token = text.substr(start, pos - start);
    try {
      std::size_t consumed = 0;
      const double v = std::stod(token, &consumed);
      if (consumed != token.size()) fail("bad number");  // e.g. "1.2.3", "1-2"
      return Json::number(v);
    } catch (const std::invalid_argument&) {
      fail("bad number");
    } catch (const std::out_of_range&) {
      fail("number out of range");
    }
  }
};

void dump_value(std::ostream& os, const Json& j, int indent, int depth) {
  const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent >= 0 ? "\n" : "";
  const char* kv_sep = indent >= 0 ? ": " : ":";
  switch (j.type()) {
    case Json::Type::kNull: os << "null"; break;
    case Json::Type::kBool: os << (j.as_bool() ? "true" : "false"); break;
    case Json::Type::kNumber: dump_number(os, j.as_number()); break;
    case Json::Type::kString: dump_string(os, j.as_string()); break;
    case Json::Type::kArray: {
      if (j.items().empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      bool first = true;
      for (const auto& item : j.items()) {
        if (!first) os << ',' << nl;
        first = false;
        os << pad;
        dump_value(os, item, indent, depth + 1);
      }
      os << nl << close_pad << ']';
      break;
    }
    case Json::Type::kObject: {
      if (j.members().empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) os << ',' << nl;
        first = false;
        os << pad;
        dump_string(os, k);
        os << kv_sep;
        dump_value(os, v, indent, depth + 1);
      }
      os << nl << close_pad << '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_value(os, *this, indent, 0);
  return os.str();
}

Json Json::parse(const std::string& text) { return parse(text, ParseLimits{}); }

Json Json::parse(const std::string& text, const ParseLimits& limits) {
  if (limits.max_bytes > 0 && text.size() > limits.max_bytes)
    throw std::runtime_error("Json::parse: input of " + std::to_string(text.size()) +
                             " bytes exceeds the " + std::to_string(limits.max_bytes) +
                             "-byte limit");
  Parser p{text, limits.max_depth};
  Json out = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters");
  return out;
}

}  // namespace fsa::eval
