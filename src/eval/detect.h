// detect.h — the defender's view: is a modified parameter tensor detectable?
//
// The paper's stealth constraint hides the attack from the most natural
// detector — a test-accuracy check. A more careful defender can audit the
// PARAMETERS themselves (e.g. a periodic hash or distribution check over
// memory). This extension quantifies how visible an attack δ is to such
// audits, which in turn motivates why attacks should also bound max|δ|:
//
//  * changed_fraction  — share of parameters that differ (hash-level audit)
//  * max_abs_change    — the single most suspicious weight
//  * mean/std shift    — first-moment drift of the distribution
//  * ks_statistic      — Kolmogorov–Smirnov distance between the original
//                        and modified empirical weight distributions
#pragma once

#include "tensor/tensor.h"

namespace fsa::eval {

struct AuditReport {
  double changed_fraction = 0.0;
  double max_abs_change = 0.0;
  double mean_shift = 0.0;     ///< |mean(after) − mean(before)|
  double std_ratio = 1.0;      ///< std(after) / std(before)
  double ks_statistic = 0.0;   ///< sup-norm distance of empirical CDFs
};

/// Compare a parameter vector before/after modification.
AuditReport audit_weights(const Tensor& before, const Tensor& after);

/// A crude single-number anomaly score in [0, 1]: max of the normalized
/// audit channels. 0 = indistinguishable, 1 = screaming.
double anomaly_score(const AuditReport& report);

}  // namespace fsa::eval
