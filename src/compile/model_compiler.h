// model_compiler.h — ahead-of-time lowering of a Sequential into a plan of
// fused execution nodes with pack-once shared weight panels.
//
// Sweeps clone the network per (method, surface, S, R, seed) instance and
// re-derive im2col geometry, GEMM workspaces, and packed-B panels on every
// forward call, so per-instance cost is dominated by redundant plan work
// rather than GEMM flops. CompiledModel runs three passes over the stack
// at construction:
//
//   1. FUSION — Conv2D+bias[+ReLU] and Dense+bias[+ReLU] collapse into one
//      node each; the bias add and ReLU clamp are applied while the GEMM
//      output tile is still hot (for conv, inside the NCHW rearrange), in
//      exactly the float-op order of the unfused layers, so outputs are
//      bitwise identical. Layers the compiler does not understand become
//      opaque nodes that delegate to Layer::forward unchanged.
//   2. PLAN CACHING — each node owns its im2col/GEMM workspaces and the
//      geometry derived from the last input shape; steady-state forwards
//      allocate nothing and redo no shape math.
//   3. PACK-ONCE PANELS — when the packed backend is active, every fused
//      weight matrix is packed into the backend's exact micro-panel layout
//      once, held as shared_ptr<const PackedB>, and shared read-only by
//      every rebind() of the plan. A Parameter version counter makes the
//      sharing copy-on-write: an instance whose attack mutates a weight
//      repacks that layer privately on its next forward; all other
//      instances (and other layers of the same instance) keep the shared
//      panels. gemm_nn_acc_prepacked runs the same driver as the per-call
//      pack, so this is invisible in the output bits.
//
// instance_net(cut) extends pack-once to the parameters themselves: sweep
// instances only ever forward/perturb layers at or after the surface cut,
// so the prefix [0, cut) is shared read-only via SharedLayer wrappers and
// only the head [cut, end) is deep-copied — cloning costs O(δ-surface),
// not O(weights). Callers must not forward shared prefix layers from a
// rebound instance concurrently (sweeps never do: features are cached).
//
// Determinism contract: for every backend and thread count, a compiled
// forward is bitwise identical to the uncompiled Sequential. The
// uncompiled path stays routable (FSA_COMPILE=off) as the parity oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/packed_kernels.h"
#include "nn/sequential.h"

namespace fsa::compile {

/// A layer facade that shares (rather than owns) its implementation.
/// clone() re-shares, so copying a network whose prefix is SharedLayers
/// never copies the underlying parameters. Forwarding a SharedLayer
/// mutates the shared implementation's caches — only safe from one thread
/// at a time, which is why sweep instances never forward below their cut.
class SharedLayer final : public nn::Layer {
 public:
  explicit SharedLayer(std::shared_ptr<nn::Layer> inner) : inner_(std::move(inner)) {}

  Tensor forward(const Tensor& input, bool train) override { return inner_->forward(input, train); }
  Tensor backward(const Tensor& grad_output) override { return inner_->backward(grad_output); }
  std::vector<nn::Parameter*> params() override { return inner_->params(); }
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<SharedLayer>(inner_);
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return inner_->output_shape(input);
  }

  [[nodiscard]] const std::shared_ptr<nn::Layer>& inner() const { return inner_; }

 private:
  std::shared_ptr<nn::Layer> inner_;
};

/// Per-node introspection for tests, /stats, and docs.
struct NodeInfo {
  std::string name;          // primary layer's name
  std::string kind;          // "dense" | "conv" | "opaque"
  std::size_t first = 0;     // index of the node's first layer
  std::size_t layers = 1;    // layers covered (2 when a ReLU is fused in)
  bool fused_relu = false;
  bool has_panels = false;   // pack-once weight panels present
  long panel_refs = 0;       // shared_ptr use_count of those panels
  const void* panel_id = nullptr;  // identity: equal ⇔ panels are shared
};

class CompiledModel {
 public:
  /// Compile `net`: snapshot every layer (shared copies), fuse, cache
  /// plans, and — when the packed backend is active — pack weight panels.
  /// The plan is self-contained; `net` may outlive or predecease it.
  explicit CompiledModel(nn::Sequential& net);

  /// Forward through all nodes / through nodes covering layers [from, end).
  /// A `from` that lands inside a fused node (between a layer and its
  /// fused ReLU) falls back to layer-by-layer execution for the suffix.
  Tensor forward(const Tensor& input) { return forward_from(0, input); }
  Tensor forward_from(std::size_t from, const Tensor& input);

  /// Sweep-instance network: layers [0, cut) share this plan's layer
  /// snapshots read-only (SharedLayer), layers [cut, end) are deep copies
  /// the instance may mutate freely. O(head params), not O(all params).
  [[nodiscard]] nn::Sequential instance_net(std::size_t cut) const;

  /// A compiled view over `net` — an instance_net() or any clone of the
  /// compiled architecture — sharing this plan's packed panels
  /// copy-on-write. Throws if `net`'s structure does not match the plan.
  [[nodiscard]] CompiledModel rebind(nn::Sequential& net) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  /// Number of fused (dense/conv) execution nodes — the compile
  /// attribution figure sweep rows and /stats report.
  [[nodiscard]] std::size_t fused_nodes() const;
  [[nodiscard]] std::vector<NodeInfo> describe() const;

 private:
  struct Node {
    enum class Kind { kOpaque, kDense, kConv };
    Kind kind = Kind::kOpaque;
    std::size_t first = 0;   // first layer index covered
    std::size_t count = 1;   // layers covered
    nn::Layer* layer = nullptr;  // primary layer (borrowed, SharedLayer-unwrapped)
    bool relu = false;           // trailing ReLU fused into the epilogue
    // Pack-once weight panels (packed backend only). Shared across
    // rebinds; valid while the weight Parameter's version still equals
    // packed_version, repacked privately (copy-on-write) otherwise.
    std::shared_ptr<const backend::PackedB> panels;
    std::uint64_t packed_version = 0;
    // Plan cache: geometry + workspaces from the last input shape.
    Shape in_shape;
    Shape out_shape;
    Tensor cols_ws;  // conv im2col workspace
    Tensor flat_ws;  // conv GEMM output workspace
  };

  CompiledModel() = default;
  void build_nodes();
  void pack_panels();
  Tensor run_node(Node& nd, const Tensor& x);
  void gemm_into(Node& nd, nn::Parameter& weight, const Tensor& a, Tensor& out);

  // Layer snapshots (owning, primary plan) and the execution view over
  // them (borrowed; re-pointed at the target net's layers in a rebind).
  std::vector<std::shared_ptr<nn::Layer>> shared_layers_;
  std::vector<nn::Layer*> layers_;
  std::vector<Node> nodes_;
};

/// Compiled equivalents of models::head_predictions / head_accuracy: the
/// same batch slicing and argmax over cm.forward_from(cut, ·), so the
/// resulting predictions are bitwise those of the uncompiled helpers.
std::vector<std::int64_t> head_predictions(CompiledModel& cm, std::size_t cut,
                                           const Tensor& features, std::int64_t batch_size = 256);
double head_accuracy(CompiledModel& cm, std::size_t cut, const Tensor& features,
                     const std::vector<std::int64_t>& labels, std::int64_t batch_size = 256);

}  // namespace fsa::compile
