// compile.h — the FSA_COMPILE on/off seam.
//
// The forward-pass compiler (model_compiler.h) is strictly an execution
// optimization: compiled and uncompiled paths produce bitwise-identical
// tensors for every backend and thread count (docs/COMPILE.md states the
// guarantee; tests/compile_test.cpp enforces it). This seam is what lets
// the uncompiled path stay alive as the parity oracle — every consumer
// (SweepRunner, serve warm-up, fsa_cli) branches on enabled() instead of
// hard-wiring the compiled route.
//
// Resolution order: set_enabled() (the CLI's --compile flag, or a dist
// shard manifest) wins; otherwise the FSA_COMPILE environment variable
// ("on"/"1"/"true"/"yes", case-sensitive, enables); default off.
#pragma once

namespace fsa::compile {

/// Is the compiled forward path selected for this process?
[[nodiscard]] bool enabled();

/// Override the environment (idempotent, process-wide). Callers that fork
/// workers must ALSO export FSA_COMPILE so children inherit the choice.
void set_enabled(bool on);

}  // namespace fsa::compile
