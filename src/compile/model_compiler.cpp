#include "compile/model_compiler.h"

#include <algorithm>
#include <stdexcept>

#include "backend/compute_backend.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace fsa::compile {

namespace {

/// The execution plan addresses concrete layers; an instance net's shared
/// prefix wraps them in SharedLayer, so classification looks through it.
nn::Layer* unwrap(nn::Layer& layer) {
  if (auto* shared = dynamic_cast<SharedLayer*>(&layer)) return shared->inner().get();
  return &layer;
}

/// Fused bias[+ReLU] epilogue over a GEMM output, row-parallel. The per
/// element ops are exactly ops::add_row_bias (v += b) then ops::relu
/// (std::max(v, 0.0f)) — one pass instead of three, identical bits.
void bias_epilogue(Tensor& out, const Tensor& bias, bool relu) {
  const std::int64_t rows = out.dim(0), cols = out.dim(1);
  const float* bp = bias.data();
  float* base = out.data();
  backend::active().parallel_rows(rows, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t r = b; r < e; ++r) {
      float* row = base + r * cols;
      if (relu) {
        for (std::int64_t c = 0; c < cols; ++c) row[c] = std::max(row[c] + bp[c], 0.0f);
      } else {
        for (std::int64_t c = 0; c < cols; ++c) row[c] += bp[c];
      }
    }
  });
}

}  // namespace

CompiledModel::CompiledModel(nn::Sequential& net) {
  OBS_SPAN("compile.build");
  obs::Registry::global().counter("fsa_compile_builds_total").inc();
  shared_layers_.reserve(net.size());
  layers_.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    shared_layers_.push_back(std::shared_ptr<nn::Layer>(net.layer(i).clone()));
    layers_.push_back(shared_layers_.back().get());
  }
  build_nodes();
  if (backend::active_name() == "packed") pack_panels();
}

void CompiledModel::build_nodes() {
  nodes_.clear();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    nn::Layer* layer = unwrap(*layers_[i]);
    Node nd;
    nd.first = i;
    nd.layer = layer;
    const bool next_is_relu =
        i + 1 < layers_.size() && dynamic_cast<nn::ReLU*>(unwrap(*layers_[i + 1])) != nullptr;
    if (dynamic_cast<nn::Dense*>(layer) != nullptr) {
      nd.kind = Node::Kind::kDense;
    } else if (dynamic_cast<nn::Conv2D*>(layer) != nullptr) {
      nd.kind = Node::Kind::kConv;
    } else {
      nodes_.push_back(std::move(nd));  // opaque: delegates to Layer::forward
      continue;
    }
    if (next_is_relu) {
      nd.relu = true;
      nd.count = 2;
      ++i;
    }
    nodes_.push_back(std::move(nd));
  }
}

void CompiledModel::pack_panels() {
  OBS_SPAN("compile.pack_panels");
  for (Node& nd : nodes_) {
    nn::Parameter* w = nullptr;
    if (nd.kind == Node::Kind::kDense) w = &static_cast<nn::Dense*>(nd.layer)->weight();
    if (nd.kind == Node::Kind::kConv) w = &static_cast<nn::Conv2D*>(nd.layer)->weight();
    if (w == nullptr) continue;
    const Tensor& v = w->value();
    nd.panels = std::make_shared<const backend::PackedB>(backend::pack_b(v.data(), v.dim(0), v.dim(1)));
    nd.packed_version = w->version();
  }
}

void CompiledModel::gemm_into(Node& nd, nn::Parameter& weight, const Tensor& a, Tensor& out) {
  if (backend::active_name() == "packed") {
    if (!nd.panels || nd.packed_version != weight.version()) {
      // Copy-on-write: this weight was mutated (or was never packed under
      // the packed backend) — repack privately. Other plans sharing the
      // old panels keep them; only this node's shared_ptr is replaced.
      OBS_SPAN("compile.repack");
      static obs::Counter& repacks_metric =
          obs::Registry::global().counter("fsa_compile_repacks_total");
      repacks_metric.inc();
      const Tensor& v = weight.value();
      nd.panels = std::make_shared<const backend::PackedB>(backend::pack_b(v.data(), v.dim(0), v.dim(1)));
      nd.packed_version = weight.version();
    }
    backend::gemm_nn_acc_prepacked(a.data(), *nd.panels, out.data(), a.dim(0));
    return;
  }
  // Other backends have no prepack format; run their gemm unchanged (this
  // also keeps the auto backend's per-call dispatch attribution intact).
  ops::matmul_acc(a, weight.value(), out);
}

Tensor CompiledModel::run_node(Node& nd, const Tensor& x) {
  switch (nd.kind) {
    case Node::Kind::kOpaque:
      return nd.layer->forward(x, /*train=*/false);
    case Node::Kind::kDense: {
      auto* dense = static_cast<nn::Dense*>(nd.layer);
      (void)dense->output_shape(x.shape());  // same validation as Dense::forward
      Tensor out(Shape({x.dim(0), dense->out_features()}));
      gemm_into(nd, dense->weight(), x, out);
      bias_epilogue(out, dense->bias().value(), nd.relu);
      return out;
    }
    case Node::Kind::kConv: {
      auto* conv = static_cast<nn::Conv2D*>(nd.layer);
      if (x.shape() != nd.in_shape) {
        nd.out_shape = conv->output_shape(x.shape());  // geometry derived once per shape
        nd.in_shape = x.shape();
      }
      conv->im2col_into(x, nd.out_shape, nd.cols_ws);
      const std::int64_t out_c = conv->out_channels();
      const Shape flat_shape({nd.cols_ws.dim(0), out_c});
      if (nd.flat_ws.shape() != flat_shape) nd.flat_ws = Tensor(flat_shape);
      nd.flat_ws.fill(0.0f);
      gemm_into(nd, conv->weight(), nd.cols_ws, nd.flat_ws);
      // Fused epilogue: bias[+ReLU] applied inside the NCHW rearrange,
      // while each flat row is hot — the same adds and max as
      // add_row_bias followed by the ReLU layer, in one pass.
      const std::int64_t n = nd.out_shape.dim(0), oh = nd.out_shape.dim(2),
                         ow = nd.out_shape.dim(3);
      Tensor out(nd.out_shape);
      const float* src = nd.flat_ws.data();
      const float* bp = conv->bias().value().data();
      float* dst = out.data();
      const bool relu = nd.relu;
      backend::active().parallel_rows(n, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t img = b; img < e; ++img)
          for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const float* row = src + ((img * oh + oy) * ow + ox) * out_c;
              for (std::int64_t c = 0; c < out_c; ++c) {
                const float v = row[c] + bp[c];
                dst[((img * out_c + c) * oh + oy) * ow + ox] = relu ? std::max(v, 0.0f) : v;
              }
            }
      });
      return out;
    }
  }
  throw std::logic_error("CompiledModel: unreachable node kind");
}

Tensor CompiledModel::forward_from(std::size_t from, const Tensor& input) {
  if (from > layers_.size())
    throw std::out_of_range("CompiledModel::forward_from: layer index out of range");
  std::size_t ni = 0;
  while (ni < nodes_.size() && nodes_[ni].first < from) ++ni;
  if (from < layers_.size() && (ni == nodes_.size() || nodes_[ni].first != from)) {
    // `from` lands inside a fused node (a cut between a layer and its
    // fused ReLU): run the suffix layer by layer, exactly like the
    // uncompiled Sequential. Correctness first; such cuts do not occur in
    // practice (attack surfaces start at parameterized layers, which are
    // always node starts).
    Tensor x = input;
    for (std::size_t i = from; i < layers_.size(); ++i) x = layers_[i]->forward(x, false);
    return x;
  }
  Tensor x = input;
  for (; ni < nodes_.size(); ++ni) x = run_node(nodes_[ni], x);
  return x;
}

nn::Sequential CompiledModel::instance_net(std::size_t cut) const {
  if (shared_layers_.size() != layers_.size())
    throw std::logic_error("CompiledModel::instance_net: only the primary plan owns snapshots");
  if (cut > shared_layers_.size())
    throw std::out_of_range("CompiledModel::instance_net: cut out of range");
  nn::Sequential out;
  for (std::size_t i = 0; i < shared_layers_.size(); ++i) {
    if (i < cut)
      out.add(std::make_unique<SharedLayer>(shared_layers_[i]));
    else
      out.add(shared_layers_[i]->clone());
  }
  return out;
}

CompiledModel CompiledModel::rebind(nn::Sequential& net) const {
  OBS_SPAN("compile.rebind");
  if (net.size() != layers_.size())
    throw std::invalid_argument("CompiledModel::rebind: layer count differs from the plan");
  CompiledModel out;
  out.layers_.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) out.layers_.push_back(unwrap(net.layer(i)));
  out.build_nodes();
  if (out.nodes_.size() != nodes_.size())
    throw std::invalid_argument("CompiledModel::rebind: node structure differs from the plan");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& plan = nodes_[i];
    Node& nd = out.nodes_[i];
    if (nd.kind != plan.kind || nd.first != plan.first || nd.count != plan.count)
      throw std::invalid_argument("CompiledModel::rebind: node structure differs from the plan");
    // Share the plan's pack-once panels; the version check in gemm_into
    // turns them copy-on-write the moment this instance mutates a weight.
    nd.panels = plan.panels;
    nd.packed_version = plan.packed_version;
  }
  return out;
}

std::size_t CompiledModel::fused_nodes() const {
  std::size_t n = 0;
  for (const Node& nd : nodes_)
    if (nd.kind != Node::Kind::kOpaque) ++n;
  return n;
}

std::vector<NodeInfo> CompiledModel::describe() const {
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const Node& nd : nodes_) {
    NodeInfo info;
    info.name = nd.layer->name();
    info.kind = nd.kind == Node::Kind::kDense ? "dense"
                : nd.kind == Node::Kind::kConv ? "conv"
                                               : "opaque";
    info.first = nd.first;
    info.layers = nd.count;
    info.fused_relu = nd.relu;
    info.has_panels = nd.panels != nullptr;
    info.panel_refs = nd.panels ? static_cast<long>(nd.panels.use_count()) : 0;
    info.panel_id = nd.panels.get();
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::int64_t> head_predictions(CompiledModel& cm, std::size_t cut,
                                           const Tensor& features, std::int64_t batch_size) {
  const std::int64_t n = features.dim(0);
  std::vector<std::int64_t> pred;
  pred.reserve(static_cast<std::size_t>(n));
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    const Tensor logits = cm.forward_from(cut, features.slice0(begin, end));
    for (auto p : ops::argmax_rows(logits)) pred.push_back(p);
  }
  return pred;
}

double head_accuracy(CompiledModel& cm, std::size_t cut, const Tensor& features,
                     const std::vector<std::int64_t>& labels, std::int64_t batch_size) {
  const auto pred = head_predictions(cm, cut, features, batch_size);
  if (pred.size() != labels.size())
    throw std::invalid_argument("compile::head_accuracy: label count mismatch");
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return pred.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace fsa::compile
