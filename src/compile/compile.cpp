#include "compile/compile.h"

#include <cstdlib>
#include <cstring>

namespace fsa::compile {

namespace {

// -1 = not yet resolved, 0 = off, 1 = on. Plain int: resolution happens on
// the main thread (CLI flag parsing / first SweepRunner) before workers.
int g_state = -1;

int read_env() {
  const char* v = std::getenv("FSA_COMPILE");
  if (v == nullptr) return 0;
  return (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
          std::strcmp(v, "yes") == 0)
             ? 1
             : 0;
}

}  // namespace

bool enabled() {
  if (g_state < 0) g_state = read_env();
  return g_state == 1;
}

void set_enabled(bool on) { g_state = on ? 1 : 0; }

}  // namespace fsa::compile
