// bench_fig3_tolerance.cpp — regenerates the paper's Figure 3.
//
// Paper claim: the success rate over the S fault images stays ≈100% while
// S is below the model's fault tolerance (≈10 for their nets when
// modifying the last FC layer) and degrades beyond it — the number of
// SUCCESSFULLY injected faults saturates around the tolerance regardless
// of how many are requested.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

namespace {

const std::vector<std::int64_t> kSSweep = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

void run_series(fsa::models::ZooModel& model, const std::string& cache_dir, const char* tag,
                fsa::eval::Table& table) {
  using namespace fsa;
  engine::SweepRunner runner(model, cache_dir);
  // The paper sweeps S to ~2× its tolerance knee (~10 on its nets). Our
  // substitute models tolerate more, so the sweep extends until the knee
  // is visible (bounded by the attack pool size). R = S + 100 sneak images.
  engine::Sweep sweep;
  sweep.layers({"fc3"})
      .s_values(kSSweep)
      .r_offset(100)
      .seed_fn([](std::int64_t s, std::int64_t) { return 7000 + static_cast<std::uint64_t>(s); })
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(cache_dir + "/results_fig3_" + tag + ".json");

  std::vector<std::string> rate_row = {std::string(tag) + " success"};
  std::vector<std::string> count_row = {std::string(tag) + " injected"};
  for (const std::int64_t s : kSSweep) {
    const auto& rep = result.row("fsa-l0", s, s + 100).report;
    rate_row.push_back(eval::pct(rep.success_rate));
    count_row.push_back(std::to_string(rep.targets_hit));
  }
  table.row(rate_row);
  table.row(count_row);
}

}  // namespace

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;

  eval::Table table("Figure 3: fault success rate vs S (last FC layer, R = S + 100)");
  std::vector<std::string> header = {"series"};
  for (std::int64_t s : kSSweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  run_series(zoo.digits(), zoo.cache_dir(), "digits", table);
  run_series(zoo.objects(), zoo.cache_dir(), "objects", table);
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_fig3.csv");
  std::printf("\nThe knee in the success series is the model's sneaking-fault tolerance.\n");
  std::printf("[fig3] total %.1fs\n", total.seconds());
  return 0;
}
