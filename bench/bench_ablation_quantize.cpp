// bench_ablation_quantize.cpp — extension: does δ survive narrow storage?
//
// The paper's threat model writes arbitrary float32 values; real
// deployments often store parameters in bfloat16/float16/int8. This
// harness solves the attack once in float32 (through the engine), then
// REALIZES the modification in each storage format (rounding θ0 + δ to
// the grid) and re-checks (a) the injected faults, (b) the maintained
// images, and (c) the realized ‖δ‖₀. Expected shape: bf16/fp16 absorb a
// few tiny modifications but the attack survives; aggressive int8
// rounding starts to eat it — which tells the attacker to demand a
// confidence margin κ matched to the storage grid.
#include <cstdio>

#include "core/attack_metrics.h"
#include "engine/sweep.h"
#include "eval/table.h"
#include "faultsim/quantize.h"
#include "tensor/ops.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::Sweep sweep;
  sweep.layers({"fc3"}).sr_pairs({{2, 100}}).seeds({9400}).measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  const auto& rep = result.rows.front().report;
  std::printf("\nFloat32 attack: %lld/2 faults, l0=%lld, l2=%.3f\n",
              static_cast<long long>(rep.targets_hit), static_cast<long long>(rep.l0), rep.l2);

  eval::AttackBench& bench = runner.bench({"fc3"});
  const core::AttackSpec spec = bench.spec(2, 100, /*seed=*/9400);

  eval::Table table("Extension: the same δ realized in narrower storage formats");
  table.header({"format", "realized l0", "faults kept", "anchors kept", "test acc"});

  for (const auto format :
       {faultsim::StorageFormat::kFloat32, faultsim::StorageFormat::kBfloat16,
        faultsim::StorageFormat::kFloat16, faultsim::StorageFormat::kInt8}) {
    const Tensor realized =
        faultsim::realize_in_format(bench.attack().theta0(), rep.delta, format);
    const auto [hit, kept] = core::with_delta(bench.attack(), realized, [&] {
      const Tensor logits =
          zoo.digits().net.forward_from(bench.attack().cut(), spec.features);
      return core::count_satisfied(logits, spec);
    });
    const double acc = bench.test_accuracy_with(realized);
    table.row({faultsim::format_name(format), std::to_string(ops::l0_norm(realized)),
               std::to_string(hit) + "/" + std::to_string(spec.S),
               std::to_string(kept) + "/" + std::to_string(spec.R() - spec.S),
               eval::pct(acc)});
    std::printf("[quantize] %s: l0=%lld faults %lld/%lld\n", faultsim::format_name(format),
                static_cast<long long>(ops::l0_norm(realized)), static_cast<long long>(hit),
                static_cast<long long>(spec.S));
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_quantize.csv");
  return 0;
}
