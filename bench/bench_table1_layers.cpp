// bench_table1_layers.cpp — regenerates the paper's Table 1.
//
// Paper claim: the ℓ0 norm (number of modified parameters) grows with the
// number of faults S = R, and the LAST fully connected layer needs far
// fewer modifications than fc1/fc2 because it acts on the logits directly.
// Paper numbers (MNIST): fc1 205000 params → 14016/40649/120597 modified
// for S=R=1/4/16; fc2 40200 → 5390/14086/34069; fc3 2010 → 222/682/1755.
// We match the TREND (monotone in S, fc3 ≪ fc2 ≪ fc1 relative to size),
// not the absolute counts — the trained weights differ.
//
// The 3 layers × 3 instances are independent, so the sweep engine runs all
// nine concurrently on the thread pool (FSA_NUM_THREADS workers); the
// serial per-instance loop this bench used to hand-roll is gone.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  const std::vector<std::int64_t> sweep_s = {1, 4, 16};
  const std::vector<std::string> layers = {"fc1", "fc2", "fc3"};

  engine::Sweep sweep;
  sweep.layer_sets({{"fc1"}, {"fc2"}, {"fc3"}})
      .s_values(sweep_s)
      .r_equals_s()
      .seed_fn([](std::int64_t s, std::int64_t) { return 1000 + static_cast<std::uint64_t>(s); })
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_table1.json");

  eval::Table table("Table 1: l0 norm of modifications per FC layer (digits, S=R)");
  table.header({"layer", "total params", "l0 S=1,R=1", "l0 S=4,R=4", "l0 S=16,R=16",
                "success S=16"});
  for (const auto& layer : layers) {
    std::vector<std::string> row = {layer,
                                    std::to_string(runner.bench({layer}).attack().mask().size())};
    std::string success16;
    for (const std::int64_t s : sweep_s) {
      // Rows are matched by surface via the tagless lookup: all three layer
      // sweeps share (method, S, R), so scan for the matching surface key.
      for (const auto& r : result.rows)
        if (r.spec.layers == std::vector<std::string>{layer} && r.spec.S == s) {
          row.push_back(std::to_string(r.report.l0));
          if (s == 16) success16 = eval::pct(r.report.success_rate);
        }
    }
    row.push_back(success16);
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table1.csv");
  std::printf("\n[table1] total %.1fs on %d worker(s) (batched; re-run with FSA_NUM_THREADS=1\n"
              "for the serial baseline — identical numbers, longer wall clock)\n",
              total.seconds(), result.workers);
  return 0;
}
