// bench_table1_layers.cpp — regenerates the paper's Table 1.
//
// Paper claim: the ℓ0 norm (number of modified parameters) grows with the
// number of faults S = R, and the LAST fully connected layer needs far
// fewer modifications than fc1/fc2 because it acts on the logits directly.
// Paper numbers (MNIST): fc1 205000 params → 14016/40649/120597 modified
// for S=R=1/4/16; fc2 40200 → 5390/14086/34069; fc3 2010 → 222/682/1755.
// We match the TREND (monotone in S, fc3 ≪ fc2 ≪ fc1 relative to size),
// not the absolute counts — the trained weights differ.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  models::ZooModel& digits = zoo.digits();

  const std::vector<std::int64_t> sweep = {1, 4, 16};
  const std::vector<std::string> layers = {"fc1", "fc2", "fc3"};

  eval::Table table("Table 1: l0 norm of modifications per FC layer (digits, S=R)");
  table.header({"layer", "total params", "l0 S=1,R=1", "l0 S=4,R=4", "l0 S=16,R=16",
                "success S=16"});

  for (const auto& layer : layers) {
    eval::AttackBench bench(digits, zoo.cache_dir(), {layer});
    std::vector<std::string> row = {layer, std::to_string(bench.attack().mask().size())};
    std::string success16;
    for (const std::int64_t s : sweep) {
      const core::AttackSpec spec = bench.spec(s, s, /*seed=*/1000 + static_cast<std::uint64_t>(s));
      core::FaultSneakingConfig cfg;
      const core::FaultSneakingResult res = bench.attack().run(spec, cfg);
      row.push_back(std::to_string(res.l0));
      if (s == 16) success16 = eval::pct(res.success_rate);
      std::printf("[table1] %s S=R=%lld: l0=%lld targets %lld/%lld (%.1fs)\n", layer.c_str(),
                  static_cast<long long>(s), static_cast<long long>(res.l0),
                  static_cast<long long>(res.targets_hit), static_cast<long long>(s), res.seconds);
    }
    row.push_back(success16);
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table1.csv");
  std::printf("\n[table1] total %.1fs\n", total.seconds());
  return 0;
}
