// bench_ablation_faultsim.cpp — ablation: what does δ cost in hardware?
//
// The paper motivates minimizing ‖δ‖₀ with the §2.3 observation that
// locating/flipping memory bits is the expensive part of a physical fault
// attack. This harness makes that concrete: run the ℓ0 and ℓ2 attacks on
// the same fault spec (one sweep, two methods), lower both δ's to IEEE-754
// bit-flip plans, and simulate laser and row-hammer campaigns. Expected
// shape: the ℓ0 attack needs a fraction of the bits/rows and an order less
// campaign time — i.e. the ℓ0 objective is the right proxy for attack
// implementability.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"
#include "faultsim/campaign.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "fsa-l2"})
      .layers({"fc3"})
      .sr_pairs({{2, 100}})
      .seeds({9001})
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);

  const Tensor theta0 = runner.bench({"fc3"}).attack().theta0();
  eval::Table table("Ablation: hardware realization cost of the l0 vs l2 attack (S=2, R=100)");
  table.header({"attack", "params", "bit flips", "rows", "laser time", "rowhammer time",
                "rh massages", "campaign ok"});

  const faultsim::MemoryLayout layout;
  for (const char* method : {"fsa-l0", "fsa-l2"}) {
    const auto& rep = result.row(method, 2, 100).report;
    const auto plan = faultsim::plan_bit_flips(theta0, rep.delta, layout);
    const auto laser = faultsim::simulate_laser(plan, faultsim::LaserParams{}, layout);
    Rng rng(42);
    const auto hammer =
        faultsim::simulate_rowhammer(plan, faultsim::RowHammerParams{}, layout, rng);
    auto hours = [](double s) { return eval::fmt(s / 3600.0, 2) + " h"; };
    table.row({method, std::to_string(plan.params_modified),
               std::to_string(plan.total_bit_flips), std::to_string(plan.rows_touched),
               hours(laser.seconds), hours(hammer.seconds), std::to_string(hammer.massages),
               (laser.success && hammer.success) ? "yes" : "no"});
    std::printf("[faultsim] %s: params=%lld bits=%lld laser=%.2fh hammer=%.2fh\n", method,
                static_cast<long long>(plan.params_modified),
                static_cast<long long>(plan.total_bit_flips), laser.seconds / 3600.0,
                hammer.seconds / 3600.0);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_faultsim.csv");
  return 0;
}
