// bench_ablation_faultsim.cpp — ablation: what does δ cost in hardware?
//
// The paper motivates minimizing ‖δ‖₀ with the §2.3 observation that
// locating/flipping memory bits is the expensive part of a physical fault
// attack. This harness makes that concrete through the engine's campaign
// stage: run the ℓ0 and ℓ2 attacks on the same fault spec (one sweep, two
// methods) with Sweep::with_campaign, so every row is lowered to an
// IEEE-754 bit-flip plan and simulated against all three injector cost
// models on the 8-way-sharded CampaignRunner. Expected shape: the ℓ0
// attack needs a fraction of the bits/rows and an order less campaign
// time — i.e. the ℓ0 objective is the right proxy for implementability.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::CampaignConfig campaign;
  campaign.injectors = {"laser", "rowhammer", "clock-glitch"};
  campaign.shards = 8;

  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "fsa-l2"})
      .layers({"fc3"})
      .sr_pairs({{2, 100}})
      .seeds({9001})
      .measure_accuracy(false)
      .with_campaign(campaign);
  const engine::SweepResult result = runner.run(sweep);

  result.table("Ablation: hardware realization cost of the l0 vs l2 attack (S=2, R=100)")
      .print();
  result.table("faultsim").write_csv(zoo.cache_dir() + "/results_faultsim.csv");

  for (const char* method : {"fsa-l0", "fsa-l2"}) {
    const auto& rep = result.row(method, 2, 100).report;
    const engine::CampaignSummary& cs = *rep.campaign;
    std::printf("[faultsim] %s: params=%lld bits=%lld laser=%.2fh hammer=%.2fh glitch=%.2fh\n",
                method, static_cast<long long>(cs.params_modified),
                static_cast<long long>(cs.total_bit_flips),
                cs.report("laser").seconds / 3600.0, cs.report("rowhammer").seconds / 3600.0,
                cs.report("clock-glitch").seconds / 3600.0);
  }
  return 0;
}
