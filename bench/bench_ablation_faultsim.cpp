// bench_ablation_faultsim.cpp — ablation: what does δ cost in hardware?
//
// The paper motivates minimizing ‖δ‖₀ with the §2.3 observation that
// locating/flipping memory bits is the expensive part of a physical fault
// attack. This harness makes that concrete: run the ℓ0 and ℓ2 attacks on
// the same fault spec, lower both δ's to IEEE-754 bit-flip plans, and
// simulate laser and row-hammer campaigns. Expected shape: the ℓ0 attack
// needs a fraction of the bits/rows and an order less campaign time —
// i.e. the ℓ0 objective is the right proxy for attack implementability.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/table.h"
#include "faultsim/campaign.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});
  const core::AttackSpec spec = bench.spec(2, 100, /*seed=*/9001);

  eval::Table table("Ablation: hardware realization cost of the l0 vs l2 attack (S=2, R=100)");
  table.header({"attack", "params", "bit flips", "rows", "laser time", "rowhammer time",
                "rh massages", "campaign ok"});

  const faultsim::MemoryLayout layout;
  for (const core::NormKind norm : {core::NormKind::kL0, core::NormKind::kL2}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.norm = norm;
    const core::FaultSneakingResult res = bench.attack().run(spec, cfg);
    const auto plan = faultsim::plan_bit_flips(bench.attack().theta0(), res.delta, layout);
    const auto laser = faultsim::simulate_laser(plan, faultsim::LaserParams{}, layout);
    Rng rng(42);
    const auto hammer =
        faultsim::simulate_rowhammer(plan, faultsim::RowHammerParams{}, layout, rng);
    auto hours = [](double s) { return eval::fmt(s / 3600.0, 2) + " h"; };
    table.row({norm == core::NormKind::kL0 ? "l0 attack" : "l2 attack",
               std::to_string(plan.params_modified), std::to_string(plan.total_bit_flips),
               std::to_string(plan.rows_touched), hours(laser.seconds), hours(hammer.seconds),
               std::to_string(hammer.massages),
               (laser.success && hammer.success) ? "yes" : "no"});
    std::printf("[faultsim] %s: params=%lld bits=%lld laser=%.2fh hammer=%.2fh\n",
                norm == core::NormKind::kL0 ? "l0" : "l2",
                static_cast<long long>(plan.params_modified),
                static_cast<long long>(plan.total_bit_flips), laser.seconds / 3600.0,
                hammer.seconds / 3600.0);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_faultsim.csv");
  return 0;
}
