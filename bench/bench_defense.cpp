// bench_defense.cpp — extension: the attack against deployed defenses.
//
// Two practical countermeasures to memory fault injection, evaluated
// against the ℓ0 and ℓ2 fault sneaking attacks on the same spec:
//
//  * ChecksumGuard — CRC32 blocks over the parameter memory. Detects ANY
//    modification; the question is localization vs overhead, and that the
//    ℓ0 attack (few touched words) trips far fewer blocks — cheaper for
//    an attacker to dodge if the defender only samples blocks.
//  * RangeGuard — per-group value-range sanitization. Cheap, but blind to
//    in-range modifications; we measure how much of each attack SURVIVES
//    clamping (faults still injected after sanitization).
//
// The two solves run through the sweep engine; the defense post-processing
// consumes each row's δ from the unified report.
#include <cstdio>

#include "core/attack_metrics.h"
#include "defense/checksum_guard.h"
#include "defense/range_guard.h"
#include "engine/sweep.h"
#include "eval/table.h"
#include "tensor/ops.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "fsa-l2"})
      .layers({"fc3"})
      .sr_pairs({{2, 100}})
      .seeds({9600})
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);

  eval::AttackBench& bench = runner.bench({"fc3"});
  const core::AttackSpec spec = bench.spec(2, 100, /*seed=*/9600);
  const Tensor theta0 = bench.attack().theta0();

  const defense::ChecksumGuard checksum(theta0, /*block_params=*/64);
  const defense::RangeGuard range(theta0, /*group_params=*/201, /*slack=*/0.10);

  eval::Table table("Extension: fault sneaking attack vs deployed defenses (S=2, R=100)");
  table.header({"attack", "l0", "checksum blocks flagged", "range violations",
                "faults after clamping", "acc after clamping"});

  for (const char* method : {"fsa-l0", "fsa-l2"}) {
    const auto& rep = result.row(method, 2, 100).report;

    Tensor attacked = theta0;
    attacked += rep.delta;
    const auto check = checksum.verify(attacked);

    Tensor sanitized = attacked;
    const auto ranges = range.sanitize(sanitized);
    // Effective modification surviving sanitization:
    Tensor survived = sanitized;
    survived -= theta0;
    const auto [hit, kept] = core::with_delta(bench.attack(), survived, [&] {
      const Tensor logits = zoo.digits().net.forward_from(bench.attack().cut(), spec.features);
      return core::count_satisfied(logits, spec);
    });
    const double acc = bench.test_accuracy_with(survived);

    table.row({method, std::to_string(rep.l0),
               std::to_string(check.blocks_flagged) + "/" + std::to_string(checksum.block_count()),
               std::to_string(ranges.out_of_range),
               std::to_string(hit) + "/" + std::to_string(spec.S), eval::pct(acc)});
    std::printf("[defense] %s: flagged %lld blocks, %lld range hits, faults %lld/%lld survive\n",
                method, static_cast<long long>(check.blocks_flagged),
                static_cast<long long>(ranges.out_of_range), static_cast<long long>(hit),
                static_cast<long long>(spec.S));
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_defense.csv");
  std::printf(
      "\nChecksums detect everything but localize differently; range sanitization\n"
      "only bites when the attack leaves the trained value envelope — the l2\n"
      "attack's small modifications typically survive it intact.\n");
  return 0;
}
