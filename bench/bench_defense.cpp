// bench_defense.cpp — extension: the attack against deployed defenses.
//
// Two practical countermeasures to memory fault injection, evaluated
// against the ℓ0 and ℓ2 fault sneaking attacks on the same spec:
//
//  * ChecksumGuard — CRC32 blocks over the parameter memory. Detects ANY
//    modification; the question is localization vs overhead, and that the
//    ℓ0 attack (few touched words) trips far fewer blocks — cheaper for
//    an attacker to dodge if the defender only samples blocks.
//  * RangeGuard — per-group value-range sanitization. Cheap, but blind to
//    in-range modifications; we measure how much of each attack SURVIVES
//    clamping (faults still injected after sanitization).
#include <cstdio>

#include "core/attack_metrics.h"
#include "defense/checksum_guard.h"
#include "defense/range_guard.h"
#include "eval/attack_bench.h"
#include "eval/table.h"
#include "tensor/ops.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});
  const core::AttackSpec spec = bench.spec(2, 100, /*seed=*/9600);
  const Tensor theta0 = bench.attack().theta0();

  const defense::ChecksumGuard checksum(theta0, /*block_params=*/64);
  const defense::RangeGuard range(theta0, /*group_params=*/201, /*slack=*/0.10);

  eval::Table table("Extension: fault sneaking attack vs deployed defenses (S=2, R=100)");
  table.header({"attack", "l0", "checksum blocks flagged", "range violations",
                "faults after clamping", "acc after clamping"});

  for (const core::NormKind norm : {core::NormKind::kL0, core::NormKind::kL2}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.norm = norm;
    const core::FaultSneakingResult res = bench.attack().run(spec, cfg);

    Tensor attacked = theta0;
    attacked += res.delta;
    const auto check = checksum.verify(attacked);

    Tensor sanitized = attacked;
    const auto ranges = range.sanitize(sanitized);
    // Effective modification surviving sanitization:
    Tensor survived = sanitized;
    survived -= theta0;
    const auto [hit, kept] = core::with_delta(bench.attack(), survived, [&] {
      const Tensor logits = zoo.digits().net.forward_from(bench.attack().cut(), spec.features);
      return core::count_satisfied(logits, spec);
    });
    const double acc = bench.test_accuracy_with(survived);

    table.row({norm == core::NormKind::kL0 ? "l0 attack" : "l2 attack", std::to_string(res.l0),
               std::to_string(check.blocks_flagged) + "/" + std::to_string(checksum.block_count()),
               std::to_string(ranges.out_of_range),
               std::to_string(hit) + "/" + std::to_string(spec.S), eval::pct(acc)});
    std::printf("[defense] %s: flagged %lld blocks, %lld range hits, faults %lld/%lld survive\n",
                norm == core::NormKind::kL0 ? "l0" : "l2",
                static_cast<long long>(check.blocks_flagged),
                static_cast<long long>(ranges.out_of_range), static_cast<long long>(hit),
                static_cast<long long>(spec.S));
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_defense.csv");
  std::printf(
      "\nChecksums detect everything but localize differently; range sanitization\n"
      "only bites when the attack leaves the trained value envelope — the l2\n"
      "attack's small modifications typically survive it intact.\n");
  return 0;
}
