// bench_micro_ops.cpp — google-benchmark microbenchmarks of the kernels
// the attack spends its time in: GEMM, conv forward, margin evaluation,
// proximal operators, and a full ADMM iteration on the paper-sized head.
//
// The GEMM section pins the speedup story: BM_GemmSeedSerial is a frozen
// copy of the seed repo's serial i-k-j kernel; BM_Gemm runs the active
// backend at 1/2/4 threads (second arg); BM_GemmBackend/<name>/<size>
// emits one comparison row per registered compute backend at 512³
// (L2-resident) and 2048³ (L2-spilling — where the packed backend's panel
// packing shows up). Every GEMM row reports GFLOP/s alongside wall time.
// Run via tools/run_benches.sh to get the machine-readable
// BENCH_micro_ops.json trajectory; speedup = seed-kernel time / backend
// time at matching sizes.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "backend/compute_backend.h"
#include "core/admm.h"
#include "core/prox.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace {

using namespace fsa;

double gemm_gflops(const benchmark::State& state, std::int64_t m, std::int64_t k,
                   std::int64_t n) {
  (void)state;
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n) * 1e-9;
}

/// The seed repo's serial GEMM (i-k-j, zero-skip), kept verbatim as the
/// baseline the backend's acceptance speedup is measured against.
void seed_matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float* Ci = C + i * n;
    const float* Ai = A + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float aip = Ai[p];
      if (aip == 0.0f) continue;
      const float* Bp = B + p * n;
      for (std::int64_t j = 0; j < n; ++j) Ci[j] += aip * Bp[j];
    }
  }
}

void BM_GemmSeedSerial(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape({n, n}), rng);
  const Tensor b = Tensor::randn(Shape({n, n}), rng);
  Tensor c(Shape({n, n}));
  for (auto _ : state) {
    c.fill(0.0f);
    seed_matmul_acc(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(gemm_gflops(state, n, n, n), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmSeedSerial)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

// Backend GEMM; Args are {size, threads}. The 1-thread rows isolate the
// blocking/tiling win, the 2/4-thread rows add the pool on top.
void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  const auto threads = static_cast<int>(state.range(1));
  set_num_threads(threads);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape({n, n}), rng);
  const Tensor b = Tensor::randn(Shape({n, n}), rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  set_num_threads(0);
  state.counters["GFLOPS"] =
      benchmark::Counter(gemm_gflops(state, n, n, n), benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)
    ->ArgsProduct({{64, 128, 256, 512}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_GemmHeadShape(benchmark::State& state) {
  // The fc3 head at R=1000: [1000, 200] · [200, 10].
  Rng rng(2);
  const Tensor feats = Tensor::randn(Shape({1000, 200}), rng);
  const Tensor w = Tensor::randn(Shape({200, 10}), rng);
  for (auto _ : state) {
    Tensor logits = ops::matmul(feats, w);
    benchmark::DoNotOptimize(logits.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(gemm_gflops(state, 1000, 200, 10),
                                                benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmHeadShape);

/// One row per registered compute backend (registered from main(), so new
/// backends show up without a bench edit): square GEMM at 512³, which is
/// L2-resident, and at 2048³, where B alone is 16 MiB and spills L2 — the
/// shape the packed backend's pack-once-reuse-across-jr panels exist for.
/// The per-run trajectory (tools/run_benches.sh) makes the packing win
/// visible release over release.
void register_gemm_backend_benches() {
  for (const auto& name : fsa::backend::backend_names()) {
    for (const std::int64_t size : {std::int64_t{512}, std::int64_t{2048}}) {
      benchmark::RegisterBenchmark(
          ("BM_GemmBackend/" + name + "/" + std::to_string(size)).c_str(),
          [name, size](benchmark::State& state) {
            const std::string saved = backend::active_name();
            backend::set_backend(name);
            Rng rng(1);
            const Tensor a = Tensor::randn(Shape({size, size}), rng);
            const Tensor b = Tensor::randn(Shape({size, size}), rng);
            Tensor c(Shape({size, size}));
            for (auto _ : state) {
              c.fill(0.0f);
              backend::active().gemm_nn_acc(a.data(), b.data(), c.data(), size, size, size);
              benchmark::DoNotOptimize(c.data());
            }
            backend::set_backend(saved);
            state.counters["GFLOPS"] = benchmark::Counter(
                gemm_gflops(state, size, size, size),
                benchmark::Counter::kIsIterationInvariantRate);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// Args are {batch, threads}; the workspace-reusing im2col plus the blocked
// GEMM make this the conv half of the speedup story.
void BM_ConvForward(benchmark::State& state) {
  const auto batch = state.range(0);
  const auto threads = static_cast<int>(state.range(1));
  set_num_threads(threads);
  Rng rng(3);
  nn::Conv2D conv("conv", 32, 32, 3, rng);
  const Tensor x = Tensor::randn(Shape({batch, 32, 26, 26}), rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  set_num_threads(0);
}
BENCHMARK(BM_ConvForward)->ArgsProduct({{1, 16}, {1, 2, 4}});

void BM_MaxPoolForward(benchmark::State& state) {
  Rng rng(4);
  nn::MaxPool2D pool("pool", 2);
  const Tensor x = Tensor::randn(Shape({16, 32, 24, 24}), rng);
  for (auto _ : state) {
    Tensor y = pool.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MaxPoolForward);

void BM_ProxL0(benchmark::State& state) {
  Rng rng(5);
  const Tensor v = Tensor::randn(Shape({state.range(0)}), rng);
  for (auto _ : state) {
    Tensor z = core::prox_l0(v, 200.0);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ProxL0)->Arg(2010)->Arg(205000);

void BM_ProxL2(benchmark::State& state) {
  Rng rng(6);
  const Tensor v = Tensor::randn(Shape({state.range(0)}), rng);
  for (auto _ : state) {
    Tensor z = core::prox_l2(v, 200.0);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ProxL2)->Arg(2010)->Arg(205000);

void BM_MarginEval(benchmark::State& state) {
  const auto r = state.range(0);
  Rng rng(7);
  core::AttackSpec spec;
  spec.S = 4;
  spec.features = Tensor::randn(Shape({r, 200}), rng);
  spec.labels.assign(static_cast<std::size_t>(r), 3);
  const Tensor logits = Tensor::randn(Shape({r, 10}), rng);
  for (auto _ : state) {
    auto e = core::eval_margin(logits, spec);
    benchmark::DoNotOptimize(e.total_g);
  }
}
BENCHMARK(BM_MarginEval)->Arg(10)->Arg(1000);

/// One full ADMM iteration on a paper-sized fc3 head (200→10, R images):
/// z-prox + batched forward/backward + δ/s updates.
void BM_AdmmIteration(benchmark::State& state) {
  const auto r = state.range(0);
  Rng rng(8);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>("fc3", 200, 10, rng));
  const core::ParamMask mask = core::ParamMask::make(net, {"fc3"});
  core::AdmmSolver solver(net, mask);
  core::AttackSpec spec;
  spec.S = 2;
  spec.features = Tensor::randn(Shape({r, 200}), rng);
  spec.labels.assign(static_cast<std::size_t>(r), 0);
  for (std::int64_t i = 0; i < spec.S; ++i) spec.labels[static_cast<std::size_t>(i)] = 5;
  core::AdmmConfig cfg;
  cfg.iterations = 1;
  cfg.check_every = 0;
  for (auto _ : state) {
    auto res = solver.solve(spec, cfg);
    benchmark::DoNotOptimize(res.delta.data());
  }
}
BENCHMARK(BM_AdmmIteration)->Arg(10)->Arg(100)->Arg(1000);

// Full ADMM iteration at R=1000 across thread counts — the end-to-end
// number the parallel backend exists to improve.
void BM_AdmmIterationThreads(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  set_num_threads(threads);
  Rng rng(8);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>("fc3", 200, 10, rng));
  const core::ParamMask mask = core::ParamMask::make(net, {"fc3"});
  core::AdmmSolver solver(net, mask);
  core::AttackSpec spec;
  spec.S = 2;
  spec.features = Tensor::randn(Shape({1000, 200}), rng);
  spec.labels.assign(1000, 0);
  for (std::int64_t i = 0; i < spec.S; ++i) spec.labels[static_cast<std::size_t>(i)] = 5;
  core::AdmmConfig cfg;
  cfg.iterations = 1;
  cfg.check_every = 0;
  for (auto _ : state) {
    auto res = solver.solve(spec, cfg);
    benchmark::DoNotOptimize(res.delta.data());
  }
  set_num_threads(0);
}
BENCHMARK(BM_AdmmIterationThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// BENCHMARK_MAIN, plus the dynamically registered per-backend GEMM rows.
int main(int argc, char** argv) {
  register_gemm_backend_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
