// bench_ablation_admm.cpp — ablation over the solver's design choices.
//
// Three knobs DESIGN.md calls out:
//   1. ρ — couples the ℓ0 keep-threshold √(2/ρ) AND the proximal
//      stiffness: small ρ keeps more parameters, large ρ prunes harder but
//      eventually starves the attack (success collapses once c·|feature|
//      falls below √(2ρ));
//   2. support-restricted refinement — repairs the constraint violations
//      hard-thresholding introduces; without it success drops;
//   3. c-escalation — rescues instances the first c cannot solve.
//
// Every ablation point is an independent instance with its own
// pre-configured FsaAttacker, so ALL eleven points run as one concurrent
// sweep (per-instance attacker overrides are exactly what the engine's
// SweepSpec::attacker hook is for).
#include <cstdio>
#include <memory>

#include "engine/attackers.h"
#include "engine/sweep.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::Sweep sweep;
  auto add_point = [&](std::string tag, std::int64_t s, std::int64_t r, std::uint64_t seed,
                       const core::FaultSneakingConfig& cfg) {
    engine::SweepSpec spec;
    spec.layers = {"fc3"};
    spec.S = s;
    spec.R = r;
    spec.seed = seed;
    spec.tag = std::move(tag);
    spec.attacker = std::make_shared<engine::FsaAttacker>(cfg);
    spec.measure_accuracy = false;
    sweep.add(spec);
  };

  // ---- 1. ρ sweep (S=2, R=50) ------------------------------------------------
  const std::vector<double> rhos = {25.0, 100.0, 400.0, 1000.0, 2000.0, 4000.0, 16000.0};
  for (const double rho : rhos) {
    core::FaultSneakingConfig cfg;
    cfg.admm.rho = rho;
    add_point("rho=" + eval::fmt(rho, 0), 2, 50, 9100, cfg);
  }

  // ---- 2. refinement on/off (S=4, R=100) --------------------------------------
  for (const bool refine : {true, false}) {
    core::FaultSneakingConfig cfg;
    cfg.refine_steps = refine ? cfg.refine_steps : 0;
    cfg.escalations = 0;  // isolate the refinement effect
    add_point(refine ? "refine=on" : "refine=off", 4, 100, 9200, cfg);
  }

  // ---- 3. c escalation on/off (S=12, R=100) -----------------------------------
  for (const bool escalate : {true, false}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.c = 1.0;  // start weak so escalation has something to do
    cfg.escalations = escalate ? 4 : 0;
    add_point(escalate ? "escalation=on" : "escalation=off", 12, 100, 9300, cfg);
  }

  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_ablation_admm.json");

  eval::Table rho_table("Ablation 1: rho sweep (S=2, R=50, digits fc3)");
  rho_table.header({"rho", "l0", "l2", "success", "maintained", "attempts"});
  for (const double rho : rhos) {
    const auto& rep = result.row_tagged("rho=" + eval::fmt(rho, 0)).report;
    rho_table.row({eval::fmt(rho, 0), std::to_string(rep.l0), eval::fmt(rep.l2, 2),
                   eval::pct(rep.success_rate),
                   std::to_string(rep.maintained) + "/" + std::to_string(rep.R - rep.S),
                   std::to_string(rep.attempts)});
  }
  rho_table.print();

  eval::Table ref_table("Ablation 2: support-restricted refinement (S=4, R=100)");
  ref_table.header({"refinement", "l0", "success", "maintained"});
  for (const bool refine : {true, false}) {
    const auto& rep = result.row_tagged(refine ? "refine=on" : "refine=off").report;
    ref_table.row({refine ? "on" : "off", std::to_string(rep.l0), eval::pct(rep.success_rate),
                   std::to_string(rep.maintained) + "/" + std::to_string(rep.R - rep.S)});
  }
  ref_table.print();

  eval::Table esc_table("Ablation 3: c-escalation on a hard instance (S=12, R=100)");
  esc_table.header({"escalation", "targets hit", "success", "attempts"});
  for (const bool escalate : {true, false}) {
    const auto& rep = result.row_tagged(escalate ? "escalation=on" : "escalation=off").report;
    esc_table.row({escalate ? "on" : "off",
                   std::to_string(rep.targets_hit) + "/" + std::to_string(rep.S),
                   eval::pct(rep.success_rate), std::to_string(rep.attempts)});
  }
  esc_table.print();

  rho_table.write_csv(zoo.cache_dir() + "/results_ablation_rho.csv");
  return 0;
}
