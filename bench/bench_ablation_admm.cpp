// bench_ablation_admm.cpp — ablation over the solver's design choices.
//
// Three knobs DESIGN.md calls out:
//   1. ρ — couples the ℓ0 keep-threshold √(2/ρ) AND the proximal
//      stiffness: small ρ keeps more parameters, large ρ prunes harder but
//      eventually starves the attack (success collapses once c·|feature|
//      falls below √(2ρ));
//   2. support-restricted refinement — repairs the constraint violations
//      hard-thresholding introduces; without it success drops;
//   3. c-escalation — rescues instances the first c cannot solve.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});
  const core::AttackSpec spec = bench.spec(2, 50, /*seed=*/9100);

  // ---- 1. ρ sweep -----------------------------------------------------------
  eval::Table rho_table("Ablation 1: rho sweep (S=2, R=50, digits fc3)");
  rho_table.header({"rho", "l0", "l2", "success", "maintained", "attempts"});
  for (const double rho : {25.0, 100.0, 400.0, 1000.0, 2000.0, 4000.0, 16000.0}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.rho = rho;
    const auto res = bench.attack().run(spec, cfg);
    rho_table.row({eval::fmt(rho, 0), std::to_string(res.l0), eval::fmt(res.l2, 2),
                   eval::pct(res.success_rate),
                   std::to_string(res.maintained) + "/" + std::to_string(spec.R() - spec.S),
                   std::to_string(res.attempts)});
    std::printf("[ablation] rho=%.0f: l0=%lld success=%s\n", rho,
                static_cast<long long>(res.l0), eval::pct(res.success_rate).c_str());
  }
  rho_table.print();

  // ---- 2. refinement on/off ---------------------------------------------------
  eval::Table ref_table("Ablation 2: support-restricted refinement (S=4, R=100)");
  ref_table.header({"refinement", "l0", "success", "maintained"});
  const core::AttackSpec spec4 = bench.spec(4, 100, /*seed=*/9200);
  for (const bool refine : {true, false}) {
    core::FaultSneakingConfig cfg;
    cfg.refine_steps = refine ? cfg.refine_steps : 0;
    cfg.escalations = 0;  // isolate the refinement effect
    const auto res = bench.attack().run(spec4, cfg);
    ref_table.row({refine ? "on" : "off", std::to_string(res.l0), eval::pct(res.success_rate),
                   std::to_string(res.maintained) + "/" + std::to_string(spec4.R() - spec4.S)});
  }
  ref_table.print();

  // ---- 3. c escalation on/off -------------------------------------------------
  eval::Table esc_table("Ablation 3: c-escalation on a hard instance (S=12, R=100)");
  esc_table.header({"escalation", "targets hit", "success", "attempts"});
  const core::AttackSpec hard = bench.spec(12, 100, /*seed=*/9300);
  for (const bool escalate : {true, false}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.c = 1.0;  // start weak so escalation has something to do
    cfg.escalations = escalate ? 4 : 0;
    const auto res = bench.attack().run(hard, cfg);
    esc_table.row({escalate ? "on" : "off",
                   std::to_string(res.targets_hit) + "/" + std::to_string(hard.S),
                   eval::pct(res.success_rate), std::to_string(res.attempts)});
  }
  esc_table.print();

  rho_table.write_csv(zoo.cache_dir() + "/results_ablation_rho.csv");
  return 0;
}
