// bench_fig2_l0_cifar.cpp — regenerates the paper's Figure 2.
//
// Same sweep as Figure 1 but on the CIFAR stand-in (the lower-accuracy
// model): ℓ0 of the last-FC modification vs S, one series per R. The
// paper's point is that the trends of Fig 1 persist on the weaker model,
// with less slack to hide faults (the R-monotone shrink fades earlier).
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.objects(), zoo.cache_dir(), {"fc3"});

  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  eval::Table table("Figure 2: l0 norm vs S, one series per R (objects, last FC layer)");
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const core::AttackSpec spec =
          bench.spec(s, r, 4000 + static_cast<std::uint64_t>(s * 7919 + r));
      const core::FaultSneakingResult res = bench.attack().run(spec);
      row.push_back(std::to_string(res.l0) + (res.all_targets_hit ? "" : "*"));
      std::printf("[fig2] S=%lld R=%lld: l0=%lld targets %lld/%lld (%.1fs)\n",
                  static_cast<long long>(s), static_cast<long long>(r),
                  static_cast<long long>(res.l0), static_cast<long long>(res.targets_hit),
                  static_cast<long long>(s), res.seconds);
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_fig2.csv");
  std::printf("\n(\"*\" marks runs where not all S faults could be injected.)\n");
  std::printf("[fig2] total %.1fs\n", total.seconds());
  return 0;
}
