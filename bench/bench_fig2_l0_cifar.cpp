// bench_fig2_l0_cifar.cpp — regenerates the paper's Figure 2.
//
// Same sweep as Figure 1 but on the CIFAR stand-in (the lower-accuracy
// model): ℓ0 of the last-FC modification vs S, one series per R. The
// paper's point is that the trends of Fig 1 persist on the weaker model,
// with less slack to hide faults (the R-monotone shrink fades earlier).
#include <cstdio>

#include "engine/sweep.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.objects(), zoo.cache_dir());

  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  engine::Sweep sweep;
  sweep.layers({"fc3"})
      .s_values(s_sweep)
      .r_values(r_sweep)
      .seed_fn([](std::int64_t s, std::int64_t r) {
        return 4000 + static_cast<std::uint64_t>(s * 7919 + r);
      })
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_fig2.json");

  eval::Table table("Figure 2: l0 norm vs S, one series per R (objects, last FC layer)");
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const auto& rep = result.row("fsa-l0", s, r).report;
      row.push_back(std::to_string(rep.l0) + (rep.all_targets_hit ? "" : "*"));
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_fig2.csv");
  std::printf("\n(\"*\" marks runs where not all S faults could be injected.)\n");
  std::printf("[fig2] total %.1fs on %d worker(s)\n", total.seconds(), result.workers);
  return 0;
}
