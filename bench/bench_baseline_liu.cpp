// bench_baseline_liu.cpp — regenerates the paper's §5.4 comparison against
// the ICCAD'17 fault injection attack (Liu et al.): same misclassification
// goal, how much collateral accuracy does each method burn?
//
// Paper numbers (one fault): fault sneaking attack loses 0.8% (MNIST) /
// 1.0% (CIFAR) of test accuracy; Liu et al. lose 3.86% / 2.35% in the
// BEST case. We run our attack (S=1, R=1000), GDA (gradient descent +
// compression, no stealth term), and SBA (single bias) on the same fault
// — one sweep, three methods from the registry — and report the drop.
// Expected shape: ours ≪ GDA ≤ SBA.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"

namespace {

void run_dataset(fsa::models::ZooModel& model, const std::string& cache_dir, const char* tag,
                 fsa::eval::Table& table) {
  using namespace fsa;
  engine::SweepRunner runner(model, cache_dir);

  // One shared fault: the same seed (→ the same image and target) for all
  // three methods, 999 maintain images available to those that use them.
  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "gda", "sba"}).layers({"fc3"}).sr_pairs({{1, 1000}}).seeds({8101});
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(cache_dir + "/results_baseline_" + tag + ".json");

  const double clean = runner.bench({"fc3"}).clean_test_accuracy();
  auto drop = [&](double acc) { return eval::fmt((clean - acc) * 100.0, 2) + " pts"; };
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"fsa-l0", " / fault sneaking (ours)"}, {"gda", " / GDA [16]"}, {"sba", " / SBA [16]"}};
  for (const auto& [method, label] : rows) {
    const auto& rep = result.row(method, 1, 1000).report;
    table.row({tag + label, std::to_string(rep.l0), eval::pct(rep.test_accuracy),
               drop(rep.test_accuracy), rep.all_targets_hit ? "yes" : "no"});
  }
  std::printf("[baseline/%s] clean %s | ours %s | gda %s | sba %s\n", tag,
              eval::pct(clean).c_str(),
              eval::pct(result.row("fsa-l0", 1, 1000).report.test_accuracy).c_str(),
              eval::pct(result.row("gda", 1, 1000).report.test_accuracy).c_str(),
              eval::pct(result.row("sba", 1, 1000).report.test_accuracy).c_str());
}

}  // namespace

int main() {
  fsa::models::ModelZoo zoo;
  fsa::eval::Table table("Sec 5.4: accuracy cost of one injected fault, ours vs Liu et al.");
  table.header({"dataset / method", "l0", "test acc after", "accuracy drop", "fault injected"});
  run_dataset(zoo.digits(), zoo.cache_dir(), "digits", table);
  run_dataset(zoo.objects(), zoo.cache_dir(), "objects", table);
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_baseline.csv");
  return 0;
}
