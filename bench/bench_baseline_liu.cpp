// bench_baseline_liu.cpp — regenerates the paper's §5.4 comparison against
// the ICCAD'17 fault injection attack (Liu et al.): same misclassification
// goal, how much collateral accuracy does each method burn?
//
// Paper numbers (one fault): fault sneaking attack loses 0.8% (MNIST) /
// 1.0% (CIFAR) of test accuracy; Liu et al. lose 3.86% / 2.35% in the
// BEST case. We run our attack (S=1, R=1000), SBA (single bias), and GDA
// (gradient descent + compression, no stealth term) on the same fault and
// report the drop. Expected shape: ours ≪ GDA ≤ SBA.
#include <cstdio>

#include "baseline/gda.h"
#include "baseline/sba.h"
#include "eval/attack_bench.h"
#include "eval/table.h"

namespace {

void run_dataset(fsa::models::ZooModel& model, const std::string& cache_dir, const char* tag,
                 fsa::eval::Table& table) {
  using namespace fsa;
  eval::AttackBench bench(model, cache_dir, {"fc3"});
  const double clean = bench.clean_test_accuracy();
  const std::size_t cut = bench.attack().cut();

  // One shared fault: the same image and target for all three methods.
  const core::AttackSpec rich_spec = bench.spec(1, 1000, /*seed=*/8101);

  // ---- fault sneaking attack (ours): S=1 with 999 maintain images ---------
  const core::FaultSneakingResult ours = bench.attack().run(rich_spec);
  const double ours_acc = bench.test_accuracy_with(ours.delta);

  // ---- GDA: same fault, no stealth images ----------------------------------
  const core::ParamMask mask = core::ParamMask::make(model.net, {"fc3"});
  baseline::GradientDescentAttack gda(model.net, mask);
  const baseline::GdaResult gda_res = gda.run(rich_spec);
  const Tensor theta0 = mask.gather_values();
  Tensor theta = theta0;
  theta += gda_res.delta;
  mask.scatter_values(theta);
  const double gda_acc = models::head_accuracy(model.net, cut, bench.test_features(),
                                               model.test.labels());
  mask.scatter_values(theta0);

  // ---- SBA: raise one bias until the image flips ----------------------------
  const baseline::SbaResult sba_res = baseline::single_bias_attack(
      model.net, "fc3", rich_spec.features.slice0(0, 1), rich_spec.labels[0]);
  const double sba_acc = models::head_accuracy(model.net, cut, bench.test_features(),
                                               model.test.labels());
  mask.scatter_values(theta0);

  auto drop = [&](double acc) { return eval::fmt((clean - acc) * 100.0, 2) + " pts"; };
  table.row({std::string(tag) + " / fault sneaking (ours)", std::to_string(ours.l0),
             eval::pct(ours_acc), drop(ours_acc), ours.all_targets_hit ? "yes" : "no"});
  table.row({std::string(tag) + " / GDA [16]", std::to_string(gda_res.l0), eval::pct(gda_acc),
             drop(gda_acc), gda_res.success ? "yes" : "no"});
  table.row({std::string(tag) + " / SBA [16]", "1", eval::pct(sba_acc), drop(sba_acc),
             sba_res.success ? "yes" : "no"});
  std::printf("[baseline/%s] clean %s | ours %s | gda %s | sba %s\n", tag,
              eval::pct(clean).c_str(), eval::pct(ours_acc).c_str(), eval::pct(gda_acc).c_str(),
              eval::pct(sba_acc).c_str());
}

}  // namespace

int main() {
  fsa::models::ModelZoo zoo;
  fsa::eval::Table table("Sec 5.4: accuracy cost of one injected fault, ours vs Liu et al.");
  table.header({"dataset / method", "l0", "test acc after", "accuracy drop", "fault injected"});
  run_dataset(zoo.digits(), zoo.cache_dir(), "digits", table);
  run_dataset(zoo.objects(), zoo.cache_dir(), "objects", table);
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_baseline.csv");
  return 0;
}
