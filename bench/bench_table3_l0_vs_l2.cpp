// bench_table3_l0_vs_l2.cpp — regenerates the paper's Table 3.
//
// Paper claim: running the same ADMM framework with the ℓ0 prox (hard
// threshold, eq. 16) vs the ℓ2 prox (block soft threshold, eq. 18) trades
// the two norms against each other — the ℓ0 attack modifies FEWER
// parameters but with LARGER total magnitude; the ℓ2 attack spreads a
// smaller-magnitude modification over more parameters. Paper numbers
// (MNIST, fc3): e.g. S=1,R=10: ℓ0-attack (1026, 863) vs ℓ2-attack
// (1431, 393) as (l0, l2) pairs.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});

  struct Config {
    std::int64_t s, r;
  };
  const std::vector<Config> configs = {{1, 10}, {5, 10}, {5, 20}};

  eval::Table table("Table 3: l0- vs l2-based attacks (digits, last FC layer)");
  table.header({"attack", "S=1,R=10 l0", "S=1,R=10 l2", "S=5,R=10 l0", "S=5,R=10 l2",
                "S=5,R=20 l0", "S=5,R=20 l2"});

  // The two published norms plus the ℓ1 extension (convex sparse surrogate).
  for (const core::NormKind norm :
       {core::NormKind::kL0, core::NormKind::kL2, core::NormKind::kL1}) {
    std::vector<std::string> row = {norm == core::NormKind::kL0   ? "l0 attack"
                                    : norm == core::NormKind::kL2 ? "l2 attack"
                                                                  : "l1 attack (ext)"};
    for (const auto& [s, r] : configs) {
      const core::AttackSpec spec =
          bench.spec(s, r, 5000 + static_cast<std::uint64_t>(s * 100 + r));
      core::FaultSneakingConfig cfg;
      cfg.admm.norm = norm;
      const core::FaultSneakingResult res = bench.attack().run(spec, cfg);
      row.push_back(std::to_string(res.l0) + (res.all_targets_hit ? "" : "*"));
      row.push_back(eval::fmt(res.l2, 2));
      std::printf("[table3] %s S=%lld R=%lld: l0=%lld l2=%.2f targets %lld/%lld\n",
                  norm == core::NormKind::kL0   ? "l0"
                  : norm == core::NormKind::kL2 ? "l2"
                                                : "l1",
                  static_cast<long long>(s),
                  static_cast<long long>(r), static_cast<long long>(res.l0), res.l2,
                  static_cast<long long>(res.targets_hit), static_cast<long long>(s));
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table3.csv");
  return 0;
}
