// bench_table3_l0_vs_l2.cpp — regenerates the paper's Table 3.
//
// Paper claim: running the same ADMM framework with the ℓ0 prox (hard
// threshold, eq. 16) vs the ℓ2 prox (block soft threshold, eq. 18) trades
// the two norms against each other — the ℓ0 attack modifies FEWER
// parameters but with LARGER total magnitude; the ℓ2 attack spreads a
// smaller-magnitude modification over more parameters. Paper numbers
// (MNIST, fc3): e.g. S=1,R=10: ℓ0-attack (1026, 863) vs ℓ2-attack
// (1431, 393) as (l0, l2) pairs. The ℓ1 extension (convex sparse
// surrogate) rides along as a third method row.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  const std::vector<std::pair<std::int64_t, std::int64_t>> configs = {{1, 10}, {5, 10}, {5, 20}};
  const std::vector<std::pair<std::string, std::string>> methods = {
      {"fsa-l0", "l0 attack"}, {"fsa-l2", "l2 attack"}, {"fsa-l1", "l1 attack (ext)"}};

  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "fsa-l2", "fsa-l1"})
      .layers({"fc3"})
      .sr_pairs(configs)
      .seed_fn([](std::int64_t s, std::int64_t r) {
        return 5000 + static_cast<std::uint64_t>(s * 100 + r);
      })
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_table3.json");

  eval::Table table("Table 3: l0- vs l2-based attacks (digits, last FC layer)");
  table.header({"attack", "S=1,R=10 l0", "S=1,R=10 l2", "S=5,R=10 l0", "S=5,R=10 l2",
                "S=5,R=20 l0", "S=5,R=20 l2"});
  for (const auto& [method, label] : methods) {
    std::vector<std::string> row = {label};
    for (const auto& [s, r] : configs) {
      const auto& rep = result.row(method, s, r).report;
      row.push_back(std::to_string(rep.l0) + (rep.all_targets_hit ? "" : "*"));
      row.push_back(eval::fmt(rep.l2, 2));
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table3.csv");
  return 0;
}
