// bench_ablation_detect.cpp — extension: the defender's parameter audit.
//
// The paper evaluates stealth only behaviorally (test accuracy). A
// defender who audits the WEIGHTS directly sees a different picture: the
// ℓ0 attack leaves few-but-large modifications (loud to a max-|Δw| check,
// quiet to a distribution check), the ℓ2 attack leaves many-but-small ones
// (the reverse), and the SBA baseline's single huge bias is the loudest of
// all. This harness runs all three as one sweep and prints the audit of
// each row's δ.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/detect.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "fsa-l2", "sba"}).layers({"fc3"}).sr_pairs({{1, 100}}).seeds({9500});
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_detect.json");

  const Tensor theta0 = runner.bench({"fc3"}).attack().theta0();
  eval::Table table("Extension: weight-audit detectability (S=1, R=100, fc3)");
  table.header({"attack", "changed frac", "max |dw|", "KS stat", "anomaly score",
                "behavioral acc"});

  const std::vector<std::pair<std::string, std::string>> rows = {
      {"fsa-l0", "fault sneaking (l0)"}, {"fsa-l2", "fault sneaking (l2)"}, {"sba", "SBA [16]"}};
  for (const auto& [method, label] : rows) {
    const auto& rep = result.row(method, 1, 100).report;
    Tensor after = theta0;
    after += rep.delta;
    const eval::AuditReport audit = eval::audit_weights(theta0, after);
    table.row({label, eval::pct(audit.changed_fraction), eval::fmt(audit.max_abs_change, 3),
               eval::fmt(audit.ks_statistic, 4), eval::fmt(eval::anomaly_score(audit), 2),
               eval::pct(rep.test_accuracy)});
    std::printf("[detect] %s: changed=%s max|dw|=%.3f score=%.2f\n", label.c_str(),
                eval::pct(audit.changed_fraction).c_str(), audit.max_abs_change,
                eval::anomaly_score(audit));
  }

  table.print();
  table.write_csv(zoo.cache_dir() + "/results_detect.csv");
  std::printf(
      "\nBehavioral stealth (accuracy) and parameter stealth (audit) are different\n"
      "axes: the sneaking attacks win the first, but a memory-integrity audit\n"
      "still sees them — quantifying the residual detection surface.\n");
  return 0;
}
