// bench_ablation_detect.cpp — extension: the defender's parameter audit.
//
// The paper evaluates stealth only behaviorally (test accuracy). A
// defender who audits the WEIGHTS directly sees a different picture: the
// ℓ0 attack leaves few-but-large modifications (loud to a max-|Δw| check,
// quiet to a distribution check), the ℓ2 attack leaves many-but-small ones
// (the reverse), and the SBA baseline's single huge bias is the loudest of
// all. This harness runs all three on the same fault and prints the audit.
#include <cstdio>

#include "baseline/sba.h"
#include "eval/attack_bench.h"
#include "eval/detect.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});
  const core::AttackSpec spec = bench.spec(1, 100, /*seed=*/9500);
  const Tensor theta0 = bench.attack().theta0();

  eval::Table table("Extension: weight-audit detectability (S=1, R=100, fc3)");
  table.header({"attack", "changed frac", "max |dw|", "KS stat", "anomaly score",
                "behavioral acc"});

  auto add_row = [&](const char* tag, const Tensor& delta) {
    Tensor after = theta0;
    after += delta;
    const eval::AuditReport rep = eval::audit_weights(theta0, after);
    const double acc = bench.test_accuracy_with(delta);
    table.row({tag, eval::pct(rep.changed_fraction), eval::fmt(rep.max_abs_change, 3),
               eval::fmt(rep.ks_statistic, 4), eval::fmt(eval::anomaly_score(rep), 2),
               eval::pct(acc)});
    std::printf("[detect] %s: changed=%s max|dw|=%.3f score=%.2f\n", tag,
                eval::pct(rep.changed_fraction).c_str(), rep.max_abs_change,
                eval::anomaly_score(rep));
  };

  // ℓ0 and ℓ2 fault sneaking attacks.
  for (const core::NormKind norm : {core::NormKind::kL0, core::NormKind::kL2}) {
    core::FaultSneakingConfig cfg;
    cfg.admm.norm = norm;
    const core::FaultSneakingResult res = bench.attack().run(spec, cfg);
    add_row(norm == core::NormKind::kL0 ? "fault sneaking (l0)" : "fault sneaking (l2)",
            res.delta);
  }

  // SBA baseline: one bias, raised a lot.
  {
    const core::ParamMask mask = core::ParamMask::make(zoo.digits().net, {"fc3"});
    baseline::single_bias_attack(zoo.digits().net, "fc3", spec.features.slice0(0, 1),
                                 spec.labels[0]);
    const Tensor after = mask.gather_values();
    mask.scatter_values(theta0);
    Tensor delta = after;
    delta -= theta0;
    add_row("SBA [16]", delta);
  }

  table.print();
  table.write_csv(zoo.cache_dir() + "/results_detect.csv");
  std::printf(
      "\nBehavioral stealth (accuracy) and parameter stealth (audit) are different\n"
      "axes: the sneaking attacks win the first, but a memory-integrity audit\n"
      "still sees them — quantifying the residual detection surface.\n");
  return 0;
}
