// bench_table4_accuracy.cpp — regenerates the paper's Table 4 (both
// datasets): whole-test-set accuracy AFTER the attack, across the
// S ∈ {1,2,4,8,16} × R ∈ {50,100,200,500,1000} grid.
//
// Paper claims: (a) at fixed R, accuracy falls as S grows; (b) at fixed S,
// accuracy RISES with R — the maintain images stabilize the model (the
// "sneaking" in fault sneaking); (c) at S=1, R=1000 the loss vs the clean
// model is ≈0.8% (MNIST) / ≈1.0% (CIFAR), far below the ICCAD'17
// baseline's 3.86% / 2.35%; (d) small-R cells collapse (e.g. 29.7% MNIST
// at S=16, R=50).
//
// 25 independent cells per dataset — the heaviest grid in the repo, and
// the one that gains most from the batched sweep engine.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

namespace {

void run_grid(fsa::models::ZooModel& model, const std::string& cache_dir, const char* tag) {
  using namespace fsa;
  engine::SweepRunner runner(model, cache_dir);
  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  engine::Sweep sweep;
  sweep.layers({"fc3"}).s_values(s_sweep).r_values(r_sweep).seed_fn(
      [](std::int64_t s, std::int64_t r) {
        return 6000 + static_cast<std::uint64_t>(s * 7919 + r);
      });
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(cache_dir + "/results_table4_" + tag + ".json");

  eval::Table table(std::string("Table 4 (") + tag + "): test accuracy after attack, clean = " +
                    eval::pct(runner.bench({"fc3"}).clean_test_accuracy()));
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const auto& rep = result.row("fsa-l0", s, r).report;
      row.push_back(eval::pct(rep.test_accuracy) + (rep.all_targets_hit ? "" : "*"));
    }
    table.row(row);
  }
  table.print();
  table.write_csv(cache_dir + "/results_table4_" + std::string(tag) + ".csv");
}

}  // namespace

int main() {
  fsa::eval::Stopwatch total;
  fsa::models::ModelZoo zoo;
  run_grid(zoo.digits(), zoo.cache_dir(), "digits");
  run_grid(zoo.objects(), zoo.cache_dir(), "objects");
  std::printf("\n(\"*\" marks cells where not all S faults could be injected.)\n");
  std::printf("[table4] total %.1fs\n", total.seconds());
  return 0;
}
