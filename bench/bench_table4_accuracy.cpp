// bench_table4_accuracy.cpp — regenerates the paper's Table 4 (both
// datasets): whole-test-set accuracy AFTER the attack, across the
// S ∈ {1,2,4,8,16} × R ∈ {50,100,200,500,1000} grid.
//
// Paper claims: (a) at fixed R, accuracy falls as S grows; (b) at fixed S,
// accuracy RISES with R — the maintain images stabilize the model (the
// "sneaking" in fault sneaking); (c) at S=1, R=1000 the loss vs the clean
// model is ≈0.8% (MNIST) / ≈1.0% (CIFAR), far below the ICCAD'17
// baseline's 3.86% / 2.35%; (d) small-R cells collapse (e.g. 29.7% MNIST
// at S=16, R=50).
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

namespace {

void run_grid(fsa::models::ZooModel& model, const std::string& cache_dir, const char* tag) {
  using namespace fsa;
  eval::AttackBench bench(model, cache_dir, {"fc3"});
  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  eval::Table table(std::string("Table 4 (") + tag + "): test accuracy after attack, clean = " +
                    eval::pct(bench.clean_test_accuracy()));
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const core::AttackSpec spec =
          bench.spec(s, r, 6000 + static_cast<std::uint64_t>(s * 7919 + r));
      const core::FaultSneakingResult res = bench.attack().run(spec);
      const double acc = bench.test_accuracy_with(res.delta);
      row.push_back(eval::pct(acc) + (res.all_targets_hit ? "" : "*"));
      std::printf("[table4/%s] S=%lld R=%lld: acc %s, targets %lld/%lld (%.1fs)\n", tag,
                  static_cast<long long>(s), static_cast<long long>(r), eval::pct(acc).c_str(),
                  static_cast<long long>(res.targets_hit), static_cast<long long>(s),
                  res.seconds);
    }
    table.row(row);
  }
  table.print();
  table.write_csv(cache_dir + "/results_table4_" + tag + ".csv");
}

}  // namespace

int main() {
  fsa::eval::Stopwatch total;
  fsa::models::ModelZoo zoo;
  run_grid(zoo.digits(), zoo.cache_dir(), "digits");
  run_grid(zoo.objects(), zoo.cache_dir(), "objects");
  std::printf("\n(\"*\" marks cells where not all S faults could be injected.)\n");
  std::printf("[table4] total %.1fs\n", total.seconds());
  return 0;
}
