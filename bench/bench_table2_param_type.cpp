// bench_table2_param_type.cpp — regenerates the paper's Table 2.
//
// Paper claim: in the last FC layer, attacking only the 10 bias parameters
// is cheap (ℓ0 = 2 for one fault) but saturates — with 4+ faults at
// distinct targets the bias-only attack FAILS (success 0%), because 10
// shared offsets cannot separate many images; attacking the 2000 weights
// always succeeds. This is the paper's case against the ICCAD'17 single
// bias attack.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  models::ZooModel& digits = zoo.digits();

  eval::AttackBench weights(digits, zoo.cache_dir(), {"fc3"}, /*weights=*/true, /*biases=*/false);
  eval::AttackBench biases(digits, zoo.cache_dir(), {"fc3"}, /*weights=*/false, /*biases=*/true);

  const std::vector<std::int64_t> sweep = {1, 2, 4, 8};
  eval::Table table("Table 2: weights-only vs bias-only in the last FC layer (digits, S=R)");
  table.header({"S=R", "l0 (weights)", "success (weights)", "l0 (bias)", "success (bias)"});

  for (const std::int64_t s : sweep) {
    // Identical image/target draws for both surfaces (same cut → same seed
    // stream). Spread targets so bias-only saturation is visible.
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(s);
    const core::AttackSpec wspec = weights.spec(s, s, seed);
    const core::AttackSpec bspec = biases.spec(s, s, seed);

    core::FaultSneakingConfig cfg;
    const auto wres = weights.attack().run(wspec, cfg);
    const auto bres = biases.attack().run(bspec, cfg);
    std::printf("[table2] S=R=%lld: weights l0=%lld (%s), bias l0=%lld (%s)\n",
                static_cast<long long>(s), static_cast<long long>(wres.l0),
                eval::pct(wres.success_rate).c_str(), static_cast<long long>(bres.l0),
                eval::pct(bres.success_rate).c_str());
    table.row({std::to_string(s), std::to_string(wres.l0), eval::pct(wres.success_rate),
               bres.all_targets_hit ? std::to_string(bres.l0) : "-",
               eval::pct(bres.success_rate)});
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table2.csv");
  std::printf("\n(\"-\" mirrors the paper: no l0 shown when the attack cannot succeed.)\n");
  return 0;
}
