// bench_table2_param_type.cpp — regenerates the paper's Table 2.
//
// Paper claim: in the last FC layer, attacking only the 10 bias parameters
// is cheap (ℓ0 = 2 for one fault) but saturates — with 4+ faults at
// distinct targets the bias-only attack FAILS (success 0%), because 10
// shared offsets cannot separate many images; attacking the 2000 weights
// always succeeds. This is the paper's case against the ICCAD'17 single
// bias attack.
//
// The weights-only and bias-only surfaces differ per instance, so this
// sweep is expressed as explicit SweepSpecs (same seed per S → identical
// image/target draws on both surfaces, which share a cut).
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  const std::vector<std::int64_t> sweep_s = {1, 2, 4, 8};
  engine::Sweep sweep;
  for (const std::int64_t s : sweep_s) {
    engine::SweepSpec spec;
    spec.layers = {"fc3"};
    spec.S = spec.R = s;
    spec.seed = 2000 + static_cast<std::uint64_t>(s);
    spec.measure_accuracy = false;
    spec.weights = true;
    spec.biases = false;
    spec.tag = "weights";
    sweep.add(spec);
    spec.weights = false;
    spec.biases = true;
    spec.tag = "bias";
    sweep.add(spec);
  }
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_table2.json");

  eval::Table table("Table 2: weights-only vs bias-only in the last FC layer (digits, S=R)");
  table.header({"S=R", "l0 (weights)", "success (weights)", "l0 (bias)", "success (bias)"});
  for (const std::int64_t s : sweep_s) {
    const auto& w = result.row("fsa-l0", s, s, "weights").report;
    const auto& b = result.row("fsa-l0", s, s, "bias").report;
    table.row({std::to_string(s), std::to_string(w.l0), eval::pct(w.success_rate),
               b.all_targets_hit ? std::to_string(b.l0) : "-", eval::pct(b.success_rate)});
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_table2.csv");
  std::printf("\n(\"-\" mirrors the paper: no l0 shown when the attack cannot succeed.)\n");
  return 0;
}
