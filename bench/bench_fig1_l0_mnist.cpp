// bench_fig1_l0_mnist.cpp — regenerates the paper's Figure 1.
//
// Series: ℓ0 norm of the modification to the last FC layer vs S, one curve
// per R ∈ {50, 100, 200, 500, 1000} on the MNIST stand-in. Paper claims:
// (a) ℓ0 grows with S at fixed R; (b) for small S (1–4) the ℓ0 tends to
// SHRINK as R grows — more maintain images anchor the model closer to the
// original, so fewer parameters need to move; (c) the effect disappears
// for large S where the model runs out of slack.
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});

  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  eval::Table table("Figure 1: l0 norm vs S, one series per R (digits, last FC layer)");
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const core::AttackSpec spec =
          bench.spec(s, r, 3000 + static_cast<std::uint64_t>(s * 7919 + r));
      const core::FaultSneakingResult res = bench.attack().run(spec);
      row.push_back(std::to_string(res.l0) + (res.all_targets_hit ? "" : "*"));
      std::printf("[fig1] S=%lld R=%lld: l0=%lld targets %lld/%lld (%.1fs)\n",
                  static_cast<long long>(s), static_cast<long long>(r),
                  static_cast<long long>(res.l0), static_cast<long long>(res.targets_hit),
                  static_cast<long long>(s), res.seconds);
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_fig1.csv");
  std::printf("\n(\"*\" marks runs where not all S faults could be injected.)\n");
  std::printf("[fig1] total %.1fs\n", total.seconds());
  return 0;
}
