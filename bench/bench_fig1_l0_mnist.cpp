// bench_fig1_l0_mnist.cpp — regenerates the paper's Figure 1.
//
// Series: ℓ0 norm of the modification to the last FC layer vs S, one curve
// per R ∈ {50, 100, 200, 500, 1000} on the MNIST stand-in. Paper claims:
// (a) ℓ0 grows with S at fixed R; (b) for small S (1–4) the ℓ0 tends to
// SHRINK as R grows — more maintain images anchor the model closer to the
// original, so fewer parameters need to move; (c) the effect disappears
// for large S where the model runs out of slack.
//
// All 25 grid cells are independent instances; the sweep engine solves
// them concurrently instead of the former serial double loop.
#include <cstdio>

#include "engine/sweep.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  eval::Stopwatch total;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());

  const std::vector<std::int64_t> s_sweep = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> r_sweep = {50, 100, 200, 500, 1000};

  engine::Sweep sweep;
  sweep.layers({"fc3"})
      .s_values(s_sweep)
      .r_values(r_sweep)
      .seed_fn([](std::int64_t s, std::int64_t r) {
        return 3000 + static_cast<std::uint64_t>(s * 7919 + r);
      })
      .measure_accuracy(false);
  const engine::SweepResult result = runner.run(sweep);
  result.write_json(zoo.cache_dir() + "/results_fig1.json");

  eval::Table table("Figure 1: l0 norm vs S, one series per R (digits, last FC layer)");
  std::vector<std::string> header = {"R \\ S"};
  for (auto s : s_sweep) header.push_back("S=" + std::to_string(s));
  table.header(header);

  for (const std::int64_t r : r_sweep) {
    std::vector<std::string> row = {"R=" + std::to_string(r)};
    for (const std::int64_t s : s_sweep) {
      const auto& rep = result.row("fsa-l0", s, r).report;
      row.push_back(std::to_string(rep.l0) + (rep.all_targets_hit ? "" : "*"));
    }
    table.row(row);
  }
  table.print();
  table.write_csv(zoo.cache_dir() + "/results_fig1.csv");
  std::printf("\n(\"*\" marks runs where not all S faults could be injected.)\n");
  std::printf("[fig1] total %.1fs on %d worker(s)\n", total.seconds(), result.workers);
  return 0;
}
