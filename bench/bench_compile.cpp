// bench_compile.cpp — forward-pass compiler throughput: compiled vs
// uncompiled sweeps on a multi-layer conv model.
//
// A sweep's per-instance overhead is clone + plan work, not GEMM flops:
// every instance deep-copies the whole network and re-derives im2col
// geometry, workspaces, and packed panels, even though it only ever
// perturbs a small FC head. This bench builds a conv model with a fat
// shared prefix (conv stack + wide FC layers, ~200k parameters) and a tiny
// attacked head (fc3, ~1.3k parameters), then measures:
//
//   1. Sweep throughput (rows/s) with FSA_COMPILE off vs on, at 4 threads
//      on the packed backend — the acceptance bar is >= 1.5x.
//   2. Clone cost (us): Sequential::clone (O(all params)) vs
//      CompiledModel::instance_net (O(head params)).
//
// Human-readable progress goes to stderr; stdout carries exactly one JSON
// document, which tools/run_benches.sh folds into the BENCH_micro_ops.json
// trajectory with regression deltas.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "compile/model_compiler.h"
#include "core/param_mask.h"
#include "engine/sweep.h"
#include "eval/json.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "optim/adam.h"
#include "optim/trainer.h"
#include "tensor/parallel.h"

namespace {

using namespace fsa;

constexpr std::int64_t kSide = 12;     // 1x12x12 "images"
constexpr std::int64_t kClasses = 10;
constexpr int kThreads = 4;
constexpr std::int64_t kSeeds = 48;    // sweep instances

/// 10-class synthetic images: a fixed random 12x12 template per class plus
/// Gaussian noise — enough structure to train on in seconds, deterministic.
data::Dataset make_images(std::int64_t n, std::uint64_t seed, double spread = 0.25) {
  Rng rng(seed);
  std::vector<Tensor> templates;
  Rng template_rng(424242);
  for (std::int64_t c = 0; c < kClasses; ++c)
    templates.push_back(Tensor::randn(Shape({kSide * kSide}), template_rng, 0.0f, 1.0f));
  Tensor images(Shape({n, 1, kSide, kSide}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::int64_t>(rng.uniform_int(kClasses));
    labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t d = 0; d < kSide * kSide; ++d)
      images[static_cast<std::size_t>(i * kSide * kSide + d)] =
          templates[static_cast<std::size_t>(cls)][static_cast<std::size_t>(d)] +
          static_cast<float>(rng.normal(0.0, spread));
  }
  return data::Dataset(std::move(images), std::move(labels), kClasses);
}

/// conv(1->8)+relu -> conv(8->16)+relu -> pool -> flatten(256) ->
/// fc1(256->512)+relu -> fc2(512->128)+relu -> fc3(128->10). The prefix
/// below fc3 holds ~200k parameters; the attacked fc3 head holds ~1.3k.
nn::Sequential make_conv_net(std::uint64_t seed = 77) {
  Rng rng(seed);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2D>("conv1", 1, 8, 3, rng));   // -> 8x10x10
  net.add(std::make_unique<nn::ReLU>("relu1"));
  net.add(std::make_unique<nn::Conv2D>("conv2", 8, 16, 3, rng));  // -> 16x8x8
  net.add(std::make_unique<nn::ReLU>("relu2"));
  net.add(std::make_unique<nn::MaxPool2D>("pool"));               // -> 16x4x4
  net.add(std::make_unique<nn::Flatten>("flatten"));              // -> 256
  net.add(std::make_unique<nn::Dense>("fc1", 256, 512, rng));
  net.add(std::make_unique<nn::ReLU>("relu3"));
  net.add(std::make_unique<nn::Dense>("fc2", 512, 128, rng));
  net.add(std::make_unique<nn::ReLU>("relu4"));
  net.add(std::make_unique<nn::Dense>("fc3", 128, kClasses, rng));
  return net;
}

engine::Sweep bench_sweep() {
  std::vector<std::uint64_t> seeds;
  for (std::int64_t s = 1; s <= kSeeds; ++s) seeds.push_back(static_cast<std::uint64_t>(s));
  engine::Sweep sweep;
  // Cheap per-instance solves (sba, R=8) keep the clone/plan overhead the
  // dominant cost — exactly the regime sweeps at paper scale live in.
  sweep.methods({"sba"}).layers({"fc3"}).sr_pairs({{1, 8}}).seeds(seeds).measure_accuracy(false);
  return sweep;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-2 sweep wall time on a fresh runner per rep (fresh runner =
/// per-run compile, but the warmed disk cache serves the features).
double best_sweep_seconds(models::ZooModel& model, const std::string& cache_dir, bool compiled) {
  compile::set_enabled(compiled);
  double best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    engine::SweepRunner runner(model, cache_dir, /*verbose=*/false);
    const engine::SweepResult result = runner.run(bench_sweep());
    best = std::min(best, result.seconds);
    if (result.compiled != compiled) {
      std::fprintf(stderr, "[bench_compile] FATAL: path attribution mismatch\n");
      std::exit(1);
    }
  }
  return best;
}

}  // namespace

int main() {
  backend::set_backend("packed");
  set_num_threads(kThreads);

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "fsa_bench_compile").string();
  std::filesystem::remove_all(cache_dir);

  std::fprintf(stderr, "[bench_compile] training the conv model...\n");
  models::ZooModel model;
  model.name = "convbench";
  model.net = make_conv_net();
  model.train = make_images(512, 1001);
  model.test = make_images(256, 1002);
  model.attack_pool = make_images(256, 1003);
  {
    optim::Adam opt(model.net.params(), 2e-3);
    optim::Trainer trainer(model.net, opt);
    optim::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 32;
    trainer.fit(model.train, cfg);
    model.test_accuracy = optim::Trainer::accuracy(model.net, model.test);
  }
  std::fprintf(stderr, "[bench_compile] test accuracy %.1f%%, %lld params\n",
               model.test_accuracy * 100.0, static_cast<long long>(model.net.param_count()));

  // Warm the per-surface feature cache (disk-backed, shared by every
  // runner below) so neither timed path pays for it.
  {
    compile::set_enabled(false);
    engine::SweepRunner warm(model, cache_dir, /*verbose=*/false);
    engine::Sweep tiny;
    tiny.methods({"sba"}).layers({"fc3"}).sr_pairs({{1, 4}}).seeds({99}).measure_accuracy(false);
    (void)warm.run(tiny);
  }

  std::fprintf(stderr, "[bench_compile] timing %lld-row sweeps at %d threads (packed)...\n",
               static_cast<long long>(kSeeds), kThreads);
  const double off_seconds = best_sweep_seconds(model, cache_dir, /*compiled=*/false);
  const double on_seconds = best_sweep_seconds(model, cache_dir, /*compiled=*/true);
  const double rows = static_cast<double>(kSeeds);
  const double speedup = off_seconds / on_seconds;

  // Clone cost: the uncompiled path's per-instance Sequential::clone vs
  // the compiled path's instance_net. Sum a fold over the results so the
  // optimizer cannot drop the loop bodies.
  compile::set_enabled(true);
  compile::CompiledModel plan(model.net);
  const std::size_t cut = core::ParamMask::make(model.net, {"fc3"}, true, true).cut();
  constexpr int kCloneReps = 256;
  float sink = 0.0f;
  const double deep_t0 = now_seconds();
  for (int i = 0; i < kCloneReps; ++i) {
    nn::Sequential c = model.net.clone();
    sink += (*c.layer(cut).params()[0]).value()[0];
  }
  const double deep_us = (now_seconds() - deep_t0) / kCloneReps * 1e6;
  const double inst_t0 = now_seconds();
  for (int i = 0; i < kCloneReps; ++i) {
    nn::Sequential c = plan.instance_net(cut);
    sink += (*c.layer(cut).params()[0]).value()[0];
  }
  const double inst_us = (now_seconds() - inst_t0) / kCloneReps * 1e6;
  std::fprintf(stderr, "[bench_compile] sink %.3f (ignore)\n", static_cast<double>(sink));

  engine::SweepRunner describe_runner(model, cache_dir, /*verbose=*/false);
  const std::size_t fused = describe_runner.warm_compile()->fused_nodes();
  compile::set_enabled(false);

  std::fprintf(stderr,
               "[bench_compile] off %.3fs (%.1f rows/s)  on %.3fs (%.1f rows/s)  speedup %.2fx\n",
               off_seconds, rows / off_seconds, on_seconds, rows / on_seconds, speedup);
  std::fprintf(stderr, "[bench_compile] clone %.1fus  instance_net %.1fus  (%.1fx)\n", deep_us,
               inst_us, deep_us / inst_us);

  eval::Json j = eval::Json::object();
  j.set("model", eval::Json::string("convbench"));
  j.set("backend", eval::Json::string("packed"));
  j.set("threads", eval::Json::number(static_cast<std::int64_t>(kThreads)));
  j.set("rows", eval::Json::number(static_cast<std::int64_t>(kSeeds)));
  j.set("fused_nodes", eval::Json::number(static_cast<std::int64_t>(fused)));
  j.set("rows_per_sec_off", eval::Json::number(rows / off_seconds));
  j.set("rows_per_sec_on", eval::Json::number(rows / on_seconds));
  j.set("speedup", eval::Json::number(speedup));
  j.set("clone_us_deep", eval::Json::number(deep_us));
  j.set("clone_us_instance", eval::Json::number(inst_us));
  std::printf("%s\n", j.dump(2).c_str());

  std::filesystem::remove_all(cache_dir);
  return speedup >= 1.0 ? 0 : 1;  // regression guard: compiled must not be slower
}
