// bench_arena.cpp — the attack↔defense arena on the paper's bench.
//
// Crosses the vanilla and detection-aware fault sneaking attacks against
// the deployed defenses on the digits fc3 surface (S=2, R=100 — the
// paper's headline budget) and reduces the rows into the evasion
// frontier. Emits one JSON document on stdout for run_benches.sh to fold
// into the BENCH trajectory: {rows, seconds, rows_per_sec, detect_rate,
// evasion_rate, overhead_bytes, frontier}. Progress and the human-facing
// frontier go to stderr.
//
// Exit code doubles as the acceptance guard for the detection-aware
// solver: under the strict range deployment, fsa-l2-evasive must evade
// strictly more often than vanilla fsa-l2 at the same (S, R) budget.
#include <chrono>
#include <cstdio>

#include "backend/compute_backend.h"
#include "dist/jobs.h"
#include "dist/reducer.h"
#include "engine/arena.h"
#include "engine/sweep.h"
#include "models/model_zoo.h"

int main() {
  using namespace fsa;
  models::ZooConfig zc;
  zc.verbose = false;  // stdout carries exactly one JSON document
  models::ModelZoo zoo(zc);
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir(), /*verbose=*/false);

  engine::ArenaConfig cfg;
  cfg.methods = {"fsa-l0", "fsa-l2", "fsa-l0-evasive", "fsa-l2-evasive"};
  cfg.defenses = {defense::parse_defense("checksum/64"), defense::parse_defense("range/201/0.10"),
                  defense::parse_defense("range/16/0")};
  cfg.layer_sets = {{"fc3"}};
  cfg.sr_pairs = {{2, 100}};
  cfg.seeds = {9600};
  const std::vector<engine::SweepSpec> specs = engine::arena_specs(cfg);

  std::fprintf(stderr, "[bench_arena] %zu cells (4 methods x 3 defenses, S=2 R=100)...\n",
               specs.size());
  const auto start = std::chrono::steady_clock::now();
  const engine::SweepResult result = runner.run(specs);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start).count();

  // Reduce through the arena reducer — the same canonical rows + frontier
  // a job directory or the serve daemon would produce.
  std::vector<std::size_t> indices(specs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  eval::Json shard = eval::Json::object();
  shard.set("kind", eval::Json::string("arena"));
  shard.set("shard", eval::Json::number(std::int64_t{0}));
  shard.set("rows", dist::sweep_rows_json(result, indices));
  const eval::Json manifest = dist::arena_manifest("digits", backend::active_name(), specs);
  const eval::Json reduced = dist::make_reducer("arena")->reduce(manifest, {shard});

  std::int64_t detected = 0, evaded = 0, overhead = 0;
  double vanilla_l2_evasion = 0.0, evasive_l2_evasion = 0.0;
  for (const eval::Json& e : reduced.at("frontier").items()) {
    detected += e.get_int("detected", 0);
    evaded += e.get_int("evaded", 0);
    overhead += e.get_int("overhead_bytes", 0);
    std::fprintf(stderr, "[bench_arena] %s vs %s: detect %.0f%% evade %.0f%% (l0 %.0f, l2 %.3f)\n",
                 e.get_string("method", "").c_str(), e.get_string("defense", "").c_str(),
                 e.get_number("detect_rate", 0.0) * 100.0,
                 e.get_number("evasion_rate", 0.0) * 100.0, e.get_number("mean_l0", 0.0),
                 e.get_number("mean_l2", 0.0));
    if (e.get_string("defense", "") == "range/16/0") {
      if (e.get_string("method", "") == "fsa-l2")
        vanilla_l2_evasion = e.get_number("evasion_rate", 0.0);
      if (e.get_string("method", "") == "fsa-l2-evasive")
        evasive_l2_evasion = e.get_number("evasion_rate", 0.0);
    }
  }
  const auto rows = static_cast<std::int64_t>(reduced.at("rows").size());
  const double n = static_cast<double>(rows);

  eval::Json j = eval::Json::object();
  j.set("rows", eval::Json::number(rows));
  j.set("seconds", eval::Json::number(seconds));
  j.set("rows_per_sec", eval::Json::number(n / seconds));
  j.set("detect_rate", eval::Json::number(static_cast<double>(detected) / n));
  j.set("evasion_rate", eval::Json::number(static_cast<double>(evaded) / n));
  j.set("overhead_bytes", eval::Json::number(overhead));
  j.set("frontier", reduced.at("frontier"));
  std::printf("%s\n", j.dump(2).c_str());

  std::fprintf(stderr, "[bench_arena] %lld rows in %.1fs (%.2f rows/s)\n",
               static_cast<long long>(rows), seconds, n / seconds);
  if (evasive_l2_evasion <= vanilla_l2_evasion) {
    std::fprintf(stderr,
                 "[bench_arena] FAIL: fsa-l2-evasive evasion %.2f <= vanilla %.2f under "
                 "range/16/0 — the detection-aware solver lost its edge\n",
                 evasive_l2_evasion, vanilla_l2_evasion);
    return 1;
  }
  return 0;
}
