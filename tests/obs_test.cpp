// obs_test.cpp — the observability layer: span tracer and metrics registry.
//
// Covers span recording (nesting depth, per-thread attribution, the
// Chrome-trace rendering, the disabled fast path), metric primitives
// (counter, gauge, histogram bucket boundaries and quantiles), the
// Prometheus text rendering GET /metrics serves, the registry JSON
// snapshot dist workers dump as telemetry sidecars, and the sidecar merge
// (merge_telemetry / merge_job_telemetry). The tracer and registry are
// process-global, so every test restores the disabled state on exit.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/job_dir.h"
#include "eval/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsa::obs {
namespace {

namespace fs = std::filesystem;

/// Every tracer test starts from a clean slate and leaves tracing off.
struct TraceGuard {
  TraceGuard() {
    set_trace_enabled(true);
    clear_spans();
  }
  ~TraceGuard() {
    clear_spans();
    set_trace_enabled(false);
  }
};

std::vector<SpanRecord> spans_named(const std::string& name) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : snapshot_spans())
    if (s.name == name) out.push_back(s);
  return out;
}

// ---- tracer ------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  set_trace_enabled(false);
  clear_spans();
  const std::size_t before = span_count();
  {
    OBS_SPAN("obs_test.disabled");
    OBS_SPAN("obs_test.disabled_tagged", std::string("tag"));
  }
  EXPECT_EQ(span_count(), before);
}

TEST(Trace, RecordsNestedSpansWithDepth) {
  TraceGuard guard;
  {
    OBS_SPAN("obs_test.outer");
    {
      OBS_SPAN("obs_test.inner");
      { OBS_SPAN("obs_test.innermost"); }
    }
  }
  const auto outer = spans_named("obs_test.outer");
  const auto inner = spans_named("obs_test.inner");
  const auto innermost = spans_named("obs_test.innermost");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(innermost.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(inner[0].depth, 1u);
  EXPECT_EQ(innermost[0].depth, 2u);
  // All on one thread, and nesting implies containment in time.
  EXPECT_EQ(outer[0].tid, inner[0].tid);
  EXPECT_LE(outer[0].start_us, inner[0].start_us);
  EXPECT_GE(outer[0].start_us + outer[0].dur_us, inner[0].start_us + inner[0].dur_us);
}

TEST(Trace, ThreadsGetDistinctIdsAndDepthIsPerThread) {
  TraceGuard guard;
  { OBS_SPAN("obs_test.main_thread"); }
  std::thread worker([] {
    OBS_SPAN("obs_test.worker_thread");
    { OBS_SPAN("obs_test.worker_nested"); }
  });
  worker.join();
  const auto main_spans = spans_named("obs_test.main_thread");
  const auto worker_spans = spans_named("obs_test.worker_thread");
  const auto nested = spans_named("obs_test.worker_nested");
  ASSERT_EQ(main_spans.size(), 1u);
  ASSERT_EQ(worker_spans.size(), 1u);
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_NE(main_spans[0].tid, worker_spans[0].tid);
  EXPECT_EQ(worker_spans[0].tid, nested[0].tid);
  // The worker's depth counter is its own: its top-level span is depth 0
  // even though the main thread also opened spans.
  EXPECT_EQ(worker_spans[0].depth, 0u);
  EXPECT_EQ(nested[0].depth, 1u);
}

TEST(Trace, TagIsCapturedAndRenderedAsArgs) {
  TraceGuard guard;
  { OBS_SPAN("obs_test.tagged", std::string("method=fsa-l0 shard=3")); }
  const auto tagged = spans_named("obs_test.tagged");
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(tagged[0].tag, "method=fsa-l0 shard=3");

  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.tagged\""), std::string::npos);
  EXPECT_NE(json.find("method=fsa-l0 shard=3"), std::string::npos);
  // Chrome trace-event essentials: complete events with timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // The document must be valid JSON (our own strict parser is the check).
  EXPECT_NO_THROW((void)eval::Json::parse(json));
}

TEST(Trace, WriteChromeTraceProducesParseableFile) {
  TraceGuard guard;
  { OBS_SPAN("obs_test.to_file"); }
  const std::string path = ::testing::TempDir() + "fsa_obs_trace_test.json";
  write_chrome_trace(path);
  const eval::Json doc = dist::read_json_file(path);
  EXPECT_TRUE(doc.has("traceEvents"));
  EXPECT_GE(doc.at("traceEvents").items().size(), 1u);
  fs::remove(path);
}

TEST(Trace, ClearSpansDiscardsHistory) {
  TraceGuard guard;
  { OBS_SPAN("obs_test.cleared"); }
  EXPECT_GE(span_count(), 1u);
  clear_spans();
  EXPECT_EQ(span_count(), 0u);
  EXPECT_TRUE(spans_named("obs_test.cleared").empty());
}

// ---- metric primitives -------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1       -> bucket 0
  h.observe(1.0);  // == bound   -> bucket 0 (inclusive upper bound)
  h.observe(1.5);  // (1, 2]     -> bucket 1
  h.observe(4.0);  // == bound   -> bucket 2
  h.observe(9.0);  // > last     -> +Inf overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // +Inf
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Metrics, HistogramQuantilesInterpolate) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket 0
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  // p50 lands exactly at the bucket-0/bucket-1 boundary.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1e-9);
  // p75 is halfway through bucket 1: interpolates between 10 and 20.
  EXPECT_NEAR(h.quantile(0.75), 15.0, 1e-9);
  // Observations past every bound clamp to the highest finite bound.
  Histogram overflow({1.0});
  overflow.observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 1.0);
  // Empty histogram answers 0, not NaN.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Metrics, BoundHelpers) {
  EXPECT_EQ(exponential_bounds(1.0, 2.0, 4), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(linear_bounds(1.0, 1.0, 3), (std::vector<double>{1.0, 2.0, 3.0}));
}

// ---- registry ----------------------------------------------------------------

TEST(Metrics, RegistryGetOrCreateAndKindMismatch) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("obs_test_registry_counter");
  Counter& b = reg.counter("obs_test_registry_counter");
  EXPECT_EQ(&a, &b);  // same name -> same object
  EXPECT_THROW((void)reg.gauge("obs_test_registry_counter"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("obs_test_registry_counter", {1.0}), std::invalid_argument);
  a.reset();
}

TEST(Metrics, PrometheusTextFormat) {
  Registry& reg = Registry::global();
  reg.counter("obs_test_prom_total").reset();
  reg.counter("obs_test_prom_total").inc(3);
  reg.gauge("obs_test_prom_depth").set(2.0);
  Histogram& h = reg.histogram("obs_test_prom_ms", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_ms histogram"), std::string::npos);
  // Buckets render CUMULATIVE with an +Inf bucket, plus _sum and _count.
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_count 2"), std::string::npos);
}

TEST(Metrics, PrometheusLabeledFamiliesShareOneTypeLine) {
  Registry& reg = Registry::global();
  reg.counter("obs_test_labeled_total{worker=\"a\"}").reset();
  reg.counter("obs_test_labeled_total{worker=\"b\"}").reset();
  reg.counter("obs_test_labeled_total{worker=\"a\"}").inc();
  const std::string text = reg.prometheus_text();
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE obs_test_labeled_total counter");
       at != std::string::npos;
       at = text.find("# TYPE obs_test_labeled_total counter", at + 1))
    ++type_lines;
  EXPECT_EQ(type_lines, 1u);  // one family, two label variants
  EXPECT_NE(text.find("obs_test_labeled_total{worker=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_labeled_total{worker=\"b\"} 0"), std::string::npos);
}

TEST(Metrics, JsonSnapshotRoundTripsThroughParser) {
  Registry& reg = Registry::global();
  reg.counter("obs_test_json_total").reset();
  reg.counter("obs_test_json_total").inc(7);
  const eval::Json doc = eval::Json::parse(reg.to_json().dump(2));
  EXPECT_EQ(doc.at("counters").get_int("obs_test_json_total", 0), 7);
  EXPECT_TRUE(doc.has("gauges"));
  EXPECT_TRUE(doc.has("histograms"));
}

// ---- telemetry merge ---------------------------------------------------------

eval::Json telemetry_doc(std::int64_t rows, double depth, std::vector<double> counts,
                         std::vector<double> bucket_bounds = {1.0, 2.0}) {
  eval::Json counters = eval::Json::object();
  counters.set("fsa_rows_total", eval::Json::number(rows));
  eval::Json gauges = eval::Json::object();
  gauges.set("fsa_queue_depth", eval::Json::number(depth));
  eval::Json hist = eval::Json::object();
  eval::Json bounds = eval::Json::array();
  for (const double b : bucket_bounds) bounds.push_back(eval::Json::number(b));
  hist.set("bounds", std::move(bounds));
  eval::Json arr = eval::Json::array();
  double total = 0.0, sum = 0.0;
  for (const double c : counts) {
    arr.push_back(eval::Json::number(c));
    total += c;
    sum += c;  // pretend every observation was 1.0
  }
  hist.set("counts", std::move(arr));
  hist.set("sum", eval::Json::number(sum));
  hist.set("count", eval::Json::number(total));
  eval::Json hists = eval::Json::object();
  hists.set("fsa_ms", std::move(hist));
  eval::Json doc = eval::Json::object();
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(hists));
  return doc;
}

TEST(Telemetry, MergeAddsCountersMaxesGaugesAddsHistograms) {
  const eval::Json a = telemetry_doc(3, 2.0, {1.0, 0.0, 1.0});
  const eval::Json b = telemetry_doc(4, 5.0, {0.0, 2.0, 0.0});
  const eval::Json m = merge_telemetry(a, b);
  EXPECT_EQ(m.at("counters").get_int("fsa_rows_total", 0), 7);
  EXPECT_DOUBLE_EQ(m.at("gauges").get_number("fsa_queue_depth", 0.0), 5.0);
  const eval::Json& h = m.at("histograms").at("fsa_ms");
  EXPECT_DOUBLE_EQ(h.at("counts").at(0).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("counts").at(1).as_number(), 2.0);
  EXPECT_DOUBLE_EQ(h.at("counts").at(2).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.get_number("count", 0.0), 4.0);  // 2 observations per side
}

TEST(Telemetry, MergeKeepsFirstHistogramOnBoundsMismatch) {
  const eval::Json a = telemetry_doc(1, 0.0, {1.0, 0.0, 0.0});
  const eval::Json b = telemetry_doc(1, 0.0, {0.0, 1.0, 0.0}, {10.0, 20.0});  // different bounds
  const eval::Json m = merge_telemetry(a, b);
  EXPECT_DOUBLE_EQ(m.at("histograms").at("fsa_ms").at("counts").at(0).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(m.at("histograms").at("fsa_ms").at("counts").at(1).as_number(), 0.0);
}

TEST(Telemetry, MergeJobTelemetryFoldsSidecarsOutsideReduced) {
  const std::string dir = ::testing::TempDir() + "fsa_obs_merge_job";
  fs::remove_all(dir);
  eval::Json manifest = eval::Json::object();
  manifest.set("shards", eval::Json::number(std::int64_t{3}));
  const dist::JobDir job = dist::JobDir::create(dir, "sweep", 3, manifest);

  // Sidecars on shards 0 and 2; shard 1 ran without FSA_METRICS.
  dist::write_json_atomic(job.telemetry_sidecar_path(0), telemetry_doc(2, 1.0, {1.0, 0.0, 0.0}));
  dist::write_json_atomic(job.telemetry_sidecar_path(2), telemetry_doc(5, 3.0, {0.0, 1.0, 0.0}));
  EXPECT_EQ(dist::merge_job_telemetry(job), 2);

  const eval::Json merged = dist::read_json_file(job.telemetry_path());
  EXPECT_EQ(merged.at("counters").get_int("fsa_rows_total", 0), 7);
  EXPECT_DOUBLE_EQ(merged.at("gauges").get_number("fsa_queue_depth", 0.0), 3.0);
  // reduced.json was never created — telemetry lives strictly beside it.
  std::error_code ec;
  EXPECT_FALSE(fs::is_regular_file(job.reduced_path(), ec));

  // No sidecars at all -> no telemetry.json, return 0.
  const std::string empty_dir = ::testing::TempDir() + "fsa_obs_merge_none";
  fs::remove_all(empty_dir);
  const dist::JobDir none = dist::JobDir::create(empty_dir, "sweep", 2, manifest);
  EXPECT_EQ(dist::merge_job_telemetry(none), 0);
  EXPECT_FALSE(fs::is_regular_file(none.telemetry_path(), ec));
  fs::remove_all(dir);
  fs::remove_all(empty_dir);
}

// ---- Json::remove (the reducer's convergence scrub) --------------------------

TEST(Telemetry, JsonRemoveDropsKeyAndIgnoresMissing) {
  eval::Json doc = eval::Json::object();
  doc.set("keep", eval::Json::number(std::int64_t{1}));
  doc.set("convergence", eval::Json::array());
  doc.remove("convergence");
  EXPECT_FALSE(doc.has("convergence"));
  EXPECT_TRUE(doc.has("keep"));
  doc.remove("convergence");  // removing twice is a no-op, not an error
  EXPECT_EQ(doc.dump(), "{\"keep\":1}");
}

}  // namespace
}  // namespace fsa::obs
