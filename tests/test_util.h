// test_util.h — shared fixtures for attack-level tests.
//
// The unit/integration tests must run in seconds, so instead of the full
// C&W convnet they attack a small dense network trained on a deterministic
// 10-class Gaussian-blobs problem. Everything about the attack pipeline
// (masks, margins, ADMM, refinement, baselines) is exercised identically;
// only the substrate is smaller.
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "optim/adam.h"
#include "optim/trainer.h"
#include "tensor/ops.h"

namespace fsa::testutil {

inline constexpr std::int64_t kBlobDim = 12;
inline constexpr std::int64_t kBlobClasses = 10;

/// 10 well-separated Gaussian blobs in 12-D, presented as [N, 1, 1, 12]
/// "images" so the Dataset invariants hold.
inline data::Dataset make_blobs(std::int64_t n, std::uint64_t seed, double spread = 0.25) {
  Rng rng(seed);
  // Fixed class centers: axis-aligned ± pattern, deterministic.
  std::vector<Tensor> centers;
  Rng center_rng(12345);
  for (std::int64_t c = 0; c < kBlobClasses; ++c)
    centers.push_back(Tensor::randn(Shape({kBlobDim}), center_rng, 0.0f, 1.0f));
  Tensor images(Shape({n, 1, 1, kBlobDim}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::int64_t>(rng.uniform_int(kBlobClasses));
    labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t d = 0; d < kBlobDim; ++d)
      images[static_cast<std::size_t>(i * kBlobDim + d)] =
          centers[static_cast<std::size_t>(cls)][static_cast<std::size_t>(d)] +
          static_cast<float>(rng.normal(0.0, spread));
  }
  return data::Dataset(std::move(images), std::move(labels), kBlobClasses);
}

/// flatten → fc1(12→32) → relu → fc2(32→10). Trained to ≈100% on blobs.
inline nn::Sequential make_blob_net(std::uint64_t seed = 5) {
  Rng rng(seed);
  nn::Sequential net;
  net.add(std::make_unique<nn::Flatten>("flatten"));
  net.add(std::make_unique<nn::Dense>("fc1", kBlobDim, 32, rng));
  net.add(std::make_unique<nn::ReLU>("relu1"));
  net.add(std::make_unique<nn::Dense>("fc2", 32, kBlobClasses, rng));
  return net;
}

/// Train the blob net to high accuracy; returns final test accuracy.
inline double train_blob_net(nn::Sequential& net, const data::Dataset& train,
                             const data::Dataset& test) {
  optim::Adam opt(net.params(), 5e-3);
  optim::Trainer trainer(net, opt);
  optim::TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  trainer.fit(train, cfg);
  return optim::Trainer::accuracy(net, test);
}

}  // namespace fsa::testutil
