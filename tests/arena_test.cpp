// arena_test.cpp — the attack↔defense arena: grid expansion, the defense
// pass on sweep rows, detection-aware attackers, and the arena job's
// determinism contract (reduced rows AND frontier byte-identical for any
// shard split or thread count).
#include <gtest/gtest.h>

#include <filesystem>

#include "backend/compute_backend.h"
#include "defense/defenses.h"
#include "dist/job_dir.h"
#include "dist/jobs.h"
#include "dist/reducer.h"
#include "engine/arena.h"
#include "engine/attackers.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "eval/attack_bench.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "test_util.h"

namespace fsa::engine {
namespace {

namespace fs = std::filesystem;

// ---- fixture: a ZooModel around the fast blob substrate ----------------------

struct Fixture {
  models::ZooModel model;
  std::string cache_dir;

  Fixture() {
    cache_dir = ::testing::TempDir() + "fsa_arena_test";
    fs::remove_all(cache_dir);
    model.name = "blobs";
    model.net = testutil::make_blob_net(6);
    model.train = testutil::make_blobs(600, 21);
    model.test = testutil::make_blobs(300, 22);
    model.attack_pool = testutil::make_blobs(400, 23);
    model.test_accuracy = testutil::train_blob_net(model.net, model.train, model.test);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// A tight deployment: per-16-param groups, zero slack. Vanilla fsa-l2
/// spreads δ over every parameter, so some entry exceeds its group's
/// trained max; the evasive variant box-projects INSIDE the solve and
/// stays under it by construction.
defense::DefenseConfig strict_range() { return defense::parse_defense("range/16/0"); }

// ---- arena_specs -------------------------------------------------------------

TEST(ArenaSpecs, ExpandsTheFullCrossWithDefenseTags) {
  ArenaConfig cfg;
  cfg.methods = {"fsa-l0", "fsa-l2"};
  cfg.defenses = {defense::parse_defense("checksum/64"), strict_range()};
  cfg.layer_sets = {{"fc2"}};
  cfg.sr_pairs = {{1, 8}, {2, 12}};
  cfg.seeds = {3, 4};
  const std::vector<SweepSpec> specs = arena_specs(cfg);
  ASSERT_EQ(specs.size(), 2u * 2u * 1u * 2u * 2u);
  // method → defense → layers → (S,R) → seed, each row tagged by its
  // defense's canonical key (the tag is part of the reducer's sort key).
  EXPECT_EQ(specs[0].method, "fsa-l0");
  EXPECT_EQ(specs[0].tag, "checksum/64");
  ASSERT_TRUE(specs[0].defense.has_value());
  EXPECT_EQ(specs[0].defense->key(), "checksum/64");
  EXPECT_EQ(specs[0].S, 1);
  EXPECT_EQ(specs[1].seed, 4u);
  EXPECT_EQ(specs[4].tag, "range/16/0");
  EXPECT_EQ(specs[8].method, "fsa-l2");
  EXPECT_FALSE(specs[0].measure_accuracy);  // rates, not accuracy, by default
}

TEST(ArenaSpecs, ValidatesEagerly) {
  ArenaConfig cfg;
  cfg.defenses = {strict_range()};
  cfg.methods = {"no-such-method"};
  EXPECT_THROW((void)arena_specs(cfg), std::invalid_argument);
  cfg.methods = {"fsa-l0"};
  cfg.defenses.clear();
  EXPECT_THROW((void)arena_specs(cfg), std::invalid_argument);
  cfg.defenses = {defense::DefenseConfig{}};
  cfg.defenses[0].name = "no-such-defense";
  EXPECT_THROW((void)arena_specs(cfg), std::invalid_argument);
  cfg.defenses = {strict_range()};
  cfg.seeds.clear();
  EXPECT_THROW((void)arena_specs(cfg), std::invalid_argument);
}

TEST(ArenaJobs, ManifestRequiresADefenseOnEverySpec) {
  Sweep sweep;
  sweep.methods({"fsa-l0"}).layers({"fc2"}).sr_pairs({{1, 8}}).seeds({3});
  EXPECT_THROW((void)dist::arena_manifest("blobs", "blocked", sweep.build()),
               std::invalid_argument);
  sweep.with_defense(strict_range());
  const eval::Json manifest = dist::arena_manifest("blobs", "blocked", sweep.build());
  EXPECT_EQ(manifest.get_string("kind", ""), "arena");
  EXPECT_EQ(manifest.get_int("shards", 0), 1);
}

// ---- registry: evasive attackers ---------------------------------------------

TEST(EvasiveRegistry, VariantsRegisteredAndRetargetable) {
  EXPECT_TRUE(has_attacker("fsa-l2-evasive"));
  EXPECT_TRUE(has_attacker("fsa-l0-evasive"));
  const AttackerPtr base = make_attacker("fsa-l2-evasive");
  EXPECT_EQ(base->name(), "fsa-l2-evasive");
  const auto* ev = dynamic_cast<const EvasiveFsaAttacker*>(base.get());
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->target().name, "range");

  // make_attacker_for retargets an evasive method at the row's deployed
  // defense; non-evasive methods pass through unchanged.
  const AttackerPtr retargeted = make_attacker_for("fsa-l2-evasive", strict_range());
  const auto* rt = dynamic_cast<const EvasiveFsaAttacker*>(retargeted.get());
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->target().key(), "range/16/0");
  EXPECT_EQ(make_attacker_for("fsa-l0", strict_range())->name(), "fsa-l0");
  // Unknown defenses fail at construction, before any solve.
  defense::DefenseConfig bogus;
  bogus.name = "no-such-defense";
  EXPECT_THROW((void)make_attacker_for("fsa-l2-evasive", bogus), std::invalid_argument);
}

TEST(EvasiveAttacker, NoTargetIsBitwiseIdenticalToVanilla) {
  auto& f = fixture();
  eval::AttackBench bench(f.model, f.cache_dir, {"fc2"});
  const core::AttackSpec spec = bench.spec(1, 10, 3);

  core::FaultSneakingConfig cfg;
  cfg.admm.norm = core::NormKind::kL2;
  FsaAttacker vanilla(cfg, "fsa-l2");
  EvasiveFsaAttacker unconstrained(cfg, defense::DefenseConfig{.name = ""}, "fsa-l2-evasive");

  const AttackReport a = vanilla.run(f.model.net, bench.attack().mask(), spec);
  const AttackReport b = unconstrained.run(f.model.net, bench.attack().mask(), spec);
  EXPECT_EQ(a.delta, b.delta);  // bitwise: no active constraint, no drift
  EXPECT_EQ(a.l0, b.l0);
  EXPECT_EQ(a.l2, b.l2);
  EXPECT_EQ(a.targets_hit, b.targets_hit);
}

// ---- the defense pass on sweep rows ------------------------------------------

TEST(DefensePass, EvasiveBeatsVanillaUnderStrictRangeGuardAtEqualBudget) {
  auto& f = fixture();
  ArenaConfig cfg;
  cfg.methods = {"fsa-l2", "fsa-l2-evasive"};
  cfg.defenses = {strict_range()};
  cfg.layer_sets = {{"fc2"}};
  cfg.sr_pairs = {{1, 12}};
  cfg.seeds = {3};
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult result = runner.run(arena_specs(cfg));
  ASSERT_EQ(result.rows.size(), 2u);

  const AttackReport& vanilla = result.rows[0].report;
  const AttackReport& evasive = result.rows[1].report;
  ASSERT_TRUE(vanilla.defense.has_value());
  ASSERT_TRUE(evasive.defense.has_value());
  EXPECT_EQ(vanilla.defense->defense, "range/16/0");

  // The paper's qualitative result, closed-loop: the unconstrained ℓ2
  // attack leaves the trained envelope and is caught; the detection-aware
  // variant folds the envelope into the prox step, lands every fault, and
  // slips under the same guard — strictly higher evasion at equal budget.
  EXPECT_TRUE(vanilla.defense->detected);
  EXPECT_FALSE(evasive.defense->detected);
  EXPECT_TRUE(evasive.all_targets_hit);
  EXPECT_TRUE(evasive.defense->evaded);
  EXPECT_FALSE(vanilla.defense->evaded);
  EXPECT_EQ(evasive.defense->sanitize_clamped, 0);  // nothing to clamp: in-range
  EXPECT_EQ(evasive.defense->faults_after_sanitize, evasive.S);
}

TEST(DefensePass, ChecksumDetectsEverythingButBudgetShrinksFootprint) {
  auto& f = fixture();
  ArenaConfig cfg;
  cfg.methods = {"fsa-l2", "fsa-l0-evasive"};
  cfg.defenses = {defense::parse_defense("checksum/16")};
  cfg.layer_sets = {{"fc2"}};
  cfg.sr_pairs = {{1, 12}};
  cfg.seeds = {3};
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult result = runner.run(arena_specs(cfg));
  ASSERT_EQ(result.rows.size(), 2u);

  const AttackReport& spread = result.rows[0].report;
  const AttackReport& budgeted = result.rows[1].report;
  // A CRC sees ANY stored change — both rows are detected; what the
  // flip-budget buys is locality: δ confined to ≤ 2 integrity blocks.
  ASSERT_TRUE(spread.defense.has_value());
  ASSERT_TRUE(budgeted.defense.has_value());
  EXPECT_TRUE(spread.defense->detected);
  EXPECT_TRUE(budgeted.defense->detected);
  EXPECT_LE(budgeted.defense->regions_flagged, 2);
  EXPECT_GT(spread.defense->regions_flagged, 2);
  EXPECT_LE(budgeted.l0, 2 * 16);
}

TEST(DefensePass, OutcomeSurvivesTheJsonRoundTrip) {
  AttackReport r;
  r.method = "fsa-l2-evasive";
  DefenseOutcome d;
  d.defense = "range/16/0";
  d.detected_pre = false;
  d.detected_post = true;
  d.detected = true;
  d.evaded = false;
  d.regions_flagged = 3;
  d.sanitize_clamped = 7;
  d.faults_after_sanitize = 1;
  d.overhead_bytes = 168;
  d.verify_cost = 330;
  r.defense = d;

  const AttackReport back = AttackReport::from_json(eval::Json::parse(r.to_json().dump(2)));
  ASSERT_TRUE(back.defense.has_value());
  EXPECT_EQ(back.defense->defense, d.defense);
  EXPECT_EQ(back.defense->detected_pre, d.detected_pre);
  EXPECT_EQ(back.defense->detected_post, d.detected_post);
  EXPECT_EQ(back.defense->detected, d.detected);
  EXPECT_EQ(back.defense->evaded, d.evaded);
  EXPECT_EQ(back.defense->regions_flagged, d.regions_flagged);
  EXPECT_EQ(back.defense->sanitize_clamped, d.sanitize_clamped);
  EXPECT_EQ(back.defense->faults_after_sanitize, d.faults_after_sanitize);
  EXPECT_EQ(back.defense->overhead_bytes, d.overhead_bytes);
  EXPECT_EQ(back.defense->verify_cost, d.verify_cost);

  AttackReport plain;  // no defense pass → no "defense" key → stays unset
  EXPECT_FALSE(plain.to_json().has("defense"));
  EXPECT_FALSE(AttackReport::from_json(plain.to_json()).defense.has_value());
}

// ---- the frontier -------------------------------------------------------------

TEST(ArenaFrontier, AggregatesPerMethodDefenseCell) {
  eval::Json rows = eval::Json::array();
  const auto row = [](const char* method, const char* defense, bool detected, bool evaded,
                      std::int64_t l0, double l2) {
    eval::Json r = eval::Json::object();
    r.set("method", eval::Json::string(method));
    r.set("l0", eval::Json::number(l0));
    r.set("l2", eval::Json::number(l2));
    eval::Json d = eval::Json::object();
    d.set("defense", eval::Json::string(defense));
    d.set("detected", eval::Json::boolean(detected));
    d.set("evaded", eval::Json::boolean(evaded));
    d.set("overhead_bytes", eval::Json::number(std::int64_t{64}));
    d.set("verify_cost", eval::Json::number(std::int64_t{330}));
    r.set("defense", std::move(d));
    return r;
  };
  rows.push_back(row("fsa-l2", "range/16/0", true, false, 100, 0.8));
  rows.push_back(row("fsa-l2", "range/16/0", false, true, 50, 0.4));
  rows.push_back(row("fsa-l2-evasive", "range/16/0", false, true, 60, 0.5));
  rows.push_back(eval::Json::object());  // defenseless row: skipped, not fatal

  const eval::Json frontier = arena_frontier(rows);
  ASSERT_EQ(frontier.size(), 2u);
  const eval::Json& a = frontier.at(0);
  EXPECT_EQ(a.get_string("method", ""), "fsa-l2");
  EXPECT_EQ(a.get_int("rows", 0), 2);
  EXPECT_EQ(a.get_int("detected", 0), 1);
  EXPECT_DOUBLE_EQ(a.get_number("detect_rate", -1.0), 0.5);
  EXPECT_DOUBLE_EQ(a.get_number("evasion_rate", -1.0), 0.5);
  EXPECT_DOUBLE_EQ(a.get_number("mean_l0", -1.0), 75.0);
  const eval::Json& b = frontier.at(1);
  EXPECT_EQ(b.get_string("method", ""), "fsa-l2-evasive");
  EXPECT_DOUBLE_EQ(b.get_number("evasion_rate", -1.0), 1.0);
  EXPECT_EQ(b.get_int("overhead_bytes", 0), 64);
}

// ---- the arena job: worker-count and thread-count invariance ------------------

std::vector<SweepSpec> arena_grid() {
  ArenaConfig cfg;
  cfg.methods = {"fsa-l2", "fsa-l2-evasive"};
  cfg.defenses = {defense::parse_defense("checksum/16"), strict_range()};
  cfg.layer_sets = {{"fc2"}};
  cfg.sr_pairs = {{1, 8}};
  cfg.seeds = {3};
  return arena_specs(cfg);
}

TEST(ArenaJob, ShardedReduceByteIdenticalToSingleShardIncludingFrontier) {
  auto& f = fixture();
  const std::string scratch = ::testing::TempDir() + "fsa_arena_job";
  fs::remove_all(scratch);
  const std::vector<SweepSpec> specs = arena_grid();
  const eval::Json manifest = dist::arena_manifest("blobs", backend::active_name(), specs);
  ASSERT_EQ(manifest.get_int("shards", 0), static_cast<std::int64_t>(specs.size()));

  // One worker entry per shard (fresh runner each, as separate processes
  // would have) vs one worker entry solving a single-shard manifest.
  const dist::JobDir sharded =
      dist::JobDir::create(scratch + "/sharded", "arena",
                           static_cast<int>(specs.size()), manifest);
  for (int s = 0; s < sharded.shards(); ++s) {
    SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
    sharded.write_result(s, dist::run_sweep_shard(manifest, s, runner));
  }

  eval::Json one = manifest;
  one.set("shards", eval::Json::number(std::int64_t{1}));
  const dist::JobDir single = dist::JobDir::create(scratch + "/single", "arena", 1, one);
  {
    SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
    single.write_result(0, dist::run_sweep_shard(one, 0, runner));
  }

  const eval::Json sharded_reduced = dist::reduce_job(sharded);
  const eval::Json single_reduced = dist::reduce_job(single);
  EXPECT_EQ(sharded_reduced.get_string("kind", ""), "arena");
  ASSERT_EQ(sharded_reduced.at("rows").size(), specs.size());
  // `shards` is the one field that legitimately differs; rows and the
  // frontier must match byte for byte.
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(sharded_reduced.at("rows").at(i).dump(2), single_reduced.at("rows").at(i).dump(2))
        << "row " << i;
  EXPECT_EQ(sharded_reduced.at("frontier").dump(2), single_reduced.at("frontier").dump(2));
  // Every row carries a defense outcome and the frontier covers every cell.
  for (const eval::Json& row : sharded_reduced.at("rows").items())
    EXPECT_TRUE(row.has("defense")) << row.dump();
  EXPECT_EQ(sharded_reduced.at("frontier").size(), 4u);
  fs::remove_all(scratch);
}

TEST(ArenaJob, ReducedRowsByteIdenticalForOneAndFourThreads) {
  auto& f = fixture();
  const std::vector<SweepSpec> specs = arena_grid();
  const eval::Json manifest = dist::arena_manifest("blobs", backend::active_name(), specs);
  eval::Json one = manifest;
  one.set("shards", eval::Json::number(std::int64_t{1}));

  const auto reduce_with = [&](int threads) {
    set_num_threads(threads);
    SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
    const eval::Json shard = dist::run_sweep_shard(one, 0, runner);
    return dist::make_reducer("arena")->reduce(one, {shard});
  };
  const eval::Json serial = reduce_with(1);
  const eval::Json parallel = reduce_with(4);
  set_num_threads(0);  // restore the environment default
  EXPECT_EQ(serial.dump(2), parallel.dump(2));
}

}  // namespace
}  // namespace fsa::engine
