// param_mask_test.cpp — gather/scatter correctness and cut computation.
#include <gtest/gtest.h>

#include "core/param_mask.h"
#include "models/cw_net.h"
#include "test_util.h"

namespace fsa::core {
namespace {

TEST(ParamMask, SizeMatchesSelectedLayers) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask fc2 = ParamMask::make(net, {"fc2"});
  EXPECT_EQ(fc2.size(), 32 * 10 + 10);
  const ParamMask fc2w = ParamMask::make(net, {"fc2"}, true, false);
  EXPECT_EQ(fc2w.size(), 32 * 10);
  const ParamMask fc2b = ParamMask::make(net, {"fc2"}, false, true);
  EXPECT_EQ(fc2b.size(), 10);
  const ParamMask both = ParamMask::make(net, {"fc1", "fc2"});
  EXPECT_EQ(both.size(), 12 * 32 + 32 + 32 * 10 + 10);
}

TEST(ParamMask, CwNetFcSizesMatchPaperTable1) {
  // The paper's Table 1 reports exactly these totals for the MNIST net.
  models::CwNetConfig cfg;
  nn::Sequential net = models::make_cw_net(cfg);
  EXPECT_EQ(ParamMask::make(net, {"fc1"}).size(), 205000);
  EXPECT_EQ(ParamMask::make(net, {"fc2"}).size(), 40200);
  EXPECT_EQ(ParamMask::make(net, {"fc3"}).size(), 2010);
}

TEST(ParamMask, CutIsLowestSelectedLayer) {
  nn::Sequential net = testutil::make_blob_net();
  EXPECT_EQ(ParamMask::make(net, {"fc2"}).cut(), net.index_of("fc2"));
  EXPECT_EQ(ParamMask::make(net, {"fc1", "fc2"}).cut(), net.index_of("fc1"));
  EXPECT_EQ(ParamMask::make(net, {"fc2", "fc1"}).cut(), net.index_of("fc1"));
}

TEST(ParamMask, UnknownLayerThrows) {
  nn::Sequential net = testutil::make_blob_net();
  EXPECT_THROW(ParamMask::make(net, {"fc9"}), std::out_of_range);
}

TEST(ParamMask, EmptySelectionThrows) {
  nn::Sequential net = testutil::make_blob_net();
  EXPECT_THROW(ParamMask::make(net, {"fc1"}, false, false), std::invalid_argument);
  // relu has no params at all:
  EXPECT_THROW(ParamMask::make(net, {"relu1"}), std::invalid_argument);
}

TEST(ParamMask, GatherScatterRoundTrip) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask mask = ParamMask::make(net, {"fc1", "fc2"});
  const Tensor before = mask.gather_values();
  Tensor modified = before;
  for (std::size_t i = 0; i < modified.size(); i += 7) modified[i] += 1.0f;
  mask.scatter_values(modified);
  EXPECT_EQ(mask.gather_values(), modified);
  mask.scatter_values(before);
  EXPECT_EQ(mask.gather_values(), before);
}

TEST(ParamMask, ScatterSizeMismatchThrows) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask mask = ParamMask::make(net, {"fc2"});
  EXPECT_THROW(mask.scatter_values(Tensor(Shape({3}))), std::invalid_argument);
}

TEST(ParamMask, ScatterOnlyTouchesSelectedParams) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask fc2 = ParamMask::make(net, {"fc2"});
  const ParamMask fc1 = ParamMask::make(net, {"fc1"});
  const Tensor fc1_before = fc1.gather_values();
  Tensor zeroed = Tensor::zeros(Shape({fc2.size()}));
  fc2.scatter_values(zeroed);
  EXPECT_EQ(fc1.gather_values(), fc1_before);
}

TEST(ParamMask, GatherGradsTracksBackward) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask mask = ParamMask::make(net, {"fc2"});
  net.zero_grad();
  Rng rng(1);
  const Tensor x = Tensor::randn(Shape({4, 1, 1, testutil::kBlobDim}), rng);
  const Tensor logits = net.forward(x, true);
  net.backward(Tensor::ones(logits.shape()));
  const Tensor grads = mask.gather_grads();
  // Bias grads of fc2 are the last 10 entries; each equals the batch size
  // (grad-output of ones summed over 4 rows).
  for (std::int64_t i = mask.size() - 10; i < mask.size(); ++i)
    EXPECT_FLOAT_EQ(grads[static_cast<std::size_t>(i)], 4.0f);
}

TEST(ParamMask, WeightsOnlyMaskKeepsBiasesFixed) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask w = ParamMask::make(net, {"fc2"}, true, false);
  const ParamMask b = ParamMask::make(net, {"fc2"}, false, true);
  const Tensor bias_before = b.gather_values();
  Tensor ones = Tensor::ones(Shape({w.size()}));
  w.scatter_values(ones);
  EXPECT_EQ(b.gather_values(), bias_before);
}

TEST(ParamMask, DescribeMentionsSelection) {
  nn::Sequential net = testutil::make_blob_net();
  const std::string desc = ParamMask::make(net, {"fc2"}, true, false).describe();
  EXPECT_NE(desc.find("fc2"), std::string::npos);
  EXPECT_NE(desc.find("weights"), std::string::npos);
  EXPECT_NE(desc.find("320"), std::string::npos);
}

TEST(ParamMask, SegmentsCoverFlatSpaceContiguously) {
  nn::Sequential net = testutil::make_blob_net();
  const ParamMask mask = ParamMask::make(net, {"fc1", "fc2"});
  std::int64_t expected_offset = 0;
  for (const auto& seg : mask.segments()) {
    EXPECT_EQ(seg.offset, expected_offset);
    expected_offset += seg.param->numel();
  }
  EXPECT_EQ(expected_offset, mask.size());
}

}  // namespace
}  // namespace fsa::core
