// compile_test.cpp — the forward-pass compiler's three contracts:
//
//   1. Parity: a compiled forward (fused bias/ReLU epilogues, cached
//      plans, pack-once panels) is BITWISE identical to the uncompiled
//      Sequential, for every backend and thread count, for full forwards
//      and for every forward_from cut (including cuts inside fused nodes).
//   2. Pack-once / copy-on-write: packed-backend weight panels are built
//      once, shared read-only across rebinds, and invalidated per-node by
//      Parameter version bumps — a mutated instance repacks privately
//      while every other instance keeps the shared panels.
//   3. O(δ-surface) cloning: instance_net shares prefix parameters by
//      pointer and deep-copies only the attacked head.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "compile/model_compiler.h"
#include "core/param_mask.h"
#include "models/feature_cache.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "tensor/parallel.h"

namespace fsa::compile {
namespace {

/// Restores the active backend and the pool size when a test body returns.
struct BackendGuard {
  std::string saved = backend::active_name();
  ~BackendGuard() {
    backend::set_backend(saved);
    set_num_threads(0);
  }
};

/// conv1+relu → conv2+relu → flatten → fc1+relu → fc2 (no trailing ReLU):
/// exercises both fused-conv and fused-dense nodes, an opaque node, and a
/// dense node WITHOUT a ReLU epilogue. Random weights suffice — parity is
/// a property of the kernels, not of trained parameters.
nn::Sequential make_conv_net(std::uint64_t seed = 11) {
  Rng rng(seed);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2D>("conv1", 1, 4, 3, rng));  // [N,1,8,8] -> [N,4,6,6]
  net.add(std::make_unique<nn::ReLU>("relu1"));
  net.add(std::make_unique<nn::Conv2D>("conv2", 4, 6, 3, rng));  // -> [N,6,4,4]
  net.add(std::make_unique<nn::ReLU>("relu2"));
  net.add(std::make_unique<nn::Flatten>("flatten"));             // -> [N,96]
  net.add(std::make_unique<nn::Dense>("fc1", 96, 24, rng));
  net.add(std::make_unique<nn::ReLU>("relu3"));
  net.add(std::make_unique<nn::Dense>("fc2", 24, 10, rng));
  return net;
}

Tensor make_input(std::int64_t n = 5, std::uint64_t seed = 17) {
  Rng rng(seed);
  return Tensor::randn(Shape({n, 1, 8, 8}), rng, 0.0f, 1.0f);
}

const NodeInfo& node_named(const std::vector<NodeInfo>& nodes, const std::string& name) {
  for (const NodeInfo& n : nodes)
    if (n.name == name) return n;
  throw std::out_of_range("no node named " + name);
}

// ---- structure ---------------------------------------------------------------

TEST(CompiledModel, FusesConvAndDenseNodesAndDelegatesOpaque) {
  BackendGuard guard;
  backend::set_backend("reference");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);

  EXPECT_EQ(cm.layer_count(), 8u);
  EXPECT_EQ(cm.node_count(), 5u);  // conv1+r, conv2+r, flatten, fc1+r, fc2
  EXPECT_EQ(cm.fused_nodes(), 4u);

  const std::vector<NodeInfo> nodes = cm.describe();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(node_named(nodes, "conv1").kind, "conv");
  EXPECT_TRUE(node_named(nodes, "conv1").fused_relu);
  EXPECT_EQ(node_named(nodes, "conv1").layers, 2u);
  EXPECT_EQ(node_named(nodes, "flatten").kind, "opaque");
  EXPECT_EQ(node_named(nodes, "fc1").kind, "dense");
  EXPECT_TRUE(node_named(nodes, "fc1").fused_relu);
  EXPECT_EQ(node_named(nodes, "fc2").kind, "dense");
  EXPECT_FALSE(node_named(nodes, "fc2").fused_relu);  // no trailing ReLU
  EXPECT_EQ(node_named(nodes, "fc2").first, 7u);
  // Reference backend: no panels packed.
  for (const NodeInfo& n : nodes) EXPECT_FALSE(n.has_panels) << n.name;
}

// ---- parity ------------------------------------------------------------------

TEST(CompiledModel, ForwardBitwiseMatchesUncompiledAcrossBackendsAndThreads) {
  BackendGuard guard;
  nn::Sequential net = make_conv_net();
  const Tensor x = make_input();

  // Uncompiled intermediate activations, one per layer boundary: the
  // oracle for every forward_from cut (including cuts INSIDE fused nodes,
  // which must fall back to layer-by-layer execution).
  backend::set_backend("reference");
  std::vector<Tensor> acts = {x};
  for (std::size_t i = 0; i < net.size(); ++i)
    acts.push_back(net.layer(i).forward(acts.back(), /*train=*/false));

  for (const char* name : {"reference", "blocked", "packed", "auto"}) {
    for (int threads : {1, 4}) {
      backend::set_backend(name);
      set_num_threads(threads);
      const std::string where = std::string(name) + " @ " + std::to_string(threads) + " threads";

      // The oracle under THIS backend: kernels are accumulation-order
      // identical across backends, so this equals the reference acts too —
      // but compare against a same-backend fresh run to isolate the
      // compiled-vs-uncompiled property.
      nn::Sequential oracle = net.clone();
      const Tensor want = oracle.forward(x, /*train=*/false);

      CompiledModel cm(net);  // packs panels iff backend == packed
      EXPECT_EQ(cm.forward(x), want) << where;
      EXPECT_EQ(cm.forward(x), want) << where << " (second call: cached plan)";
      for (std::size_t from = 0; from <= net.size(); ++from)
        EXPECT_EQ(cm.forward_from(from, acts[from]), acts[net.size()])
            << where << ", from=" << from;
    }
  }
}

TEST(CompiledModel, PlanSurvivesInputGeometryChanges) {
  BackendGuard guard;
  backend::set_backend("packed");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);
  // Alternate batch sizes: the per-node plan cache must re-derive geometry
  // when the shape changes and still match the uncompiled path bitwise.
  for (std::int64_t n : {3, 7, 3, 1}) {
    const Tensor x = make_input(n, 100 + static_cast<std::uint64_t>(n));
    nn::Sequential oracle = net.clone();
    EXPECT_EQ(cm.forward(x), oracle.forward(x, false)) << "batch " << n;
  }
}

// ---- pack-once panels + copy-on-write ----------------------------------------

TEST(CompiledModel, PanelsPackOnceAndShareAcrossRebinds) {
  BackendGuard guard;
  backend::set_backend("packed");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);

  for (const NodeInfo& n : cm.describe())
    if (n.kind != "opaque") {
      EXPECT_TRUE(n.has_panels) << n.name;
      EXPECT_EQ(n.panel_refs, 1) << n.name;
    }

  nn::Sequential clone1 = net.clone();
  nn::Sequential clone2 = net.clone();
  CompiledModel r1 = cm.rebind(clone1);
  CompiledModel r2 = cm.rebind(clone2);

  const std::vector<NodeInfo> plan_nodes = cm.describe();
  const std::vector<NodeInfo> r1_nodes = r1.describe();
  for (const NodeInfo& n : plan_nodes)
    if (n.kind != "opaque") {
      EXPECT_EQ(n.panel_refs, 3) << n.name;  // plan + two rebinds
      EXPECT_EQ(node_named(r1_nodes, n.name).panel_id, n.panel_id) << n.name;
    }

  const Tensor x = make_input();
  nn::Sequential oracle = net.clone();
  const Tensor want = oracle.forward(x, false);
  EXPECT_EQ(r1.forward(x), want);
  EXPECT_EQ(r2.forward(x), want);
}

TEST(CompiledModel, CowRepacksOnlyTheMutatedLayer) {
  BackendGuard guard;
  backend::set_backend("packed");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);

  nn::Sequential instance = net.clone();
  CompiledModel rebound = cm.rebind(instance);

  // Attack-style mutation: scatter through a ParamMask bumps the weight's
  // version, invalidating the shared fc2 panels for THIS instance only.
  const core::ParamMask mask = core::ParamMask::make(instance, {"fc2"}, true, false);
  Tensor theta = mask.gather_values();
  theta[0] += 0.5f;
  mask.scatter_values(theta);

  const Tensor x = make_input();
  nn::Sequential oracle = instance.clone();  // carries the mutated weights
  EXPECT_EQ(rebound.forward(x), oracle.forward(x, false));  // bitwise, repacked privately

  const std::vector<NodeInfo> plan_nodes = cm.describe();
  const std::vector<NodeInfo> inst_nodes = rebound.describe();
  // fc2 diverged; every other fused node still shares the plan's panels.
  EXPECT_NE(node_named(inst_nodes, "fc2").panel_id, node_named(plan_nodes, "fc2").panel_id);
  for (const char* name : {"conv1", "conv2", "fc1"})
    EXPECT_EQ(node_named(inst_nodes, name).panel_id, node_named(plan_nodes, name).panel_id)
        << name;

  // The primary plan is untouched: same panels, same (pre-mutation) output.
  nn::Sequential pristine = net.clone();
  EXPECT_EQ(cm.forward(x), pristine.forward(x, false));
}

// ---- O(δ-surface) instance networks ------------------------------------------

TEST(CompiledModel, InstanceNetSharesPrefixParamsAndClonesHead) {
  BackendGuard guard;
  backend::set_backend("packed");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);
  const std::size_t cut = 7;  // fc2

  nn::Sequential inst1 = cm.instance_net(cut);
  nn::Sequential inst2 = cm.instance_net(cut);
  ASSERT_EQ(inst1.size(), net.size());

  // Prefix layers share the plan's snapshots: parameter IDENTITY is equal
  // across instances. Head parameters are private per instance.
  for (std::size_t i = 0; i < net.size(); ++i) {
    const std::vector<nn::Parameter*> p1 = inst1.layer(i).params();
    const std::vector<nn::Parameter*> p2 = inst2.layer(i).params();
    ASSERT_EQ(p1.size(), p2.size()) << "layer " << i;
    for (std::size_t k = 0; k < p1.size(); ++k) {
      if (i < cut)
        EXPECT_EQ(p1[k], p2[k]) << "layer " << i << " param " << k;
      else
        EXPECT_NE(p1[k], p2[k]) << "layer " << i << " param " << k;
    }
  }

  // Forward parity against the full deep clone, and mutation isolation:
  // perturbing inst1's head must not leak into inst2 or the plan.
  const Tensor x = make_input();
  nn::Sequential oracle = net.clone();
  const Tensor want = oracle.forward(x, false);
  EXPECT_EQ(inst1.forward(x, false), want);
  EXPECT_EQ(inst2.forward(x, false), want);

  const core::ParamMask mask = core::ParamMask::make(inst1, {"fc2"}, true, true);
  Tensor theta = mask.gather_values();
  for (std::size_t i = 0; i < theta.size(); ++i) theta[i] += 0.25f;
  mask.scatter_values(theta);
  EXPECT_NE(inst1.forward(x, false), want);
  EXPECT_EQ(inst2.forward(x, false), want);
  EXPECT_EQ(cm.forward(x), want);
}

TEST(CompiledModel, RebindRejectsForeignStructures) {
  BackendGuard guard;
  backend::set_backend("reference");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);

  Rng rng(3);
  nn::Sequential other;
  other.add(std::make_unique<nn::Flatten>("flatten"));
  other.add(std::make_unique<nn::Dense>("fc1", 64, 10, rng));
  EXPECT_THROW((void)cm.rebind(other), std::invalid_argument);

  // Rebound plans hold no layer snapshots, so they cannot mint instances.
  nn::Sequential clone = net.clone();
  CompiledModel rebound = cm.rebind(clone);
  EXPECT_THROW((void)rebound.instance_net(7), std::logic_error);
}

// ---- head helpers ------------------------------------------------------------

TEST(CompileHeadHelpers, MatchUncompiledModelsHelpers) {
  BackendGuard guard;
  backend::set_backend("packed");
  nn::Sequential net = make_conv_net();
  CompiledModel cm(net);
  const std::size_t cut = 5;  // features feed fc1

  // 300 rows > the 256 batch size: exercises the batch loop's tail.
  Rng rng(29);
  const Tensor features = Tensor::randn(Shape({300, 96}), rng, 0.0f, 1.0f);
  std::vector<std::int64_t> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int64_t>(rng.uniform_int(10));

  nn::Sequential oracle = net.clone();
  EXPECT_EQ(head_predictions(cm, cut, features), models::head_predictions(oracle, cut, features));
  EXPECT_EQ(head_accuracy(cm, cut, features, labels),
            models::head_accuracy(oracle, cut, features, labels));
}

// ---- the FSA_COMPILE seam ----------------------------------------------------

TEST(CompileSeam, SetEnabledOverridesEnvironment) {
  const bool saved = enabled();
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(saved);
}

}  // namespace
}  // namespace fsa::compile
