// serve_test.cpp — the attack-service daemon: dynamic batcher edge cases
// (deadline fires a batch of 1, max_batch fires before the deadline,
// overflow shedding, drain completes every in-flight future), the HTTP
// parser and socket server against adversarial bytes, and the headline
// determinism contract — responses are BYTE-identical whether 1 client
// trickles requests in or 16 clients hammer the daemon concurrently, and
// identical to the offline dist reduction for the same work.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <cmath>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "backend/compute_backend.h"
#include "dist/jobs.h"
#include "dist/reducer.h"
#include "engine/sweep.h"
#include "faultsim/bitflip.h"
#include "faultsim/campaign.h"
#include "serve/batcher.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/zoo.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace fsa::serve {
namespace {

using namespace std::chrono_literals;

// ---- DynamicBatcher ----------------------------------------------------------

/// Echo executor: each payload's "v" comes back in the body, plus the
/// batch size it rode in, so tests can observe coalescing.
BatchFn echo_fn(std::atomic<int>* calls = nullptr) {
  return [calls](const BatchKey& key, const std::vector<eval::Json>& payloads) {
    if (calls) calls->fetch_add(1);
    std::vector<BatchResponse> out;
    out.reserve(payloads.size());
    for (const eval::Json& p : payloads)
      out.push_back({200, key.kind + ":" + std::to_string(p.get_int("v", -1)) + ":batch" +
                              std::to_string(payloads.size())});
    return out;
  };
}

eval::Json payload(int v) {
  eval::Json j = eval::Json::object();
  j.set("v", eval::Json::number(static_cast<std::int64_t>(v)));
  return j;
}

TEST(Batcher, DeadlineFiresABatchOfOne) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_ms = 10;
  DynamicBatcher batcher(opts, echo_fn());
  auto f = batcher.submit(BatchKey{"t", "m", "b", ""}, payload(7));
  ASSERT_TRUE(f.has_value());
  // A lone request must not wait for 7 batchmates that never come: the
  // deadline fires it alone, promptly.
  ASSERT_EQ(f->wait_for(2s), std::future_status::ready);
  const BatchResponse r = f->get();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "t:7:batch1");
  const eval::Json stats = batcher.stats_json();
  EXPECT_EQ(stats.at("batches").at("size_histogram").get_int("1", 0), 1);
}

TEST(Batcher, FullBatchFiresLongBeforeTheDeadline) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_delay_ms = 60000;  // a minute: only the size trigger can fire in time
  opts.executors = 1;
  std::atomic<int> calls{0};
  DynamicBatcher batcher(opts, echo_fn(&calls));
  const BatchKey key{"t", "m", "b", ""};
  std::vector<std::future<BatchResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    auto f = batcher.submit(key, payload(i));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(futures[static_cast<std::size_t>(i)].wait_for(5s), std::future_status::ready)
        << "full batch should fire immediately, not wait out the deadline";
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().body,
              "t:" + std::to_string(i) + ":batch4");
  }
  EXPECT_EQ(calls.load(), 1) << "4 requests at max_batch=4 must coalesce into ONE call";
}

TEST(Batcher, OverflowShedsInsteadOfQueueingUnboundedly) {
  BatcherOptions opts;
  opts.max_batch = 64;
  opts.max_delay_ms = 60000;  // nothing fires on its own during the test
  opts.max_queue = 2;
  DynamicBatcher batcher(opts, echo_fn());
  const BatchKey key{"t", "m", "b", ""};
  auto f1 = batcher.submit(key, payload(1));
  auto f2 = batcher.submit(key, payload(2));
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  auto f3 = batcher.submit(key, payload(3));
  EXPECT_FALSE(f3.has_value()) << "3rd request past max_queue=2 must shed, not queue";
  EXPECT_EQ(batcher.stats_json().at("requests").get_int("shed", 0), 1);

  // Shedding must not strand the queued work: drain executes it.
  batcher.drain();
  EXPECT_EQ(f1->get().body, "t:1:batch2");
  EXPECT_EQ(f2->get().body, "t:2:batch2");
}

TEST(Batcher, DrainCompletesEveryInFlightFutureThenRefuses) {
  BatcherOptions opts;
  opts.max_batch = 64;
  opts.max_delay_ms = 60000;
  DynamicBatcher batcher(opts, echo_fn());
  std::vector<std::future<BatchResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    auto f = batcher.submit(BatchKey{"t", "m" + std::to_string(i % 2), "b", ""}, payload(i));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  batcher.drain();  // SIGTERM path: everything queued must complete
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(f.get().status, 200);
  }
  EXPECT_FALSE(batcher.submit(BatchKey{"t", "m", "b", ""}, payload(9)).has_value())
      << "submit after drain must refuse";
  batcher.drain();  // idempotent
}

TEST(Batcher, ExecutorExceptionBecomesA500NotACrash) {
  BatcherOptions opts;
  opts.max_delay_ms = 1;
  DynamicBatcher batcher(opts, [](const BatchKey&, const std::vector<eval::Json>&)
                                   -> std::vector<BatchResponse> {
    throw std::runtime_error("solver exploded");
  });
  auto f = batcher.submit(BatchKey{"t", "m", "b", ""}, payload(1));
  ASSERT_TRUE(f.has_value());
  const BatchResponse r = f->get();
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("solver exploded"), std::string::npos);
}

TEST(Batcher, DistinctKeysDoNotCoalesce) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.max_delay_ms = 20;
  DynamicBatcher batcher(opts, echo_fn());
  auto fa = batcher.submit(BatchKey{"t", "model-a", "b", ""}, payload(1));
  auto fb = batcher.submit(BatchKey{"t", "model-b", "b", ""}, payload(2));
  ASSERT_TRUE(fa.has_value());
  ASSERT_TRUE(fb.has_value());
  EXPECT_EQ(fa->get().body, "t:1:batch1");
  EXPECT_EQ(fb->get().body, "t:2:batch1");
}

// ---- HTTP parsing ------------------------------------------------------------

TEST(HttpParse, WellFormedHeadRoundTrips) {
  HttpRequest r;
  const std::string err = parse_request_head(
      "POST /v1/sweep HTTP/1.1\r\nHost: localhost\r\nContent-Length:  42 \r\n"
      "X-Mixed-CASE: kept",
      r);
  EXPECT_EQ(err, "");
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/v1/sweep");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.headers.at("content-length"), "42");  // keys lower-cased, values trimmed
  EXPECT_EQ(r.headers.at("x-mixed-case"), "kept");
}

TEST(HttpParse, MalformedHeadsAreRejectedWithAReason) {
  HttpRequest r;
  EXPECT_NE(parse_request_head("", r), "");
  EXPECT_NE(parse_request_head("GET/HTTP/1.1", r), "");
  EXPECT_NE(parse_request_head("GET / HTTP/1.1 extra", r), "");
  EXPECT_NE(parse_request_head("GET nothing HTTP/1.1", r), "");  // target must start with /
  EXPECT_NE(parse_request_head("GET / SPDY/9", r), "");
  EXPECT_NE(parse_request_head("GET / HTTP/1.1\r\nbroken header line", r), "");
  EXPECT_NE(parse_request_head("GET / HTTP/1.1\r\n: novalue", r), "");
}

TEST(HttpParse, ResponseRenderingCarriesFramingHeaders) {
  const std::string raw = render_response(HttpResponse{429, "application/json", "busy"});
  EXPECT_NE(raw.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(raw.substr(raw.size() - 4), "busy");
}

TEST(HttpParse, ErrorBodyEscapesMessage) {
  const std::string body = error_body("bad \"quote\"\nline");
  EXPECT_NO_THROW((void)eval::Json::parse(body));  // trailing \n tolerated by parser? no:
  // parse() rejects trailing garbage but \n is whitespace — fine.
  EXPECT_EQ(eval::Json::parse(body).get_string("error", ""), "bad \"quote\"\nline");
}

// ---- HTTP server sockets -----------------------------------------------------

/// Raw-bytes client for requests http_fetch cannot produce (missing
/// Content-Length etc.). Returns everything the server sent.
std::string raw_exchange(int port, const std::string& bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

HttpServerOptions tiny_server_options() {
  HttpServerOptions o;
  o.port = 0;
  o.threads = 2;
  o.limits.io_timeout_ms = 2000;
  return o;
}

TEST(HttpServer, EchoesBodiesAndRejectsProtocolErrors) {
  HttpServerOptions options = tiny_server_options();
  options.limits.max_body_bytes = 256;
  HttpServer server(options, [](const HttpRequest& r) {
    return HttpResponse{200, "text/plain", r.method + " " + r.target + " -> " + r.body};
  });
  server.start();
  const int port = server.port();
  ASSERT_GT(port, 0);

  const HttpResponse ok = http_fetch("127.0.0.1", port, "POST", "/echo", "hello");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "POST /echo -> hello");

  EXPECT_EQ(http_fetch("127.0.0.1", port, "PUT", "/echo", "x").status, 405);

  // POST without Content-Length → 411 (no chunked support, by design).
  EXPECT_NE(raw_exchange(port, "POST /echo HTTP/1.1\r\nHost: t\r\n\r\n").find("411"),
            std::string::npos);
  // Declared body beyond the cap → 413 before any body bytes are read.
  EXPECT_NE(raw_exchange(port,
                         "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 9999\r\n\r\n")
                .find("413"),
            std::string::npos);
  // Unparseable head → 400.
  EXPECT_NE(raw_exchange(port, "BROKEN\r\n\r\n").find("400"), std::string::npos);

  server.stop();
}

TEST(HttpServer, OversizedHeadIsRefusedEarly) {
  HttpServerOptions options = tiny_server_options();
  options.limits.max_head_bytes = 128;
  HttpServer server(options,
                    [](const HttpRequest&) { return HttpResponse{200, "text/plain", "ok"}; });
  server.start();
  const std::string huge =
      "GET / HTTP/1.1\r\nX-Padding: " + std::string(4096, 'a') + "\r\n\r\n";
  EXPECT_NE(raw_exchange(server.port(), huge).find("431"), std::string::npos);
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server(tiny_server_options(), [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler bug");
  });
  server.start();
  const HttpResponse r = http_fetch("127.0.0.1", server.port(), "GET", "/", "");
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("handler bug"), std::string::npos);
  server.stop();
}

// ---- AttackService over a fast blob model ------------------------------------

struct Fixture {
  models::ZooModel model;
  std::string cache_dir;

  Fixture() {
    cache_dir = ::testing::TempDir() + "fsa_serve_test";
    std::filesystem::remove_all(cache_dir);
    model.name = "blobs";
    model.net = testutil::make_blob_net(6);
    model.train = testutil::make_blobs(600, 21);
    model.test = testutil::make_blobs(300, 22);
    model.attack_pool = testutil::make_blobs(400, 23);
    model.test_accuracy = testutil::train_blob_net(model.net, model.train, model.test);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

eval::Json sweep_request(const std::vector<engine::SweepSpec>& specs) {
  eval::Json doc = eval::Json::object();
  doc.set("dataset", eval::Json::string("blobs"));
  eval::Json arr = eval::Json::array();
  for (const engine::SweepSpec& s : specs) arr.push_back(s.to_json());
  doc.set("specs", std::move(arr));
  return doc;
}

std::vector<engine::SweepSpec> blob_specs(std::uint64_t seed) {
  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "gda"}).layers({"fc2"}).sr_pairs({{1, 8}}).seeds({seed});
  return sweep.build();
}

TEST(Service, SweepResponseMatchesTheDistReductionByteForByte) {
  auto& f = fixture();
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  StaticModelHost host;
  host.add("blobs", runner);
  AttackService service(host);

  const std::vector<engine::SweepSpec> specs = blob_specs(3);
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/sweep";
  request.body = sweep_request(specs).dump();
  const HttpResponse response = service.handle(request);
  ASSERT_EQ(response.status, 200) << response.body;

  // The offline path: the same specs through the dist shard worker and
  // reducer (exactly what `fsa_cli sweep --workers N --json` writes).
  engine::SweepRunner offline(f.model, f.cache_dir, /*verbose=*/false);
  const eval::Json manifest =
      dist::sweep_manifest("blobs", backend::active_name(), specs);
  std::vector<eval::Json> shard_results;
  for (int i = 0; i < static_cast<int>(specs.size()); ++i)
    shard_results.push_back(dist::run_sweep_shard(manifest, i, offline));
  const eval::Json reduced = dist::make_reducer("sweep")->reduce(manifest, shard_results);
  EXPECT_EQ(response.body, render_json_body(reduced));
}

TEST(Service, CampaignResponseMatchesTheDistReductionByteForByte) {
  // Campaigns need no model: the manifest is self-contained.
  Rng rng(99);
  const std::int64_t n = 2048;
  Tensor theta0 = Tensor::randn(Shape({n}), rng);
  Tensor delta = Tensor::zeros(Shape({n}));
  for (std::int64_t i = 0; i < n; i += 128)
    delta[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
  const faultsim::BitFlipPlan plan =
      faultsim::plan_bit_flips(theta0, delta, faultsim::MemoryLayout{});
  const faultsim::CampaignPlanner planner("laser", 3, 7);
  const eval::Json manifest = planner.manifest(plan, faultsim::MemoryLayout{});

  StaticModelHost host;  // deliberately empty
  AttackService service(host);
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/campaign";
  request.body = manifest.dump();
  const HttpResponse response = service.handle(request);
  ASSERT_EQ(response.status, 200) << response.body;

  std::vector<eval::Json> shard_results;
  for (int i = 0; i < 3; ++i) shard_results.push_back(dist::run_campaign_shard(manifest, i));
  const eval::Json reduced = dist::make_reducer("campaign")->reduce(manifest, shard_results);
  EXPECT_EQ(response.body, render_json_body(reduced));
}

TEST(Service, EvalResponseMatchesTheSharedDocument) {
  auto& f = fixture();
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  StaticModelHost host;
  host.add("blobs", runner);
  AttackService service(host);

  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/eval";
  request.body = R"({"dataset": "blobs", "layers": ["fc2"]})";
  const HttpResponse response = service.handle(request);
  ASSERT_EQ(response.status, 200) << response.body;

  engine::SweepRunner offline(f.model, f.cache_dir, /*verbose=*/false);
  const eval::Json doc = eval_document(offline, "blobs", backend::active_name(), {"fc2"},
                                       /*weights=*/true, /*biases=*/true);
  EXPECT_EQ(response.body, render_json_body(doc));
  // surface_key() renders the full-surface case without a [wb] suffix.
  EXPECT_EQ(eval::Json::parse(response.body).get_string("surface", ""), "fc2");
}

TEST(Service, RequestValidationFailsLoudly) {
  auto& f = fixture();
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  StaticModelHost host;
  host.add("blobs", runner);
  AttackService service(host);

  const auto post = [&](const std::string& target, const std::string& body) {
    HttpRequest r;
    r.method = "POST";
    r.target = target;
    r.body = body;
    return service.handle(r);
  };

  EXPECT_EQ(post("/v1/sweep", "{nope").status, 400);             // malformed JSON
  EXPECT_EQ(post("/v1/sweep", "[1, 2]").status, 400);            // not an object
  EXPECT_EQ(post("/v1/sweep", R"({"datset": "blobs"})").status, 400);  // typo'd field
  EXPECT_EQ(post("/v1/sweep", R"({"dataset": "mnist", "specs": [{}]})").status, 400);
  EXPECT_EQ(post("/v1/sweep", R"({"dataset": "blobs", "specs": []})").status, 400);
  const std::string wrong_backend = R"({"dataset": "blobs", "backend": "bogus-backend",
     "specs": [{"method": "gda", "layers": ["fc2"], "S": 1, "R": 4}]})";
  EXPECT_EQ(post("/v1/sweep", wrong_backend).status, 400);  // pinned-backend mismatch
  EXPECT_EQ(post("/v1/campaign", R"({"shards": 2})").status, 400);  // no injector
  EXPECT_EQ(post("/v1/eval", R"({"dataset": "blobs", "layers": []})").status, 400);
  EXPECT_EQ(post("/v1/eval",
                 R"({"dataset": "blobs", "layers": ["fc2"], "weights": false, "biases": false})")
                .status,
            400);
  EXPECT_EQ(post("/v1/unknown", "{}").status, 404);

  HttpRequest health;
  health.method = "GET";
  health.target = "/healthz";
  const HttpResponse h = service.handle(health);
  EXPECT_EQ(h.status, 200);
  EXPECT_EQ(eval::Json::parse(h.body).get_string("status", ""), "ok");

  HttpRequest stats;
  stats.method = "GET";
  stats.target = "/stats";
  const HttpResponse s = service.handle(stats);
  EXPECT_EQ(s.status, 200);
  const eval::Json doc = eval::Json::parse(s.body);
  EXPECT_TRUE(doc.has("queue_depth"));
  EXPECT_TRUE(doc.has("latency_ms"));
}

TEST(Service, MetricsEndpointServesPrometheusText) {
  auto& f = fixture();
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  StaticModelHost host;
  host.add("blobs", runner);
  AttackService service(host);

  // Tick the request counters so the families below exist regardless of
  // which tests ran before this one.
  HttpRequest health;
  health.method = "GET";
  health.target = "/healthz";
  ASSERT_EQ(service.handle(health).status, 200);
  HttpRequest bad;
  bad.method = "POST";
  bad.target = "/v1/sweep";
  bad.body = "{nope";
  ASSERT_EQ(service.handle(bad).status, 400);

  HttpRequest metrics;
  metrics.method = "GET";
  metrics.target = "/metrics";
  const HttpResponse m = service.handle(metrics);
  EXPECT_EQ(m.status, 200);
  EXPECT_EQ(m.content_type, "text/plain; version=0.0.4");

  // Every line must be Prometheus text exposition: a comment or
  // `name{labels} value` with a finite parseable value.
  std::size_t samples = 0;
  std::istringstream lines(m.body);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0) << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    EXPECT_FALSE(name.empty()) << line;
    std::size_t parsed = 0;
    const double value = std::stod(line.substr(space + 1), &parsed);
    EXPECT_EQ(parsed, line.size() - space - 1) << line;
    EXPECT_FALSE(std::isnan(value)) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  // The families the daemon promises: request/response counters with
  // bounded route/status labels, and the batcher's registry-backed stats.
  for (const char* needle :
       {"# TYPE fsa_serve_requests_total counter",
        "fsa_serve_requests_total{route=\"/healthz\"}",
        "fsa_serve_requests_total{route=\"/metrics\"}",
        "fsa_serve_requests_total{route=\"/v1/sweep\"}",
        "fsa_serve_responses_total{status=\"400\"}",
        "fsa_batcher_requests_submitted_total", "fsa_batcher_batches_total",
        "fsa_batcher_queue_depth", "# TYPE fsa_batcher_request_latency_ms histogram",
        "fsa_batcher_request_latency_ms_bucket", "fsa_batcher_batch_size_sum"})
    EXPECT_NE(m.body.find(needle), std::string::npos) << "missing: " << needle;
}

TEST(Service, OneClientAndSixteenClientsGetByteIdenticalResponses) {
  auto& f = fixture();
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  StaticModelHost host;
  host.add("blobs", runner);

  // Small max_batch + nonzero delay: the concurrent phase WILL coalesce
  // requests into mixed batches; identity must survive that.
  ServiceOptions options;
  options.batcher.max_batch = 4;
  options.batcher.max_delay_ms = 5;
  options.batcher.max_queue = 256;
  AttackService service(host, options);
  HttpServer server(HttpServerOptions{0, 16, {}, false},
                    [&service](const HttpRequest& r) { return service.handle(r); });
  server.start();
  const int port = server.port();

  // Two distinct sweep payloads and an eval payload, as mixed traffic.
  const std::vector<std::string> bodies = {
      sweep_request(blob_specs(3)).dump(),
      sweep_request(blob_specs(4)).dump(),
      R"({"dataset": "blobs", "layers": ["fc2"]})",
  };
  const std::vector<std::string> targets = {"/v1/sweep", "/v1/sweep", "/v1/eval"};

  // Serial reference pass: one client, one request at a time.
  std::vector<std::string> reference;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const HttpResponse r = http_fetch("127.0.0.1", port, "POST", targets[i], bodies[i]);
    ASSERT_EQ(r.status, 200) << r.body;
    reference.push_back(r.body);
  }

  // Concurrent pass: 16 clients × the full mix.
  std::vector<std::thread> clients;
  std::vector<std::string> failures(16);
  for (int c = 0; c < 16; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < bodies.size(); ++i) {
        try {
          const HttpResponse r =
              http_fetch("127.0.0.1", port, "POST", targets[i], bodies[i]);
          if (r.status != 200)
            failures[static_cast<std::size_t>(c)] = "status " + std::to_string(r.status);
          else if (r.body != reference[i])
            failures[static_cast<std::size_t>(c)] = "divergent body for " + targets[i];
        } catch (const std::exception& e) {
          failures[static_cast<std::size_t>(c)] = e.what();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");

  // The batcher must actually have batched something in the concurrent
  // phase — otherwise this test proves nothing about batching.
  const eval::Json stats = service.stats_json();
  std::int64_t multi = 0;
  for (const auto& [size, count] : stats.at("batches").at("size_histogram").members())
    if (std::stoi(size) > 1) multi += count.as_int();
  EXPECT_GT(multi, 0) << "no multi-request batch formed; tune the test's delay";
}

}  // namespace
}  // namespace fsa::serve
