// backend_property_test.cpp — the compute-backend registry and the parity
// contract: every registered GEMM backend must match the serial reference
// oracle bitwise-or-within-1ulp, for all three variants (NN/TN/NT), on
// shapes that straddle the mr/nr register tiles AND the kc/mc/nc pack
// boundaries, at 1 and at 4 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "backend/compute_backend.h"
#include "backend/tiling.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace fsa::backend {
namespace {

/// Restores the active backend and the pool size when a test body returns.
struct BackendGuard {
  std::string saved = active_name();
  ~BackendGuard() {
    set_backend(saved);
    set_num_threads(0);
  }
};

/// ulp distance between two floats; 0 for exact equality (±0 compare
/// equal), huge for sign changes or non-finite disagreements.
std::int64_t ulp_diff(float a, float b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return std::numeric_limits<std::int64_t>::max();
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float order onto a monotone integer line.
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  return std::abs(static_cast<std::int64_t>(ia) - static_cast<std::int64_t>(ib));
}

std::int64_t worst_ulp(const Tensor& got, const Tensor& want) {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < got.size(); ++i) worst = std::max(worst, ulp_diff(got[i], want[i]));
  return worst;
}

// ---- registry ----------------------------------------------------------------

TEST(BackendRegistry, BuiltinsAreRegisteredAndSorted) {
  const auto names = backend_names();
  for (const char* expected : {"reference", "blocked", "packed", "auto"})
    EXPECT_TRUE(has_backend(expected)) << expected;
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, SetBackendSelectsAndActiveNameReflects) {
  BackendGuard guard;
  for (const char* name : {"reference", "packed", "blocked"}) {
    set_backend(name);
    EXPECT_EQ(active_name(), name);
    EXPECT_EQ(active().name(), name);
  }
}

TEST(BackendRegistry, UnknownNameThrowsListingKnown) {
  try {
    set_backend("does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
    EXPECT_NE(msg.find("reference"), std::string::npos);  // lists known backends
    EXPECT_NE(msg.find("blocked"), std::string::npos);
    EXPECT_NE(msg.find("packed"), std::string::npos);
  }
}

TEST(BackendRegistry, CustomRegistrationWinsAndReplaces) {
  BackendGuard guard;
  struct Probe final : ComputeBackend {
    std::string tag;
    explicit Probe(std::string t) : tag(std::move(t)) {}
    [[nodiscard]] std::string name() const override { return tag; }
    void gemm_nn_acc(const float*, const float*, float*, std::int64_t, std::int64_t,
                     std::int64_t) const override {}
    void gemm_tn_acc(const float*, const float*, float*, std::int64_t, std::int64_t,
                     std::int64_t) const override {}
    void gemm_nt_acc(const float*, const float*, float*, std::int64_t, std::int64_t,
                     std::int64_t) const override {}
    void parallel_rows(std::int64_t count, std::int64_t,
                       const std::function<void(std::int64_t, std::int64_t)>& body) const override {
      if (count > 0) body(0, count);
    }
  };
  register_backend("custom-test", [] { return std::make_unique<Probe>("custom-v1"); });
  set_backend("custom-test");
  EXPECT_EQ(active_name(), "custom-v1");
  // Re-registering must evict the cached instance — and because that
  // instance is currently ACTIVE, the active slot must be re-resolved to
  // the replacement immediately (not left dangling on the freed object).
  register_backend("custom-test", [] { return std::make_unique<Probe>("custom-v2"); });
  EXPECT_EQ(active_name(), "custom-v2");
  set_backend("custom-test");
  EXPECT_EQ(active_name(), "custom-v2");
  // Replacing the ACTIVE backend with a broken factory must fail without
  // tearing down the currently installed instance.
  EXPECT_THROW(register_backend("custom-test",
                                []() -> std::unique_ptr<ComputeBackend> {
                                  throw std::runtime_error("factory boom");
                                }),
               std::runtime_error);
  EXPECT_EQ(active_name(), "custom-v2");  // still alive, still active
}

// ---- parity against the reference oracle -------------------------------------

struct ParityCase {
  std::int64_t m, k, n;
  std::uint64_t seed;
};

class BackendParity : public ::testing::TestWithParam<ParityCase> {};

/// Run one GEMM variant on the active backend into a zeroed C (the library
/// always zero-initializes before accumulating).
void run_variant(int variant, const Tensor& a, const Tensor& at, const Tensor& b,
                 const Tensor& bt, Tensor& c) {
  c.fill(0.0f);
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  switch (variant) {
    case 0: active().gemm_nn_acc(a.data(), b.data(), c.data(), m, k, n); break;
    case 1: active().gemm_tn_acc(at.data(), b.data(), c.data(), m, k, n); break;
    case 2: active().gemm_nt_acc(a.data(), bt.data(), c.data(), m, k, n); break;
  }
}

TEST_P(BackendParity, PooledBackendsMatchReferenceWithin1Ulp) {
  BackendGuard guard;
  const auto p = GetParam();
  Rng rng(p.seed);
  const Tensor A = Tensor::randn(Shape({p.m, p.k}), rng);
  const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
  const Tensor At = ops::transpose2d(A);
  const Tensor Bt = ops::transpose2d(B);
  Tensor want(Shape({p.m, p.n})), got(Shape({p.m, p.n}));
  const char* variants[] = {"NN", "TN", "NT"};
  for (int v = 0; v < 3; ++v) {
    set_backend("reference");
    run_variant(v, A, At, B, Bt, want);
    for (const char* name : {"blocked", "packed", "auto"}) {
      for (int threads : {1, 4}) {
        set_num_threads(threads);
        set_backend(name);
        run_variant(v, A, At, B, Bt, got);
        EXPECT_LE(worst_ulp(got, want), 1)
            << name << " " << variants[v] << " diverges from reference at " << threads
            << " thread(s)";
      }
    }
  }
}

TEST_P(BackendParity, SparseDeltaRowsMatchReference) {
  // δ-like inputs: most rows all-zero, a few rows with a handful of spikes
  // — exercises the blocked backend's zero-skip fast path and the packed
  // backend's padded panels on the same data.
  BackendGuard guard;
  const auto p = GetParam();
  Rng rng(p.seed + 1000);
  Tensor A = Tensor::zeros(Shape({p.m, p.k}));
  for (std::int64_t i = 0; i < p.m; i += 3)
    for (std::int64_t t = 0; t < std::max<std::int64_t>(p.k / 16, 1); ++t)
      A.at2(i, static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(p.k)))) =
          static_cast<float>(rng.normal());
  const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
  Tensor want(Shape({p.m, p.n})), got(Shape({p.m, p.n}));
  want.fill(0.0f);
  set_backend("reference");
  active().gemm_nn_acc(A.data(), B.data(), want.data(), p.m, p.k, p.n);
  for (const char* name : {"blocked", "packed", "auto"}) {
    for (int threads : {1, 4}) {
      set_num_threads(threads);
      set_backend(name);
      got.fill(0.0f);
      active().gemm_nn_acc(A.data(), B.data(), got.data(), p.m, p.k, p.n);
      EXPECT_LE(worst_ulp(got, want), 1) << name << " at " << threads << " thread(s)";
    }
  }
}

TEST(BackendParity, PackedSparsePanelRouteMatchesReference) {
  // δ-sized GEMMs: A panels that are almost entirely zero must take the
  // packed backend's pack-time zero-skip route and still match the
  // reference oracle — including when SOME mc×kc panels are dense and
  // others sparse (the route is chosen per panel), at any thread count.
  BackendGuard guard;
  struct SparseCase {
    std::int64_t m, k, n, nnz_rows;
    bool dense_band;  // make the first mc-row block dense (mixed routing)
  };
  const SparseCase cases[] = {{3, 7, 9, 1, false},
                              {Packing::mc + 2, Packing::kc + 2, 80, 2, false},
                              {2 * Packing::mc + 5, Packing::kc + 1, Packing::nc + 2, 3, false},
                              {2 * Packing::mc + 5, 2 * Packing::kc + 1, 90, 2, true}};
  for (const auto& sc : cases) {
    Rng rng(777 + sc.m);
    Tensor A = Tensor::zeros(Shape({sc.m, sc.k}));
    for (std::int64_t r = 0; r < sc.nnz_rows; ++r) {
      const auto i = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(sc.m)));
      for (std::int64_t t = 0; t < 3; ++t)
        A.at2(i, static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(sc.k)))) =
            static_cast<float>(rng.normal());
    }
    if (sc.dense_band)  // first row block fully dense → dense micro-kernel route
      for (std::int64_t i = 0; i < std::min<std::int64_t>(Packing::mc, sc.m); ++i)
        for (std::int64_t p = 0; p < sc.k; ++p) A.at2(i, p) = static_cast<float>(rng.normal());
    const Tensor B = Tensor::randn(Shape({sc.k, sc.n}), rng);
    Tensor want(Shape({sc.m, sc.n})), got(Shape({sc.m, sc.n}));
    want.fill(0.0f);
    set_backend("reference");
    active().gemm_nn_acc(A.data(), B.data(), want.data(), sc.m, sc.k, sc.n);
    set_backend("packed");
    Tensor first(Shape({sc.m, sc.n}));
    for (int threads : {1, 4}) {
      set_num_threads(threads);
      got.fill(0.0f);
      active().gemm_nn_acc(A.data(), B.data(), got.data(), sc.m, sc.k, sc.n);
      EXPECT_LE(worst_ulp(got, want), 1)
          << "packed sparse route m=" << sc.m << " at " << threads << " thread(s)";
      if (threads == 1)
        first = got;
      else
        EXPECT_TRUE(got == first) << "sparse route thread-count variance at m=" << sc.m;
    }
  }
}

// Shapes chosen to straddle every tiling boundary: the mr=4 / nr=32
// register tiles, and the packed backend's kc=256 / mc=64 / nc=1024
// panels (one below, exactly at, and one above each).
INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendParity,
    ::testing::Values(
        // degenerate and register-tile straddles
        ParityCase{1, 1, 1, 41}, ParityCase{Blocking::mr - 1, 17, Blocking::nr - 1, 42},
        ParityCase{Blocking::mr + 1, 33, Blocking::nr + 1, 43}, ParityCase{33, 17, 9, 44},
        // kc straddle (k = 255 / 256 / 257)
        ParityCase{12, Packing::kc - 1, 40, 45}, ParityCase{12, Packing::kc, 40, 46},
        ParityCase{12, Packing::kc + 1, 40, 47},
        // mc straddle (m = 63 / 64 / 65)
        ParityCase{Packing::mc - 1, 70, 50, 48}, ParityCase{Packing::mc, 70, 50, 49},
        ParityCase{Packing::mc + 1, 70, 50, 50},
        // nc straddle (n = 1023 / 1024 / 1025)
        ParityCase{18, 70, Packing::nc - 1, 51}, ParityCase{18, 70, Packing::nc, 52},
        ParityCase{18, 70, Packing::nc + 1, 53},
        // all three panel boundaries crossed at once, off-tile everywhere
        ParityCase{Packing::mc + 2, Packing::kc + 2, Packing::nc + 2, 54},
        ParityCase{2 * Packing::mc + 3, 2 * Packing::kc + 1, 70, 55},
        // paper head shape
        ParityCase{1000, 200, 10, 56}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_k" + std::to_string(p.k) + "_n" + std::to_string(p.n);
    });

// ---- determinism: every backend is thread-count invariant ---------------------

TEST(BackendDeterminism, PackedThreadCountInvariant) {
  BackendGuard guard;
  set_backend("packed");
  const ParityCase cases[] = {{7, 3, 5, 61},
                              {66, 129, 35, 62},
                              {Packing::mc + 1, Packing::kc + 1, Packing::nc + 1, 63},
                              {150, 520, 80, 64}};
  for (const auto& p : cases) {
    Rng rng(p.seed);
    const Tensor A = Tensor::randn(Shape({p.m, p.k}), rng);
    const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
    const Tensor At = ops::transpose2d(A);
    const Tensor Bt = ops::transpose2d(B);
    Tensor base(Shape({p.m, p.n})), got(Shape({p.m, p.n}));
    for (int v = 0; v < 3; ++v) {
      set_num_threads(1);
      run_variant(v, A, At, B, Bt, base);
      for (int threads : {2, 4, 7}) {
        set_num_threads(threads);
        run_variant(v, A, At, B, Bt, got);
        EXPECT_TRUE(got == base) << "packed variant " << v << " differs at " << threads
                                 << " threads";
      }
    }
  }
}

// ---- the auto backend: deterministic dispatch + attribution -------------------

TEST(BackendAuto, DispatchFollowsBFootprintAndIsAttributed) {
  BackendGuard guard;
  set_backend("auto");
  EXPECT_EQ(active_name(), "auto");

  // Fresh bracket, no GEMM yet → bare name.
  active().begin_attribution();
  EXPECT_EQ(active().attribution(), "auto");

  // k·n·4 well under the 2 MiB L2 budget → blocked.
  Rng rng(77);
  const Tensor smallA = Tensor::randn(Shape({8, 64}), rng);
  const Tensor smallB = Tensor::randn(Shape({64, 64}), rng);
  Tensor smallC = Tensor::zeros(Shape({8, 64}));
  active().begin_attribution();
  active().gemm_nn_acc(smallA.data(), smallB.data(), smallC.data(), 8, 64, 64);
  EXPECT_EQ(active().attribution(), "auto(blocked)");

  // k·n·4 = 640·900·4 ≈ 2.2 MiB > 2 MiB → packed. Keep m tiny so the test
  // stays cheap.
  const std::int64_t k = 640, n = 900;
  ASSERT_GT(k * n * static_cast<std::int64_t>(sizeof(float)), Packing::l2_bytes);
  const Tensor bigA = Tensor::randn(Shape({2, k}), rng);
  const Tensor bigB = Tensor::randn(Shape({k, n}), rng);
  Tensor bigC = Tensor::zeros(Shape({2, n}));
  active().begin_attribution();
  active().gemm_nn_acc(bigA.data(), bigB.data(), bigC.data(), 2, k, n);
  EXPECT_EQ(active().attribution(), "auto(packed)");

  // Both sizes inside one bracket → the union is reported.
  smallC.fill(0.0f);
  active().begin_attribution();
  active().gemm_nn_acc(smallA.data(), smallB.data(), smallC.data(), 8, 64, 64);
  bigC.fill(0.0f);
  active().gemm_nn_acc(bigA.data(), bigB.data(), bigC.data(), 2, k, n);
  EXPECT_EQ(active().attribution(), "auto(blocked+packed)");

  // The result itself matches the reference oracle on the spilling shape.
  Tensor want = Tensor::zeros(Shape({2, n}));
  set_backend("reference");
  active().gemm_nn_acc(bigA.data(), bigB.data(), want.data(), 2, k, n);
  EXPECT_LE(worst_ulp(bigC, want), 1);

  // Plain backends attribute as themselves.
  for (const char* name : {"reference", "blocked", "packed"}) {
    set_backend(name);
    active().begin_attribution();
    EXPECT_EQ(active().attribution(), name);
  }
}

// ---- the batched-rows hook ----------------------------------------------------

TEST(BackendRows, ReferenceRunsSeriallyPooledBackendsShard) {
  BackendGuard guard;
  // The reference backend must hand the whole range to one serial call.
  set_backend("reference");
  std::int64_t calls = 0, covered = 0;
  active().parallel_rows(100, 1, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    covered += e - b;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(covered, 100);

  // All backends produce identical results through the ops that use the
  // hook (rows are independent, so sharding cannot change values).
  Rng rng(99);
  const Tensor logits = Tensor::randn(Shape({513, 10}), rng);
  std::vector<std::int64_t> labels(513);
  for (auto& l : labels) l = static_cast<std::int64_t>(rng.uniform_int(10));
  set_backend("reference");
  const Tensor sm_ref = ops::softmax_rows(logits);
  const Tensor ce_ref = ops::cross_entropy_grad(logits, labels);
  for (const char* name : {"blocked", "packed"}) {
    set_backend(name);
    set_num_threads(4);
    EXPECT_TRUE(ops::softmax_rows(logits) == sm_ref) << name;
    EXPECT_TRUE(ops::cross_entropy_grad(logits, labels) == ce_ref) << name;
  }
}

}  // namespace
}  // namespace fsa::backend
