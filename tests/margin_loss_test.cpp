// margin_loss_test.cpp — the paper's g function and its logits gradient.
#include <gtest/gtest.h>

#include "core/margin_loss.h"

namespace fsa::core {
namespace {

AttackSpec spec_with(Tensor features, std::vector<std::int64_t> labels, std::int64_t s) {
  AttackSpec spec;
  spec.features = std::move(features);
  spec.labels = std::move(labels);
  spec.S = s;
  return spec;
}

TEST(MarginLoss, SatisfiedImageContributesZero) {
  // One image, target label 1, logit 1 leads by 3 → g = 0, no gradient.
  Tensor logits(Shape({1, 3}));
  logits.at2(0, 1) = 3.0f;
  const auto spec = spec_with(Tensor(Shape({1, 2})), {1}, 1);
  const MarginEval e = eval_margin(logits, spec);
  EXPECT_DOUBLE_EQ(e.total_g, 0.0);
  EXPECT_EQ(e.targets_hit, 1);
  for (std::size_t i = 0; i < e.grad_logits.size(); ++i) EXPECT_EQ(e.grad_logits[i], 0.0f);
  EXPECT_NEAR(e.margins[0], -3.0, 1e-6);
}

TEST(MarginLoss, ViolatedImageGetsHingeAndGradient) {
  // Target 2 but logit 0 leads by 5 → g = 5, grad +1 at j*=0, −1 at t=2.
  Tensor logits(Shape({1, 3}));
  logits.at2(0, 0) = 5.0f;
  const auto spec = spec_with(Tensor(Shape({1, 2})), {2}, 1);
  const MarginEval e = eval_margin(logits, spec);
  EXPECT_DOUBLE_EQ(e.total_g, 5.0);
  EXPECT_EQ(e.targets_hit, 0);
  EXPECT_FLOAT_EQ(e.grad_logits.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(e.grad_logits.at2(0, 2), -1.0f);
  EXPECT_FLOAT_EQ(e.grad_logits.at2(0, 1), 0.0f);
}

TEST(MarginLoss, PerImageWeightsScaleLossAndGrad) {
  Tensor logits(Shape({1, 2}));
  logits.at2(0, 0) = 2.0f;  // label 1 loses by 2
  auto spec = spec_with(Tensor(Shape({1, 2})), {1}, 1);
  spec.c = {3.0};
  const MarginEval e = eval_margin(logits, spec);
  EXPECT_DOUBLE_EQ(e.total_g, 6.0);
  EXPECT_FLOAT_EQ(e.grad_logits.at2(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(e.grad_logits.at2(0, 1), -3.0f);
}

TEST(MarginLoss, KappaDemandsConfidence) {
  // Label leads by 0.5; with kappa=1 the hinge is still active.
  Tensor logits(Shape({1, 2}));
  logits.at2(0, 1) = 0.5f;
  const auto spec = spec_with(Tensor(Shape({1, 2})), {1}, 1);
  const MarginEval relaxed = eval_margin(logits, spec, 0.0);
  EXPECT_DOUBLE_EQ(relaxed.total_g, 0.0);
  const MarginEval strict = eval_margin(logits, spec, 1.0);
  EXPECT_NEAR(strict.total_g, 0.5, 1e-6);
  // But argmax-level success still counts under kappa.
  EXPECT_EQ(strict.targets_hit, 1);
}

TEST(MarginLoss, SplitsTargetsAndMaintained) {
  // 3 images, S = 1: image 0 should be class 1 (it is), images 1-2 should
  // keep class 0 (image 2 does not).
  Tensor logits(Shape({3, 2}));
  logits.at2(0, 1) = 1.0f;   // hit
  logits.at2(1, 0) = 1.0f;   // maintained
  logits.at2(2, 1) = 1.0f;   // drifted
  const auto spec = spec_with(Tensor(Shape({3, 2})), {1, 0, 0}, 1);
  const MarginEval e = eval_margin(logits, spec);
  EXPECT_EQ(e.targets_hit, 1);
  EXPECT_EQ(e.maintained, 1);
  const auto [hit, kept] = count_satisfied(logits, spec);
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(kept, 1);
}

TEST(MarginLoss, GradMatchesFiniteDifferenceOfHinge) {
  Rng rng(3);
  Tensor logits = Tensor::randn(Shape({4, 5}), rng);
  auto spec = spec_with(Tensor(Shape({4, 2})), {1, 2, 3, 0}, 2);
  spec.c = {1.5, 0.5, 2.0, 1.0};
  const MarginEval e = eval_margin(logits, spec);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[static_cast<std::size_t>(i)] += static_cast<float>(eps);
    minus[static_cast<std::size_t>(i)] -= static_cast<float>(eps);
    const double fd =
        (eval_margin(plus, spec).total_g - eval_margin(minus, spec).total_g) / (2 * eps);
    EXPECT_NEAR(e.grad_logits[static_cast<std::size_t>(i)], fd, 5e-3) << "logit " << i;
  }
}

TEST(MarginLoss, AnchorWeightScalesOnlyMaintainRows) {
  // 2 images, S = 1: both violated. The fault row keeps full weight; the
  // maintain row is damped by anchor_weight.
  Tensor logits(Shape({2, 2}));
  logits.at2(0, 0) = 2.0f;  // fault wants label 1, loses by 2
  logits.at2(1, 1) = 3.0f;  // anchor wants label 0, loses by 3
  const auto spec = spec_with(Tensor(Shape({2, 2})), {1, 0}, 1);
  const MarginEval full = eval_margin(logits, spec, 0.0, 1.0);
  const MarginEval damped = eval_margin(logits, spec, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(full.total_g, 2.0 + 3.0);
  EXPECT_NEAR(damped.total_g, 2.0 + 0.3, 1e-9);
  // Fault-row gradient unchanged, anchor-row gradient scaled.
  EXPECT_FLOAT_EQ(damped.grad_logits.at2(0, 0), full.grad_logits.at2(0, 0));
  EXPECT_NEAR(damped.grad_logits.at2(1, 1), 0.1f * full.grad_logits.at2(1, 1), 1e-6f);
  // Satisfaction counts are weight-independent.
  EXPECT_EQ(damped.targets_hit, full.targets_hit);
  EXPECT_EQ(damped.maintained, full.maintained);
}

TEST(MarginLoss, AnchorWeightComposesWithPerImageC) {
  Tensor logits(Shape({2, 2}));
  logits.at2(0, 0) = 1.0f;
  logits.at2(1, 1) = 1.0f;
  auto spec = spec_with(Tensor(Shape({2, 2})), {1, 0}, 1);
  spec.c = {2.0, 4.0};
  const MarginEval e = eval_margin(logits, spec, 0.0, 0.5);
  // fault: 2.0·1 ·margin(1) + anchor: 4.0·0.5 ·margin(1).
  EXPECT_DOUBLE_EQ(e.total_g, 2.0 + 2.0);
}

TEST(MarginLoss, ShapeMismatchThrows) {
  const auto spec = spec_with(Tensor(Shape({2, 3})), {0, 1}, 1);
  EXPECT_THROW(eval_margin(Tensor(Shape({3, 3})), spec), std::invalid_argument);
}

TEST(AttackSpecValidate, CatchesBadInstances) {
  AttackSpec spec;
  spec.features = Tensor(Shape({2, 4}));
  spec.labels = {0, 1};
  spec.S = 1;
  EXPECT_NO_THROW(spec.validate(10));
  spec.S = 3;
  EXPECT_THROW(spec.validate(10), std::invalid_argument);
  spec.S = 1;
  spec.labels = {0, 11};
  EXPECT_THROW(spec.validate(10), std::invalid_argument);
  spec.labels = {0};
  EXPECT_THROW(spec.validate(10), std::invalid_argument);
}

TEST(MakeSpec, SelectsCorrectlyClassifiedAndAssignsTargets) {
  // 6 pool images, 2 misclassified; ask for R=4, S=2.
  Tensor feats(Shape({6, 3}));
  for (std::int64_t i = 0; i < 18; ++i) feats[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const std::vector<std::int64_t> labels = {0, 1, 2, 3, 4, 5};
  const std::vector<std::int64_t> preds = {0, 9, 2, 3, 9, 5};  // 1 and 4 wrong
  const AttackSpec spec = make_spec(feats, labels, preds, 2, 4, 10, 7);
  EXPECT_EQ(spec.R(), 4);
  EXPECT_EQ(spec.S, 2);
  // Fault targets differ from the (correct) predictions.
  // We can't know which images were picked, but every label must be valid
  // and the maintained labels must be one of the correct classes.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(spec.labels[i], 0);
    EXPECT_LT(spec.labels[i], 10);
  }
}

TEST(MakeSpec, NextLabelPolicyIsDeterministic) {
  Tensor feats(Shape({3, 2}));
  const std::vector<std::int64_t> labels = {4, 5, 6};
  const std::vector<std::int64_t> preds = {4, 5, 6};
  const AttackSpec a = make_spec(feats, labels, preds, 3, 3, 10, 1, TargetPolicy::kNextLabel);
  for (std::size_t i = 0; i < 3; ++i) {
    // Target must be (pred+1)%10 of whichever image landed in slot i.
    EXPECT_TRUE(a.labels[i] == 5 || a.labels[i] == 6 || a.labels[i] == 7);
  }
}

TEST(MakeSpec, InsufficientPoolThrows) {
  Tensor feats(Shape({3, 2}));
  const std::vector<std::int64_t> labels = {0, 1, 2};
  const std::vector<std::int64_t> preds = {0, 9, 9};  // only 1 correct
  EXPECT_THROW(make_spec(feats, labels, preds, 1, 2, 10, 1), std::runtime_error);
}

TEST(MakeSpec, SeedChangesSelection) {
  Tensor feats(Shape({40, 2}));
  Rng rng(9);
  feats = Tensor::randn(Shape({40, 2}), rng);
  std::vector<std::int64_t> labels(40, 3);
  std::vector<std::int64_t> preds(40, 3);
  const AttackSpec a = make_spec(feats, labels, preds, 1, 5, 10, 1);
  const AttackSpec b = make_spec(feats, labels, preds, 1, 5, 10, 2);
  EXPECT_NE(a.features, b.features);
}

}  // namespace
}  // namespace fsa::core
