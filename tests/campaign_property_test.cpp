// campaign_property_test.cpp — parameterized monotonicity properties of the
// hardware campaign simulators: cost can only grow with work, and the
// degenerate parameter settings behave exactly as documented.
#include <gtest/gtest.h>

#include "faultsim/campaign.h"
#include "tensor/ops.h"

namespace fsa::faultsim {
namespace {

BitFlipPlan plan_of_size(std::int64_t params, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor theta0 = Tensor::randn(Shape({std::max<std::int64_t>(params, 1)}), rng);
  Tensor delta = Tensor::zeros(theta0.shape());
  for (std::int64_t i = 0; i < params; ++i)
    delta[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal(0.0, 0.4));
  return plan_bit_flips(theta0, delta, MemoryLayout{});
}

struct SizeCase {
  std::int64_t small, large;
  std::uint64_t seed;
};

class CampaignSweep : public ::testing::TestWithParam<SizeCase> {};

TEST_P(CampaignSweep, LaserCostMonotoneInPlanSize) {
  const auto p = GetParam();
  const auto a = simulate_laser(plan_of_size(p.small, p.seed), LaserParams{}, MemoryLayout{});
  const auto b = simulate_laser(plan_of_size(p.large, p.seed), LaserParams{}, MemoryLayout{});
  EXPECT_LE(a.seconds, b.seconds);
  EXPECT_LE(a.bits_flipped, b.bits_flipped);
  EXPECT_TRUE(a.success);
  EXPECT_TRUE(b.success);
}

TEST_P(CampaignSweep, RowHammerCostMonotoneInPlanSize) {
  const auto p = GetParam();
  Rng r1(p.seed), r2(p.seed);
  const auto a =
      simulate_rowhammer(plan_of_size(p.small, p.seed), RowHammerParams{}, MemoryLayout{}, r1);
  const auto b =
      simulate_rowhammer(plan_of_size(p.large, p.seed), RowHammerParams{}, MemoryLayout{}, r2);
  EXPECT_LE(a.seconds, b.seconds);
  EXPECT_LE(a.hammer_attempts, b.hammer_attempts);
}

TEST_P(CampaignSweep, HigherVulnerabilityNeverCostsMore) {
  const auto p = GetParam();
  const BitFlipPlan plan = plan_of_size(p.large, p.seed);
  RowHammerParams scarce;
  scarce.vulnerable_frac = 0.01;
  RowHammerParams abundant;
  abundant.vulnerable_frac = 0.90;
  Rng r1(p.seed), r2(p.seed);
  const auto hard = simulate_rowhammer(plan, scarce, MemoryLayout{}, r1);
  const auto easy = simulate_rowhammer(plan, abundant, MemoryLayout{}, r2);
  EXPECT_GE(hard.massages, easy.massages);
  EXPECT_GE(hard.seconds, easy.seconds);
}

TEST_P(CampaignSweep, ReportAccounting) {
  // bits_flipped + unfixable ≤ requested; attempts ≥ flips (rowhammer).
  const auto p = GetParam();
  const BitFlipPlan plan = plan_of_size(p.large, p.seed);
  Rng rng(p.seed);
  const auto rep = simulate_rowhammer(plan, RowHammerParams{}, MemoryLayout{}, rng);
  EXPECT_LE(rep.bits_flipped, rep.bits_requested);
  EXPECT_GE(rep.hammer_attempts, rep.bits_flipped);
  EXPECT_EQ(rep.bits_requested, plan.total_bit_flips);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CampaignSweep,
                         ::testing::Values(SizeCase{0, 4, 1}, SizeCase{2, 16, 2},
                                           SizeCase{8, 64, 3}, SizeCase{32, 256, 4},
                                           SizeCase{100, 1000, 5}),
                         [](const ::testing::TestParamInfo<SizeCase>& info) {
                           return "s" + std::to_string(info.param.small) + "_l" +
                                  std::to_string(info.param.large) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace fsa::faultsim
