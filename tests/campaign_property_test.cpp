// campaign_property_test.cpp — parameterized monotonicity properties of the
// injector cost models: cost can only grow with work, the degenerate
// parameter settings behave exactly as documented, and the closed-form
// plan_cost estimates are monotone like the simulations they approximate.
#include <gtest/gtest.h>

#include "faultsim/campaign.h"
#include "faultsim/injectors.h"
#include "tensor/ops.h"

namespace fsa::faultsim {
namespace {

BitFlipPlan plan_of_size(std::int64_t params, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor theta0 = Tensor::randn(Shape({std::max<std::int64_t>(params, 1)}), rng);
  Tensor delta = Tensor::zeros(theta0.shape());
  for (std::int64_t i = 0; i < params; ++i)
    delta[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal(0.0, 0.4));
  return plan_bit_flips(theta0, delta, MemoryLayout{});
}

struct SizeCase {
  std::int64_t small, large;
  std::uint64_t seed;
};

class CampaignSweep : public ::testing::TestWithParam<SizeCase> {};

TEST_P(CampaignSweep, LaserCostMonotoneInPlanSize) {
  const auto p = GetParam();
  const CampaignRunner runner(1, p.seed);
  const LaserInjector laser;
  const auto a = runner.run(laser, plan_of_size(p.small, p.seed), MemoryLayout{});
  const auto b = runner.run(laser, plan_of_size(p.large, p.seed), MemoryLayout{});
  EXPECT_LE(a.seconds, b.seconds);
  EXPECT_LE(a.bits_flipped, b.bits_flipped);
  EXPECT_TRUE(a.success);
  EXPECT_TRUE(b.success);
}

TEST_P(CampaignSweep, RowHammerCostMonotoneInPlanSize) {
  const auto p = GetParam();
  const CampaignRunner runner(1, p.seed);
  const RowHammerInjector hammer;
  const auto a = runner.run(hammer, plan_of_size(p.small, p.seed), MemoryLayout{});
  const auto b = runner.run(hammer, plan_of_size(p.large, p.seed), MemoryLayout{});
  EXPECT_LE(a.seconds, b.seconds);
  EXPECT_LE(a.attempts, b.attempts);
}

TEST_P(CampaignSweep, HigherVulnerabilityNeverCostsMore) {
  const auto p = GetParam();
  const BitFlipPlan plan = plan_of_size(p.large, p.seed);
  RowHammerParams scarce;
  scarce.vulnerable_frac = 0.01;
  RowHammerParams abundant;
  abundant.vulnerable_frac = 0.90;
  const CampaignRunner runner(1, p.seed);
  const auto hard = runner.run(RowHammerInjector(scarce), plan, MemoryLayout{});
  const auto easy = runner.run(RowHammerInjector(abundant), plan, MemoryLayout{});
  EXPECT_GE(hard.massages, easy.massages);
  EXPECT_GE(hard.seconds, easy.seconds);
}

TEST_P(CampaignSweep, ReportAccounting) {
  // bits_flipped + unfixable ≤ requested; attempts ≥ flips (rowhammer);
  // seconds is exactly the cost model applied to the counters.
  const auto p = GetParam();
  const BitFlipPlan plan = plan_of_size(p.large, p.seed);
  const CampaignRunner runner(1, p.seed);
  const RowHammerInjector hammer;
  const auto rep = runner.run(hammer, plan, MemoryLayout{});
  EXPECT_LE(rep.bits_flipped, rep.bits_requested);
  EXPECT_GE(rep.attempts, rep.bits_flipped);
  EXPECT_EQ(rep.bits_requested, plan.total_bit_flips);
  EXPECT_EQ(rep.params_targeted, static_cast<std::int64_t>(plan.flips.size()));
  EXPECT_EQ(rep.seconds, hammer.cost_seconds(rep));
  EXPECT_EQ(rep.injector, "rowhammer");
}

TEST_P(CampaignSweep, PlanCostEstimateMonotoneForEveryInjector) {
  const auto p = GetParam();
  const BitFlipPlan small = plan_of_size(p.small, p.seed);
  const BitFlipPlan large = plan_of_size(p.large, p.seed);
  for (const std::string& name : injector_names()) {
    const InjectorPtr injector = make_injector(name);
    EXPECT_LE(injector->plan_cost(small, MemoryLayout{}),
              injector->plan_cost(large, MemoryLayout{}))
        << name;
    EXPECT_GE(injector->plan_cost(small, MemoryLayout{}), 0.0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CampaignSweep,
                         ::testing::Values(SizeCase{0, 4, 1}, SizeCase{2, 16, 2},
                                           SizeCase{8, 64, 3}, SizeCase{32, 256, 4},
                                           SizeCase{100, 1000, 5}),
                         [](const ::testing::TestParamInfo<SizeCase>& info) {
                           return "s" + std::to_string(info.param.small) + "_l" +
                                  std::to_string(info.param.large) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace fsa::faultsim
