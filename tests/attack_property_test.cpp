// attack_property_test.cpp — parameterized invariants of the full attack
// over an (S, R, norm) grid on the blob substrate. These are the contracts
// the bench harnesses rely on for every cell of the paper's sweeps.
#include <gtest/gtest.h>

#include "core/attack_metrics.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa::core {
namespace {

struct AttackCase {
  std::int64_t s, r;
  NormKind norm;
};

struct SharedModel {
  data::Dataset train = testutil::make_blobs(700, 51);
  data::Dataset pool = testutil::make_blobs(500, 53);
  nn::Sequential net = testutil::make_blob_net(23);
  Tensor pool_feats;
  std::vector<std::int64_t> pool_preds;

  SharedModel() {
    const data::Dataset test = testutil::make_blobs(100, 52);
    testutil::train_blob_net(net, train, test);
    const std::size_t cut = net.index_of("fc2");
    pool_feats = models::compute_features(net, cut, pool.images());
    pool_preds = models::head_predictions(net, cut, pool_feats);
  }
};

SharedModel& shared() {
  static SharedModel m;
  return m;
}

class AttackSweep : public ::testing::TestWithParam<AttackCase> {
 protected:
  AttackSpec spec() const {
    const auto p = GetParam();
    return make_spec(shared().pool_feats, shared().pool.labels(), shared().pool_preds, p.s, p.r,
                     10, 100 + static_cast<std::uint64_t>(p.s * 31 + p.r));
  }

  FaultSneakingConfig config() const {
    FaultSneakingConfig cfg;
    cfg.admm.norm = GetParam().norm;
    return cfg;
  }
};

TEST_P(AttackSweep, RunRestoresThenApplyMatchesReportedCounts) {
  auto& m = shared();
  FaultSneakingAttack attack(m.net, {"fc2"});
  const AttackSpec sp = spec();
  const Tensor theta_before = attack.mask().gather_values();
  const FaultSneakingResult res = attack.run(sp, config());

  // 1. the network is untouched after run()
  EXPECT_EQ(attack.mask().gather_values(), theta_before);

  // 2. reported norms match the delta
  EXPECT_EQ(res.l0, ops::l0_norm(res.delta));
  EXPECT_NEAR(res.l2, ops::l2_norm(res.delta), 1e-9);
  EXPECT_LE(res.l0, attack.mask().size());

  // 3. counts bounded by the problem
  EXPECT_LE(res.targets_hit, sp.S);
  EXPECT_LE(res.maintained, sp.R() - sp.S);
  EXPECT_GE(res.attempts, 1);

  // 4. reported counts are reproduced by an INDEPENDENT evaluation with
  //    delta applied (argmax over head logits).
  const auto verified = with_delta(attack, res.delta, [&] {
    const Tensor logits = m.net.forward_from(attack.cut(), sp.features);
    return count_satisfied(logits, sp);
  });
  EXPECT_EQ(verified.first, res.targets_hit);
  EXPECT_EQ(verified.second, res.maintained);
}

TEST_P(AttackSweep, DeterministicAcrossRepeatedRuns) {
  auto& m = shared();
  FaultSneakingAttack attack(m.net, {"fc2"});
  const AttackSpec sp = spec();
  const FaultSneakingResult a = attack.run(sp, config());
  const FaultSneakingResult b = attack.run(sp, config());
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.targets_hit, b.targets_hit);
  EXPECT_EQ(a.maintained, b.maintained);
}

TEST_P(AttackSweep, SmallProblemsFullysucceed) {
  // On this easy substrate every cell with S ≤ 4 must fully succeed —
  // failures here would poison every bench sweep.
  const auto p = GetParam();
  if (p.s > 4) GTEST_SKIP() << "only asserting the easy regime";
  auto& m = shared();
  FaultSneakingAttack attack(m.net, {"fc2"});
  const FaultSneakingResult res = attack.run(spec(), config());
  EXPECT_TRUE(res.all_targets_hit);
  EXPECT_GE(res.maintained, (p.r - p.s) * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttackSweep,
    ::testing::Values(AttackCase{1, 1, NormKind::kL0}, AttackCase{1, 10, NormKind::kL0},
                      AttackCase{1, 10, NormKind::kL2}, AttackCase{2, 20, NormKind::kL0},
                      AttackCase{2, 20, NormKind::kL2}, AttackCase{4, 40, NormKind::kL0},
                      AttackCase{4, 8, NormKind::kL0}, AttackCase{8, 60, NormKind::kL0},
                      AttackCase{8, 60, NormKind::kL2}),
    [](const ::testing::TestParamInfo<AttackCase>& info) {
      const auto& p = info.param;
      return std::string("S") + std::to_string(p.s) + "_R" + std::to_string(p.r) + "_" +
             (p.norm == NormKind::kL0 ? "l0" : "l2");
    });

}  // namespace
}  // namespace fsa::core
