// models_test.cpp — the C&W architecture and the feature cache.
#include <gtest/gtest.h>

#include <filesystem>

#include "models/cw_net.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa::models {
namespace {

TEST(CwNet, Fc1InputWidthMatchesGeometry) {
  CwNetConfig mnist;
  EXPECT_EQ(cw_fc1_inputs(mnist), 1024);  // 64·4·4 for 28×28
  CwNetConfig cifar;
  cifar.in_channels = 3;
  cifar.side = 32;
  EXPECT_EQ(cw_fc1_inputs(cifar), 1600);  // 64·5·5 for 32×32
}

TEST(CwNet, OutputShapeIsLogits) {
  CwNetConfig cfg;
  nn::Sequential net = make_cw_net(cfg);
  EXPECT_EQ(net.output_shape(Shape({3, 1, 28, 28})), Shape({3, 10}));
}

TEST(CwNet, LayerNamesAreStable) {
  CwNetConfig cfg;
  nn::Sequential net = make_cw_net(cfg);
  EXPECT_NO_THROW(net.index_of("conv1"));
  EXPECT_NO_THROW(net.index_of("pool2"));
  EXPECT_NO_THROW(net.index_of("fc1"));
  EXPECT_NO_THROW(net.index_of("fc3"));
  EXPECT_EQ(net.index_of("fc3"), net.size() - 1);
}

TEST(CwNet, TotalParameterCount) {
  // conv1: 1·3·3·32+32; conv2: 32·3·3·32+32; conv3: 32·3·3·64+64;
  // conv4: 64·3·3·64+64; fc1: 1024·200+200; fc2: 200·200+200; fc3: 200·10+10.
  CwNetConfig cfg;
  nn::Sequential net = make_cw_net(cfg);
  const std::int64_t expected = (288 + 32) + (9216 + 32) + (18432 + 64) + (36864 + 64) +
                                205000 + 40200 + 2010;
  EXPECT_EQ(net.param_count(), expected);
}

TEST(CwNet, ForwardRunsOnBothGeometries) {
  CwNetConfig mnist;
  nn::Sequential m = make_cw_net(mnist);
  Rng rng(1);
  EXPECT_EQ(m.forward(Tensor::randn(Shape({2, 1, 28, 28}), rng)).shape(), Shape({2, 10}));
  CwNetConfig cifar;
  cifar.in_channels = 3;
  cifar.side = 32;
  cifar.init_seed = 9;
  nn::Sequential c = make_cw_net(cifar);
  EXPECT_EQ(c.forward(Tensor::randn(Shape({2, 3, 32, 32}), rng)).shape(), Shape({2, 10}));
}

TEST(FeatureCache, CutPlusHeadEqualsFullForward) {
  nn::Sequential net = testutil::make_blob_net(7);
  Rng rng(2);
  const Tensor images = Tensor::randn(Shape({5, 1, 1, testutil::kBlobDim}), rng);
  const Tensor full = net.forward(images);
  const std::size_t cut = net.index_of("fc2");
  const Tensor feats = compute_features(net, cut, images, /*batch_size=*/2);
  const Tensor resumed = net.forward_from(cut, feats);
  ASSERT_EQ(resumed.shape(), full.shape());
  for (std::size_t i = 0; i < full.size(); ++i) EXPECT_NEAR(resumed[i], full[i], 1e-5f);
}

TEST(FeatureCache, CutZeroReturnsImagesVerbatim) {
  // A cut at layer 0 means the whole network is the head: the "features"
  // are the raw images in their natural batch-first shape.
  nn::Sequential net = testutil::make_blob_net(8);
  Rng rng(3);
  const Tensor images = Tensor::randn(Shape({4, 1, 1, testutil::kBlobDim}), rng);
  const Tensor feats = compute_features(net, 0, images);
  EXPECT_EQ(feats, images);
}

TEST(FeatureCache, DiskCacheRoundTrip) {
  nn::Sequential net = testutil::make_blob_net(9);
  Rng rng(4);
  const Tensor images = Tensor::randn(Shape({6, 1, 1, testutil::kBlobDim}), rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fsa_featcache_test.bin").string();
  std::filesystem::remove(path);
  const std::size_t cut = net.index_of("fc2");
  const Tensor first = cached_features(net, cut, images, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  const Tensor second = cached_features(net, cut, images, path);
  EXPECT_EQ(first, second);
  std::filesystem::remove(path);
}

TEST(FeatureCache, HeadPredictionsMatchFullArgmax) {
  nn::Sequential net = testutil::make_blob_net(10);
  Rng rng(5);
  const Tensor images = Tensor::randn(Shape({8, 1, 1, testutil::kBlobDim}), rng);
  const std::size_t cut = net.index_of("fc2");
  const Tensor feats = compute_features(net, cut, images);
  const auto head = head_predictions(net, cut, feats);
  const auto full = ops::argmax_rows(net.forward(images));
  EXPECT_EQ(head, full);
}

TEST(FeatureCache, HeadAccuracyMatchesManual) {
  const data::Dataset ds = testutil::make_blobs(100, 6);
  nn::Sequential net = testutil::make_blob_net(11);
  const std::size_t cut = net.index_of("fc2");
  const Tensor feats = compute_features(net, cut, ds.images());
  const double acc = head_accuracy(net, cut, feats, ds.labels());
  const auto preds = head_predictions(net, cut, feats);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == ds.labels()[i]) ++correct;
  EXPECT_NEAR(acc, static_cast<double>(correct) / 100.0, 1e-12);
}

TEST(FeatureCache, LabelMismatchThrows) {
  nn::Sequential net = testutil::make_blob_net(12);
  Rng rng(7);
  const Tensor images = Tensor::randn(Shape({4, 1, 1, testutil::kBlobDim}), rng);
  const Tensor feats = compute_features(net, net.index_of("fc2"), images);
  EXPECT_THROW(head_accuracy(net, net.index_of("fc2"), feats, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::models
