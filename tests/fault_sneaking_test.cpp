// fault_sneaking_test.cpp — the end-to-end attack driver on the blob net.
#include <gtest/gtest.h>

#include "core/attack_metrics.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa::core {
namespace {

struct Fixture {
  data::Dataset train = testutil::make_blobs(600, 21);
  data::Dataset test = testutil::make_blobs(300, 22);
  data::Dataset pool = testutil::make_blobs(400, 23);
  nn::Sequential net = testutil::make_blob_net(6);
  Tensor pool_feats, test_feats;
  std::vector<std::int64_t> pool_preds;

  Fixture() {
    testutil::train_blob_net(net, train, test);
    const std::size_t cut = net.index_of("fc2");
    pool_feats = models::compute_features(net, cut, pool.images());
    test_feats = models::compute_features(net, cut, test.images());
    pool_preds = models::head_predictions(net, cut, pool_feats);
  }

  AttackSpec spec(std::int64_t s, std::int64_t r, std::uint64_t seed) {
    return make_spec(pool_feats, pool.labels(), pool_preds, s, r, 10, seed);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(FaultSneaking, SingleFaultFullSuccess) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const FaultSneakingResult res = attack.run(f.spec(1, 10, 1));
  EXPECT_TRUE(res.all_targets_hit);
  EXPECT_TRUE(res.all_maintained);
  EXPECT_GT(res.l0, 0);
  EXPECT_LT(res.l0, attack.mask().size());
  EXPECT_DOUBLE_EQ(res.success_rate, 1.0);
}

TEST(FaultSneaking, NetworkRestoredAfterRun) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const Tensor before = attack.mask().gather_values();
  attack.run(f.spec(2, 8, 2));
  EXPECT_EQ(attack.mask().gather_values(), before);
}

TEST(FaultSneaking, ApplyAndRevert) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const FaultSneakingResult res = attack.run(f.spec(1, 5, 3));
  const Tensor before = attack.mask().gather_values();
  attack.apply(res.delta);
  const Tensor after = attack.mask().gather_values();
  EXPECT_NE(after, before);
  attack.revert();
  EXPECT_EQ(attack.mask().gather_values(), before);
}

TEST(FaultSneaking, WithDeltaIsExceptionSafe) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const FaultSneakingResult res = attack.run(f.spec(1, 3, 4));
  const Tensor before = attack.mask().gather_values();
  EXPECT_THROW(with_delta(attack, res.delta, []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(attack.mask().gather_values(), before);
}

TEST(FaultSneaking, DeltaReportedNormsMatchDelta) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const FaultSneakingResult res = attack.run(f.spec(2, 10, 5));
  EXPECT_EQ(res.l0, ops::l0_norm(res.delta));
  EXPECT_NEAR(res.l2, ops::l2_norm(res.delta), 1e-9);
}

TEST(FaultSneaking, MoreFaultsNeedMoreModifications) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const FaultSneakingResult one = attack.run(f.spec(1, 12, 6));
  const FaultSneakingResult four = attack.run(f.spec(4, 12, 6));
  EXPECT_TRUE(one.all_targets_hit);
  EXPECT_GE(four.l0, one.l0);
}

TEST(FaultSneaking, L2ModeMinimizesMagnitudeInstead) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  // Blob-substrate feature scale → soften ρ (see AdmmConfig::rho); the
  // norm comparison is only meaningful when both solvers run in their
  // productive regime rather than leaning on c-escalation.
  FaultSneakingConfig l0cfg;
  l0cfg.admm.rho = 200.0;
  l0cfg.admm.norm = NormKind::kL0;
  FaultSneakingConfig l2cfg = l0cfg;
  l2cfg.admm.norm = NormKind::kL2;
  const AttackSpec spec = f.spec(2, 10, 7);
  const FaultSneakingResult r0 = attack.run(spec, l0cfg);
  const FaultSneakingResult r2 = attack.run(spec, l2cfg);
  EXPECT_TRUE(r0.all_targets_hit);
  EXPECT_TRUE(r2.all_targets_hit);
  EXPECT_LE(r0.l0, r2.l0);      // ℓ0 attack modifies fewer parameters
  EXPECT_LE(r2.l2, r0.l2 * 2);  // ℓ2 attack is competitive in magnitude
}

TEST(FaultSneaking, SneakConstraintPreservesTestAccuracy) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const std::size_t cut = f.net.index_of("fc2");
  const double before =
      models::head_accuracy(f.net, cut, f.test_feats, f.test.labels());
  const FaultSneakingResult res = attack.run(f.spec(2, 60, 8));
  EXPECT_TRUE(res.all_targets_hit);
  const double after = with_delta(attack, res.delta, [&] {
    return models::head_accuracy(f.net, cut, f.test_feats, f.test.labels());
  });
  // With 58 maintain images the global accuracy drop must stay small.
  EXPECT_GT(after, before - 0.08);
}

TEST(FaultSneaking, ZeroFaultsIsANoOpProblem) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  FaultSneakingConfig cfg;
  cfg.escalations = 0;
  const FaultSneakingResult res = attack.run(f.spec(0, 6, 9), cfg);
  EXPECT_TRUE(res.all_targets_hit);  // vacuously
  EXPECT_DOUBLE_EQ(res.success_rate, 1.0);
  EXPECT_EQ(res.l0, 0);  // δ = 0 already satisfies everything
}

TEST(FaultSneaking, BiasOnlyMaskSaturates) {
  // With only 10 bias parameters, many faults with distinct targets cannot
  // all be injected — the Table 2 phenomenon.
  auto& f = fixture();
  FaultSneakingAttack bias_attack(f.net, {"fc2"}, /*weights=*/false, /*biases=*/true);
  EXPECT_EQ(bias_attack.mask().size(), 10);
  // Build a spec with 6 faults whose targets are spread via next-label.
  const AttackSpec spec =
      make_spec(f.pool_feats, f.pool.labels(), f.pool_preds, 6, 12, 10, 10,
                TargetPolicy::kNextLabel);
  FaultSneakingConfig cfg;
  cfg.escalations = 1;
  const FaultSneakingResult res = bias_attack.run(spec, cfg);
  EXPECT_LT(res.success_rate, 1.0);
}

TEST(FaultSneaking, LateAttemptsSolveFromCleanTheta) {
  // Regression test: the per-attempt measurement used to leave θ0 + δ
  // scattered in the network, so escalation attempts 2+ solved a CORRUPTED
  // problem whose internal success check disagreed with the final
  // measurement. Force attempt 1 to fail (absurdly weak c) and require a
  // later attempt to fully succeed with consistent reporting.
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const AttackSpec spec = f.spec(2, 10, 12);
  FaultSneakingConfig cfg;
  cfg.admm.rho = 200.0;
  cfg.admm.c = 1e-4;  // attempt 1 cannot push past the prox threshold
  cfg.refine_steps = 0;  // do not let refinement rescue attempt 1
  cfg.escalations = 6;
  cfg.c_growth = 10.0;
  const FaultSneakingResult res = attack.run(spec, cfg);
  EXPECT_GT(res.attempts, 1);
  EXPECT_TRUE(res.all_targets_hit);
  // Independent verification with delta applied must agree.
  const auto verified = with_delta(attack, res.delta, [&] {
    const Tensor logits = f.net.forward_from(attack.cut(), spec.features);
    return count_satisfied(logits, spec);
  });
  EXPECT_EQ(verified.first, res.targets_hit);
  EXPECT_EQ(verified.second, res.maintained);
}

TEST(FaultSneaking, EscalationImprovesHardInstances) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc2"});
  const AttackSpec spec = f.spec(5, 40, 11);
  FaultSneakingConfig no_escalation;
  no_escalation.escalations = 0;
  no_escalation.admm.c = 0.01;  // deliberately too weak
  FaultSneakingConfig with_escalation = no_escalation;
  with_escalation.escalations = 3;
  with_escalation.c_growth = 20.0;
  const FaultSneakingResult weak = attack.run(spec, no_escalation);
  const FaultSneakingResult strong = attack.run(spec, with_escalation);
  EXPECT_GE(strong.targets_hit, weak.targets_hit);
  EXPECT_GE(strong.attempts, 1);
}

}  // namespace
}  // namespace fsa::core
