// model_zoo_test.cpp — the train-once/cache-forever contract, exercised
// with a deliberately tiny configuration so it runs in seconds.
#include <gtest/gtest.h>

#include <filesystem>

#include "models/model_zoo.h"
#include "optim/trainer.h"

namespace fsa::models {
namespace {

ZooConfig tiny_config(const std::string& dir) {
  ZooConfig cfg;
  cfg.cache_dir = dir;
  cfg.train_count = 120;
  cfg.test_count = 60;
  cfg.pool_count = 60;
  cfg.digits_epochs = 1;
  cfg.objects_epochs = 1;
  cfg.verbose = false;
  return cfg;
}

std::string temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "fsa_zoo_test";
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ModelZoo, TrainsCachesAndReloadsIdentically) {
  const std::string dir = temp_dir();
  double first_acc = 0.0;
  std::vector<Tensor> first_params;
  {
    ModelZoo zoo(tiny_config(dir));
    ZooModel& m = zoo.digits();
    EXPECT_EQ(m.name, "digits");
    EXPECT_EQ(m.train.size(), 120);
    EXPECT_EQ(m.test.size(), 60);
    EXPECT_EQ(m.attack_pool.size(), 60);
    first_acc = m.test_accuracy;
    for (auto* p : m.net.params()) first_params.push_back(p->value());
    EXPECT_TRUE(std::filesystem::exists(dir + "/digits_cwnet.bin"));
  }
  {
    // Second zoo must LOAD (bit-identical parameters, same accuracy).
    ModelZoo zoo(tiny_config(dir));
    ZooModel& m = zoo.digits();
    EXPECT_DOUBLE_EQ(m.test_accuracy, first_acc);
    const auto params = m.net.params();
    ASSERT_EQ(params.size(), first_params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      EXPECT_EQ(params[i]->value(), first_params[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelZoo, DatasetsAreDisjointAcrossRoles) {
  const std::string dir = temp_dir();
  ModelZoo zoo(tiny_config(dir));
  ZooModel& m = zoo.digits();
  // Different seeds → the three image sets must differ.
  EXPECT_NE(m.train.images(), m.test.images().slice0(0, m.test.size()).reshape(
                                   m.test.images().shape()));
  EXPECT_NE(m.test.images(), m.attack_pool.images());
  std::filesystem::remove_all(dir);
}

TEST(ModelZoo, SameInstanceIsMemoized) {
  const std::string dir = temp_dir();
  ModelZoo zoo(tiny_config(dir));
  ZooModel& a = zoo.digits();
  ZooModel& b = zoo.digits();
  EXPECT_EQ(&a, &b);
  std::filesystem::remove_all(dir);
}

TEST(DefaultCacheDir, HonorsEnvironment) {
  // Without the env var → the documented default.
  unsetenv("FSA_CACHE_DIR");
  EXPECT_EQ(default_cache_dir(), ".fsa_cache");
  setenv("FSA_CACHE_DIR", "/tmp/fsa_custom_cache", 1);
  EXPECT_EQ(default_cache_dir(), "/tmp/fsa_custom_cache");
  unsetenv("FSA_CACHE_DIR");
}

}  // namespace
}  // namespace fsa::models
