// integration_test.cpp — the full pipeline on the blob substrate:
// train → attack (ℓ0 and ℓ2) → stealth measurement → baseline comparison →
// hardware campaign planning. Mirrors what the bench harnesses do at paper
// scale, kept small enough for ctest.
#include <gtest/gtest.h>

#include "baseline/gda.h"
#include "baseline/sba.h"
#include "core/attack_metrics.h"
#include "faultsim/campaign.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa {
namespace {

struct Pipeline {
  data::Dataset train = testutil::make_blobs(800, 41);
  data::Dataset test = testutil::make_blobs(400, 42);
  data::Dataset pool = testutil::make_blobs(400, 43);
  nn::Sequential net = testutil::make_blob_net(17);
  std::size_t cut = 0;
  Tensor pool_feats, test_feats;
  std::vector<std::int64_t> pool_preds;
  double clean_accuracy = 0.0;

  Pipeline() {
    testutil::train_blob_net(net, train, test);
    cut = net.index_of("fc2");
    pool_feats = models::compute_features(net, cut, pool.images());
    test_feats = models::compute_features(net, cut, test.images());
    pool_preds = models::head_predictions(net, cut, pool_feats);
    clean_accuracy = models::head_accuracy(net, cut, test_feats, test.labels());
  }

  core::AttackSpec spec(std::int64_t s, std::int64_t r, std::uint64_t seed) {
    return core::make_spec(pool_feats, pool.labels(), pool_preds, s, r, 10, seed);
  }
};

Pipeline& pipe() {
  static Pipeline p;
  return p;
}

TEST(Integration, CleanModelIsAccurate) { EXPECT_GT(pipe().clean_accuracy, 0.95); }

TEST(Integration, SneakAttackBeatsGdaOnStealth) {
  auto& p = pipe();
  const core::AttackSpec spec = p.spec(2, 40, 1);

  // Fault sneaking attack (with maintain images).
  core::FaultSneakingAttack fsa(p.net, {"fc2"});
  const core::FaultSneakingResult ours = fsa.run(spec);
  ASSERT_TRUE(ours.all_targets_hit);
  const double ours_acc = core::with_delta(fsa, ours.delta, [&] {
    return models::head_accuracy(p.net, p.cut, p.test_feats, p.test.labels());
  });

  // GDA baseline (no stealth constraint).
  const core::ParamMask mask = core::ParamMask::make(p.net, {"fc2"});
  baseline::GradientDescentAttack gda(p.net, mask);
  const baseline::GdaResult theirs = gda.run(spec);
  ASSERT_TRUE(theirs.success);
  Tensor theta = mask.gather_values();
  theta += theirs.delta;
  mask.scatter_values(theta);
  const double gda_acc = models::head_accuracy(p.net, p.cut, p.test_feats, p.test.labels());
  theta -= theirs.delta;
  mask.scatter_values(theta);

  // The headline claim: same faults, less collateral damage.
  EXPECT_GE(ours_acc + 1e-9, gda_acc);
  EXPECT_GT(ours_acc, p.clean_accuracy - 0.10);
}

TEST(Integration, SneakAttackBeatsSbaOnStealth) {
  auto& p = pipe();
  const core::AttackSpec spec = p.spec(1, 30, 2);

  core::FaultSneakingAttack fsa(p.net, {"fc2"});
  const core::FaultSneakingResult ours = fsa.run(spec);
  ASSERT_TRUE(ours.all_targets_hit);
  const double ours_acc = core::with_delta(fsa, ours.delta, [&] {
    return models::head_accuracy(p.net, p.cut, p.test_feats, p.test.labels());
  });

  const core::ParamMask mask = core::ParamMask::make(p.net, {"fc2"});
  const Tensor theta0 = mask.gather_values();
  baseline::single_bias_attack(p.net, "fc2", spec.features.slice0(0, 1), spec.labels[0]);
  const double sba_acc = models::head_accuracy(p.net, p.cut, p.test_feats, p.test.labels());
  mask.scatter_values(theta0);

  EXPECT_GT(ours_acc, sba_acc);
}

TEST(Integration, HardwareCampaignPrefersSparseAttack) {
  auto& p = pipe();
  const core::AttackSpec spec = p.spec(1, 10, 3);
  core::FaultSneakingAttack attack(p.net, {"fc2"});

  core::FaultSneakingConfig l0cfg, l2cfg;
  // Blob-substrate feature scale → soften ρ so both prox modes run in
  // their productive regime (see AdmmConfig::rho).
  l0cfg.admm.rho = l2cfg.admm.rho = 200.0;
  l0cfg.admm.norm = core::NormKind::kL0;
  l2cfg.admm.norm = core::NormKind::kL2;
  const auto r0 = attack.run(spec, l0cfg);
  const auto r2 = attack.run(spec, l2cfg);
  ASSERT_TRUE(r0.all_targets_hit);
  ASSERT_TRUE(r2.all_targets_hit);

  const faultsim::MemoryLayout layout;
  const auto plan0 = faultsim::plan_bit_flips(attack.theta0(), r0.delta, layout);
  const auto plan2 = faultsim::plan_bit_flips(attack.theta0(), r2.delta, layout);
  EXPECT_EQ(plan0.params_modified, r0.l0);
  // The ℓ0 attack's sparser δ must be cheaper to realize with a laser.
  const faultsim::CampaignRunner runner(/*shards=*/4, /*campaign_seed=*/5);
  const auto laser0 = runner.run("laser", plan0, layout);
  const auto laser2 = runner.run("laser", plan2, layout);
  EXPECT_LT(laser0.seconds, laser2.seconds);
}

TEST(Integration, AttackIsDeterministicAcrossRuns) {
  auto& p = pipe();
  core::FaultSneakingAttack attack(p.net, {"fc2"});
  const core::AttackSpec spec = p.spec(2, 12, 4);
  core::FaultSneakingConfig cfg;
  const auto a = attack.run(spec, cfg);
  const auto b = attack.run(spec, cfg);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.l0, b.l0);
  EXPECT_EQ(a.targets_hit, b.targets_hit);
}

TEST(Integration, AttackingEarlierLayerNeedsMoreParams) {
  // Table 1's trend on the blob net: the earlier (larger, less direct)
  // layer needs at least as many modifications as the final layer.
  auto& p = pipe();
  const core::AttackSpec final_spec = p.spec(2, 10, 5);
  core::FaultSneakingAttack fc2(p.net, {"fc2"});
  const auto last = fc2.run(final_spec);
  ASSERT_TRUE(last.all_targets_hit);

  core::FaultSneakingAttack fc1(p.net, {"fc1"});
  // fc1 attack needs features at the fc1 cut.
  const Tensor feats1 = models::compute_features(p.net, fc1.cut(), p.pool.images());
  const auto preds1 = models::head_predictions(p.net, fc1.cut(), feats1);
  const auto spec1 = core::make_spec(feats1, p.pool.labels(), preds1, 2, 10, 10, 5);
  const auto first = fc1.run(spec1);
  ASSERT_TRUE(first.all_targets_hit);
  // Not guaranteed pointwise, but on trained nets the last layer is the
  // cheap one; allow equality.
  EXPECT_GE(first.l0 * 3, last.l0);
}

}  // namespace
}  // namespace fsa
