// nn_test.cpp — layer shape semantics, parameter wiring, Sequential.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace fsa::nn {
namespace {

Rng make_rng() { return Rng(99); }

TEST(Dense, ForwardMatchesHandComputation) {
  Rng rng = make_rng();
  Dense d("fc", 2, 3, rng);
  // Overwrite with known values: W = [[1,2,3],[4,5,6]], b = [0.5, -0.5, 0].
  d.weight().value() = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape(Shape({2, 3}));
  d.bias().value() = Tensor::from_vector({0.5f, -0.5f, 0.0f});
  const Tensor x = Tensor::from_vector({1, 1}).reshape(Shape({1, 2}));
  const Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 5.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 6.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 2), 9.0f);
}

TEST(Dense, OutputShapeValidatesInput) {
  Rng rng = make_rng();
  Dense d("fc", 4, 2, rng);
  EXPECT_EQ(d.output_shape(Shape({7, 4})), Shape({7, 2}));
  EXPECT_THROW(d.output_shape(Shape({7, 5})), std::invalid_argument);
  EXPECT_THROW(d.output_shape(Shape({7})), std::invalid_argument);
}

TEST(Dense, ParamsExposeWeightAndBiasKinds) {
  Rng rng = make_rng();
  Dense d("fc", 3, 2, rng);
  auto ps = d.params();
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0]->kind(), Parameter::Kind::kWeight);
  EXPECT_EQ(ps[1]->kind(), Parameter::Kind::kBias);
  EXPECT_EQ(ps[0]->name(), "fc.weight");
  EXPECT_EQ(ps[0]->numel(), 6);
}

TEST(Dense, GradAccumulatesAcrossBackwardCalls) {
  Rng rng = make_rng();
  Dense d("fc", 2, 2, rng);
  const Tensor x = Tensor::ones(Shape({1, 2}));
  const Tensor gy = Tensor::ones(Shape({1, 2}));
  d.forward(x, true);
  d.backward(gy);
  const float first = d.weight().grad()[0];
  d.forward(x, true);
  d.backward(gy);
  EXPECT_FLOAT_EQ(d.weight().grad()[0], 2.0f * first);
  d.zero_grad();
  EXPECT_FLOAT_EQ(d.weight().grad()[0], 0.0f);
}

TEST(Conv2D, OutputShapeValidConvolution) {
  Rng rng = make_rng();
  Conv2D c("conv", 1, 8, 3, rng);
  EXPECT_EQ(c.output_shape(Shape({2, 1, 28, 28})), Shape({2, 8, 26, 26}));
  EXPECT_THROW(c.output_shape(Shape({2, 3, 28, 28})), std::invalid_argument);
}

TEST(Conv2D, OutputShapeWithStrideAndPadding) {
  Rng rng = make_rng();
  Conv2D c("conv", 1, 4, 3, rng, /*stride=*/2, /*padding=*/1);
  EXPECT_EQ(c.output_shape(Shape({1, 1, 8, 8})), Shape({1, 4, 4, 4}));
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Rng rng = make_rng();
  Conv2D c("conv", 1, 1, 1, rng);  // 1×1 kernel, 1 channel
  c.params()[0]->value() = Tensor::ones(Shape({1, 1}));
  c.params()[1]->value() = Tensor::zeros(Shape({1}));
  Rng data_rng(3);
  const Tensor x = Tensor::randn(Shape({2, 1, 5, 5}), data_rng);
  const Tensor y = c.forward(x, false);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Conv2D, AveragingKernelMatchesHand) {
  Rng rng = make_rng();
  Conv2D c("conv", 1, 1, 2, rng);
  c.params()[0]->value() = Tensor::full(Shape({4, 1}), 0.25f);
  c.params()[1]->value() = Tensor::zeros(Shape({1}));
  const Tensor x = Tensor::from_vector({1, 2, 3, 4}).reshape(Shape({1, 1, 2, 2}));
  const Tensor y = c.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(MaxPool, ForwardPicksWindowMaxima) {
  MaxPool2D p("pool", 2);
  const Tensor x =
      Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
          .reshape(Shape({1, 1, 4, 4}));
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 14.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 16.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2D p("pool", 2);
  const Tensor x =
      Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
          .reshape(Shape({1, 1, 4, 4}));
  p.forward(x, true);
  const Tensor gy = Tensor::ones(Shape({1, 1, 2, 2}));
  const Tensor gx = p.backward(gy);
  // Only the four maxima (6, 8, 14, 16 at flat indices 5, 7, 13, 15) get grad.
  EXPECT_FLOAT_EQ(gx[5], 1.0f);
  EXPECT_FLOAT_EQ(gx[7], 1.0f);
  EXPECT_FLOAT_EQ(gx[13], 1.0f);
  EXPECT_FLOAT_EQ(gx[15], 1.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_NEAR(ops::sum(gx), 4.0, 1e-6);
}

TEST(Flatten, RoundTripsShape) {
  Flatten f("flatten");
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape({2, 3, 4, 5}), rng);
  const Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  const Tensor gx = f.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ReLULayer, ZeroesNegativePathGradients) {
  ReLU r("relu");
  const Tensor x = Tensor::from_vector({-1, 2, -3, 4}).reshape(Shape({1, 4}));
  const Tensor y = r.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 2.0f);
  const Tensor gx = r.backward(Tensor::ones(Shape({1, 4})));
  EXPECT_FLOAT_EQ(gx.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gx.at2(0, 1), 1.0f);
}

TEST(Sequential, IndexOfFindsLayers) {
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 4, 3, rng));
  net.add(std::make_unique<ReLU>("relu1"));
  net.add(std::make_unique<Dense>("fc2", 3, 2, rng));
  EXPECT_EQ(net.index_of("fc2"), 2u);
  EXPECT_THROW(net.index_of("nope"), std::out_of_range);
}

TEST(Sequential, ForwardFromSkipsPrefix) {
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 4, 3, rng));
  net.add(std::make_unique<ReLU>("relu1"));
  net.add(std::make_unique<Dense>("fc2", 3, 2, rng));
  Rng data_rng(5);
  const Tensor x = Tensor::randn(Shape({2, 4}), data_rng);
  const Tensor full = net.forward(x);
  // Manually compute the cut features and resume from layer 2.
  Tensor mid = net.layer(0).forward(x, false);
  mid = net.layer(1).forward(mid, false);
  const Tensor resumed = net.forward_from(2, mid);
  ASSERT_EQ(resumed.shape(), full.shape());
  for (std::size_t i = 0; i < full.size(); ++i) EXPECT_NEAR(resumed[i], full[i], 1e-6f);
}

TEST(Sequential, ParamsFromRestrictsToSuffix) {
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 4, 3, rng));
  net.add(std::make_unique<Dense>("fc2", 3, 2, rng));
  EXPECT_EQ(net.params().size(), 4u);
  EXPECT_EQ(net.params_from(1).size(), 2u);
  EXPECT_EQ(net.params_from(1)[0]->name(), "fc2.weight");
}

TEST(Sequential, ParamCountMatchesArchitecture) {
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 10, 5, rng));
  net.add(std::make_unique<Dense>("fc2", 5, 2, rng));
  EXPECT_EQ(net.param_count(), 10 * 5 + 5 + 5 * 2 + 2);
}

TEST(Sequential, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fsa_seq_params.bin").string();
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 4, 3, rng));
  net.add(std::make_unique<Dense>("fc2", 3, 2, rng));
  net.save_params(path);

  Rng rng2(7);
  Sequential other;
  other.add(std::make_unique<Dense>("fc1", 4, 3, rng2));
  other.add(std::make_unique<Dense>("fc2", 3, 2, rng2));
  other.load_params(path);
  for (std::size_t i = 0; i < net.params().size(); ++i)
    EXPECT_EQ(other.params()[i]->value(), net.params()[i]->value());
  std::filesystem::remove(path);
}

TEST(Sequential, LoadRejectsWrongArchitecture) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fsa_seq_params2.bin").string();
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 4, 3, rng));
  net.save_params(path);
  Sequential other;
  other.add(std::make_unique<Dense>("fc1", 5, 3, rng));
  EXPECT_THROW(other.load_params(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Sequential, OutputShapePropagates) {
  Rng rng = make_rng();
  Sequential net;
  net.add(std::make_unique<Conv2D>("conv", 1, 8, 3, rng));
  net.add(std::make_unique<MaxPool2D>("pool", 2));
  net.add(std::make_unique<Flatten>("flatten"));
  net.add(std::make_unique<Dense>("fc", 8 * 13 * 13, 10, rng));
  EXPECT_EQ(net.output_shape(Shape({4, 1, 28, 28})), Shape({4, 10}));
}

}  // namespace
}  // namespace fsa::nn
