// prox_property_test.cpp — parameterized property sweeps over the proximal
// operators for many (rho, seed) combinations: these are the paper's
// closed-form z-step solutions, so they must be exact minimizers for every
// parameter setting, not just the ones the benches happen to use.
#include <gtest/gtest.h>

#include <cmath>

#include "core/prox.h"
#include "tensor/ops.h"

namespace fsa::core {
namespace {

struct ProxCase {
  double rho;
  std::uint64_t seed;
  std::int64_t dim;
};

class ProxSweep : public ::testing::TestWithParam<ProxCase> {
 protected:
  Tensor make_v() const {
    Rng rng(GetParam().seed);
    return Tensor::randn(Shape({GetParam().dim}), rng);
  }
};

TEST_P(ProxSweep, L0KeepsExactlyTheAboveThresholdEntries) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor v = make_v();
  const Tensor z = prox_l0(v, rho);
  const double thr2 = 2.0 / rho;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double vi = v[i];
    if (vi * vi > thr2)
      EXPECT_EQ(z[i], v[i]);
    else
      EXPECT_EQ(z[i], 0.0f);
  }
}

TEST_P(ProxSweep, L0IsIdempotent) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor z = prox_l0(make_v(), rho);
  EXPECT_EQ(prox_l0(z, rho), z);
}

TEST_P(ProxSweep, L0GlobalObjectiveNotWorseThanNeighbors) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor v = make_v();
  const Tensor z = prox_l0(v, rho);
  auto objective = [&](const Tensor& cand) {
    return static_cast<double>(ops::l0_norm(cand)) +
           0.5 * rho * std::pow(ops::l2_norm(ops::sub(cand, v)), 2);
  };
  const double base = objective(z);
  // Perturbations: flip one coordinate between kept/killed.
  for (std::size_t i = 0; i < z.size(); i += 5) {
    Tensor alt = z;
    alt[i] = (z[i] == 0.0f) ? v[i] : 0.0f;
    EXPECT_GE(objective(alt) + 1e-9, base) << "coordinate " << i;
  }
}

TEST_P(ProxSweep, L2NormShrinkIsExactlyOneOverRhoOrTotal) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor v = make_v();
  const Tensor z = prox_l2(v, rho);
  const double vn = ops::l2_norm(v);
  const double zn = ops::l2_norm(z);
  if (vn >= 1.0 / rho)
    EXPECT_NEAR(zn, vn - 1.0 / rho, 1e-3 * vn + 1e-6);
  else
    EXPECT_EQ(zn, 0.0);
}

TEST_P(ProxSweep, L2PreservesDirection) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor v = make_v();
  const Tensor z = prox_l2(v, rho);
  if (ops::l2_norm(z) == 0.0) return;  // collapsed — nothing to check
  const double cosine = ops::dot(v, z) / (ops::l2_norm(v) * ops::l2_norm(z));
  EXPECT_NEAR(cosine, 1.0, 1e-5);
}

TEST_P(ProxSweep, SparsityMonotoneInRho) {
  const auto [rho, seed, dim] = GetParam();
  const Tensor v = make_v();
  // Hard threshold √(2/ρ) falls as ρ grows → l0 never decreases in ρ.
  const std::int64_t at = ops::l0_norm(prox_l0(v, rho));
  const std::int64_t at2 = ops::l0_norm(prox_l0(v, rho * 4.0));
  EXPECT_LE(at, at2);
}

INSTANTIATE_TEST_SUITE_P(
    RhoSeedGrid, ProxSweep,
    ::testing::Values(ProxCase{0.5, 1, 64}, ProxCase{0.5, 2, 257}, ProxCase{2.0, 3, 64},
                      ProxCase{2.0, 4, 1024}, ProxCase{10.0, 5, 64}, ProxCase{10.0, 6, 333},
                      ProxCase{100.0, 7, 64}, ProxCase{100.0, 8, 2010},
                      ProxCase{1000.0, 9, 64}, ProxCase{1000.0, 10, 512}),
    [](const ::testing::TestParamInfo<ProxCase>& info) {
      return "rho" + std::to_string(static_cast<int>(info.param.rho * 10)) + "_seed" +
             std::to_string(info.param.seed) + "_d" + std::to_string(info.param.dim);
    });

}  // namespace
}  // namespace fsa::core
