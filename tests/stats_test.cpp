// stats_test.cpp — sample statistics helper.
#include <gtest/gtest.h>

#include "eval/stats.h"

namespace fsa::eval {
namespace {

TEST(Stats, SingleValue) {
  const Summary s = summarize({3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.n, 1u);
}

TEST(Stats, KnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, OrderInvariant) {
  const Summary a = summarize({1.0, 2.0, 3.0, 10.0});
  const Summary b = summarize({10.0, 3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Stats, EmptyThrows) { EXPECT_THROW(summarize({}), std::invalid_argument); }

TEST(Stats, NegativeValues) {
  const Summary s = summarize({-2.0, -4.0});
  EXPECT_DOUBLE_EQ(s.mean, -3.0);
  EXPECT_DOUBLE_EQ(s.min, -4.0);
  EXPECT_DOUBLE_EQ(s.max, -2.0);
}

}  // namespace
}  // namespace fsa::eval
