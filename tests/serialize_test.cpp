// serialize_test.cpp — round trips and corruption handling of tensor I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "tensor/serialize.h"

namespace fsa {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, StreamRoundTrip) {
  Rng rng(1);
  const Tensor t = Tensor::randn(Shape({3, 4, 5}), rng);
  std::stringstream ss;
  io::write_tensor(ss, t);
  const Tensor back = io::read_tensor(ss);
  EXPECT_EQ(back, t);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  const Tensor t(Shape({0}));
  std::stringstream ss;
  io::write_tensor(ss, t);
  const Tensor back = io::read_tensor(ss);
  EXPECT_EQ(back.shape(), Shape({0}));
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "NOPExxxxxxxxxxxxxxxx";
  EXPECT_THROW(io::read_tensor(ss), std::runtime_error);
}

TEST(Serialize, TruncatedDataThrows) {
  Rng rng(2);
  const Tensor t = Tensor::randn(Shape({64}), rng);
  std::stringstream ss;
  io::write_tensor(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(io::read_tensor(cut), std::runtime_error);
}

TEST(Serialize, FileListRoundTrip) {
  Rng rng(3);
  const std::vector<Tensor> tensors = {Tensor::randn(Shape({7}), rng),
                                       Tensor::randn(Shape({2, 2}), rng), Tensor(Shape({1}))};
  const std::string path = temp_path("fsa_serialize_test.bin");
  io::save_tensors(path, tensors);
  const auto back = io::load_tensors(path);
  ASSERT_EQ(back.size(), tensors.size());
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], tensors[i]);
  std::remove(path.c_str());
}

TEST(Serialize, SaveCreatesParentDirectories) {
  const std::string dir = temp_path("fsa_nested_dir_test");
  const std::string path = dir + "/deep/file.bin";
  std::filesystem::remove_all(dir);
  io::save_tensors(path, {Tensor(Shape({2}))});
  EXPECT_TRUE(io::file_exists(path));
  std::filesystem::remove_all(dir);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(io::load_tensors(temp_path("definitely_missing_fsa.bin")), std::runtime_error);
}

TEST(Serialize, FileExists) {
  EXPECT_FALSE(io::file_exists(temp_path("not_there_fsa.bin")));
  const std::string path = temp_path("fsa_exists_test.bin");
  io::save_tensors(path, {});
  EXPECT_TRUE(io::file_exists(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fsa
