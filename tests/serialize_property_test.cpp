// serialize_property_test.cpp — round-trip property over many shapes.
#include <gtest/gtest.h>

#include <sstream>

#include "tensor/serialize.h"

namespace fsa {
namespace {

class ShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweep, StreamRoundTripIsExact) {
  Rng rng(GetParam().numel() % 97 + 1);
  const Tensor t = Tensor::randn(GetParam(), rng);
  std::stringstream ss;
  io::write_tensor(ss, t);
  const Tensor back = io::read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back, t);
}

TEST_P(ShapeSweep, TwoTensorsInOneStream) {
  Rng rng(7);
  const Tensor a = Tensor::randn(GetParam(), rng);
  const Tensor b = Tensor::randn(GetParam(), rng);
  std::stringstream ss;
  io::write_tensor(ss, a);
  io::write_tensor(ss, b);
  EXPECT_EQ(io::read_tensor(ss), a);
  EXPECT_EQ(io::read_tensor(ss), b);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(Shape({1}), Shape({2010}), Shape({3, 7}),
                                           Shape({1, 1, 28, 28}), Shape({2, 3, 4, 5}),
                                           Shape({200, 10}), Shape({0})),
                         [](const ::testing::TestParamInfo<Shape>& info) {
                           std::string name = "shape";
                           for (auto d : info.param.dims()) name += "_" + std::to_string(d);
                           return name;
                         });

}  // namespace
}  // namespace fsa
