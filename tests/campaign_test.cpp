// campaign_test.cpp — the sharded campaign subsystem's contracts:
// (a) shard-count invariance — K=1 and K=8 merges are bitwise identical
//     for every registered injector (the acceptance contract behind
//     `fsa_cli sweep --with-campaign --shards K`);
// (b) shard manifests round-trip through JSON exactly (the out-of-process
//     execution path);
// (c) the registry rejects unknown injector names with the same strict
//     error style as --backend / --method.
#include <gtest/gtest.h>

#include <cstdlib>

#include "faultsim/campaign.h"
#include "faultsim/injectors.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace fsa::faultsim {
namespace {

BitFlipPlan make_plan(std::int64_t params, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor theta0 = Tensor::randn(Shape({std::max<std::int64_t>(params, 1)}), rng);
  Tensor delta = Tensor::zeros(theta0.shape());
  for (std::int64_t i = 0; i < params; ++i)
    delta[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal(0.0, 0.4));
  return plan_bit_flips(theta0, delta, MemoryLayout{});
}

void expect_identical(const CampaignReport& a, const CampaignReport& b, const std::string& where) {
  EXPECT_EQ(a.injector, b.injector) << where;
  EXPECT_EQ(a.success, b.success) << where;
  EXPECT_EQ(a.params_targeted, b.params_targeted) << where;
  EXPECT_EQ(a.bits_requested, b.bits_requested) << where;
  EXPECT_EQ(a.bits_flipped, b.bits_flipped) << where;
  EXPECT_EQ(a.attempts, b.attempts) << where;
  EXPECT_EQ(a.massages, b.massages) << where;
  EXPECT_EQ(a.rows_touched, b.rows_touched) << where;
  EXPECT_EQ(a.seconds, b.seconds) << where;  // bitwise: recomputed from merged counters
}

// ---- (a) shard-count invariance ----------------------------------------------

TEST(CampaignSharding, MergedTotalsAreShardCountInvariant) {
  const BitFlipPlan plan = make_plan(200, 17);
  const MemoryLayout layout;
  // CI's campaign-shards matrix exports FSA_SHARDS; fold it into the
  // tested counts so each leg genuinely exercises its shard count.
  std::vector<int> counts = {2, 3, 8, 64};
  if (const char* env = std::getenv("FSA_SHARDS"); env && env[0] != '\0')
    counts.push_back(std::max(1, std::atoi(env)));
  for (const std::string& name : injector_names()) {
    const InjectorPtr injector = make_injector(name);
    const CampaignReport one = CampaignRunner(1, 99).run(*injector, plan, layout);
    for (int shards : counts) {
      const CampaignReport many = CampaignRunner(shards, 99).run(*injector, plan, layout);
      expect_identical(one, many, name + " @ " + std::to_string(shards) + " shards");
    }
  }
}

TEST(CampaignSharding, InvariantAcrossThreadCountsToo) {
  // Shards fan out over the pool; the pool size must not matter either.
  const BitFlipPlan plan = make_plan(120, 23);
  const MemoryLayout layout;
  const RowHammerInjector injector;
  set_num_threads(1);
  const CampaignReport serial = CampaignRunner(8, 5).run(injector, plan, layout);
  set_num_threads(4);
  const CampaignReport pooled = CampaignRunner(8, 5).run(injector, plan, layout);
  set_num_threads(0);
  expect_identical(serial, pooled, "rowhammer 8 shards, 1 vs 4 threads");
}

TEST(CampaignSharding, MoreShardsThanFlipsLeavesTrailingShardsEmpty) {
  const BitFlipPlan plan = make_plan(3, 29);
  const CampaignPlanner planner("laser", 8, 1);
  const auto shards = planner.shards(plan, MemoryLayout{});
  ASSERT_EQ(shards.size(), 8u);
  std::int64_t covered = 0;
  for (const auto& s : shards) covered += static_cast<std::int64_t>(s.flips.size());
  EXPECT_EQ(covered, static_cast<std::int64_t>(plan.flips.size()));
  const CampaignReport rep =
      CampaignRunner(8, 1).run(LaserInjector(), plan, MemoryLayout{});
  expect_identical(CampaignRunner(1, 1).run(LaserInjector(), plan, MemoryLayout{}), rep,
                   "3 flips over 8 shards");
}

TEST(CampaignSharding, ShardsPartitionThePlanInOrder) {
  const BitFlipPlan plan = make_plan(50, 31);
  const auto shards = CampaignPlanner("rowhammer", 4, 7).shards(plan, MemoryLayout{});
  std::size_t i = 0;
  std::int64_t new_rows = 0;
  for (const auto& s : shards)
    for (const auto& sf : s.flips) {
      ASSERT_LT(i, plan.flips.size());
      EXPECT_EQ(sf.flip.param_index, plan.flips[i].param_index);
      EXPECT_EQ(sf.flip.xor_mask, plan.flips[i].xor_mask);
      new_rows += sf.new_row ? 1 : 0;
      ++i;
    }
  EXPECT_EQ(i, plan.flips.size());
  EXPECT_EQ(new_rows, plan.rows_touched);  // first-touch attribution is exact
}

TEST(CampaignSharding, MergeIsAssociative) {
  const BitFlipPlan plan = make_plan(64, 37);
  const MemoryLayout layout;
  const ClockGlitchInjector injector;
  const auto shards = CampaignPlanner("clock-glitch", 4, 11).shards(plan, layout);
  std::vector<CampaignReport> parts;
  for (const auto& s : shards) parts.push_back(injector.simulate_shard(s, layout));
  // ((0+1)+(2+3)) must equal (0+1+2+3).
  const CampaignReport left = injector.merge({parts[0], parts[1]});
  const CampaignReport right = injector.merge({parts[2], parts[3]});
  expect_identical(injector.merge(parts), injector.merge({left, right}), "grouped merge");
}

// ---- (b) manifest round-trip --------------------------------------------------

TEST(CampaignManifest, ShardsRoundTripThroughJson) {
  const BitFlipPlan plan = make_plan(40, 43);
  const MemoryLayout layout;
  const CampaignPlanner planner("rowhammer", 3, 0xDEADBEEFCAFE1234ULL);
  const eval::Json manifest = eval::Json::parse(planner.manifest(plan, layout).dump(2));
  EXPECT_EQ(manifest.get_string("injector", ""), "rowhammer");
  EXPECT_EQ(manifest.get_int("shards", 0), 3);
  EXPECT_EQ(manifest.get_int("total_bit_flips", 0), plan.total_bit_flips);
  EXPECT_GT(manifest.get_number("estimated_seconds", -1.0), 0.0);

  const auto original = planner.shards(plan, layout);
  const auto parsed = CampaignPlanner::shards_from_manifest(manifest);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t s = 0; s < original.size(); ++s) {
    EXPECT_EQ(parsed[s].injector, original[s].injector);
    EXPECT_EQ(parsed[s].index, original[s].index);
    EXPECT_EQ(parsed[s].count, original[s].count);
    EXPECT_EQ(parsed[s].campaign_seed, original[s].campaign_seed);
    ASSERT_EQ(parsed[s].flips.size(), original[s].flips.size());
    for (std::size_t f = 0; f < original[s].flips.size(); ++f) {
      EXPECT_EQ(parsed[s].flips[f].flip.param_index, original[s].flips[f].flip.param_index);
      EXPECT_EQ(parsed[s].flips[f].flip.xor_mask, original[s].flips[f].flip.xor_mask);
      EXPECT_EQ(parsed[s].flips[f].flip.bit_count, original[s].flips[f].flip.bit_count);
      EXPECT_EQ(parsed[s].flips[f].seed, original[s].flips[f].seed);
      EXPECT_EQ(parsed[s].flips[f].new_row, original[s].flips[f].new_row);
    }
  }

  // Executing the PARSED shards reproduces the in-process campaign exactly
  // — the whole point of the manifest.
  const RowHammerInjector injector;
  expect_identical(CampaignRunner(3, 0xDEADBEEFCAFE1234ULL).run(injector, plan, layout),
                   CampaignRunner(3, 0).run_shards(injector, parsed, layout),
                   "manifest replay");
}

TEST(CampaignManifest, ReportRoundTripsThroughJson) {
  const BitFlipPlan plan = make_plan(25, 47);
  const CampaignReport rep = CampaignRunner(2, 3).run("clock-glitch", plan, MemoryLayout{});
  const CampaignReport back =
      CampaignReport::from_json(eval::Json::parse(rep.to_json().dump()));
  expect_identical(rep, back, "report json");
}

// ---- (c) strict registry validation -------------------------------------------

TEST(InjectorRegistry, BuiltinsAreRegisteredAndSorted) {
  const auto names = injector_names();
  for (const char* expected : {"rowhammer", "laser", "clock-glitch"})
    EXPECT_TRUE(has_injector(expected)) << expected;
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(make_injector("rowhammer")->name(), "rowhammer");
  EXPECT_EQ(make_injector("laser")->name(), "laser");
  EXPECT_EQ(make_injector("clock-glitch")->name(), "clock-glitch");
}

TEST(InjectorRegistry, UnknownNameThrowsListingKnown) {
  try {
    (void)make_injector("thermal-drill");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("thermal-drill"), std::string::npos);
    EXPECT_NE(msg.find("rowhammer"), std::string::npos);  // lists known injectors
    EXPECT_NE(msg.find("laser"), std::string::npos);
    EXPECT_NE(msg.find("clock-glitch"), std::string::npos);
  }
}

TEST(InjectorRegistry, PlannerAndRunnerValidateEagerly) {
  EXPECT_THROW(CampaignPlanner("nope", 2), std::invalid_argument);
  EXPECT_THROW(CampaignPlanner("laser", 0), std::invalid_argument);
  EXPECT_THROW(CampaignRunner(0), std::invalid_argument);
  const BitFlipPlan plan = make_plan(4, 53);
  EXPECT_THROW((void)CampaignRunner(1).run("nope", plan, MemoryLayout{}),
               std::invalid_argument);
}

TEST(InjectorRegistry, CallerOwnedInstanceNeedsNoRegistration) {
  // The run(const Injector&) overload takes the instance itself — it must
  // not consult the registry (the name is only a shard label).
  struct UnregisteredRig final : Injector {
    [[nodiscard]] std::string name() const override { return "bench-rig-07"; }
    [[nodiscard]] double plan_cost(const BitFlipPlan& plan, const MemoryLayout&) const override {
      return static_cast<double>(plan.total_bit_flips);
    }
    [[nodiscard]] CampaignReport simulate_shard(const CampaignShard& shard,
                                                const MemoryLayout&) const override {
      CampaignReport rep;
      rep.injector = name();
      for (const auto& sf : shard.flips) {
        ++rep.params_targeted;
        rep.bits_requested += sf.flip.bit_count;
        rep.bits_flipped += sf.flip.bit_count;
        rep.attempts += sf.flip.bit_count;
      }
      rep.seconds = cost_seconds(rep);
      return rep;
    }
    [[nodiscard]] double cost_seconds(const CampaignReport& r) const override {
      return static_cast<double>(r.attempts);
    }
  };
  ASSERT_FALSE(has_injector("bench-rig-07"));
  const BitFlipPlan plan = make_plan(12, 61);
  const CampaignReport rep = CampaignRunner(4, 2).run(UnregisteredRig(), plan, MemoryLayout{});
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.injector, "bench-rig-07");
  EXPECT_EQ(rep.bits_flipped, plan.total_bit_flips);
  EXPECT_EQ(rep.seconds, static_cast<double>(plan.total_bit_flips));
}

TEST(InjectorRegistry, CustomRegistrationWins) {
  struct FreeInjector final : Injector {
    [[nodiscard]] std::string name() const override { return "free"; }
    [[nodiscard]] double plan_cost(const BitFlipPlan&, const MemoryLayout&) const override {
      return 0.0;
    }
    [[nodiscard]] CampaignReport simulate_shard(const CampaignShard& shard,
                                                const MemoryLayout&) const override {
      CampaignReport rep;
      rep.injector = name();
      for (const auto& sf : shard.flips) {
        ++rep.params_targeted;
        rep.bits_requested += sf.flip.bit_count;
        rep.bits_flipped += sf.flip.bit_count;
      }
      return rep;
    }
    [[nodiscard]] double cost_seconds(const CampaignReport&) const override { return 0.0; }
  };
  register_injector("free", [] { return std::make_unique<FreeInjector>(); });
  EXPECT_TRUE(has_injector("free"));
  const BitFlipPlan plan = make_plan(10, 59);
  const CampaignReport rep = CampaignRunner(4, 1).run("free", plan, MemoryLayout{});
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.bits_flipped, plan.total_bit_flips);
  EXPECT_EQ(rep.seconds, 0.0);
}

}  // namespace
}  // namespace fsa::faultsim
