// dist_test.cpp — the multi-process distribution subsystem.
//
// Covers the JobDir protocol, the WorkerPool (REAL child processes: this
// test binary re-executes itself in fsa_cli's --run-shard worker mode —
// see main() at the bottom), the zero-drift reducers (associativity /
// commutativity over shuffled shard orders, canonical row union), the
// crashed-worker retry path, sweep/campaign spec JSON round-trips, and
// the injector calibration profiles the manifests embed.
//
// The headline guarantee under test: a job reduced from 1 shard, N
// in-process shards, or N child PROCESSES produces byte-identical
// reduced JSON.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "defense/defense.h"
#include "dist/job_dir.h"
#include "dist/jobs.h"
#include "dist/lease.h"
#include "dist/reducer.h"
#include "dist/serve.h"
#include "dist/worker_pool.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "eval/args.h"
#include "faultsim/bitflip.h"
#include "faultsim/campaign.h"
#include "faultsim/injectors.h"
#include "faultsim/profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace fsa::dist {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct Scratch {
  fs::path dir;
  explicit Scratch(const std::string& name) {
    dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~Scratch() { fs::remove_all(dir); }
  [[nodiscard]] std::string sub(const std::string& name) const { return (dir / name).string(); }
};

/// Restores built-in injector parameters when a profile test returns.
struct ProfileGuard {
  ~ProfileGuard() { faultsim::clear_injector_profile(); }
};

// A small deterministic bit-flip plan: 40 params touched with mixed bit
// patterns, enough to spread over many shards and DRAM rows.
faultsim::BitFlipPlan test_plan() {
  Rng rng(99);
  const std::int64_t n = 4096;
  Tensor theta0 = Tensor::randn(Shape({n}), rng);
  Tensor delta = Tensor::zeros(Shape({n}));
  for (std::int64_t i = 0; i < n; i += 100)
    delta[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
  return faultsim::plan_bit_flips(theta0, delta, faultsim::MemoryLayout{});
}

// ---- JobDir ------------------------------------------------------------------

TEST(JobDir, CreateOpenStatusRoundTrip) {
  Scratch scratch("fsa_dist_jobdir");
  eval::Json manifest = eval::Json::object();
  manifest.set("shards", eval::Json::number(std::int64_t{3}));
  const JobDir job = JobDir::create(scratch.sub("job"), "campaign", 3, manifest);
  EXPECT_EQ(job.kind(), "campaign");
  EXPECT_EQ(job.shards(), 3);
  EXPECT_TRUE(JobDir::exists(scratch.sub("job")));
  EXPECT_FALSE(JobDir::exists(scratch.sub("nope")));

  JobStatus st = job.status();
  EXPECT_EQ(st.shards, 3);
  EXPECT_TRUE(st.done.empty());
  EXPECT_EQ(st.missing, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(st.reduced);

  eval::Json result = eval::Json::object();
  result.set("report", eval::Json::object());
  job.write_result(1, result);
  st = job.status();
  EXPECT_EQ(st.done, (std::vector<int>{1}));
  EXPECT_EQ(st.missing, (std::vector<int>{0, 2}));
  EXPECT_TRUE(job.has_result(1));
  EXPECT_FALSE(job.has_result(0));

  const JobDir reopened = JobDir::open(scratch.sub("job"));
  EXPECT_EQ(reopened.kind(), "campaign");
  EXPECT_EQ(reopened.shards(), 3);
  EXPECT_EQ(reopened.manifest().get_int("shards", 0), 3);

  // Append-only: a laid-out job is never silently clobbered.
  EXPECT_THROW(JobDir::create(scratch.sub("job"), "campaign", 3, manifest),
               std::invalid_argument);
  // Shard indices are range-checked everywhere.
  EXPECT_THROW((void)job.result_path(3), std::out_of_range);
  EXPECT_THROW((void)job.log_path(-1), std::out_of_range);
  // Reducing with missing shards names them.
  try {
    (void)reduce_job(job);
    FAIL() << "expected missing-shard error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("0, 2"), std::string::npos) << e.what();
  }
}

TEST(JobDir, OpenOrCreateResumesOnlyMatchingManifests) {
  Scratch scratch("fsa_dist_resume_guard");
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const faultsim::CampaignPlanner planner("laser", 2, 7);
  const eval::Json manifest = planner.manifest(plan, layout);

  const JobDir created = open_or_create_job(scratch.sub("job"), "campaign", manifest);
  EXPECT_EQ(created.shards(), 2);
  // Same request → resume.
  const JobDir resumed = open_or_create_job(scratch.sub("job"), "campaign", manifest);
  EXPECT_EQ(resumed.shards(), 2);
  // A leftover dir must never silently answer a DIFFERENT request.
  const faultsim::CampaignPlanner other("rowhammer", 2, 7);
  EXPECT_THROW(
      (void)open_or_create_job(scratch.sub("job"), "campaign", other.manifest(plan, layout)),
      std::invalid_argument);
  EXPECT_THROW((void)open_or_create_job(scratch.sub("job"), "sweep", manifest),
               std::invalid_argument);
}

// ---- campaign jobs: in-process shard workers ---------------------------------

TEST(CampaignJob, ShardWorkersReduceBitwiseIdenticalForAnyShardCount) {
  Scratch scratch("fsa_dist_campaign");
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;

  // The merged REPORT must not drift by a byte across shard counts (the
  // top-level "shards" field legitimately records each job's own K).
  std::string baseline;
  for (const int shards : {1, 3, 8}) {
    const std::string dir = scratch.sub("job_k" + std::to_string(shards));
    const faultsim::CampaignPlanner planner("rowhammer", shards, 7);
    const JobDir job = create_campaign_job(dir, planner, plan, layout);
    const eval::Json manifest = job.manifest();
    for (int s = 0; s < shards; ++s) job.write_result(s, run_campaign_shard(manifest, s));
    const std::string reduced = reduce_job(job).at("report").dump(2);
    if (baseline.empty())
      baseline = reduced;
    else
      EXPECT_EQ(reduced, baseline) << shards << " shards drifted";
  }

  // And the job path matches the in-process CampaignRunner totals.
  const faultsim::CampaignReport direct =
      faultsim::CampaignRunner(1, 7).run("rowhammer", plan, layout);
  const faultsim::CampaignReport merged =
      faultsim::CampaignReport::from_json(eval::Json::parse(baseline));
  EXPECT_EQ(merged.attempts, direct.attempts);
  EXPECT_EQ(merged.massages, direct.massages);
  EXPECT_EQ(merged.bits_flipped, direct.bits_flipped);
  EXPECT_EQ(merged.rows_touched, direct.rows_touched);
  EXPECT_EQ(merged.seconds, direct.seconds);  // bitwise: recomputed, not summed
}

TEST(CampaignJob, ShardIndexOutOfRangeThrows) {
  Scratch scratch("fsa_dist_campaign_oob");
  const faultsim::CampaignPlanner planner("laser", 4, 7);
  const JobDir job =
      create_campaign_job(scratch.sub("job"), planner, test_plan(), faultsim::MemoryLayout{});
  const eval::Json manifest = job.manifest();
  EXPECT_THROW((void)run_campaign_shard(manifest, -1), std::out_of_range);
  EXPECT_THROW((void)run_campaign_shard(manifest, 4), std::out_of_range);
}

// ---- reducer properties ------------------------------------------------------

TEST(CampaignReducer, MergeIsAssociativeAndCommutativeOverShardOrder) {
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::CampaignPlanner planner("rowhammer", 6, 11);
  const std::vector<faultsim::CampaignShard> shards =
      planner.shards(plan, faultsim::MemoryLayout{});
  const faultsim::InjectorPtr injector = faultsim::make_injector("rowhammer");
  std::vector<faultsim::CampaignReport> parts;
  for (const auto& s : shards) parts.push_back(injector->simulate_shard(s, faultsim::MemoryLayout{}));

  const eval::Json flat = injector->merge(parts).to_json();
  // Commutativity: any permutation of the parts merges identically.
  std::mt19937 perm_rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<faultsim::CampaignReport> shuffled = parts;
    std::shuffle(shuffled.begin(), shuffled.end(), perm_rng);
    EXPECT_EQ(injector->merge(shuffled).to_json().dump(), flat.dump()) << "trial " << trial;
  }
  // Associativity: grouped merges of merged sub-results match the flat merge.
  const faultsim::CampaignReport left =
      injector->merge({parts[0], parts[1], parts[2]});
  const faultsim::CampaignReport right = injector->merge({parts[3], parts[4], parts[5]});
  EXPECT_EQ(injector->merge({left, right}).to_json().dump(), flat.dump());
}

/// Fabricated sweep shard results (no model needed): the reducer's row
/// union must be independent of which shard produced which row and of the
/// order results are presented in.
TEST(SweepReducer, RowUnionIsOrderIndependentAndCanonical) {
  eval::Json manifest = eval::Json::object();
  manifest.set("kind", eval::Json::string("sweep"));
  manifest.set("dataset", eval::Json::string("blobs"));
  manifest.set("backend", eval::Json::string("blocked"));
  manifest.set("shards", eval::Json::number(std::int64_t{4}));

  const auto make_row = [](const std::string& method, std::int64_t S, std::int64_t R,
                           std::uint64_t seed, std::int64_t index, double seconds) {
    engine::AttackReport rep;
    rep.method = method;
    rep.surface = "fc2";
    rep.S = S;
    rep.R = R;
    rep.seed = seed;
    rep.l0 = S * 10;
    rep.seconds = seconds;  // nondeterministic wall time → must be scrubbed
    eval::Json row = rep.to_json();
    row.set("index", eval::Json::number(index));
    return row;
  };
  const auto shard_result = [](std::vector<eval::Json> rows) {
    eval::Json r = eval::Json::object();
    r.set("kind", eval::Json::string("sweep"));
    eval::Json arr = eval::Json::array();
    for (auto& row : rows) arr.push_back(std::move(row));
    r.set("rows", std::move(arr));
    return r;
  };

  // 4 instances: two methods × two cells, with differing wall times per
  // "run" and different shard groupings.
  const auto reducer = make_reducer("sweep");
  const eval::Json a = reducer->reduce(
      manifest, {shard_result({make_row("fsa-l0", 1, 8, 3, 0, 0.5)}),
                 shard_result({make_row("fsa-l0", 2, 12, 3, 1, 1.5)}),
                 shard_result({make_row("gda", 1, 8, 3, 2, 2.5)}),
                 shard_result({make_row("gda", 2, 12, 3, 3, 3.5)})});
  const eval::Json b = reducer->reduce(
      manifest, {shard_result({make_row("gda", 2, 12, 3, 3, 9.0),
                               make_row("fsa-l0", 1, 8, 3, 0, 8.0)}),
                 shard_result({}),
                 shard_result({make_row("gda", 1, 8, 3, 2, 7.0)}),
                 shard_result({make_row("fsa-l0", 2, 12, 3, 1, 6.0)})});
  EXPECT_EQ(a.dump(2), b.dump(2));  // byte-for-byte, wall times scrubbed

  // Canonical order: keyed by (method, surface, S, R, seed), index last.
  const auto& rows = a.at("rows").items();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].get_string("method", ""), "fsa-l0");
  EXPECT_EQ(rows[0].get_int("S", 0), 1);
  EXPECT_EQ(rows[1].get_string("method", ""), "fsa-l0");
  EXPECT_EQ(rows[1].get_int("S", 0), 2);
  EXPECT_EQ(rows[2].get_string("method", ""), "gda");
  for (const auto& row : rows) EXPECT_EQ(row.get_number("seconds", -1.0), 0.0);
}

TEST(Reducer, UnknownKindThrowsListingKnown) {
  try {
    (void)make_reducer("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("campaign"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sweep"), std::string::npos);
  }
}

// ---- sweep jobs on the blob substrate ----------------------------------------

struct BlobFixture {
  models::ZooModel model;
  std::string cache_dir;

  BlobFixture() {
    cache_dir = ::testing::TempDir() + "fsa_dist_blobs";
    fs::remove_all(cache_dir);
    model.name = "blobs";
    model.net = testutil::make_blob_net(6);
    model.train = testutil::make_blobs(600, 21);
    model.test = testutil::make_blobs(300, 22);
    model.attack_pool = testutil::make_blobs(400, 23);
    model.test_accuracy = testutil::train_blob_net(model.net, model.train, model.test);
  }
};

BlobFixture& blob_fixture() {
  static BlobFixture f;
  return f;
}

std::vector<engine::SweepSpec> blob_specs() {
  engine::Sweep sweep;
  sweep.methods({"fsa-l0", "gda"}).layers({"fc2"}).sr_pairs({{1, 8}, {2, 12}}).seeds({3});
  return sweep.build();
}

TEST(SweepJob, ShardedRunReducesBitwiseIdenticalToSingleShard) {
  auto& f = blob_fixture();
  Scratch scratch("fsa_dist_sweepjob");
  const std::vector<engine::SweepSpec> specs = blob_specs();
  const eval::Json manifest = sweep_manifest("blobs", "blocked", specs);
  ASSERT_EQ(manifest.get_int("shards", 0), static_cast<std::int64_t>(specs.size()));

  // N shards, each solved by its own worker entry (fresh runner = fresh
  // process-local caches), vs ONE worker entry solving a single-shard
  // manifest of the same specs.
  const JobDir sharded = create_sweep_job(scratch.sub("sharded"), manifest);
  for (int s = 0; s < sharded.shards(); ++s) {
    engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
    sharded.write_result(s, run_sweep_shard(manifest, s, runner));
  }

  eval::Json one = eval::Json::object();  // single-shard manifest, same specs
  one.set("kind", eval::Json::string("sweep"));
  one.set("dataset", eval::Json::string("blobs"));
  one.set("backend", eval::Json::string("blocked"));
  one.set("shards", eval::Json::number(std::int64_t{1}));
  {
    eval::Json arr = eval::Json::array();
    for (const auto& s : specs) arr.push_back(s.to_json());
    one.set("specs", std::move(arr));
  }
  const JobDir single = create_sweep_job(scratch.sub("single"), one);
  {
    engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
    single.write_result(0, run_sweep_shard(one, 0, runner));
  }

  const eval::Json sharded_reduced = reduce_job(sharded);
  const eval::Json single_reduced = reduce_job(single);
  ASSERT_EQ(sharded_reduced.at("rows").size(), specs.size());
  // The kind/dataset/backend/rows bytes must match exactly; `shards` is
  // the one field that legitimately differs, so compare rows directly.
  EXPECT_EQ(sharded_reduced.at("rows").items().size(), single_reduced.at("rows").items().size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(sharded_reduced.at("rows").at(i).dump(2), single_reduced.at("rows").at(i).dump(2))
        << "row " << i;

  // Rows carry real solves, canonically ordered and scrubbed.
  for (const auto& row : sharded_reduced.at("rows").items()) {
    EXPECT_GT(row.get_int("l0", 0), 0);
    EXPECT_EQ(row.get_number("seconds", -1.0), 0.0);
  }
  engine::SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  EXPECT_THROW((void)run_sweep_shard(manifest, static_cast<int>(specs.size()), runner),
               std::out_of_range);
  EXPECT_THROW((void)run_sweep_shard(manifest, -1, runner), std::out_of_range);
}

// ---- telemetry byte-identity -------------------------------------------------

/// Restores the process-global observability state on scope exit.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::clear_spans();
  }
};

/// The reduced document must not contain a single byte of telemetry: the
/// tracer records spans, ADMM records convergence traces, the registry
/// ticks counters — and reduced.json for sweep, arena, and campaign jobs
/// still comes out bitwise identical to a run with everything off.
TEST(Telemetry, ReducedBytesIdenticalWithTraceAndMetricsOnVsOff) {
  auto& f = blob_fixture();
  Scratch scratch("fsa_dist_telemetry_identity");
  ObsGuard obs_guard;

  const auto run_all = [&](const std::string& tag) {
    std::map<std::string, std::string> reduced;
    // Fresh per-run row cache: a shared cache would satisfy the "on" run
    // from rows the "off" run computed and the solver would never execute
    // with tracing live — exactly the path this test must exercise.
    const std::string cache = scratch.sub("cache_" + tag);

    const eval::Json sweep_m = sweep_manifest("blobs", "blocked", blob_specs());
    const JobDir sweep_job = create_sweep_job(scratch.sub("sweep_" + tag), sweep_m);
    for (int s = 0; s < sweep_job.shards(); ++s) {
      engine::SweepRunner runner(f.model, cache, /*verbose=*/false);
      sweep_job.write_result(s, run_sweep_shard(sweep_m, s, runner));
    }
    reduced["sweep"] = reduce_job(sweep_job).dump(2);

    std::vector<engine::SweepSpec> specs = blob_specs();
    for (engine::SweepSpec& s : specs) s.defense = defense::parse_defense("range");
    const eval::Json arena_m = arena_manifest("blobs", "blocked", specs);
    const JobDir arena_job =
        JobDir::create(scratch.sub("arena_" + tag), "arena",
                       static_cast<int>(arena_m.get_int("shards", 0)), arena_m);
    for (int s = 0; s < arena_job.shards(); ++s) {
      engine::SweepRunner runner(f.model, cache, /*verbose=*/false);
      arena_job.write_result(s, run_sweep_shard(arena_m, s, runner));
    }
    reduced["arena"] = reduce_job(arena_job).dump(2);

    const faultsim::CampaignPlanner planner("laser", 3, 7);
    const JobDir camp_job =
        create_campaign_job(scratch.sub("camp_" + tag), planner, test_plan(),
                            faultsim::MemoryLayout{});
    for (int s = 0; s < camp_job.shards(); ++s)
      camp_job.write_result(s, run_campaign_shard(camp_job.manifest(), s));
    reduced["campaign"] = reduce_job(camp_job).dump(2);
    return reduced;
  };

  const auto off = run_all("off");
  obs::set_trace_enabled(true);
  obs::set_metrics_enabled(true);
  const auto on = run_all("on");

  EXPECT_EQ(off.at("sweep"), on.at("sweep"));
  EXPECT_EQ(off.at("arena"), on.at("arena"));
  EXPECT_EQ(off.at("campaign"), on.at("campaign"));

  // Identity is a scrub, not an accident: with tracing on the SHARD rows
  // carry the ADMM convergence block (the fsa solver records it), and the
  // reducer strips it before the canonical document forms.
  const JobDir traced = JobDir::open(scratch.sub("sweep_on"));
  bool saw_convergence = false;
  for (int s = 0; s < traced.shards(); ++s) {
    const eval::Json shard_result = traced.result(s);  // keep alive across the loop
    for (const eval::Json& row : shard_result.at("rows").items())
      if (row.has("convergence")) {
        saw_convergence = true;
        const eval::Json& c = row.at("convergence");
        EXPECT_GT(c.at("objective").items().size(), 0u);
        EXPECT_EQ(c.at("objective").items().size(), c.at("primal").items().size());
        EXPECT_EQ(c.at("objective").items().size(), c.at("dual").items().size());
      }
  }
  EXPECT_TRUE(saw_convergence);
  const eval::Json reduced_on = eval::Json::parse(on.at("sweep"));
  for (const eval::Json& row : reduced_on.at("rows").items())
    EXPECT_FALSE(row.has("convergence"));
}

TEST(SweepSpecJson, RoundTripsAllDeclarativeFields) {
  engine::SweepSpec spec;
  spec.method = "gda";
  spec.layers = {"fc1", "fc2"};
  spec.weights = true;
  spec.biases = false;
  spec.S = 3;
  spec.R = 17;
  spec.seed = 0xDEADBEEFCAFE1234ULL;  // > 2^53: must survive via string
  spec.policy = core::TargetPolicy::kNextLabel;
  spec.tag = "ablation-a";
  spec.measure_accuracy = false;
  engine::CampaignConfig cfg;
  cfg.injectors = {"laser", "clock-glitch"};
  cfg.shards = 5;
  cfg.seed = 0xFFFFFFFFFFFFFFFFULL;
  cfg.format = faultsim::StorageFormat::kBfloat16;
  cfg.layout.base_address = 0xFFFF000000000000ULL;
  cfg.layout.row_bytes = 4096;
  spec.campaign = cfg;

  const engine::SweepSpec back =
      engine::SweepSpec::from_json(eval::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(back.method, spec.method);
  EXPECT_EQ(back.layers, spec.layers);
  EXPECT_EQ(back.weights, spec.weights);
  EXPECT_EQ(back.biases, spec.biases);
  EXPECT_EQ(back.S, spec.S);
  EXPECT_EQ(back.R, spec.R);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.tag, spec.tag);
  EXPECT_EQ(back.measure_accuracy, spec.measure_accuracy);
  ASSERT_TRUE(back.campaign.has_value());
  EXPECT_EQ(back.campaign->injectors, cfg.injectors);
  EXPECT_EQ(back.campaign->shards, cfg.shards);
  EXPECT_EQ(back.campaign->seed, cfg.seed);
  EXPECT_EQ(back.campaign->format, cfg.format);
  EXPECT_EQ(back.campaign->layout.base_address, cfg.layout.base_address);
  EXPECT_EQ(back.campaign->layout.row_bytes, cfg.layout.row_bytes);

  // Pre-configured attacker overrides cannot cross a process boundary.
  engine::SweepSpec with_attacker;
  with_attacker.attacker = engine::make_attacker("gda");
  EXPECT_THROW((void)with_attacker.to_json(), std::invalid_argument);
}

// ---- injector calibration profiles -------------------------------------------

TEST(InjectorProfile, OverridesParametersAndEmbedsIntoManifests) {
  ProfileGuard guard;
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const double default_cost = faultsim::make_injector("laser")->plan_cost(plan, layout);

  eval::Json profile = eval::Json::parse(R"({
    "name": "test-bench",
    "injectors": { "laser": { "locate_seconds": 1000.0 } }
  })");
  faultsim::load_injector_profile(profile);
  ASSERT_NE(faultsim::active_injector_profile(), nullptr);
  const double calibrated_cost = faultsim::make_injector("laser")->plan_cost(plan, layout);
  EXPECT_GT(calibrated_cost, default_cost * 10.0);  // 20 s → 1000 s per locate

  // The planner embeds the profile, so a shard worker in a FRESH process
  // (simulated here by clearing first) replays the calibration exactly.
  const faultsim::CampaignPlanner planner("laser", 2, 7);
  const eval::Json manifest = planner.manifest(plan, layout);
  ASSERT_TRUE(manifest.has("injector_profile"));
  faultsim::clear_injector_profile();
  const eval::Json shard0 = run_campaign_shard(manifest, 0);
  const eval::Json shard1 = run_campaign_shard(manifest, 1);
  const faultsim::InjectorPtr calibrated = faultsim::make_injector("laser");  // re-registered
  const faultsim::CampaignReport merged =
      calibrated->merge({faultsim::CampaignReport::from_json(shard0.at("report")),
                         faultsim::CampaignReport::from_json(shard1.at("report"))});
  EXPECT_EQ(merged.seconds,
            calibrated->cost_seconds(merged));  // costed with locate_seconds = 1000
  EXPECT_GT(merged.seconds, default_cost * 10.0);
}

TEST(InjectorProfile, RejectsUnknownInjectorsAndParameters) {
  ProfileGuard guard;
  EXPECT_THROW(
      faultsim::load_injector_profile(eval::Json::parse(R"({"injectors":{"emp":{"x":1}}})")),
      std::invalid_argument);
  EXPECT_THROW(faultsim::load_injector_profile(
                   eval::Json::parse(R"({"injectors":{"laser":{"locate_secondz":1}}})")),
               std::invalid_argument);
  EXPECT_THROW(faultsim::load_injector_profile(eval::Json::parse(R"({"injectors":{}})")),
               std::invalid_argument);
  EXPECT_THROW(faultsim::load_injector_profile(eval::Json::parse(R"({"typo":{}})")),
               std::invalid_argument);
  // A rejected profile must not have been half-applied.
  EXPECT_EQ(faultsim::active_injector_profile(), nullptr);
}

TEST(InjectorProfile, ShippedProfilesParseAndLoad) {
  ProfileGuard guard;
  for (const char* name : {"ddr3_rowhammer.json", "laser_bench.json"}) {
    const fs::path repo_profile = fs::path(__FILE__).parent_path().parent_path() / "profiles" / name;
    if (!fs::exists(repo_profile)) GTEST_SKIP() << "profiles/ not present in this checkout";
    EXPECT_NO_THROW(faultsim::load_injector_profile_file(repo_profile.string())) << name;
  }
}

// ---- WorkerPool: real child processes ----------------------------------------

/// argv for re-running THIS binary as a campaign shard worker (the same
/// contract fsa_cli's --run-shard mode implements; see worker_main).
std::vector<std::string> worker_argv(const JobDir& job, int shard,
                                     const std::vector<std::string>& extra = {}) {
  std::vector<std::string> argv = {self_exe(),    "campaign",
                                   "--run-shard", job.manifest_path(),
                                   "--shard",     std::to_string(shard),
                                   "--out",       job.result_path(shard)};
  argv.insert(argv.end(), extra.begin(), extra.end());
  return argv;
}

TEST(WorkerPool, MultiProcessCampaignBitwiseIdenticalForAnyWorkerCount) {
  Scratch scratch("fsa_dist_procs");
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const int shards = 6;

  std::string baseline;
  for (const int workers : {1, 4, 8}) {
    const std::string dir = scratch.sub("w" + std::to_string(workers));
    const faultsim::CampaignPlanner planner("rowhammer", shards, 7);
    const JobDir job = create_campaign_job(dir, planner, plan, layout);
    RunJobOptions opts;
    opts.workers = workers;
    opts.verbose = false;
    const eval::Json reduced = run_job(job, self_exe(), opts);
    // run_job wrote reduced.json too; the file and the return agree.
    EXPECT_EQ(read_json_file(job.reduced_path()).dump(2), reduced.dump(2));
    if (baseline.empty())
      baseline = reduced.dump(2);
    else
      EXPECT_EQ(reduced.dump(2), baseline) << workers << " workers drifted";
  }
  // And the whole multi-process path matches the in-process thread path.
  const faultsim::CampaignReport direct =
      faultsim::CampaignRunner(shards, 7).run("rowhammer", plan, layout);
  EXPECT_EQ(eval::Json::parse(baseline).at("report").dump(2), direct.to_json().dump(2));
}

TEST(WorkerPool, CrashedWorkerIsRetriedAndResultDoesNotDrift) {
  Scratch scratch("fsa_dist_retry");
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const faultsim::CampaignPlanner planner("laser", 3, 7);

  // Clean reference run.
  const JobDir clean = create_campaign_job(scratch.sub("clean"), planner, plan, layout);
  RunJobOptions opts;
  opts.workers = 2;
  opts.verbose = false;
  const std::string want = run_job(clean, self_exe(), opts).dump(2);

  // Every worker crashes on its FIRST attempt (--fail-once marker file),
  // succeeds on the retry; the reduced document must not change a byte.
  const JobDir flaky = create_campaign_job(scratch.sub("flaky"), planner, plan, layout);
  RunJobOptions flaky_opts = opts;
  flaky_opts.max_attempts = 2;
  flaky_opts.extra_argv = {"--fail-once", scratch.sub("marker")};
  const eval::Json reduced = run_job(flaky, self_exe(), flaky_opts);
  EXPECT_EQ(reduced.dump(2), want);

  // Pool-level accounting: a directly driven flaky shard takes 2 attempts.
  const JobDir counted = create_campaign_job(scratch.sub("counted"), planner, plan, layout);
  WorkerPool pool({2, 3, false});
  const std::vector<ShardRun> runs = pool.run(
      {0, 1, 2},
      [&](int s) { return worker_argv(counted, s, {"--fail-once", scratch.sub("marker2")}); },
      [&](int s) { return counted.log_path(s); });
  ASSERT_EQ(runs.size(), 3u);
  int retried = 0;
  for (const ShardRun& r : runs) {
    EXPECT_EQ(r.exit_code, 0) << "shard " << r.shard;
    retried += r.attempts > 1 ? 1 : 0;
  }
  EXPECT_GE(retried, 1);  // exactly one shard hit the marker race first and crashed
}

TEST(WorkerPool, PermanentFailureIsReportedWithLogPath) {
  Scratch scratch("fsa_dist_fail");
  const faultsim::CampaignPlanner planner("laser", 2, 7);
  const JobDir job =
      create_campaign_job(scratch.sub("job"), planner, test_plan(), faultsim::MemoryLayout{});
  RunJobOptions opts;
  opts.workers = 2;
  opts.max_attempts = 2;
  opts.verbose = false;
  opts.extra_argv = {"--fail-always"};
  try {
    (void)run_job(job, self_exe(), opts);
    FAIL() << "expected worker-failure error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exit 3"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("logs"), std::string::npos) << what;
  }
  // Resume after the bug is "fixed": only the missing shards run.
  const eval::Json reduced = run_job(job, self_exe(), RunJobOptions{2, 2, false, {}});
  EXPECT_EQ(reduced.get_string("kind", ""), "campaign");
}

TEST(WorkerPool, TempJobIsRemovedOnSuccessAndNamedOnFailure) {
  // The CLI's --workers mode without --job runs in a throwaway directory.
  // Success must remove it; a permanent failure must RETAIN it (the logs
  // are the only diagnosis trail) and name the retained path in the
  // error, so the temp directory never leaks silently.
  Scratch scratch("fsa_dist_tempjob");
  const faultsim::CampaignPlanner planner("laser", 2, 7);
  const faultsim::BitFlipPlan plan = test_plan();
  RunJobOptions opts;
  opts.workers = 2;
  opts.verbose = false;

  const std::string ok_dir = scratch.sub("ok");
  const JobDir ok = create_campaign_job(ok_dir, planner, plan, faultsim::MemoryLayout{});
  const eval::Json reduced = run_temp_job(ok, self_exe(), opts);
  EXPECT_EQ(reduced.get_string("kind", ""), "campaign");
  EXPECT_FALSE(fs::exists(ok_dir)) << "successful temp job must clean up after itself";

  const std::string bad_dir = scratch.sub("bad");
  const JobDir bad = create_campaign_job(bad_dir, planner, plan, faultsim::MemoryLayout{});
  RunJobOptions bad_opts = opts;
  bad_opts.extra_argv = {"--fail-always"};
  try {
    (void)run_temp_job(bad, self_exe(), bad_opts);
    FAIL() << "expected worker-failure error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retained at " + bad_dir), std::string::npos) << what;
    EXPECT_NE(what.find("dist run --job"), std::string::npos) << what;
  }
  EXPECT_TRUE(fs::exists(bad_dir)) << "failed temp job must be retained for diagnosis";
  EXPECT_TRUE(fs::exists(bad.log_path(0))) << "retained job keeps its worker logs";
}

TEST(WorkerPool, RejectsNonPositiveConfiguration) {
  EXPECT_THROW(WorkerPool({0, 2, false}), std::invalid_argument);
  EXPECT_THROW(WorkerPool({2, 0, false}), std::invalid_argument);
  EXPECT_THROW(WorkerPool({2, 2, false, -1}), std::invalid_argument);
}

TEST(WorkerPool, RetryWaitsOutTheJitteredBackoff) {
  Scratch scratch("fsa_dist_backoff");
  const faultsim::CampaignPlanner planner("laser", 1, 7);
  const JobDir job =
      create_campaign_job(scratch.sub("job"), planner, test_plan(), faultsim::MemoryLayout{});
  WorkerPool pool({1, 2, false, 400});  // retry delay in [200, 600) ms
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ShardRun> runs = pool.run(
      {0}, [&](int s) { return worker_argv(job, s, {"--fail-once", scratch.sub("marker")}); },
      [&](int s) { return job.log_path(s); });
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].exit_code, 0);
  EXPECT_EQ(runs[0].attempts, 2);
  // The retry cannot have fired before the jitter floor (0.5 x base).
  EXPECT_GE(elapsed.count(), 150);
  EXPECT_TRUE(job.has_result(0));
}

// ---- leases ------------------------------------------------------------------

TEST(Lease, ClaimIsExclusiveAndRoundTrips) {
  Scratch scratch("fsa_dist_lease");
  const std::string path = scratch.sub("shard_00000.lease");
  const std::string owner = lease_owner_id();
  ASSERT_TRUE(try_claim_lease(path, make_lease(owner, 1000)));
  EXPECT_FALSE(try_claim_lease(path, make_lease("someone-else", 2000)));  // O_EXCL lost

  const auto info = read_lease(path);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, owner);
  EXPECT_EQ(info->pid, ::getpid());
  EXPECT_EQ(info->created_ms, 1000);
  EXPECT_EQ(info->heartbeat_ms, 1000);
  EXPECT_FALSE(read_lease(scratch.sub("absent.lease")).has_value());

  // Renewal bumps the heartbeat for the owner, refuses for anyone else.
  EXPECT_TRUE(renew_lease(path, owner, 5000));
  EXPECT_EQ(read_lease(path)->heartbeat_ms, 5000);
  EXPECT_FALSE(renew_lease(path, "someone-else", 9000));
  EXPECT_EQ(read_lease(path)->heartbeat_ms, 5000);

  // Release is owner-guarded too: a stranger's release is a no-op.
  release_lease(path, "someone-else");
  EXPECT_TRUE(read_lease(path).has_value());
  release_lease(path, owner);
  EXPECT_FALSE(read_lease(path).has_value());
}

TEST(Lease, ExpiryReclaimAndCorruptLeases) {
  Scratch scratch("fsa_dist_lease_expiry");
  LeaseInfo info = make_lease("w1", 10000);
  EXPECT_FALSE(lease_expired(info, 1000, 10500));  // inside the window
  EXPECT_FALSE(lease_expired(info, 1000, 9000));   // future heartbeat = clock skew, alive
  EXPECT_TRUE(lease_expired(info, 1000, 11001));   // one past the window

  // Reclaim is single-winner: the rename arbitration admits exactly one.
  const std::string path = scratch.sub("stale.lease");
  ASSERT_TRUE(try_claim_lease(path, info));
  EXPECT_TRUE(try_reclaim_lease(path, "w2"));
  EXPECT_FALSE(try_reclaim_lease(path, "w3"));  // already gone
  EXPECT_FALSE(read_lease(path).has_value());
  // The loser's rename target never lingers.
  EXPECT_FALSE(fs::exists(scratch.sub("stale.lease.reclaim.w2")));

  // A claimer killed between O_EXCL create and body write leaves an empty
  // or garbage lease: it must parse to heartbeat 0 = instantly reclaimable.
  const std::string corrupt = scratch.sub("corrupt.lease");
  { std::ofstream os(corrupt); os << "{not json"; }
  const auto parsed = read_lease(corrupt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->heartbeat_ms, 0);
  EXPECT_TRUE(lease_expired(*parsed, 1000, lease_now_ms()));
  EXPECT_TRUE(try_reclaim_lease(corrupt, "w4"));
}

// ---- cost-aware scheduling ---------------------------------------------------

TEST(Scheduler, LongestFirstIsStableAndTolerant) {
  const std::vector<double> costs = {1.0, 5.0, 2.0, 5.0};
  EXPECT_EQ(schedule_longest_first({0, 1, 2, 3}, costs), (std::vector<int>{1, 3, 2, 0}));
  // All-zero costs (legacy manifests) leave the input order intact.
  EXPECT_EQ(schedule_longest_first({2, 0, 1}, {0.0, 0.0, 0.0}), (std::vector<int>{2, 0, 1}));
  // Indices beyond the cost table count as zero instead of faulting.
  EXPECT_EQ(schedule_longest_first({5, 1}, costs), (std::vector<int>{1, 5}));
}

TEST(Scheduler, ManifestsCarryPerShardCosts) {
  // Campaign manifests price each shard through the injector cost model.
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const faultsim::CampaignPlanner planner("rowhammer", 5, 7);
  const eval::Json manifest = planner.manifest(plan, layout);
  const std::vector<double> costs = manifest_shard_costs(manifest);
  ASSERT_EQ(costs.size(), 5u);
  double sum = 0.0;
  for (double c : costs) {
    EXPECT_GE(c, 0.0);
    sum += c;
  }
  // Rowhammer's model is linear in the flip counters, so the shard costs
  // partition the whole-plan estimate.
  EXPECT_NEAR(sum, manifest.get_number("estimated_seconds", -1.0), 1e-9 * sum);

  // And the per-shard price matches pricing the slice directly.
  const faultsim::InjectorPtr inj = faultsim::make_injector("rowhammer");
  const auto shards = faultsim::CampaignPlanner::shards_from_manifest(manifest);
  for (std::size_t s = 0; s < shards.size(); ++s)
    EXPECT_DOUBLE_EQ(costs[s], faultsim::shard_cost(*inj, shards[s], layout)) << "shard " << s;

  // Sweep manifests carry the S*R work proxy.
  const eval::Json sweep = sweep_manifest("blobs", "blocked", blob_specs());
  const std::vector<double> sweep_costs = manifest_shard_costs(sweep);
  ASSERT_EQ(sweep_costs.size(), blob_specs().size());
  for (double c : sweep_costs) EXPECT_GT(c, 0.0);

  // A manifest without the array degrades to all-zero (index order).
  eval::Json legacy = eval::Json::object();
  legacy.set("shards", eval::Json::number(std::int64_t{3}));
  EXPECT_EQ(manifest_shard_costs(legacy), (std::vector<double>{0.0, 0.0, 0.0}));
}

// ---- corrupt-result quarantine & tmp sweep -----------------------------------

TEST(JobDir, CorruptResultIsQuarantinedAndReRun) {
  Scratch scratch("fsa_dist_quarantine");
  const faultsim::CampaignPlanner planner("laser", 3, 7);
  const JobDir job =
      create_campaign_job(scratch.sub("job"), planner, test_plan(), faultsim::MemoryLayout{});
  RunJobOptions opts;
  opts.workers = 2;
  opts.verbose = false;
  const std::string want = run_job(job, self_exe(), opts).dump(2);

  // Corrupt shard 1's result outside the atomic write path (truncated junk,
  // the way a torn copy or fs corruption would leave it).
  { std::ofstream os(job.result_path(1), std::ios::trunc); os << "{\"kind\": \"camp"; }
  const std::vector<int> quarantined = job.validate_results();
  EXPECT_EQ(quarantined, (std::vector<int>{1}));
  EXPECT_FALSE(job.has_result(1));  // back in the missing set
  EXPECT_TRUE(fs::exists(job.result_path(1) + ".bad"));

  // run_job re-executes exactly the quarantined shard and the reduction
  // comes back byte-identical.
  EXPECT_EQ(run_job(job, self_exe(), opts).dump(2), want);
  EXPECT_TRUE(job.has_result(1));

  // reduce_job also quarantines on its own rather than aborting the job.
  { std::ofstream os(job.result_path(0), std::ios::trunc); os << ""; }
  EXPECT_THROW((void)reduce_job(job), std::runtime_error);  // now reported missing
  EXPECT_TRUE(fs::exists(job.result_path(0) + ".bad"));
  EXPECT_EQ(run_job(job, self_exe(), opts).dump(2), want);
}

TEST(JobDir, OpenSweepsOnlyStaleOrphanedTmpFiles) {
  Scratch scratch("fsa_dist_tmpsweep");
  eval::Json manifest = eval::Json::object();
  manifest.set("shards", eval::Json::number(std::int64_t{1}));
  { (void)JobDir::create(scratch.sub("job"), "campaign", 1, manifest); }

  const fs::path results = fs::path(scratch.sub("job")) / "results";
  const fs::path stale = results / "shard_00000.json.tmp.999";
  const fs::path fresh = results / "shard_00000.json.tmp.1000";
  { std::ofstream os(stale); os << "{}"; }
  { std::ofstream os(fresh); os << "{}"; }
  fs::last_write_time(stale, fs::file_time_type::clock::now() - std::chrono::hours(1));

  const JobDir job = JobDir::open(scratch.sub("job"));
  EXPECT_FALSE(fs::exists(stale));  // orphan from a crashed writer: swept
  EXPECT_TRUE(fs::exists(fresh));   // possibly a live writer: kept
  EXPECT_FALSE(job.has_result(0));  // tmp files never count as results
}

// ---- dist serve: coordinator-free workers ------------------------------------

ServeOptions serve_opts(const std::vector<std::string>& jobs) {
  ServeOptions opts;
  opts.jobs = jobs;
  opts.poll_ms = 20;
  opts.lease_expiry_ms = 5000;
  opts.once = true;
  opts.verbose = false;
  return opts;
}

TEST(Serve, DrainsMultipleJobsAndReduces) {
  Scratch scratch("fsa_dist_serve");
  const faultsim::BitFlipPlan plan = test_plan();
  const faultsim::MemoryLayout layout;
  const JobDir a = create_campaign_job(scratch.sub("a"),
                                       faultsim::CampaignPlanner("rowhammer", 4, 7), plan, layout);
  const JobDir b = create_campaign_job(scratch.sub("b"),
                                       faultsim::CampaignPlanner("laser", 3, 7), plan, layout);

  const ServeReport rep = serve(serve_opts({a.path(), b.path()}), self_exe());
  EXPECT_EQ(rep.shards_run, 7);
  EXPECT_EQ(rep.shards_failed, 0);
  EXPECT_EQ(rep.jobs_reduced, 2);
  EXPECT_FALSE(rep.drained);
  EXPECT_TRUE(a.status().missing.empty());
  EXPECT_TRUE(b.status().missing.empty());

  // The lease-claimed path cannot drift a byte from the coordinator path.
  const JobDir ref = create_campaign_job(scratch.sub("ref"),
                                         faultsim::CampaignPlanner("rowhammer", 4, 7), plan, layout);
  RunJobOptions ref_opts;
  ref_opts.verbose = false;
  EXPECT_EQ(read_json_file(a.reduced_path()).dump(2),
            run_job(ref, self_exe(), ref_opts).dump(2));

  // A second serve over finished jobs finds nothing claimable and exits.
  const ServeReport again = serve(serve_opts({a.path(), b.path()}), self_exe());
  EXPECT_EQ(again.shards_run, 0);
  EXPECT_EQ(again.jobs_reduced, 0);  // reduced.json already present
}

TEST(Serve, RespectsLiveLeasesAndReclaimsStaleOnes) {
  Scratch scratch("fsa_dist_serve_lease");
  const JobDir job = create_campaign_job(
      scratch.sub("job"), faultsim::CampaignPlanner("laser", 2, 7), test_plan(),
      faultsim::MemoryLayout{});

  // Shard 0 is held by a live worker elsewhere: serve must leave it alone
  // (and --once exits rather than waiting for someone else's shard).
  ASSERT_TRUE(try_claim_lease(job.lease_path(0), make_lease("other-worker", lease_now_ms())));
  ServeOptions opts = serve_opts({job.path()});
  opts.lease_expiry_ms = 60000;
  const ServeReport rep = serve(opts, self_exe());
  EXPECT_EQ(rep.shards_run, 1);
  EXPECT_EQ(rep.shards_reclaimed, 0);
  EXPECT_TRUE(job.has_result(1));
  EXPECT_FALSE(job.has_result(0));

  // The holder dies (heartbeat goes stale): the next worker reclaims the
  // lease and finishes the job.
  write_json_atomic(job.lease_path(0), make_lease("other-worker", lease_now_ms() - 120000).to_json());
  opts.lease_expiry_ms = 1000;
  const ServeReport rescue = serve(opts, self_exe());
  EXPECT_EQ(rescue.shards_run, 1);
  EXPECT_GE(rescue.shards_reclaimed, 1);
  EXPECT_EQ(rescue.jobs_reduced, 1);
  EXPECT_TRUE(job.status().missing.empty());
  EXPECT_FALSE(read_lease(job.lease_path(0)).has_value());  // released after the run
}

TEST(Serve, DrainsLongestShardFirstAndHonorsMaxShards) {
  Scratch scratch("fsa_dist_serve_order");
  const JobDir job = create_campaign_job(
      scratch.sub("job"), faultsim::CampaignPlanner("rowhammer", 3, 7), test_plan(),
      faultsim::MemoryLayout{});
  // Doctor the manifest's cost table so shard 1 is the clear tail.
  eval::Json manifest = job.manifest();
  eval::Json costs = eval::Json::array();
  for (double c : {1.0, 50.0, 2.0}) costs.push_back(eval::Json::number(c));
  manifest.set("shard_costs", std::move(costs));
  write_json_atomic(job.manifest_path(), manifest);

  ServeOptions opts = serve_opts({job.path()});
  opts.max_shards = 1;
  const ServeReport rep = serve(opts, self_exe());
  EXPECT_EQ(rep.shards_run, 1);
  EXPECT_TRUE(job.has_result(1));  // the most expensive shard went first
  EXPECT_FALSE(job.has_result(0));
  EXPECT_FALSE(job.has_result(2));
}

TEST(Serve, GivesUpOnPoisonShardsAfterLocalFailures) {
  Scratch scratch("fsa_dist_serve_poison");
  const JobDir job = create_campaign_job(
      scratch.sub("job"), faultsim::CampaignPlanner("laser", 2, 7), test_plan(),
      faultsim::MemoryLayout{});
  ServeOptions opts = serve_opts({job.path()});
  opts.poll_ms = 10;
  opts.max_shard_failures = 2;
  opts.extra_argv = {"--fail-always"};
  const ServeReport rep = serve(opts, self_exe());  // must terminate, not spin
  EXPECT_EQ(rep.shards_run, 0);
  EXPECT_EQ(rep.shards_failed, 4);  // 2 shards x 2 local attempts
  EXPECT_FALSE(job.has_result(0));
  // Every failed run released its lease — the shards stay claimable for a
  // (healthier) worker elsewhere.
  EXPECT_FALSE(read_lease(job.lease_path(0)).has_value());
  EXPECT_FALSE(read_lease(job.lease_path(1)).has_value());
}

TEST(Serve, SigtermDrainsInFlightShardAndReleasesLeases) {
  Scratch scratch("fsa_dist_serve_drain");
  const JobDir job = create_campaign_job(
      scratch.sub("job"), faultsim::CampaignPlanner("laser", 3, 7), test_plan(),
      faultsim::MemoryLayout{});

  // A daemon-mode serve child whose shard workers are slow enough to be
  // caught in flight.
  const pid_t pid = spawn_worker({self_exe(), "serve-mode", "--job", job.path(), "--poll-ms",
                                  "50", "--lease-expiry-ms", "60000", "--sleep-ms", "1500"},
                                 scratch.sub("serve.log"));
  // Wait for it to claim a shard...
  bool claimed = false;
  for (int i = 0; i < 400 && !claimed; ++i) {
    for (int s = 0; s < job.shards(); ++s) claimed = claimed || read_lease(job.lease_path(s));
    if (!claimed) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(claimed) << "serve child never claimed a shard";

  // ...then ask for a graceful drain: the in-flight shard must FINISH (its
  // result lands), every lease must be released, and nothing new claimed.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(decode_exit_status(status), 0);

  int results = 0;
  for (int s = 0; s < job.shards(); ++s) {
    if (!job.has_result(s)) continue;
    ++results;
    EXPECT_NO_THROW((void)job.result(s)) << "shard " << s;  // complete, not torn
    EXPECT_FALSE(read_lease(job.lease_path(s)).has_value()) << "shard " << s;
  }
  EXPECT_GE(results, 1);  // the claimed shard was finished, never abandoned
  for (int s = 0; s < job.shards(); ++s)
    EXPECT_FALSE(read_lease(job.lease_path(s)).has_value()) << "abandoned lease on shard " << s;
}

TEST(Serve, RejectsUnusableOptions) {
  EXPECT_THROW((void)serve(ServeOptions{}, "exe"), std::invalid_argument);  // no jobs
  ServeOptions bad;
  bad.jobs = {"somewhere"};
  bad.poll_ms = 0;
  EXPECT_THROW((void)serve(bad, "exe"), std::invalid_argument);
  bad.poll_ms = 100;
  bad.heartbeat_ms = 500;
  bad.lease_expiry_ms = 500;  // heartbeat must be shorter than expiry
  EXPECT_THROW((void)serve(bad, "exe"), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::dist

// ---- worker mode -------------------------------------------------------------
//
// WorkerPool tests spawn THIS binary with the fsa_cli shard-worker
// contract (`<exe> campaign --run-shard M --shard I --out F`). Detect that
// argv shape before gtest sees it and run the worker entry instead.
// `--fail-once <marker>` / `--fail-always` inject deterministic crashes
// for the retry tests.
namespace {

int worker_main(int argc, char** argv) {
  using namespace fsa;
  try {
    const eval::Args args = eval::Args::parse(argc, argv);
    if (args.command() != "campaign") {
      std::fprintf(stderr, "dist_test worker: unsupported kind %s\n", args.command().c_str());
      return 2;
    }
    if (args.has_flag("fail-always")) {
      std::fprintf(stderr, "dist_test worker: injected permanent failure\n");
      return 3;
    }
    if (const std::string marker = args.get("fail-once", ""); !marker.empty()) {
      // First process to claim the marker crashes; O_EXCL makes the claim
      // atomic across concurrent workers.
      if (!std::filesystem::exists(marker)) {
        std::ofstream os(marker);
        os << "crashed\n";
        std::fprintf(stderr, "dist_test worker: injected one-time crash\n");
        return 3;
      }
    }
    // Artificial shard duration, so drain/kill tests can reliably catch a
    // worker in flight.
    if (const auto sleep_ms = args.get_int("sleep-ms", 0); sleep_ms > 0)
      ::usleep(static_cast<useconds_t>(sleep_ms) * 1000);
    const eval::Json manifest = dist::read_json_file(args.get("run-shard", ""));
    const auto shard = static_cast<int>(args.get_int("shard", -1));
    dist::write_json_atomic(args.get("out", ""), dist::run_campaign_shard(manifest, shard));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_test worker: %s\n", e.what());
    return 2;
  }
}

/// `<exe> serve-mode --job dirs [--poll-ms N] [--lease-expiry-ms N]
/// [--sleep-ms N]`: run a daemon-mode serve() in a child process, with
/// --sleep-ms forwarded to every shard worker. The drain test SIGTERMs
/// this process and inspects what it left behind.
int serve_mode_main(int argc, char** argv) {
  using namespace fsa;
  try {
    const eval::Args args = eval::Args::parse(argc, argv);
    dist::ServeOptions opts;
    opts.jobs = args.get_list("job", "");
    opts.poll_ms = static_cast<int>(args.get_int("poll-ms", 50));
    opts.lease_expiry_ms = static_cast<int>(args.get_int("lease-expiry-ms", 60000));
    opts.verbose = true;  // the log is this process's flight recorder
    if (const std::string sleep_ms = args.get("sleep-ms", ""); !sleep_ms.empty())
      opts.extra_argv = {"--sleep-ms", sleep_ms};
    const dist::ServeReport rep = dist::serve(opts, dist::self_exe(argv[0]));
    return rep.shards_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_test serve-mode: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--run-shard") return worker_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "serve-mode") return serve_mode_main(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
