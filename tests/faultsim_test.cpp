// faultsim_test.cpp — memory layout, bit-flip planning, injector cost models.
#include <gtest/gtest.h>

#include "faultsim/campaign.h"
#include "faultsim/injectors.h"
#include "tensor/ops.h"

namespace fsa::faultsim {
namespace {

TEST(MemoryLayout, AddressesAreContiguousFloats) {
  MemoryLayout layout;
  EXPECT_EQ(layout.address_of(0), layout.base_address);
  EXPECT_EQ(layout.address_of(1), layout.base_address + 4);
  EXPECT_EQ(layout.address_of(100), layout.base_address + 400);
  EXPECT_THROW(layout.address_of(-1), std::invalid_argument);
}

TEST(MemoryLayout, RowBoundaries) {
  MemoryLayout layout;
  layout.base_address = 0;
  layout.row_bytes = 16;  // 4 floats per row
  EXPECT_EQ(layout.row_of(0), 0u);
  EXPECT_EQ(layout.row_of(3), 0u);
  EXPECT_EQ(layout.row_of(4), 1u);
}

TEST(FloatBits, RoundTripAndKnownPatterns) {
  EXPECT_EQ(float_bits(0.0f), 0u);
  EXPECT_EQ(float_bits(1.0f), 0x3F800000u);
  EXPECT_EQ(float_bits(-2.0f), 0xC0000000u);
  for (float v : {0.5f, -3.25f, 1e-10f, 1e10f}) EXPECT_EQ(bits_to_float(float_bits(v)), v);
}

TEST(BitFlipPlan, ZeroDeltaNeedsNothing) {
  const Tensor theta0 = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  const Tensor delta = Tensor::zeros(Shape({3}));
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  EXPECT_EQ(plan.params_modified, 0);
  EXPECT_EQ(plan.total_bit_flips, 0);
  EXPECT_EQ(plan.rows_touched, 0);
}

TEST(BitFlipPlan, SignFlipIsOneBit) {
  const Tensor theta0 = Tensor::from_vector({1.5f});
  const Tensor delta = Tensor::from_vector({-3.0f});  // 1.5 → −1.5
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  ASSERT_EQ(plan.params_modified, 1);
  EXPECT_EQ(plan.total_bit_flips, 1);
  EXPECT_EQ(plan.sign_bit_flips, 1);
  EXPECT_EQ(plan.exponent_bit_flips, 0);
  EXPECT_EQ(plan.mantissa_bit_flips, 0);
}

TEST(BitFlipPlan, DoublingTwoIsOneExponentBit) {
  // 2.0 (exp 128 = 1000'0000) → 4.0 (exp 129 = 1000'0001): one bit.
  const Tensor theta0 = Tensor::from_vector({2.0f});
  const Tensor delta = Tensor::from_vector({2.0f});
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  EXPECT_EQ(plan.total_bit_flips, 1);
  EXPECT_EQ(plan.exponent_bit_flips, 1);
}

TEST(BitFlipPlan, DoublingOneCrossesExponentCarry) {
  // 1.0 (exp 127 = 0111'1111) → 2.0 (exp 128 = 1000'0000): all 8 bits flip —
  // the carry effect that makes some "small" float changes expensive.
  const Tensor theta0 = Tensor::from_vector({1.0f});
  const Tensor delta = Tensor::from_vector({1.0f});
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  EXPECT_EQ(plan.exponent_bit_flips, 8);
}

TEST(BitFlipPlan, CountsMatchPopcount) {
  Rng rng(1);
  const Tensor theta0 = Tensor::randn(Shape({128}), rng);
  Tensor delta = Tensor::zeros(Shape({128}));
  Rng drng(2);
  for (std::size_t i = 0; i < delta.size(); i += 3)
    delta[i] = static_cast<float>(drng.normal(0.0, 0.5));
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  std::int64_t sum = 0;
  for (const auto& f : plan.flips) {
    EXPECT_EQ(f.bit_count, std::popcount(f.xor_mask));
    EXPECT_EQ(f.bit_count,
              plan.sign_bit_flips == 0 ? f.bit_count : f.bit_count);  // structural sanity
    sum += f.bit_count;
  }
  EXPECT_EQ(sum, plan.total_bit_flips);
  EXPECT_EQ(plan.sign_bit_flips + plan.exponent_bit_flips + plan.mantissa_bit_flips,
            plan.total_bit_flips);
  EXPECT_LE(plan.params_modified, ops::l0_norm(delta));
}

TEST(BitFlipPlan, TinyDeltaThatDoesNotChangeStoredFloatIsDropped) {
  const Tensor theta0 = Tensor::from_vector({1.0e8f});
  const Tensor delta = Tensor::from_vector({1.0f});  // below float32 resolution at 1e8
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, MemoryLayout{});
  EXPECT_EQ(plan.params_modified, 0);
}

TEST(BitFlipPlan, RowsTouchedRespectsLayout) {
  MemoryLayout layout;
  layout.base_address = 0;
  layout.row_bytes = 8;  // 2 floats per row
  const Tensor theta0 = Tensor::zeros(Shape({6}));
  Tensor delta = Tensor::zeros(Shape({6}));
  delta[0] = 1.0f;  // row 0
  delta[1] = 1.0f;  // row 0
  delta[4] = 1.0f;  // row 2
  const BitFlipPlan plan = plan_bit_flips(theta0, delta, layout);
  EXPECT_EQ(plan.rows_touched, 2);
}

TEST(BitFlipPlan, ShapeMismatchThrows) {
  EXPECT_THROW(plan_bit_flips(Tensor(Shape({2})), Tensor(Shape({3})), MemoryLayout{}),
               std::invalid_argument);
}

BitFlipPlan small_plan(std::int64_t params, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor theta0 = Tensor::randn(Shape({params}), rng);
  Tensor delta = Tensor::zeros(Shape({params}));
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] = static_cast<float>(rng.normal(0.0, 0.3));
  return plan_bit_flips(theta0, delta, MemoryLayout{});
}

TEST(RowHammer, DeterministicGivenSeed) {
  const BitFlipPlan plan = small_plan(32, 3);
  const CampaignRunner runner(/*shards=*/1, /*campaign_seed=*/7);
  const RowHammerInjector injector;
  const CampaignReport a = runner.run(injector, plan, MemoryLayout{});
  const CampaignReport b = runner.run(injector, plan, MemoryLayout{});
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.massages, b.massages);
}

TEST(RowHammer, TimeGrowsWithBits) {
  const BitFlipPlan small = small_plan(8, 4);
  const BitFlipPlan large = small_plan(256, 4);
  const CampaignRunner runner(1, 9);
  const RowHammerInjector injector;
  const CampaignReport a = runner.run(injector, small, MemoryLayout{});
  const CampaignReport b = runner.run(injector, large, MemoryLayout{});
  EXPECT_LT(a.seconds, b.seconds);
}

TEST(RowHammer, PerfectInjectorNeedsNoMassaging) {
  const BitFlipPlan plan = small_plan(16, 5);
  RowHammerParams params;
  params.vulnerable_frac = 1.0;
  params.flip_success_prob = 1.0;
  const CampaignRunner runner(1, 11);
  const CampaignReport rep = runner.run(RowHammerInjector(params), plan, MemoryLayout{});
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.massages, 0);
  EXPECT_EQ(rep.bits_flipped, plan.total_bit_flips);
  EXPECT_EQ(rep.attempts, plan.total_bit_flips);
}

TEST(RowHammer, HopelessInjectorFails) {
  const BitFlipPlan plan = small_plan(4, 6);
  RowHammerParams params;
  params.flip_success_prob = 0.0;
  params.max_attempts_per_bit = 3;
  const CampaignRunner runner(1, 12);
  const CampaignReport rep = runner.run(RowHammerInjector(params), plan, MemoryLayout{});
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.bits_flipped, 0);
}

TEST(Laser, CostLinearInTargets) {
  const BitFlipPlan one = small_plan(2, 7);
  const BitFlipPlan many = small_plan(64, 7);
  const CampaignRunner runner(1, 7);
  const LaserInjector injector;
  const CampaignReport a = runner.run(injector, one, MemoryLayout{});
  const CampaignReport b = runner.run(injector, many, MemoryLayout{});
  EXPECT_TRUE(a.success);
  EXPECT_TRUE(b.success);
  EXPECT_LT(a.seconds, b.seconds);
  EXPECT_EQ(b.bits_flipped, many.total_bit_flips);
  // The laser model is deterministic: simulation equals the estimate.
  EXPECT_DOUBLE_EQ(b.seconds, injector.plan_cost(many, MemoryLayout{}));
}

TEST(Laser, EmptyPlanIsFree) {
  BitFlipPlan empty;
  const CampaignRunner runner(1, 7);
  const CampaignReport rep = runner.run(LaserInjector(), empty, MemoryLayout{});
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.seconds, 0.0);
}

TEST(ClockGlitch, WiderPatternsAreHarder) {
  const ClockGlitchInjector injector;
  EXPECT_GT(injector.hit_prob(1), injector.hit_prob(2));
  EXPECT_GT(injector.hit_prob(2), injector.hit_prob(8));
  EXPECT_EQ(injector.hit_prob(0), 1.0);
}

TEST(ClockGlitch, PerfectGlitcherLandsEveryWordFirstTry) {
  const BitFlipPlan plan = small_plan(16, 8);
  ClockGlitchParams params;
  params.success_prob_one_bit = 1.0;
  params.per_bit_decay = 1.0;
  const CampaignRunner runner(1, 13);
  const CampaignReport rep = runner.run(ClockGlitchInjector(params), plan, MemoryLayout{});
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.attempts, rep.params_targeted);  // one glitch per word
  EXPECT_EQ(rep.bits_flipped, plan.total_bit_flips);
}

}  // namespace
}  // namespace fsa::faultsim
