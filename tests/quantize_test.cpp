// quantize_test.cpp — precision-aware δ realization.
#include <gtest/gtest.h>

#include <cmath>

#include "faultsim/quantize.h"
#include "tensor/ops.h"

namespace fsa::faultsim {
namespace {

TEST(Quantize, Float32IsIdentity) {
  for (float v : {0.0f, 1.5f, -3.25f, 1e-20f, 1e20f})
    EXPECT_EQ(quantize_value(v, StorageFormat::kFloat32), v);
}

TEST(Quantize, Bfloat16KeepsCoarseValuesExactly) {
  // Values with ≤7 mantissa bits are representable in bfloat16.
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 1.5f, 96.0f})
    EXPECT_EQ(quantize_value(v, StorageFormat::kBfloat16), v);
}

TEST(Quantize, Bfloat16RoundsFineMantissa) {
  const float v = 1.00001f;  // needs more than 7 mantissa bits
  const float q = quantize_value(v, StorageFormat::kBfloat16);
  EXPECT_NE(q, v);
  EXPECT_NEAR(q, v, 0.01f);  // relative error ≤ 2^-8
}

TEST(Quantize, Float16SaturatesAtMax) {
  EXPECT_LE(quantize_value(1e6f, StorageFormat::kFloat16), 65504.0f);
  EXPECT_GE(quantize_value(-1e6f, StorageFormat::kFloat16), -65504.0f);
}

TEST(Quantize, Float16FlushesTinyToZero) {
  EXPECT_EQ(quantize_value(1e-9f, StorageFormat::kFloat16), 0.0f);
}

TEST(Quantize, Float16RepresentableValuesExact) {
  for (float v : {1.0f, -0.5f, 2048.0f, 0.125f})
    EXPECT_EQ(quantize_value(v, StorageFormat::kFloat16), v);
}

TEST(Quantize, Int8GridIsUniform) {
  const float scale = 0.1f;
  EXPECT_FLOAT_EQ(quantize_value(0.34f, StorageFormat::kInt8, scale), 0.3f);
  EXPECT_FLOAT_EQ(quantize_value(-0.26f, StorageFormat::kInt8, scale), -0.3f);
  // Clamp at ±127·scale.
  EXPECT_FLOAT_EQ(quantize_value(100.0f, StorageFormat::kInt8, scale), 12.7f);
}

TEST(Quantize, Int8ScaleFromMaxAbs) {
  const Tensor t = Tensor::from_vector({0.1f, -1.27f, 0.5f});
  EXPECT_FLOAT_EQ(int8_scale(t), 1.27f / 127.0f);
  EXPECT_FLOAT_EQ(int8_scale(Tensor::zeros(Shape({3}))), 1.0f);
}

TEST(RealizeInFormat, Float32PreservesDelta) {
  Rng rng(1);
  const Tensor theta0 = Tensor::randn(Shape({64}), rng);
  const Tensor delta = Tensor::randn(Shape({64}), rng);
  const Tensor real = realize_in_format(theta0, delta, StorageFormat::kFloat32);
  // (θ0+δ)−θ0 re-rounds through float32, so equality holds only to one ulp
  // of the addition — that IS the realized modification.
  for (std::size_t i = 0; i < real.size(); ++i)
    EXPECT_NEAR(real[i], delta[i], 1e-6f + 1e-6f * std::fabs(theta0[i]));
}

TEST(RealizeInFormat, TinyModificationsAbsorbedByCoarseGrids) {
  const Tensor theta0 = Tensor::from_vector({1.0f, 1.0f, 1.0f});
  const Tensor delta = Tensor::from_vector({1e-4f, 0.5f, 0.0f});
  const Tensor real = realize_in_format(theta0, delta, StorageFormat::kBfloat16);
  EXPECT_EQ(real[0], 0.0f);       // 1e-4 below bf16 resolution at 1.0
  EXPECT_NEAR(real[1], 0.5f, 1e-2f);
  EXPECT_EQ(real[2], 0.0f);
  EXPECT_LT(ops::l0_norm(real), ops::l0_norm(delta) + 1);
}

TEST(RealizeInFormat, RealizedDeltaLandsOnGrid) {
  Rng rng(2);
  const Tensor theta0 = Tensor::randn(Shape({128}), rng);
  const Tensor delta = Tensor::randn(Shape({128}), rng);
  const Tensor real = realize_in_format(theta0, delta, StorageFormat::kInt8);
  const float scale = int8_scale(theta0);
  for (std::size_t i = 0; i < real.size(); ++i) {
    const float q = real[i] / scale;
    EXPECT_NEAR(q, std::nearbyint(q), 1e-3f) << "entry " << i << " is off-grid";
  }
}

TEST(RealizeInFormat, ShapeMismatchThrows) {
  EXPECT_THROW(realize_in_format(Tensor(Shape({2})), Tensor(Shape({3})),
                                 StorageFormat::kBfloat16),
               std::invalid_argument);
}

TEST(FormatName, AllNamed) {
  EXPECT_STREQ(format_name(StorageFormat::kFloat32), "float32");
  EXPECT_STREQ(format_name(StorageFormat::kBfloat16), "bfloat16");
  EXPECT_STREQ(format_name(StorageFormat::kFloat16), "float16");
  EXPECT_STREQ(format_name(StorageFormat::kInt8), "int8");
}

}  // namespace
}  // namespace fsa::faultsim
