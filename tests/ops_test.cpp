// ops_test.cpp — numeric kernels: GEMM identities, reductions, softmax.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace fsa {
namespace {

Tensor make_matrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(Shape({rows, cols}), rng);
}

TEST(Matmul, KnownSmallProduct) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}).reshape(Shape({2, 2}));
  const Tensor b = Tensor::from_vector({5, 6, 7, 8}).reshape(Shape({2, 2}));
  const Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor(Shape({2, 3})), Tensor(Shape({4, 2}))), std::invalid_argument);
}

TEST(Matmul, IdentityIsNeutral) {
  const Tensor a = make_matrix(5, 5, 1);
  Tensor eye(Shape({5, 5}));
  for (std::int64_t i = 0; i < 5; ++i) eye.at2(i, i) = 1.0f;
  const Tensor c = ops::matmul(a, eye);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c[i], a[i], 1e-6f);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  const Tensor a = make_matrix(7, 4, 2);
  const Tensor b = make_matrix(7, 5, 3);
  const Tensor expect = ops::matmul(ops::transpose2d(a), b);
  const Tensor got = ops::matmul_tn(a, b);
  ASSERT_EQ(got.shape(), expect.shape());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  const Tensor a = make_matrix(6, 4, 4);
  const Tensor b = make_matrix(5, 4, 5);
  const Tensor expect = ops::matmul(a, ops::transpose2d(b));
  const Tensor got = ops::matmul_nt(a, b);
  ASSERT_EQ(got.shape(), expect.shape());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(Transpose, RoundTrip) {
  const Tensor a = make_matrix(3, 7, 6);
  const Tensor tt = ops::transpose2d(ops::transpose2d(a));
  EXPECT_EQ(tt, a);
}

TEST(Elementwise, AddSubMulScale) {
  const Tensor a = Tensor::from_vector({1, -2, 3});
  const Tensor b = Tensor::from_vector({4, 5, -6});
  EXPECT_FLOAT_EQ(ops::add(a, b)[0], 5.0f);
  EXPECT_FLOAT_EQ(ops::sub(a, b)[1], -7.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b)[2], -18.0f);
  EXPECT_FLOAT_EQ(ops::scale(a, -1.0f)[0], -1.0f);
}

TEST(Relu, ClampsNegatives) {
  const Tensor a = Tensor::from_vector({-1, 0, 2});
  const Tensor r = ops::relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[1], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
  const Tensor m = ops::relu_mask(a);
  EXPECT_FLOAT_EQ(m[0], 0.0f);
  EXPECT_FLOAT_EQ(m[2], 1.0f);
}

TEST(AddRowBias, BroadcastsOverRows) {
  Tensor m = Tensor::from_vector({1, 2, 3, 4}).reshape(Shape({2, 2}));
  const Tensor bias = Tensor::from_vector({10, 20});
  ops::add_row_bias(m, bias);
  EXPECT_FLOAT_EQ(m.at2(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m.at2(1, 1), 24.0f);
}

TEST(Reductions, SumMeanMaxAbs) {
  const Tensor a = Tensor::from_vector({1, -5, 4});
  EXPECT_DOUBLE_EQ(ops::sum(a), 0.0);
  EXPECT_DOUBLE_EQ(ops::mean(a), 0.0);
  EXPECT_FLOAT_EQ(ops::max_abs(a), 5.0f);
}

TEST(Argmax, FirstOnTies) {
  const Tensor a = Tensor::from_vector({1, 3, 3, 2});
  EXPECT_EQ(ops::argmax(a), 1);
}

TEST(ArgmaxRows, PerRow) {
  const Tensor a = Tensor::from_vector({1, 9, 2, 8, 0, 3}).reshape(Shape({2, 3}));
  const auto idx = ops::argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Norms, L0CountsAboveTolerance) {
  const Tensor a = Tensor::from_vector({0.0f, 1e-9f, 0.5f, -2.0f});
  EXPECT_EQ(ops::l0_norm(a), 2);
  EXPECT_EQ(ops::l0_norm(a, 1.0f), 1);
}

TEST(Norms, L2MatchesHand) {
  const Tensor a = Tensor::from_vector({3, 4});
  EXPECT_NEAR(ops::l2_norm(a), 5.0, 1e-9);
}

TEST(Dot, MatchesHand) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_DOUBLE_EQ(ops::dot(a, b), 32.0);
}

TEST(Softmax, RowsSumToOne) {
  const Tensor logits = make_matrix(4, 10, 9);
  const Tensor p = ops::softmax_rows(logits);
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 10; ++c) s += p.at2(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor logits = Tensor::from_vector({1000.0f, 1001.0f}).reshape(Shape({1, 2}));
  const Tensor p = ops::softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
  Tensor logits(Shape({1, 3}));
  logits.at2(0, 1) = 100.0f;
  EXPECT_NEAR(ops::cross_entropy(logits, {1}), 0.0, 1e-5);
}

TEST(CrossEntropy, GradSumsToZeroPerRow) {
  const Tensor logits = make_matrix(3, 5, 11);
  const Tensor g = ops::cross_entropy_grad(logits, {0, 1, 2});
  for (std::int64_t r = 0; r < 3; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 5; ++c) s += g.at2(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, GradMatchesFiniteDifference) {
  Tensor logits = make_matrix(2, 4, 13);
  const std::vector<std::int64_t> labels = {1, 3};
  const Tensor g = ops::cross_entropy_grad(logits, labels);
  // Loss is mean over rows, so grad entries are (p − onehot)/N.
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[static_cast<std::size_t>(i)] += static_cast<float>(eps);
    minus[static_cast<std::size_t>(i)] -= static_cast<float>(eps);
    const double fd =
        (ops::cross_entropy(plus, labels) - ops::cross_entropy(minus, labels)) / (2 * eps);
    EXPECT_NEAR(g[static_cast<std::size_t>(i)], fd, 5e-3);
  }
}

TEST(MatmulAcc, SkipsZeroRowsCorrectly) {
  // The GEMM has a fast path for zero entries of A; verify it is exact.
  Tensor a(Shape({2, 3}));
  a.at2(0, 1) = 2.0f;  // row 0 has one nonzero; row 1 all zero
  const Tensor b = make_matrix(3, 4, 17);
  const Tensor c = ops::matmul(a, b);
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(c.at2(0, j), 2.0f * b.at2(1, j), 1e-6f);
    EXPECT_EQ(c.at2(1, j), 0.0f);
  }
}

}  // namespace
}  // namespace fsa
