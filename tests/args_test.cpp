// args_test.cpp — the CLI argument parser.
#include <gtest/gtest.h>

#include "eval/args.h"

namespace fsa::eval {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyIsValid) {
  const Args a = parse({});
  EXPECT_EQ(a.command(), "");
  EXPECT_EQ(a.get("x", "d"), "d");
}

TEST(Args, SubcommandAndValues) {
  const Args a = parse({"attack", "--dataset", "digits", "--s", "4"});
  EXPECT_EQ(a.command(), "attack");
  EXPECT_EQ(a.get("dataset", ""), "digits");
  EXPECT_EQ(a.get_int("s", 0), 4);
}

TEST(Args, FlagsWithoutValues) {
  const Args a = parse({"run", "--verbose", "--n", "3"});
  EXPECT_TRUE(a.has_flag("verbose"));
  EXPECT_FALSE(a.has_flag("quiet"));
  EXPECT_EQ(a.get_int("n", 0), 3);
}

TEST(Args, TrailingFlag) {
  const Args a = parse({"--dry-run"});
  EXPECT_TRUE(a.has_flag("dry-run"));
  EXPECT_EQ(a.command(), "");
}

TEST(Args, DoublesParsed) {
  const Args a = parse({"--rho", "12.5"});
  EXPECT_DOUBLE_EQ(a.get_double("rho", 0.0), 12.5);
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 0.25), 0.25);
}

TEST(Args, UnexpectedPositionalThrows) {
  EXPECT_THROW(parse({"cmd", "stray"}), std::invalid_argument);
}

TEST(Args, ExpectOnlyCatchesTypos) {
  const Args a = parse({"attack", "--datset", "digits"});
  EXPECT_THROW(a.expect_only({"dataset", "s", "r"}), std::invalid_argument);
  const Args good = parse({"attack", "--dataset", "digits"});
  EXPECT_NO_THROW(good.expect_only({"dataset"}));
}

TEST(Args, NegativeNumberValuesAreRejectedLoudly) {
  // Documented limitation: values starting with '-' are not supported —
  // the parser rejects them instead of silently misreading the command.
  EXPECT_THROW(parse({"--x", "-3"}), std::invalid_argument);
}

TEST(Args, SplitCsv) {
  EXPECT_EQ(split_csv("fc1,fc2,fc3"), (std::vector<std::string>{"fc1", "fc2", "fc3"}));
  EXPECT_EQ(split_csv("fc3"), (std::vector<std::string>{"fc3"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{}));
  // Empty segments are dropped — ",fc3," parses like "fc3".
  EXPECT_EQ(split_csv(",fc3,"), (std::vector<std::string>{"fc3"}));
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(Args, CsvValuedOptions) {
  const Args a = parse({"sweep", "--s-list", "1,4,16", "--seeds", "7,8"});
  EXPECT_EQ(a.get_int_list("s-list", "0"), (std::vector<std::int64_t>{1, 4, 16}));
  EXPECT_EQ(a.get_u64_list("seeds", "1"), (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(a.get_int_list("r-list", "50,100"), (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(a.get_list("layers", "fc3"), (std::vector<std::string>{"fc3"}));
}

}  // namespace
}  // namespace fsa::eval
