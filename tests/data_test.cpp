// data_test.cpp — datasets, loaders, and the synthetic generators.
#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.h"
#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "tensor/ops.h"

namespace fsa::data {
namespace {

TEST(Dataset, ValidatesConstruction) {
  Tensor images(Shape({2, 1, 2, 2}));
  EXPECT_THROW(Dataset(images, {0}, 2), std::invalid_argument);        // count mismatch
  EXPECT_THROW(Dataset(images, {0, 5}, 2), std::invalid_argument);     // label range
  EXPECT_THROW(Dataset(Tensor(Shape({2, 4})), {0, 1}, 2), std::invalid_argument);  // rank
}

TEST(Dataset, SubsetReordersAndCopies) {
  Tensor images(Shape({3, 1, 1, 1}));
  images[0] = 10.0f;
  images[1] = 20.0f;
  images[2] = 30.0f;
  Dataset ds(images, {0, 1, 2}, 3);
  const Dataset sub = ds.subset({2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.images()[0], 30.0f);
  EXPECT_EQ(sub.images()[1], 10.0f);
  EXPECT_EQ(sub.label(0), 2);
  EXPECT_EQ(sub.label(1), 0);
}

TEST(Dataset, HeadReturnsPrefixBatch) {
  Tensor images(Shape({3, 1, 1, 1}));
  Dataset ds(images, {0, 1, 2}, 3);
  const Batch b = ds.head(2);
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.labels[1], 1);
  EXPECT_THROW(ds.head(4), std::out_of_range);
}

TEST(DataLoader, CoversEveryImageOncePerEpoch) {
  Tensor images(Shape({10, 1, 1, 1}));
  for (std::int64_t i = 0; i < 10; ++i) images[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Dataset ds(images, std::vector<std::int64_t>(10, 0), 1);
  DataLoader loader(ds, 3, /*shuffle=*/true, Rng(1));
  loader.start_epoch();
  std::multiset<float> seen;
  Batch b;
  std::int64_t batches = 0;
  while (loader.next(b)) {
    ++batches;
    for (std::int64_t i = 0; i < b.size(); ++i) seen.insert(b.images[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(batches, loader.batches_per_epoch());
  EXPECT_EQ(seen.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(static_cast<float>(i)), 1u);
}

TEST(DataLoader, ShuffleChangesOrderDeterministically) {
  Tensor images(Shape({8, 1, 1, 1}));
  for (std::int64_t i = 0; i < 8; ++i) images[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Dataset ds(images, std::vector<std::int64_t>(8, 0), 1);
  auto first_batch = [&](std::uint64_t seed) {
    DataLoader loader(ds, 8, true, Rng(seed));
    loader.start_epoch();
    Batch b;
    loader.next(b);
    return b.images;
  };
  EXPECT_EQ(first_batch(1), first_batch(1));  // deterministic
  EXPECT_NE(first_batch(1), first_batch(2));  // seed-dependent
}

TEST(SynthDigits, ShapesLabelsAndDeterminism) {
  SynthDigitsConfig cfg;
  cfg.count = 64;
  cfg.seed = 9;
  const Dataset a = make_synth_digits(cfg);
  const Dataset b = make_synth_digits(cfg);
  EXPECT_EQ(a.images().shape(), Shape({64, 1, 28, 28}));
  EXPECT_EQ(a.num_classes(), 10);
  EXPECT_EQ(a.images(), b.images());
  EXPECT_EQ(a.labels(), b.labels());
  cfg.seed = 10;
  const Dataset c = make_synth_digits(cfg);
  EXPECT_NE(a.images(), c.images());
}

TEST(SynthDigits, PixelsInUnitRange) {
  SynthDigitsConfig cfg;
  cfg.count = 32;
  const Dataset ds = make_synth_digits(cfg);
  for (float v : ds.images().span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SynthDigits, AllTenClassesAppear) {
  SynthDigitsConfig cfg;
  cfg.count = 400;
  const Dataset ds = make_synth_digits(cfg);
  std::set<std::int64_t> classes(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SynthDigits, GlyphsAreBrighterThanBackground) {
  // A digit image must contain a meaningful number of lit pixels.
  SynthDigitsConfig cfg;
  cfg.count = 16;
  const Dataset ds = make_synth_digits(cfg);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const Tensor img = ds.image(i);
    std::int64_t lit = 0;
    for (float v : img.span())
      if (v > 0.5f) ++lit;
    EXPECT_GT(lit, 15) << "image " << i << " looks empty";
    EXPECT_LT(lit, 28 * 28 / 2) << "image " << i << " looks saturated";
  }
}

TEST(SynthDigits, DistinctDigitsProduceDistinctGlyphs) {
  // Same rng state, different digit → visibly different images.
  SynthDigitsConfig cfg;
  cfg.noise_stddev = 0.0;
  cfg.distractor_speckles = 0;
  cfg.max_rotation = 0.0;
  cfg.max_translate = 0.0;
  cfg.min_scale = cfg.max_scale = 1.0;
  Rng r1(5), r2(5);
  const Tensor one = render_digit(1, r1, cfg);
  const Tensor eight = render_digit(8, r2, cfg);
  double diff = 0.0;
  for (std::size_t i = 0; i < one.size(); ++i) diff += std::fabs(one[i] - eight[i]);
  EXPECT_GT(diff, 20.0);
}

TEST(SynthObjects, ShapesLabelsAndDeterminism) {
  SynthObjectsConfig cfg;
  cfg.count = 48;
  cfg.seed = 21;
  const Dataset a = make_synth_objects(cfg);
  const Dataset b = make_synth_objects(cfg);
  EXPECT_EQ(a.images().shape(), Shape({48, 3, 32, 32}));
  EXPECT_EQ(a.images(), b.images());
  EXPECT_EQ(a.num_classes(), 10);
}

TEST(SynthObjects, PixelsInUnitRange) {
  SynthObjectsConfig cfg;
  cfg.count = 16;
  const Dataset ds = make_synth_objects(cfg);
  for (float v : ds.images().span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SynthObjects, AllTenClassesAppear) {
  SynthObjectsConfig cfg;
  cfg.count = 400;
  const Dataset ds = make_synth_objects(cfg);
  std::set<std::int64_t> classes(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SynthObjects, RenderAllClassesWithoutNoiseDiffer) {
  SynthObjectsConfig cfg;
  cfg.noise_stddev = 0.0;
  cfg.occlusion_prob = 0.0;
  cfg.color_jitter = 0.0;
  cfg.background_texture = 0.0;
  std::vector<Tensor> renders;
  for (std::int64_t cls = 0; cls < 10; ++cls) {
    Rng rng(77);  // identical pose for every class
    renders.push_back(render_object(cls, rng, cfg));
  }
  for (std::size_t a = 0; a < renders.size(); ++a)
    for (std::size_t b = a + 1; b < renders.size(); ++b) {
      double diff = 0.0;
      for (std::size_t i = 0; i < renders[a].size(); ++i)
        diff += std::fabs(renders[a][i] - renders[b][i]);
      EXPECT_GT(diff, 10.0) << "classes " << a << " and " << b << " render identically";
    }
}

TEST(SynthObjects, InvalidClassThrows) {
  SynthObjectsConfig cfg;
  Rng rng(1);
  EXPECT_THROW(render_object(10, rng, cfg), std::invalid_argument);
  EXPECT_THROW(render_object(-1, rng, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::data
