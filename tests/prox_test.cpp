// prox_test.cpp — the closed-form proximal operators (paper eq. 16 & 18).
#include <gtest/gtest.h>

#include <cmath>

#include "core/prox.h"
#include "tensor/ops.h"

namespace fsa::core {
namespace {

TEST(ProxL0, HardThresholdKeepsLargeEntries) {
  // threshold² = 2/ρ; ρ = 2 → keep |v| > 1.
  const Tensor v = Tensor::from_vector({0.5f, -0.5f, 1.5f, -2.0f, 0.99f, 1.01f});
  const Tensor z = prox_l0(v, 2.0);
  EXPECT_EQ(z[0], 0.0f);
  EXPECT_EQ(z[1], 0.0f);
  EXPECT_EQ(z[2], 1.5f);
  EXPECT_EQ(z[3], -2.0f);
  EXPECT_EQ(z[4], 0.0f);
  EXPECT_EQ(z[5], 1.01f);
}

TEST(ProxL0, KeptEntriesUnshrunk) {
  // ℓ0 prox is keep-or-kill — surviving values must be bit-identical.
  const Tensor v = Tensor::from_vector({3.25f, -7.5f});
  const Tensor z = prox_l0(v, 1.0);
  EXPECT_EQ(z[0], 3.25f);
  EXPECT_EQ(z[1], -7.5f);
}

TEST(ProxL0, LargerRhoKeepsMore) {
  Rng rng(1);
  const Tensor v = Tensor::randn(Shape({1000}), rng);
  const std::int64_t sparse = ops::l0_norm(prox_l0(v, 0.5));
  const std::int64_t dense = ops::l0_norm(prox_l0(v, 50.0));
  EXPECT_LT(sparse, dense);
}

TEST(ProxL0, MinimizesTheProxObjective) {
  // For each coordinate, z must beat the alternative choice in
  // ‖z‖₀ + (ρ/2)(z − v)²: keeping costs 1, killing costs (ρ/2)v².
  Rng rng(2);
  const Tensor v = Tensor::randn(Shape({200}), rng);
  const double rho = 3.0;
  const Tensor z = prox_l0(v, rho);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double keep_cost = 1.0;
    const double kill_cost = 0.5 * rho * static_cast<double>(v[i]) * v[i];
    if (z[i] != 0.0f)
      EXPECT_LE(keep_cost, kill_cost + 1e-9) << "kept a coordinate that should be killed";
    else
      EXPECT_LE(kill_cost, keep_cost + 1e-9) << "killed a coordinate that should be kept";
  }
}

TEST(ProxL0, InvalidRhoThrows) {
  EXPECT_THROW(prox_l0(Tensor(Shape({1})), 0.0), std::invalid_argument);
  EXPECT_THROW(prox_l0(Tensor(Shape({1})), -1.0), std::invalid_argument);
}

TEST(ProxL2, CollapsesSmallVectors) {
  // ‖v‖ < 1/ρ → 0 (eq. 18, lower branch).
  const Tensor v = Tensor::from_vector({0.01f, 0.01f});
  const Tensor z = prox_l2(v, 1.0);
  EXPECT_EQ(ops::l2_norm(z), 0.0);
}

TEST(ProxL2, ShrinksLargeVectorsRadially) {
  const Tensor v = Tensor::from_vector({3.0f, 4.0f});  // ‖v‖ = 5
  const double rho = 1.0;
  const Tensor z = prox_l2(v, rho);
  // Shrink factor 1 − 1/(ρ‖v‖) = 0.8.
  EXPECT_NEAR(z[0], 2.4f, 1e-5f);
  EXPECT_NEAR(z[1], 3.2f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(z[1] / z[0], 4.0 / 3.0, 1e-5);
}

TEST(ProxL2, NormReducedByExactlyOneOverRho) {
  Rng rng(3);
  Tensor v = Tensor::randn(Shape({64}), rng);
  const double rho = 2.5;
  const double before = ops::l2_norm(v);
  const double after = ops::l2_norm(prox_l2(v, rho));
  EXPECT_NEAR(before - after, 1.0 / rho, 1e-4);
}

TEST(ProxL2, MinimizesTheProxObjectiveVsPerturbations) {
  Rng rng(4);
  const Tensor v = Tensor::randn(Shape({16}), rng);
  const double rho = 1.7;
  const Tensor z = prox_l2(v, rho);
  auto objective = [&](const Tensor& cand) {
    return ops::l2_norm(cand) + 0.5 * rho * std::pow(ops::l2_norm(ops::sub(cand, v)), 2);
  };
  const double base = objective(z);
  Rng pr(5);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor perturbed = z;
    perturbed.axpy(0.01f, Tensor::randn(z.shape(), pr));
    EXPECT_GE(objective(perturbed) + 1e-7, base);
  }
}

TEST(ProxBoth, ZeroInputGivesZero) {
  const Tensor v = Tensor::zeros(Shape({8}));
  EXPECT_EQ(ops::l0_norm(prox_l0(v, 1.0)), 0);
  EXPECT_EQ(ops::l2_norm(prox_l2(v, 1.0)), 0.0);
  EXPECT_EQ(ops::l2_norm(prox_l1(v, 1.0)), 0.0);
}

TEST(ProxL1, SoftThresholdByHand) {
  // threshold = 1/ρ = 0.5.
  const Tensor v = Tensor::from_vector({0.2f, -0.4f, 0.5f, 1.5f, -2.0f});
  const Tensor z = prox_l1(v, 2.0);
  EXPECT_EQ(z[0], 0.0f);
  EXPECT_EQ(z[1], 0.0f);
  EXPECT_EQ(z[2], 0.0f);  // exactly at the threshold → 0
  EXPECT_FLOAT_EQ(z[3], 1.0f);
  EXPECT_FLOAT_EQ(z[4], -1.5f);
}

TEST(ProxL1, ShrinksTowardZeroNeverPast) {
  Rng rng(6);
  const Tensor v = Tensor::randn(Shape({128}), rng);
  const Tensor z = prox_l1(v, 1.5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(z[i]), std::fabs(v[i]));
    if (z[i] != 0.0f) EXPECT_GT(z[i] * v[i], 0.0f);  // same sign
  }
}

TEST(ProxL1, MinimizesTheProxObjective) {
  Rng rng(7);
  const Tensor v = Tensor::randn(Shape({32}), rng);
  const double rho = 2.5;
  const Tensor z = prox_l1(v, rho);
  auto objective = [&](const Tensor& cand) {
    double l1 = 0.0;
    for (float x : cand.span()) l1 += std::fabs(x);
    return l1 + 0.5 * rho * std::pow(ops::l2_norm(ops::sub(cand, v)), 2);
  };
  const double base = objective(z);
  Rng pr(8);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor perturbed = z;
    perturbed.axpy(0.01f, Tensor::randn(z.shape(), pr));
    EXPECT_GE(objective(perturbed) + 1e-7, base);
  }
}

TEST(ProxL1, InvalidRhoThrows) {
  EXPECT_THROW(prox_l1(Tensor(Shape({1})), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::core
