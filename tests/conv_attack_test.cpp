// conv_attack_test.cpp — attacking a CONVOLUTIONAL layer end to end.
//
// The paper's θ "has the flexibility of specifying … weight parameters of
// the specific layer(s)"; its experiments stick to FC layers, but the
// framework itself is layer-agnostic. This suite verifies the machinery on
// a conv surface: the cut is the conv layer itself, features are raw NCHW
// images, and the ADMM loop differentiates through conv/pool/dense.
#include <gtest/gtest.h>

#include <memory>

#include "core/attack_metrics.h"
#include "models/feature_cache.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "optim/adam.h"
#include "optim/trainer.h"
#include "tensor/ops.h"

namespace fsa::core {
namespace {

constexpr std::int64_t kSide = 8;
constexpr std::int64_t kClasses = 4;

/// 8×8 one-channel images; class = which quadrant is bright.
data::Dataset make_quadrants(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor images(Shape({n, 1, kSide, kSide}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::int64_t>(rng.uniform_int(kClasses));
    labels[static_cast<std::size_t>(i)] = cls;
    const std::int64_t y0 = (cls / 2) * (kSide / 2), x0 = (cls % 2) * (kSide / 2);
    for (std::int64_t y = 0; y < kSide; ++y)
      for (std::int64_t x = 0; x < kSide; ++x) {
        const bool bright = y >= y0 && y < y0 + kSide / 2 && x >= x0 && x < x0 + kSide / 2;
        images.at4(i, 0, y, x) =
            static_cast<float>((bright ? 0.9 : 0.1) + rng.normal(0.0, 0.05));
      }
  }
  return data::Dataset(std::move(images), std::move(labels), kClasses);
}

nn::Sequential make_small_convnet() {
  Rng rng(3);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2D>("conv1", 1, 4, 3, rng));
  net.add(std::make_unique<nn::ReLU>("relu1"));
  net.add(std::make_unique<nn::MaxPool2D>("pool1", 2));
  net.add(std::make_unique<nn::Flatten>("flatten"));
  net.add(std::make_unique<nn::Dense>("fc", 4 * 3 * 3, kClasses, rng));
  return net;
}

struct ConvFixture {
  data::Dataset train = make_quadrants(400, 1);
  data::Dataset pool = make_quadrants(200, 2);
  nn::Sequential net = make_small_convnet();

  ConvFixture() {
    optim::Adam opt(net.params(), 5e-3);
    optim::Trainer trainer(net, opt);
    optim::TrainConfig cfg;
    cfg.epochs = 12;
    cfg.batch_size = 32;
    trainer.fit(train, cfg);
  }

  AttackSpec spec_at(std::size_t cut, std::int64_t s, std::int64_t r, std::uint64_t seed) {
    const Tensor feats = models::compute_features(net, cut, pool.images());
    const auto preds = models::head_predictions(net, cut, feats);
    return make_spec(feats, pool.labels(), preds, s, r, kClasses, seed);
  }
};

ConvFixture& fixture() {
  static ConvFixture f;
  return f;
}

TEST(ConvAttack, ModelTrainsOnQuadrants) {
  auto& f = fixture();
  EXPECT_GT(optim::Trainer::accuracy(f.net, f.pool), 0.95);
}

TEST(ConvAttack, FeaturesAtConvCutKeepNchwShape) {
  auto& f = fixture();
  const std::size_t cut = f.net.index_of("conv1");  // == 0
  const Tensor feats = models::compute_features(f.net, cut, f.pool.images());
  EXPECT_EQ(feats.shape().rank(), 4u);
  EXPECT_EQ(feats.dim(1), 1);
}

TEST(ConvAttack, InjectsUnconstrainedFaultThroughConvParameters) {
  // With no maintain images the 40 shared conv parameters easily flip one
  // input — this validates gradients/masking through the conv path.
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"conv1"});
  EXPECT_EQ(attack.cut(), f.net.index_of("conv1"));
  const AttackSpec spec = f.spec_at(attack.cut(), 1, 1, 11);
  ASSERT_EQ(spec.features.shape().rank(), 4u);
  const FaultSneakingResult res = attack.run(spec);
  EXPECT_TRUE(res.all_targets_hit);
  EXPECT_GT(res.l0, 0);
  EXPECT_LE(res.l0, attack.mask().size());
}

TEST(ConvAttack, SharedConvSurfaceSaturatesUnderMaintainConstraints) {
  // The paper's Table 2 lesson generalizes: a tiny SHARED surface (40 conv
  // parameters feeding every spatial position of every image) cannot both
  // flip one image and pin 7 others — the attack must degrade gracefully,
  // reporting consistent partial results instead of pretending success.
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"conv1"});
  const AttackSpec spec = f.spec_at(attack.cut(), 1, 8, 11);
  const FaultSneakingResult res = attack.run(spec);
  EXPECT_LE(res.targets_hit, 1);
  EXPECT_LE(res.maintained, 7);
  // Reported counts must match an independent re-evaluation.
  const auto verified = with_delta(attack, res.delta, [&] {
    const Tensor logits = f.net.forward_from(attack.cut(), spec.features);
    return count_satisfied(logits, spec);
  });
  EXPECT_EQ(verified.first, res.targets_hit);
  EXPECT_EQ(verified.second, res.maintained);
}

TEST(ConvAttack, MidNetworkDenseCutStillWorks) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"fc"});
  const AttackSpec spec = f.spec_at(attack.cut(), 1, 8, 12);
  EXPECT_EQ(spec.features.shape().rank(), 2u);
  const FaultSneakingResult res = attack.run(spec);
  EXPECT_TRUE(res.all_targets_hit);
}

TEST(ConvAttack, ConvSurfaceNeedsNoMoreThanItsSize) {
  auto& f = fixture();
  FaultSneakingAttack attack(f.net, {"conv1"});
  EXPECT_EQ(attack.mask().size(), 1 * 3 * 3 * 4 + 4);
}

}  // namespace
}  // namespace fsa::core
