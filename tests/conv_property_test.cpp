// conv_property_test.cpp — parameterized geometry sweep for Conv2D and
// MaxPool2D. The key invariant is ADJOINTNESS: for the linear part of the
// convolution (bias = 0), backward is the transpose of forward, so
// ⟨conv(x), gy⟩ = ⟨x, conv_backward(gy)⟩ must hold for every geometry.
// A broken im2col/col2im index shows up here immediately.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.h"
#include "nn/pool.h"
#include "tensor/ops.h"

namespace fsa::nn {
namespace {

struct ConvCase {
  std::int64_t in_c, out_c, kernel, stride, pad, side, batch;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, OutputShapeFormula) {
  const auto p = GetParam();
  Rng rng(1);
  Conv2D conv("c", p.in_c, p.out_c, p.kernel, rng, p.stride, p.pad);
  const Shape out = conv.output_shape(Shape({p.batch, p.in_c, p.side, p.side}));
  const std::int64_t expect = (p.side + 2 * p.pad - p.kernel) / p.stride + 1;
  EXPECT_EQ(out, Shape({p.batch, p.out_c, expect, expect}));
}

TEST_P(ConvSweep, ForwardBackwardAdjointness) {
  const auto p = GetParam();
  Rng rng(2);
  Conv2D conv("c", p.in_c, p.out_c, p.kernel, rng, p.stride, p.pad);
  conv.params()[1]->value().fill(0.0f);  // zero bias → purely linear map
  Rng xr(3), yr(4);
  const Tensor x = Tensor::randn(Shape({p.batch, p.in_c, p.side, p.side}), xr);
  const Shape out_shape = conv.output_shape(x.shape());
  const Tensor gy = Tensor::randn(out_shape, yr);
  const Tensor y = conv.forward(x, true);
  conv.zero_grad();
  const Tensor gx = conv.backward(gy);
  const double lhs = ops::dot(y, gy);
  const double rhs = ops::dot(x, gx);
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
}

TEST_P(ConvSweep, WeightGradientIsAdjointInWeights) {
  // ⟨conv_W(x), gy⟩ = ⟨W, dW⟩ for the linear-in-W map at fixed x.
  const auto p = GetParam();
  Rng rng(5);
  Conv2D conv("c", p.in_c, p.out_c, p.kernel, rng, p.stride, p.pad);
  conv.params()[1]->value().fill(0.0f);
  Rng xr(6), yr(7);
  const Tensor x = Tensor::randn(Shape({p.batch, p.in_c, p.side, p.side}), xr);
  const Tensor gy = Tensor::randn(conv.output_shape(x.shape()), yr);
  const Tensor y = conv.forward(x, true);
  conv.zero_grad();
  conv.backward(gy);
  const double lhs = ops::dot(y, gy);
  const double rhs = ops::dot(conv.params()[0]->value(), conv.params()[0]->grad());
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
}

TEST_P(ConvSweep, ZeroInputGivesBiasOnlyOutput) {
  const auto p = GetParam();
  Rng rng(8);
  Conv2D conv("c", p.in_c, p.out_c, p.kernel, rng, p.stride, p.pad);
  conv.params()[1]->value().fill(0.75f);
  const Tensor x = Tensor::zeros(Shape({p.batch, p.in_c, p.side, p.side}));
  const Tensor y = conv.forward(x, false);
  for (float v : y.span()) EXPECT_FLOAT_EQ(v, 0.75f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5, 1},   // pointwise
                      ConvCase{1, 4, 3, 1, 0, 8, 2},   // valid 3×3
                      ConvCase{3, 2, 3, 1, 1, 7, 1},   // same-ish padding
                      ConvCase{2, 3, 5, 1, 2, 9, 2},   // big kernel
                      ConvCase{2, 2, 3, 2, 0, 9, 1},   // strided
                      ConvCase{4, 8, 3, 2, 1, 10, 3},  // strided + padded
                      ConvCase{32, 16, 3, 1, 0, 6, 2}  // many channels
                      ),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const auto& p = info.param;
      return "ic" + std::to_string(p.in_c) + "_oc" + std::to_string(p.out_c) + "_k" +
             std::to_string(p.kernel) + "_s" + std::to_string(p.stride) + "_p" +
             std::to_string(p.pad) + "_side" + std::to_string(p.side) + "_n" +
             std::to_string(p.batch);
    });

struct PoolCase {
  std::int64_t window, stride, side, channels;
};

class PoolSweep : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolSweep, BackwardConservesGradientMass) {
  // Every output gradient lands on exactly one input cell.
  const auto p = GetParam();
  MaxPool2D pool("p", p.window, p.stride);
  Rng rng(9);
  Tensor x = Tensor::randn(Shape({2, p.channels, p.side, p.side}), rng);
  const Tensor y = pool.forward(x, true);
  Rng gr(10);
  const Tensor gy = Tensor::rand_uniform(y.shape(), gr, 0.5f, 1.5f);
  const Tensor gx = pool.backward(gy);
  EXPECT_NEAR(ops::sum(gx), ops::sum(gy), 1e-3);
}

TEST_P(PoolSweep, OutputsAreWindowMaxima) {
  const auto p = GetParam();
  MaxPool2D pool("p", p.window, p.stride);
  Rng rng(11);
  const Tensor x = Tensor::randn(Shape({1, p.channels, p.side, p.side}), rng);
  const Tensor y = pool.forward(x, false);
  // Every pooled value must exist somewhere in the input plane and be ≥
  // every member of its window (checked indirectly: y values are inputs).
  for (std::int64_t c = 0; c < p.channels; ++c)
    for (std::int64_t oy = 0; oy < y.dim(2); ++oy)
      for (std::int64_t ox = 0; ox < y.dim(3); ++ox) {
        const float v = y.at4(0, c, oy, ox);
        float window_max = -1e30f;
        for (std::int64_t ky = 0; ky < p.window; ++ky)
          for (std::int64_t kx = 0; kx < p.window; ++kx)
            window_max =
                std::max(window_max, x.at4(0, c, oy * p.stride + ky, ox * p.stride + kx));
        EXPECT_FLOAT_EQ(v, window_max);
      }
}

INSTANTIATE_TEST_SUITE_P(Geometries, PoolSweep,
                         ::testing::Values(PoolCase{2, 2, 8, 1}, PoolCase{2, 2, 9, 3},
                                           PoolCase{3, 3, 9, 2}, PoolCase{2, 1, 6, 2},
                                           PoolCase{3, 2, 11, 1}),
                         [](const ::testing::TestParamInfo<PoolCase>& info) {
                           const auto& p = info.param;
                           return "w" + std::to_string(p.window) + "_s" +
                                  std::to_string(p.stride) + "_side" + std::to_string(p.side) +
                                  "_c" + std::to_string(p.channels);
                         });

}  // namespace
}  // namespace fsa::nn
